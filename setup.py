"""Legacy setup shim.

This environment has no network and no ``wheel`` package, so PEP-517
editable installs (``pip install -e .``) cannot build an editable wheel.
``python setup.py develop`` (or a ``.pth`` file pointing at ``src/``)
provides the equivalent offline.  With network access, ``pip install -e .``
works from ``pyproject.toml`` alone.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy", "scipy"],
)
