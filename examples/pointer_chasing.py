#!/usr/bin/env python3
"""Scenario: pointer-heavy graph computation (SPEC MCF's shape).

MCF is "the least friendly to program analysis" (paper section 6.1):
memory accesses depend on pointer values and control flow.  Mira still
wins at small local memory -- the arc scan's indirect node accesses get a
set-associative section with chained prefetching -- and, per Fig. 22, the
unprefetchable pointer-chase function can be offloaded to run *at* the
far-memory node, turning network round trips into local accesses.

Usage:  python examples/pointer_chasing.py
"""

from dataclasses import replace

from repro import CostModel
from repro.bench.harness import mira_point, native_time_ns, system_point
from repro.core import compile_program, run_plan
from repro.core.section_planner import plan_sections
from repro.core.plan import MiraPlan
from repro.workloads import make_mcf_workload


def main() -> None:
    cost = CostModel()
    workload = make_mcf_workload()
    print(f"MCF kernel: {workload.params['num_arcs']} arcs, "
          f"{workload.params['num_nodes']} nodes, "
          f"{workload.footprint_bytes() // 1024} KiB footprint\n")

    native = native_time_ns(workload, cost)
    print("local memory | fastswap |  aifm  |  mira")
    for ratio in (0.2, 0.5, 1.0):
        fast = system_point(workload, "fastswap", cost, ratio, native)
        aifm = system_point(workload, "aifm", cost, ratio, native)
        mira, _ = mira_point(workload, cost, ratio, native)
        aifm_s = "FAIL" if aifm.failed else f"{aifm.normalized_perf:.3f}"
        print(f"{ratio:>12.0%} | {fast.normalized_perf:>8.3f} | "
              f"{aifm_s:>6} | {mira.normalized_perf:>5.3f}")

    print("\noffloading the pointer chase (Fig. 22) at 20% local memory:")
    local = workload.footprint_bytes() // 5
    src = workload.build_module()
    swap = run_plan(
        compile_program(src, MiraPlan.swap_only(), cost, instrument=True),
        cost, local, workload.data_init,
    )
    plan = plan_sections(src, cost, local, swap.profiler)
    on_node = run_plan(
        compile_program(src, plan, cost), cost, local, workload.data_init
    )
    off_plan = replace(plan, offload_functions=["chase_update"])
    offloaded = run_plan(
        compile_program(src, off_plan, cost), cost, local, workload.data_init
    )
    workload.verify_results(offloaded.results)
    print(f"  chase runs locally:   {native / on_node.elapsed_ns:.3f}x native")
    print(f"  chase offloaded:      {native / offloaded.elapsed_ns:.3f}x native")


if __name__ == "__main__":
    main()
