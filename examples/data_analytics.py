#!/usr/bin/env python3
"""Scenario: columnar analytics over a table larger than local memory.

A mini DataFrame engine runs reductions (avg/min/max), a predicate
filter, a wide group-by, and a sort-order gather over taxi-trip-shaped
data (the paper's DataFrame evaluation, Fig. 16).  The script also shows
the batching optimization of Fig. 23: three adjacent reduction loops over
the same column are fused and their data batch-fetched.

Usage:  python examples/data_analytics.py
"""

from repro import CostModel
from repro.bench.harness import mira_point, native_time_ns, system_point
from repro.core import MiraController
from repro.workloads import make_dataframe_workload
from repro.workloads.dataframe import make_dataframe_amm_workload


def main() -> None:
    cost = CostModel()
    workload = make_dataframe_workload()
    print(f"DataFrame: {workload.params['num_rows']} rows, "
          f"{workload.footprint_bytes() // 1024} KiB footprint\n")

    native = native_time_ns(workload, cost)
    print("local memory | fastswap |  aifm  |  mira")
    for ratio in (0.2, 0.4, 0.8):
        fast = system_point(workload, "fastswap", cost, ratio, native)
        aifm = system_point(workload, "aifm", cost, ratio, native)
        mira, _ = mira_point(workload, cost, ratio, native)
        aifm_s = "FAIL" if aifm.failed else f"{aifm.normalized_perf:.3f}"
        print(f"{ratio:>12.0%} | {fast.normalized_perf:>8.3f} | "
              f"{aifm_s:>6} | {mira.normalized_perf:>5.3f}")

    print("\nbatching (Fig. 23): avg/min/max as three adjacent loops")
    amm = make_dataframe_amm_workload()
    native_amm = native_time_ns(amm, cost)
    local = amm.footprint_bytes() // 3
    controller = MiraController(
        amm.build_module, cost, local, data_init=amm.data_init
    )
    program = controller.optimize()
    from repro.core import run_plan

    fused = run_plan(program.module, cost, local, amm.data_init)
    amm.verify_results(fused.results)
    from repro.core import compile_program

    unfused_plan = program.plan.without_options("batching")
    unfused = run_plan(
        compile_program(amm.build_module(), unfused_plan, cost),
        cost, local, amm.data_init,
    )
    print(f"  with batching:    {native_amm / fused.elapsed_ns:.3f}x native")
    print(f"  without batching: {native_amm / unfused.elapsed_ns:.3f}x native")


if __name__ == "__main__":
    main()
