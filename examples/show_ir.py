#!/usr/bin/env python3
"""Reproduces the paper's IR listings (Figs. 13 and 14).

Prints the graph-traversal example (Fig. 4) at three stages:
  1. the input IR (local memrefs);
  2. after conversion to remotable/rmem operations (Fig. 13);
  3. after prefetch insertion -- including the chained indirect prefetch
     ``%1 = fetch A[i+d]; fetch B[%1]`` -- and eviction hints (Fig. 14).
"""

from repro import CostModel
from repro.ir.printer import print_function
from repro.transforms import (
    convert_to_remote,
    insert_eviction_hints,
    insert_prefetches,
)
from repro.workloads import make_graph_workload


def main() -> None:
    workload = make_graph_workload(num_edges=64, num_nodes=16)
    module = workload.build_module()
    print("=== input IR (Fig. 4 as built) " + "=" * 40)
    print(print_function(module.get("main")))

    convert_to_remote(module, ["edges", "nodes"])
    print("=== after convert-to-remote (cf. paper Fig. 13) " + "=" * 24)
    print(print_function(module.get("main")))

    insert_eviction_hints(module)
    insert_prefetches(module, CostModel())
    print("=== after prefetch + eviction hints (cf. paper Fig. 14) " + "=" * 15)
    print(print_function(module.get("main")))


if __name__ == "__main__":
    main()
