#!/usr/bin/env python3
"""Scenario: serving transformer inference from far memory.

The paper's GPT-2 story (section 6.1): model weights plus KV caches far
exceed local DRAM, but inference touches them layer by layer.  Mira's
analysis discovers the per-layer lifetime, prefetches the next layer
during the current layer's compute, and evicts dead layers promptly --
performance stays flat even with a few percent of the footprint local.

This script sweeps local-memory ratios and prints Fig. 17's series, then
shows the thread-scaling behaviour of Fig. 24.

Usage:  python examples/ml_inference.py
"""

from repro import CostModel
from repro.bench.harness import mira_point, native_time_ns, system_point
from repro.workloads import make_gpt2_workload


def main() -> None:
    cost = CostModel()
    workload = make_gpt2_workload()
    footprint_mb = workload.footprint_bytes() / 1e6
    print(f"transformer inference: {workload.params['layers']} layers, "
          f"{footprint_mb:.0f} MB weights+KV footprint\n")

    native = native_time_ns(workload, cost)
    print("local memory | fastswap |  mira")
    for ratio in (0.045, 0.1, 0.25, 0.5):
        fast = system_point(workload, "fastswap", cost, ratio, native)
        mira, program = mira_point(workload, cost, ratio, native)
        sections = ", ".join(
            f"{sp.config.name[4:]}={sp.config.size_bytes // 1024}K"
            for sp in program.plan.sections
        )
        print(f"{ratio:>12.1%} | {fast.normalized_perf:>8.3f} | "
              f"{mira.normalized_perf:>5.3f}   [{sections}]")

    print("\nmulti-threaded scaling at 60% local memory "
          "(compute-bound regime):")
    args = dict(layers=24, passes=2, compute_per_byte_ns=1.0)
    native1 = native_time_ns(make_gpt2_workload(num_threads=1, **args), cost)
    print("threads | fastswap |  mira")
    for threads in (1, 2, 4):
        wl = make_gpt2_workload(num_threads=threads, **args)
        fast = system_point(wl, "fastswap", cost, 0.6, native1, num_threads=threads)
        mira, _ = mira_point(wl, cost, 0.6, native1, num_threads=threads)
        print(f"{threads:>7} | {fast.normalized_perf:>8.3f} | "
              f"{mira.normalized_perf:>5.3f}")


if __name__ == "__main__":
    main()
