#!/usr/bin/env python3
"""Quickstart: run the paper's graph-traversal example on every system.

Builds the Fig. 4 program (sequential edge array, indirectly accessed
node array), runs it natively, on the swap baselines, on AIFM, and
through the full Mira controller, and prints normalized performance --
a one-ratio slice of the paper's Fig. 5.

Usage:  python examples/quickstart.py [local_memory_ratio]
"""

import sys

from repro import CostModel, MiraController, run_on_baseline
from repro.baselines import AIFM, FastSwap, Leap, NativeMemory
from repro.errors import AllocationError
from repro.workloads import make_graph_workload


def main() -> None:
    ratio = float(sys.argv[1]) if len(sys.argv) > 1 else 0.25
    cost = CostModel()
    workload = make_graph_workload()
    footprint = workload.footprint_bytes()
    local = int(footprint * ratio)
    print(f"graph traversal: footprint {footprint // 1024} KiB, "
          f"local memory {local // 1024} KiB ({ratio:.0%})\n")

    native = run_on_baseline(
        workload.build_module(), NativeMemory(cost, 2 * footprint),
        workload.data_init,
    )
    workload.verify_results(native.results)
    print(f"{'native':>10}: {native.elapsed_ns / 1e6:8.2f} ms  (baseline)")

    for cls in (FastSwap, Leap, AIFM):
        try:
            result = run_on_baseline(
                workload.build_module(), cls(cost, local), workload.data_init
            )
            workload.verify_results(result.results)
            perf = native.elapsed_ns / result.elapsed_ns
            print(f"{cls.name:>10}: {result.elapsed_ns / 1e6:8.2f} ms  "
                  f"({perf:.3f}x native)")
        except AllocationError as e:
            print(f"{cls.name:>10}: FAILED ({e})")

    controller = MiraController(
        workload.build_module, cost, local, data_init=workload.data_init
    )
    program = controller.optimize()
    perf = native.elapsed_ns / program.best_ns
    print(f"{'mira':>10}: {program.best_ns / 1e6:8.2f} ms  ({perf:.3f}x native)")
    print(f"\nMira plan after {len(program.history)} iterations "
          f"(speedup over generic swap: {program.speedup_over_swap:.2f}x):")
    for sp in program.plan.sections:
        cfg = sp.config
        print(f"  section {cfg.name}: {cfg.structure.value}, "
              f"line {cfg.line_size} B, size {cfg.size_bytes // 1024} KiB, "
              f"objects {sp.object_names}")


if __name__ == "__main__":
    main()
