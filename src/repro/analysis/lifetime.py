"""Object lifetime analysis (paper sections 4.2/4.3).

Linearizes each function's ops (pre-order walk) and records, per
allocation site, the interval between its first and last access.  The
section-size ILP uses interval overlap as its "live at the same time"
constraint; the eviction-hint pass uses last-access positions.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.alias import AliasAnalysis, AllocSite
from repro.ir.core import Function, Module, Operation
from repro.ir.dialects import memref, rmem


@dataclass
class LifetimeInterval:
    site: AllocSite
    first_index: int
    last_index: int
    first_op: Operation
    last_op: Operation

    def overlaps(self, other: "LifetimeInterval") -> bool:
        return self.first_index <= other.last_index and (
            other.first_index <= self.last_index
        )


_ACCESS_OPS = (
    memref.LoadOp,
    memref.StoreOp,
    memref.TouchOp,
    rmem.RLoadOp,
    rmem.RStoreOp,
    rmem.RTouchOp,
)


class LifetimeAnalysis:
    """Per-function lifetime intervals for every allocation site."""

    def __init__(self, module: Module, alias: AliasAnalysis) -> None:
        self.module = module
        self.alias = alias
        #: function name -> site -> interval
        self.intervals: dict[str, dict[AllocSite, LifetimeInterval]] = {}
        for fn in module.functions.values():
            self.intervals[fn.name] = self._analyze(fn)

    def _analyze(self, fn: Function) -> dict[AllocSite, LifetimeInterval]:
        """Intervals are at *top-level statement* granularity: everything
        inside one top-level loop is concurrent (the loop interleaves its
        body's accesses)."""
        out: dict[AllocSite, LifetimeInterval] = {}
        for stmt_idx, stmt in enumerate(fn.body.ops):
            for op in stmt.walk():
                if not isinstance(op, _ACCESS_OPS):
                    continue
                ref = op.ref
                for site in self.alias.points_to(ref):
                    iv = out.get(site)
                    if iv is None:
                        out[site] = LifetimeInterval(site, stmt_idx, stmt_idx, op, op)
                    else:
                        iv.last_index = stmt_idx
                        iv.last_op = op
        return out

    def interval(self, fn_name: str, site: AllocSite) -> LifetimeInterval | None:
        return self.intervals.get(fn_name, {}).get(site)

    def last_access_op(self, fn_name: str, site: AllocSite) -> Operation | None:
        iv = self.interval(fn_name, site)
        return iv.last_op if iv else None

    def concurrent_groups(self, fn_name: str) -> list[set[AllocSite]]:
        """Maximal groups of sites whose lifetimes pairwise overlap
        (cliques approximated by interval sweep -- exact for intervals)."""
        ivs = sorted(
            self.intervals.get(fn_name, {}).values(), key=lambda i: i.first_index
        )
        groups: list[set[AllocSite]] = []
        active: list[LifetimeInterval] = []
        for iv in ivs:
            active = [a for a in active if a.last_index >= iv.first_index]
            active.append(iv)
            groups.append({a.site for a in active})
        # keep only maximal groups
        maximal = []
        for g in groups:
            if not any(g < other for other in groups):
                if g not in maximal:
                    maximal.append(g)
        return maximal
