"""Scalar evolution (paper section 5.2.2).

Classifies an index expression relative to a loop's induction variable:

* :class:`Affine` -- ``coeff * iv + base`` where ``coeff`` is a known
  constant and ``base`` is loop-invariant (constant if ``base_const`` is
  set); covers sequential (|stride| == 1) and strided patterns;
* :class:`Indirect` -- the index comes (through arithmetic/casts) from a
  value loaded from memory (``B[A[i]]``); the source load is recorded so
  the prefetch pass can chain fetches exactly as the paper's example does;
* :class:`Invariant` -- defined outside the loop;
* :class:`Unknown` -- anything else (sound fallback: no optimization).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ir.core import Block, Operation, Value
from repro.ir.dialects import arith, memref, rmem, scf


class SCEV:
    """Base class for scalar-evolution results."""


@dataclass(frozen=True)
class Affine(SCEV):
    """``coeff * iv + base``; ``base_const`` is None when the base is a
    loop-invariant symbol rather than a literal."""

    coeff: int
    base_const: int | None = None

    @property
    def stride(self) -> int:
        return self.coeff


class Indirect(SCEV):
    """Index derived from a memory load; ``source_load`` is that op."""

    __slots__ = ("source_load",)

    def __init__(self, source_load: Operation) -> None:
        self.source_load = source_load

    def __eq__(self, other) -> bool:  # identity of the load matters
        return isinstance(other, Indirect) and other.source_load is self.source_load

    def __hash__(self) -> int:
        return id(self.source_load)

    def __repr__(self) -> str:
        return f"Indirect({self.source_load.opname})"


@dataclass(frozen=True)
class Invariant(SCEV):
    """Loop-invariant (uniform across iterations)."""


@dataclass(frozen=True)
class Unknown(SCEV):
    """Analysis cannot classify (sound: treated as random)."""


def _defined_in(value: Value, body: Block) -> bool:
    """Is ``value`` defined inside ``body`` (including nested regions)?"""
    if value.owner_block is not None:
        block = value.owner_block
    elif value.producer is not None:
        block = value.producer.parent_block
    else:
        return False
    while block is not None:
        if block is body:
            return True
        region = block.parent_region
        if region is None or region.parent_op is None:
            return False
        block = region.parent_op.parent_block
    return False


def loop_step_const(loop: scf.ForOp) -> int | None:
    """The loop's step if it is a literal constant."""
    prod = loop.step.producer
    if isinstance(prod, arith.ConstantOp):
        return int(prod.value)
    return None


def scev_of(value: Value, loop, _depth: int = 0) -> SCEV:
    """Scalar evolution of ``value`` with respect to ``loop``'s IV
    (``loop`` is an scf.for or scf.parallel)."""
    if _depth > 64:
        return Unknown()
    if value is loop.induction_var:
        return Affine(1, 0)
    if not _defined_in(value, loop.body):
        # defined before the loop (or a function arg): invariant
        return Invariant()
    producer = value.producer
    if producer is None:
        # a block argument of a nested loop: unknown w.r.t. this loop
        return Unknown()
    if isinstance(producer, arith.ConstantOp):
        v = producer.value
        if isinstance(v, int):
            return Affine(0, v)
        return Invariant()
    if isinstance(producer, arith.CastOp):
        return scev_of(producer.operands[0], loop, _depth + 1)
    if isinstance(producer, (memref.LoadOp, rmem.RLoadOp)):
        return Indirect(producer)
    if isinstance(producer, arith.BinaryOp):
        lhs = scev_of(producer.operands[0], loop, _depth + 1)
        rhs = scev_of(producer.operands[1], loop, _depth + 1)
        return _combine(producer.kind, lhs, rhs)
    if isinstance(producer, arith.SelectOp):
        return Unknown()
    return Unknown()


def _combine(kind: str, lhs: SCEV, rhs: SCEV) -> SCEV:
    # indirectness dominates: arithmetic on a loaded value stays indirect
    for s in (lhs, rhs):
        if isinstance(s, Indirect):
            return s
    if isinstance(lhs, Unknown) or isinstance(rhs, Unknown):
        return Unknown()
    la = _as_affine(lhs)
    ra = _as_affine(rhs)
    if la is None or ra is None:
        return Unknown()
    lc, lb = la
    rc, rb = ra
    if kind == "add":
        return Affine(lc + rc, _add(lb, rb))
    if kind == "sub":
        return Affine(lc - rc, _sub(lb, rb))
    if kind == "mul":
        # affine * constant stays affine; affine * affine does not
        if rc == 0 and rb is not None:
            return Affine(lc * rb, _mul(lb, rb))
        if lc == 0 and lb is not None:
            return Affine(rc * lb, _mul(rb, lb))
        return Unknown()
    if kind in ("min", "max") and lc == rc == 0:
        return Invariant()
    return Unknown()


def _as_affine(s: SCEV) -> tuple[int, int | None] | None:
    """(coeff, base_const or None) for affine-like SCEVs."""
    if isinstance(s, Affine):
        return s.coeff, s.base_const
    if isinstance(s, Invariant):
        return 0, None
    return None


def _add(a: int | None, b: int | None) -> int | None:
    return a + b if a is not None and b is not None else None


def _sub(a: int | None, b: int | None) -> int | None:
    return a - b if a is not None and b is not None else None


def _mul(a: int | None, b: int | None) -> int | None:
    return a * b if a is not None and b is not None else None
