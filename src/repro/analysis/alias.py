"""Pointer (memref) alias analysis.

The paper (section 5.2.1) finds all pointers to remotable objects via
forward SSA dataflow plus type-based alias analysis.  Here every
memref-typed SSA value is mapped to the set of allocation sites it may
reference, propagated to a fixpoint through loop-carried values, branches,
and calls (context-insensitive).

The analysis is *sound in the paper's sense*: a value's site set may
over-approximate, never under-approximate.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.ir.core import Function, Module, Operation, Value
from repro.ir.dialects import arith, func as func_d, memref, remotable, rmem, scf
from repro.ir.types import IRType, MemRefType


@dataclass(frozen=True)
class AllocSite:
    """One allocation site (a memref.alloc / remotable.alloc op)."""

    uid: int
    name: str
    function: str
    num_elems: int
    elem_type: IRType

    @property
    def size_bytes(self) -> int:
        return self.num_elems * self.elem_type.byte_size

    def __str__(self) -> str:
        return self.name or f"site{self.uid}"


class AliasAnalysis:
    """Maps memref SSA values to the alloc sites they may point to."""

    def __init__(self, module: Module) -> None:
        self.module = module
        self.sites: list[AllocSite] = []
        self.site_by_op: dict[int, AllocSite] = {}
        self._points_to: dict[int, frozenset[AllocSite]] = {}
        self._run()

    def points_to(self, value: Value) -> frozenset[AllocSite]:
        """Alloc sites ``value`` may reference (empty for non-memrefs)."""
        return self._points_to.get(value.uid, frozenset())

    def site_named(self, name: str) -> AllocSite:
        for site in self.sites:
            if site.name == name:
                return site
        raise KeyError(f"no allocation site named {name!r}")

    def values_of_site(self, site: AllocSite) -> list[Value]:
        """All memref values that may reference ``site``."""
        out = []
        for fn in self.module.functions.values():
            for v in _all_values(fn):
                if site in self.points_to(v):
                    out.append(v)
        return out

    # -- fixpoint -------------------------------------------------------------

    def _run(self) -> None:
        # seed: allocation ops
        for fn in self.module.functions.values():
            for op in fn.walk():
                if isinstance(op, (memref.AllocOp, remotable.RAllocOp)):
                    site = AllocSite(
                        uid=op.result.uid,
                        name=op.alloc_name,
                        function=fn.name,
                        num_elems=op.num_elems,
                        elem_type=op.result.type.elem,
                    )
                    self.sites.append(site)
                    self.site_by_op[id(op)] = site
                    self._points_to[op.result.uid] = frozenset([site])
        # propagate to fixpoint through copies, control flow, and calls
        changed = True
        while changed:
            changed = False
            for fn in self.module.functions.values():
                for op in fn.walk():
                    changed |= self._transfer(fn, op)

    def _union_into(self, dst: Value, srcs: list[Value]) -> bool:
        if not isinstance(dst.type, MemRefType):
            return False
        combined: frozenset[AllocSite] = self._points_to.get(dst.uid, frozenset())
        before = combined
        for s in srcs:
            combined = combined | self._points_to.get(s.uid, frozenset())
        if combined != before:
            self._points_to[dst.uid] = combined
            return True
        return False

    def _transfer(self, fn: Function, op: Operation) -> bool:
        changed = False
        if isinstance(op, arith.SelectOp):
            changed |= self._union_into(op.result, [op.operands[1], op.operands[2]])
        elif isinstance(op, scf.ForOp):
            term = op.body.terminator
            yields = list(term.operands) if term is not None else []
            for i, body_arg in enumerate(op.body_iter_args):
                srcs = [op.iter_args[i]] + ([yields[i]] if i < len(yields) else [])
                changed |= self._union_into(body_arg, srcs)
            for i, res in enumerate(op.results):
                srcs = [op.iter_args[i]] + ([yields[i]] if i < len(yields) else [])
                changed |= self._union_into(res, srcs)
        elif isinstance(op, scf.WhileOp):
            cond = op.before.terminator
            fwd = list(cond.forwarded) if cond is not None else []
            body_term = op.after.terminator
            yields = list(body_term.operands) if body_term is not None else []
            for i, barg in enumerate(op.before.args):
                srcs = [op.init_args[i]] + ([yields[i]] if i < len(yields) else [])
                changed |= self._union_into(barg, srcs)
            for i, aarg in enumerate(op.after.args):
                if i < len(fwd):
                    changed |= self._union_into(aarg, [fwd[i]])
            for i, res in enumerate(op.results):
                if i < len(fwd):
                    changed |= self._union_into(res, [fwd[i]])
        elif isinstance(op, scf.IfOp):
            then_t, else_t = op.then_block.terminator, op.else_block.terminator
            for i, res in enumerate(op.results):
                srcs = []
                if then_t is not None and i < len(then_t.operands):
                    srcs.append(then_t.operands[i])
                if else_t is not None and i < len(else_t.operands):
                    srcs.append(else_t.operands[i])
                changed |= self._union_into(res, srcs)
        elif isinstance(op, (func_d.CallOp, rmem.OffloadCallOp)):
            callee = self.module.functions.get(op.callee)
            if callee is not None:
                for formal, actual in zip(callee.args, op.operands):
                    changed |= self._union_into(formal, [actual])
                ret = callee.body.terminator
                if ret is not None:
                    for res, rv in zip(op.results, ret.operands):
                        changed |= self._union_into(res, [rv])
        return changed


def _all_values(fn: Function):
    yield from fn.args
    for op in fn.walk():
        yield from op.results
        for region in op.regions:
            for block in region.blocks:
                yield from block.args
