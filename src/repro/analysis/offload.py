"""Function-offloading analysis (paper section 4.8).

A function is an offload *candidate* when it has no shared writable data
beyond its remotable arguments (the paper's restriction).  Among
candidates, offload pays off when:

    rpc + far_compute(= compute * slowdown)
        <  local_compute + network_time_for_its_far_data

i.e. for computation-light functions whose data already lives in far
memory.  Compute and traffic come from profiling (the co-design: static
candidacy, profiled decision).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.alias import AliasAnalysis
from repro.ir.core import Function, Module
from repro.ir.dialects import memref, remotable, rmem
from repro.ir.types import MemRefType
from repro.memsim.cost_model import CostModel
from repro.runtime.profiler import Profiler


@dataclass
class OffloadDecision:
    function: str
    candidate: bool
    offload: bool
    local_ns: float = 0.0
    far_ns: float = 0.0
    reason: str = ""


def is_offload_candidate(fn: Function, module: Module) -> bool:
    """Static candidacy: the function touches only its (remotable)
    arguments, values it defines itself, and locally allocated objects --
    no writable shared state (section 4.8)."""
    if fn.name == "main":
        return False
    writes_non_arg = False
    for op in fn.walk():
        if isinstance(op, (memref.AllocOp, remotable.RAllocOp)):
            continue  # locally allocated and released is fine
        if isinstance(op, (memref.StoreOp, rmem.RStoreOp)):
            ref = op.ref
            if ref not in fn.args and not _locally_allocated(ref):
                writes_non_arg = True
    # every memref parameter must be remote-capable for the far node to
    # see the data without extra copies
    for arg in fn.args:
        if isinstance(arg.type, MemRefType) and not arg.type.remote:
            return False
    return not writes_non_arg


def _locally_allocated(ref) -> bool:
    from repro.ir.dialects import memref as memref_d
    from repro.ir.dialects import remotable as remotable_d

    return isinstance(ref.producer, (memref_d.AllocOp, remotable_d.RAllocOp))


def decide_offload(
    fn: Function,
    module: Module,
    cost: CostModel,
    profiler: Profiler,
    far_traffic_bytes: float,
) -> OffloadDecision:
    """Profile-guided offload decision for one candidate function."""
    if not is_offload_candidate(fn, module):
        return OffloadDecision(fn.name, False, False, reason="not a candidate")
    prof = profiler.functions.get(fn.name)
    if prof is None or prof.calls == 0:
        return OffloadDecision(fn.name, True, False, reason="never profiled")
    per_call_exec = (prof.inclusive_ns - prof.inclusive_runtime_ns) / prof.calls
    per_call_runtime = prof.inclusive_runtime_ns / prof.calls
    local_ns = per_call_exec + per_call_runtime
    far_ns = (
        cost.rpc_ns
        + cost.transfer_ns(int(far_traffic_bytes))
        + per_call_exec * cost.far_cpu_slowdown
    )
    return OffloadDecision(
        fn.name,
        candidate=True,
        offload=far_ns < local_ns,
        local_ns=local_ns,
        far_ns=far_ns,
        reason=f"local {local_ns:.0f}ns vs far {far_ns:.0f}ns",
    )
