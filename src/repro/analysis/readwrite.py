"""Read-only / write-only scope detection (paper section 4.5).

"If a loop only contains read operations, we can safely discard the local
cached objects after the loop.  If it only contains writes that cover
whole cache lines, we can avoid fetching the objects from far memory."
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.access import AccessPattern, AccessSummary, analyze_scope
from repro.analysis.alias import AliasAnalysis, AllocSite
from repro.ir.dialects import scf


@dataclass
class ReadWriteInfo:
    site: AllocSite
    read_only: bool
    write_only: bool
    #: write-only AND sequential whole-element stores: every line the
    #: section allocates will be fully overwritten, so no fetch is needed
    full_line_writes: bool


def readwrite_info(
    loop: scf.ForOp, alias: AliasAnalysis
) -> dict[AllocSite, ReadWriteInfo]:
    out: dict[AllocSite, ReadWriteInfo] = {}
    for site, summary in analyze_scope(loop, alias).items():
        out[site] = ReadWriteInfo(
            site=site,
            read_only=summary.read_only,
            write_only=summary.write_only,
            full_line_writes=_full_line_writes(summary),
        )
    return out


def _full_line_writes(summary: AccessSummary) -> bool:
    if not summary.write_only:
        return False
    if summary.pattern is not AccessPattern.SEQUENTIAL:
        return False
    # whole elements must be stored (not single fields of structs)
    return all(
        r.field is None or r.granularity == summary.site.elem_type.byte_size
        for r in summary.records
    )
