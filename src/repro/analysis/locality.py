"""Cache-structure and line-size choice (paper section 4.2, decisions
marked 2 and 3 in Fig. 3).

Line size: no larger than the access granularity for non-contiguous
patterns (avoid amplification); as large as the network transmits
efficiently for contiguous patterns (amortize the per-dereference cost).

Structure: sequential/strided -> directly mapped (no conflicts by
construction); indirect with an identifiable locality set -> K-way set
associative with K sized to the expected conflicts; otherwise fully
associative.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.access import AccessPattern, AccessSummary
from repro.cache.config import Structure
from repro.memsim.cost_model import CostModel

#: the network transmits up to this much efficiently in one message (the
#: knee in Fig. 9: beyond ~2 KB the wire time dominates the RTT savings)
MAX_EFFICIENT_LINE = 2048
MIN_LINE = 64


def choose_line_size(summary: AccessSummary, cost: CostModel) -> int:
    """Cache-line size for a section holding this object."""
    gran = max(summary.accessed_bytes_per_elem(), 1)
    if summary.max_granularity() > MAX_EFFICIENT_LINE:
        # coarse range touches (layer-granularity code): large lines
        return MAX_EFFICIENT_LINE
    if summary.pattern in (AccessPattern.SEQUENTIAL, AccessPattern.INVARIANT):
        # contiguous: grow the line while the marginal wire time stays
        # small relative to the saved round trips
        line = MIN_LINE
        while line < MAX_EFFICIENT_LINE and line < summary.site.size_bytes:
            line *= 2
        return max(line, _round_up_pow2(gran))
    if summary.pattern is AccessPattern.STRIDED:
        stride_bytes = abs(summary.stride_elems or 1) * summary.site.elem_type.byte_size
        if stride_bytes >= MIN_LINE:
            # elements far apart: one element per line avoids amplification
            return _round_up_pow2(gran)
        return MAX_EFFICIENT_LINE
    # indirect / random: the smallest line that holds the accessed unit
    return max(MIN_LINE, _round_up_pow2(gran))


@dataclass
class StructureChoice:
    structure: Structure
    ways: int = 8
    reason: str = ""


def choose_structure(
    summary: AccessSummary, section_bytes: int, line_size: int
) -> StructureChoice:
    """Cache-section structure from the analyzed access sequence."""
    if summary.pattern in (
        AccessPattern.SEQUENTIAL,
        AccessPattern.STRIDED,
        AccessPattern.INVARIANT,
    ):
        return StructureChoice(
            Structure.DIRECT, reason="sequential/strided: no conflicts"
        )
    if summary.pattern is AccessPattern.INDIRECT and summary.index_sources:
        # locality set identifiable: the index values live in a known
        # array, so the reachable set is bounded by the target object;
        # estimate conflicts under K-way mapping
        num_lines = max(1, section_bytes // line_size)
        target_lines = max(1, summary.site.size_bytes // line_size)
        pressure = target_lines / num_lines
        if pressure <= 1.0:
            ways = 2
        elif pressure <= 4.0:
            ways = 4
        else:
            ways = 8
        return StructureChoice(
            Structure.SET_ASSOCIATIVE,
            ways=ways,
            reason=f"indirect with bounded locality set (pressure {pressure:.1f})",
        )
    return StructureChoice(
        Structure.FULLY_ASSOCIATIVE, reason="no identifiable locality set"
    )


def choose_path(summary: AccessSummary, cost: CostModel) -> str:
    """Initial data path for a section group under the hybrid system.

    Cost-model-driven: compare the amortized per-access cost of the two
    paths for the *observed* pattern.  A dense forward stream faults once
    per ``PAGE_SIZE/stride`` accesses on the swap path and its hits are
    free (no per-access lookup), while the object path pays the section
    lookup on every access plus a line fetch per ``line/stride`` -- so
    small strides favor swap and everything else (indirect, random,
    reused) starts on the object path the planner configured.  The
    runtime may still switch the group online if the windowed signals
    disagree (:mod:`repro.cache.hybrid`).
    """
    if summary.pattern not in (AccessPattern.SEQUENTIAL, AccessPattern.STRIDED):
        return "object"
    from repro.memsim.address import PAGE_SIZE

    elem = max(1, summary.site.elem_type.byte_size)
    if summary.pattern is AccessPattern.STRIDED:
        stride = abs(summary.stride_elems or 1) * elem
    else:
        stride = elem
    if stride <= 0 or stride >= PAGE_SIZE:
        return "object"
    # swap: one kernel page fetch per page's worth of accesses, hits free
    swap_ns = cost.page_fetch_ns(PAGE_SIZE) * stride / PAGE_SIZE
    # object: per-access lookup plus one line fetch per line's worth
    line = MAX_EFFICIENT_LINE
    object_ns = cost.hit_overhead_direct_ns + (
        cost.one_sided_ns(line) + cost.insert_overhead_ns
    ) * stride / line
    return "swap" if swap_ns <= object_ns else "object"


def _round_up_pow2(n: int) -> int:
    p = 1
    while p < n:
        p *= 2
    return p
