"""Static program analysis (paper sections 4.2, 5.2).

* :mod:`repro.analysis.alias` -- SSA forward dataflow + type-based alias
  analysis mapping every memref value to its allocation sites;
* :mod:`repro.analysis.scev` -- scalar evolution of index expressions
  within loops;
* :mod:`repro.analysis.access` -- per-scope, per-object access-pattern
  classification (sequential / strided / indirect / invariant / unknown);
* :mod:`repro.analysis.lifetime` -- first/last-access intervals per object;
* :mod:`repro.analysis.locality` -- cache-structure and line-size choice;
* :mod:`repro.analysis.dependence` -- adjacent-loop fusion legality;
* :mod:`repro.analysis.readwrite` -- read-only/write-only scope detection;
* :mod:`repro.analysis.offload` -- compute-vs-communication offload choice.
"""

from repro.analysis.access import AccessPattern, AccessSummary, analyze_scope
from repro.analysis.alias import AliasAnalysis, AllocSite
from repro.analysis.lifetime import LifetimeAnalysis, LifetimeInterval
from repro.analysis.scev import SCEV, Affine, Indirect, Invariant, Unknown, scev_of

__all__ = [
    "AccessPattern",
    "AccessSummary",
    "analyze_scope",
    "AliasAnalysis",
    "AllocSite",
    "LifetimeAnalysis",
    "LifetimeInterval",
    "SCEV",
    "Affine",
    "Indirect",
    "Invariant",
    "Unknown",
    "scev_of",
]
