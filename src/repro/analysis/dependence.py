"""Loop dependence analysis for data-access batching (paper section 4.5).

Batching fuses adjacent loops so their arrays can be fetched in one
scatter-gather message ("when we identify two arrays to be accessed by two
adjacent loops, we fuse the loops and batch access the two arrays").

Fusion here is the *sound* subset: identical literal bounds and step, and
no memory dependence between the loops -- no site written in one loop is
accessed in the other, and loop-carried values do not flow between them.
"""

from __future__ import annotations

from repro.analysis.access import analyze_scope
from repro.analysis.alias import AliasAnalysis
from repro.ir.core import Function
from repro.ir.dialects import arith
from repro.ir.dialects import scf


def _literal_bounds(loop: scf.ForOp) -> tuple[int, int, int] | None:
    vals = []
    for v in (loop.lb, loop.ub, loop.step):
        prod = v.producer
        if not isinstance(prod, arith.ConstantOp):
            return None
        vals.append(int(prod.value))
    return tuple(vals)  # type: ignore[return-value]


def can_fuse(a: scf.ForOp, b: scf.ForOp, alias: AliasAnalysis) -> bool:
    """Is it sound to fuse loop ``b`` into loop ``a``?"""
    ba, bb = _literal_bounds(a), _literal_bounds(b)
    if ba is None or bb is None or ba != bb:
        return False
    if a.iter_args or b.iter_args:
        # loop-carried reductions can still fuse: their carried values are
        # independent as long as b does not use a's results
        a_results = set(r.uid for r in a.results)
        for op in b.walk():
            if any(v.uid in a_results for v in op.operands):
                return False
    summaries_a = analyze_scope(a, alias)
    summaries_b = analyze_scope(b, alias)
    for site, sa in summaries_a.items():
        sb = summaries_b.get(site)
        if sb is None:
            continue
        if sa.writes or sb.writes:
            return False
    return True


#: ops that may sit between two loops without blocking fusion (pure,
#: memory-free; the fused loop is placed at the second loop's position, so
#: these stay before it)
_PURE_OPS = (arith.ConstantOp, arith.BinaryOp, arith.CmpOp, arith.CastOp,
             arith.SelectOp)


def adjacent_fusable_pairs(
    fn: Function, alias: AliasAnalysis
) -> list[tuple[scf.ForOp, scf.ForOp]]:
    """(a, b) pairs of adjacent top-level loops that may fuse.  Loops
    count as adjacent when only pure scalar ops (that do not consume a's
    results) sit between them."""
    out = []
    ops = fn.body.ops
    for i, a in enumerate(ops):
        if not isinstance(a, scf.ForOp):
            continue
        a_results = {r.uid for r in a.results}
        for j in range(i + 1, len(ops)):
            mid = ops[j]
            if isinstance(mid, scf.ForOp):
                if can_fuse(a, mid, alias):
                    out.append((a, mid))
                break
            if not isinstance(mid, _PURE_OPS):
                break
            if any(v.uid in a_results for v in mid.operands):
                break
    return out
