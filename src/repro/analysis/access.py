"""Per-scope access-pattern analysis (paper section 4.2).

For a loop (the analysis scope), every load/store/touch is attributed to
the allocation sites its reference may alias, its index is classified by
scalar evolution, and per-site summaries are combined into the pattern the
planner configures a cache section from.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.analysis.alias import AliasAnalysis, AllocSite
from repro.analysis.scev import Affine, Indirect, Invariant, SCEV, Unknown, scev_of
from repro.ir.core import Function, Operation
from repro.ir.dialects import memref, rmem, scf


class AccessPattern(enum.Enum):
    SEQUENTIAL = "sequential"
    STRIDED = "strided"
    INDIRECT = "indirect"
    INVARIANT = "invariant"
    RANDOM = "random"  # unknown / unclassifiable (sound fallback)
    MIXED = "mixed"


@dataclass
class AccessRecord:
    """One memory operation within the scope."""

    op: Operation
    site: AllocSite
    scev: SCEV
    is_write: bool
    field: str | None
    #: bytes per access (element, field, or touch length)
    granularity: int


@dataclass
class AccessSummary:
    """Everything the planner needs to know about one object in one scope."""

    site: AllocSite
    records: list[AccessRecord] = field(default_factory=list)
    pattern: AccessPattern = AccessPattern.RANDOM
    stride_elems: int | None = None
    #: for INDIRECT: the alloc sites of the array(s) the index is loaded from
    index_sources: list[AllocSite] = field(default_factory=list)
    #: scope is an scf.parallel whose iterations partition the object:
    #: affine writes there are shared-nothing, not shared (section 4.6)
    parallel_scope: bool = False

    @property
    def reads(self) -> int:
        return sum(1 for r in self.records if not r.is_write)

    @property
    def writes(self) -> int:
        return sum(1 for r in self.records if r.is_write)

    @property
    def read_only(self) -> bool:
        return self.writes == 0 and self.reads > 0

    @property
    def write_only(self) -> bool:
        return self.reads == 0 and self.writes > 0

    def fields_accessed(self) -> set[str | None]:
        return {r.field for r in self.records}

    def accessed_bytes_per_elem(self) -> int:
        """Bytes of one element actually touched (selective transmission:
        the sum of accessed field sizes, capped at the element size)."""
        fields = self.fields_accessed()
        if None in fields:
            return self.site.elem_type.byte_size
        total = sum(self.site.elem_type.field_type(f).byte_size for f in fields)
        return min(total, self.site.elem_type.byte_size)

    def max_granularity(self) -> int:
        return max((r.granularity for r in self.records), default=0)


#: loop-like scopes the analyses understand
LOOP_OPS = (scf.ForOp, scf.ParallelOp)


def analyze_scope(
    loop: "scf.ForOp | scf.ParallelOp", alias: AliasAnalysis
) -> dict[AllocSite, AccessSummary]:
    """Analyze all memory operations in (and nested under) ``loop``."""
    is_parallel = isinstance(loop, scf.ParallelOp)
    summaries: dict[AllocSite, AccessSummary] = {}
    for op in loop.walk():
        rec_info = _record_of(op, loop, alias)
        if rec_info is None:
            continue
        ref_value, index_scev, is_write, fld, gran = rec_info
        for site in alias.points_to(ref_value):
            rec = AccessRecord(op, site, index_scev, is_write, fld, gran)
            summary = summaries.setdefault(
                site, AccessSummary(site, parallel_scope=is_parallel)
            )
            summary.records.append(rec)
    for summary in summaries.values():
        _classify(summary, alias)
    return summaries


def _record_of(op: Operation, loop: scf.ForOp, alias: AliasAnalysis):
    if op.attrs.get("prefetch_stage"):
        return None  # compiler-inserted helper, not program behaviour
    if isinstance(op, (memref.LoadOp, rmem.RLoadOp)):
        gran = _gran(op)
        return op.ref, scev_of(op.index, loop), False, op.field, gran
    if isinstance(op, (memref.StoreOp, rmem.RStoreOp)):
        gran = _gran(op)
        return op.ref, scev_of(op.index, loop), True, op.field, gran
    if isinstance(op, (memref.TouchOp, rmem.RTouchOp)):
        return op.ref, scev_of(op.start, loop), op.is_write, None, op.length
    return None


def _gran(op) -> int:
    ref_type = op.ref.type
    if op.field is None:
        return ref_type.elem.byte_size
    return ref_type.elem.field_type(op.field).byte_size


def _classify(summary: AccessSummary, alias: AliasAnalysis) -> None:
    kinds: set[str] = set()
    strides: set[int] = set()
    sources: list[AllocSite] = []
    for rec in summary.records:
        s = rec.scev
        if isinstance(s, Affine):
            if s.coeff == 0:
                kinds.add("invariant")
            elif abs(s.coeff) == 1:
                kinds.add("sequential")
                strides.add(s.coeff)
            else:
                kinds.add("strided")
                strides.add(s.coeff)
        elif isinstance(s, Indirect):
            kinds.add("indirect")
            for src in alias.points_to(s.source_load.operands[0]):
                if src not in sources:
                    sources.append(src)
        elif isinstance(s, Invariant):
            kinds.add("invariant")
        else:
            kinds.add("random")
    summary.index_sources = sources
    effective = kinds - {"invariant"} or kinds
    if len(effective) == 1:
        summary.pattern = {
            "sequential": AccessPattern.SEQUENTIAL,
            "strided": AccessPattern.STRIDED,
            "indirect": AccessPattern.INDIRECT,
            "invariant": AccessPattern.INVARIANT,
            "random": AccessPattern.RANDOM,
        }[next(iter(effective))]
    elif effective <= {"sequential", "strided"}:
        summary.pattern = AccessPattern.STRIDED
    else:
        summary.pattern = AccessPattern.MIXED
    if len(strides) == 1:
        summary.stride_elems = next(iter(strides))


def innermost_loops(fn: Function) -> list[scf.ForOp]:
    """All loops in a function that contain no nested scf.for."""
    out = []
    for op in fn.walk():
        if isinstance(op, scf.ForOp):
            if not any(
                isinstance(inner, scf.ForOp) and inner is not op for inner in op.walk()
            ):
                out.append(op)
    return out


def top_level_loops(fn: Function) -> list[scf.ForOp]:
    """Loops directly in the function body (the usual analysis scopes)."""
    return [op for op in fn.body.ops if isinstance(op, scf.ForOp)]
