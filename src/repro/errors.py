"""Exception hierarchy for the Mira reproduction.

All library-raised exceptions derive from :class:`MiraError` so callers can
catch everything from this package with a single ``except`` clause.
"""


class MiraError(Exception):
    """Base class for all errors raised by this package."""


class IRError(MiraError):
    """Malformed IR: verification failures, bad operand types, etc."""


class VerificationError(IRError):
    """An IR module failed structural verification."""


class InterpreterError(MiraError):
    """The interpreter hit an illegal state (bad value, missing func, ...)."""


class MemoryError_(MiraError):
    """Memory-system misuse: unknown object, out-of-bounds access, ..."""


class AllocationError(MemoryError_):
    """An allocation could not be satisfied (e.g. AIFM metadata overflow)."""


class ConfigError(MiraError):
    """Invalid cache/section/system configuration."""


class SolverError(MiraError):
    """The section-size ILP had no feasible solution."""


class TraceError(MiraError):
    """Trace frontend misuse (repro.workloads.trace)."""


class TraceFormatError(TraceError):
    """A raw trace file (CSV/JSONL) could not be parsed."""


class ReplayDivergence(TraceError):
    """A replayed trace drifted from the recorded run: the replay clock
    overtook a recorded entry time, an object id came back different, or
    the trace contains events replay cannot reproduce (thread forks,
    injected faults, degradation)."""


class OffloadError(MiraError):
    """A function could not be offloaded (shared writable data, ...)."""


class ObsError(MiraError):
    """Observability-layer misuse: a metric name re-registered under a
    conflicting type, an invalid telemetry window or SLO spec, ..."""
