"""Circuit breaker over virtual time.

Classic three-state breaker, but every timestamp is a virtual-clock
reading: after ``threshold`` consecutive failures the breaker opens and
network ops fail fast (no injection, no retries, just the transfer at
whatever the degraded link costs); after ``cooldown_ns`` of virtual time
a single half-open probe is allowed through -- success closes the
breaker, failure re-opens it for another cooldown.
"""

from __future__ import annotations

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"


class CircuitBreaker:
    __slots__ = ("threshold", "cooldown_ns", "state", "failures", "opened_at", "trips")

    def __init__(self, threshold: int, cooldown_ns: float) -> None:
        self.threshold = threshold
        self.cooldown_ns = cooldown_ns
        self.state = CLOSED
        #: consecutive failures since the last success
        self.failures = 0
        self.opened_at = 0.0
        #: times the breaker transitioned closed/half-open -> open
        self.trips = 0

    def allows(self, now: float) -> bool:
        """May an op attempt delivery at virtual time ``now``?"""
        if self.state is CLOSED:
            return True
        if self.state is OPEN:
            if now - self.opened_at >= self.cooldown_ns:
                self.state = HALF_OPEN
                return True
            return False
        return True  # half-open: the probe is in flight

    def record_success(self) -> None:
        self.failures = 0
        self.state = CLOSED

    def record_failure(self, now: float) -> bool:
        """Count one failure; returns True iff the breaker just tripped."""
        self.failures += 1
        if self.state is HALF_OPEN or self.failures >= self.threshold:
            self.state = OPEN
            self.opened_at = now
            self.failures = 0
            self.trips += 1
            return True
        return False
