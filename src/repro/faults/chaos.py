"""Chaos harness: run the paper workloads under a matrix of fault plans.

This is the robustness counterpart of ``benchmarks/perf_smoke.py``: each
*chaos point* runs one workload on one memory system twice -- once on a
healthy machine, once under a seeded :class:`~repro.faults.FaultPlan` --
verifies the faulty run still produces correct results, and reports the
slowdown plus everything the reliability layer did (retries, giveups,
breaker trips, degradations).

Kept separate from :mod:`repro.faults` proper because it pulls in the
bench/core layers, which depend back on memsim; import it as
``repro.faults.chaos``.  ``benchmarks/chaos_smoke.py`` and the tier-1
chaos tests are thin wrappers over :func:`run_chaos_matrix`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.bench.harness import BASELINE_SYSTEMS, ModuleMemo
from repro.core import MiraController, run_on_baseline, run_plan
from repro.faults.plan import FaultPlan
from repro.memsim.cost_model import CostModel
from repro.obs import Tracer
from repro.workloads import make_workload

#: small but structurally faithful instances of the five paper workloads
#: (sized for a harness that runs each point twice, healthy + faulty)
CHAOS_WORKLOADS: dict[str, dict] = {
    "graph_traversal": {"num_edges": 900, "num_nodes": 300},
    "dataframe": {"num_rows": 1024},
    "gpt2": {
        "layers": 2,
        "d_model": 32,
        "seq_len": 16,
        "batch": 1,
        "passes": 1,
        "warmup_passes": 1,
    },
    "mcf": {"num_nodes": 1024, "num_arcs": 1024, "iterations": 1, "chases": 16},
    "array_sum": {"num_elems": 2048},
}

#: a faulty run should never beat the healthy one by more than float noise,
#: and a *bounded* factor above it is the harness's robustness criterion
DEFAULT_MAX_SLOWDOWN = 10.0


@dataclass
class ChaosPoint:
    """Outcome of one (workload, system, plan) cell."""

    workload: str
    system: str
    seed: int
    intensity: str
    completed: bool
    healthy_ns: float
    faulty_ns: float
    slowdown: float
    #: snapshot of :class:`repro.faults.FaultStats` after the faulty run
    faults: dict = field(default_factory=dict)
    #: the cache manager's ``degrade_log`` (empty for baselines)
    degrades: list = field(default_factory=list)
    trace_digest: str | None = None

    def ok(self, max_slowdown: float = DEFAULT_MAX_SLOWDOWN) -> bool:
        return self.completed and self.slowdown <= max_slowdown

    def row(self) -> dict:
        """JSON-ready summary row."""
        return {
            "workload": self.workload,
            "system": self.system,
            "seed": self.seed,
            "intensity": self.intensity,
            "completed": self.completed,
            "healthy_ns": self.healthy_ns,
            "faulty_ns": self.faulty_ns,
            "slowdown": round(self.slowdown, 3),
            "retries": self.faults.get("retries", 0),
            "giveups": self.faults.get("giveups", 0),
            "breaker_trips": self.faults.get("breaker_trips", 0),
            "degrades": len(self.degrades),
        }


def default_matrix(
    seeds=(1, 2), intensities=("light", "medium"), horizon_ns: float = 2e7
) -> list[FaultPlan]:
    """The standard plan matrix: |seeds| x |intensities| seeded plans.

    The horizon is sized so degradation windows actually overlap these
    small workloads' runtimes (~1e7 virtual ns under memory pressure).
    """
    return [
        FaultPlan.generate(seed, intensity=intensity, horizon_ns=horizon_ns)
        for intensity in intensities
        for seed in seeds
    ]


def _plan_intensity(plan: FaultPlan) -> str:
    for name, (loss, timeout, _) in FaultPlan.INTENSITIES.items():
        if plan.loss_prob == loss and plan.timeout_prob == timeout:
            return name
    return "custom"


def _make_runner(memo, workload, system, cost, local):
    """A closure running the workload once on ``system``; for Mira the
    controller plans once against a healthy machine and the planned
    program is reused for both runs -- the graceful-degradation scenario
    is the *runtime* adapting a plan the compiler made in good faith."""
    if system == "mira":
        controller = MiraController(
            memo.fresh,
            cost,
            local,
            data_init=workload.data_init,
            entry=workload.entry,
            max_iterations=1,
        )
        module = controller.optimize().module

        def run(plan, tracer):
            return run_plan(
                module,
                cost,
                local,
                data_init=workload.data_init,
                entry=workload.entry,
                tracer=tracer,
                faults=plan,
            )

        return run
    cls = BASELINE_SYSTEMS[system]

    def run(plan, tracer):
        return run_on_baseline(
            memo.module,
            cls(cost, local),
            workload.data_init,
            entry=workload.entry,
            tracer=tracer,
            faults=plan,
        )

    return run


def run_chaos_point(
    name: str,
    system: str,
    plan: FaultPlan,
    params: dict | None = None,
    ratio: float = 0.25,
    cost: CostModel | None = None,
    trace: bool = False,
) -> ChaosPoint:
    """One cell: healthy run, faulty run, verification, bookkeeping."""
    cost = cost or CostModel()
    workload = make_workload(name, **(params or CHAOS_WORKLOADS[name]))
    memo = ModuleMemo(workload)
    local = max(4096, int(memo.footprint_bytes * ratio))
    run = _make_runner(memo, workload, system, cost, local)
    healthy = run(None, None)
    tracer = Tracer(meta={"workload": name, "chaos_seed": plan.seed}) if trace else None
    faulty = run(plan, tracer)
    workload.verify_results(faulty.results)  # raises if the run corrupted data
    injector = faulty.memsys.network.faults
    return ChaosPoint(
        workload=name,
        system=system,
        seed=plan.seed,
        intensity=_plan_intensity(plan),
        completed=True,
        healthy_ns=healthy.elapsed_ns,
        faulty_ns=faulty.elapsed_ns,
        slowdown=(
            faulty.elapsed_ns / healthy.elapsed_ns if healthy.elapsed_ns else 1.0
        ),
        faults=vars(injector.stats).copy() if injector is not None else {},
        degrades=list(getattr(faulty.memsys, "degrade_log", [])),
        trace_digest=tracer.digest() if tracer is not None else None,
    )


def run_chaos_matrix(
    workloads=None,
    systems=("fastswap", "mira"),
    plans=None,
    ratio: float = 0.25,
    cost: CostModel | None = None,
    max_slowdown: float = DEFAULT_MAX_SLOWDOWN,
) -> tuple[list[ChaosPoint], list[str]]:
    """Sweep the matrix; returns ``(points, violations)``.

    ``violations`` holds one human-readable line per cell that failed to
    complete or blew past ``max_slowdown``; an empty list means the
    robustness criterion held everywhere.
    """
    points: list[ChaosPoint] = []
    violations: list[str] = []
    for name in workloads if workloads is not None else sorted(CHAOS_WORKLOADS):
        for system in systems:
            for plan in plans if plans is not None else default_matrix():
                try:
                    point = run_chaos_point(
                        name, system, plan, ratio=ratio, cost=cost
                    )
                except Exception as e:  # a crash is the worst violation
                    violations.append(
                        f"{name}/{system}/seed={plan.seed}: crashed: {e!r}"
                    )
                    continue
                points.append(point)
                if not point.ok(max_slowdown):
                    violations.append(
                        f"{name}/{system}/seed={plan.seed}: "
                        f"slowdown {point.slowdown:.2f}x exceeds "
                        f"{max_slowdown:.1f}x bound"
                    )
    return points, violations
