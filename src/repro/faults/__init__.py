"""repro.faults: seeded, deterministic fault injection for the simulator.

Build a :class:`FaultPlan` (directly or via :meth:`FaultPlan.generate`),
pass it as ``faults=`` to :func:`repro.core.run_plan` /
:func:`repro.core.run_on_baseline` (or call
``memsys.enable_faults(plan)`` yourself), and the run experiences message
loss, timeouts, link-degradation windows, and far-node slowdowns -- all
reproducible from the seed, on either execution engine, with identical
traces.

The chaos harness lives in :mod:`repro.faults.chaos` (imported lazily
here: it depends on the bench/core layers, which depend back on memsim).
"""

from repro.faults.inject import FaultInjector, FaultStats
from repro.faults.plan import FarWindow, FaultPlan, LinkWindow
from repro.faults.reliability import CircuitBreaker

__all__ = [
    "CircuitBreaker",
    "FarWindow",
    "FaultInjector",
    "FaultPlan",
    "FaultStats",
    "LinkWindow",
]
