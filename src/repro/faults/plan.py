"""Deterministic fault plans.

A :class:`FaultPlan` is a frozen, seeded description of everything that
can go wrong on the far-memory path during one run:

* **transient message loss** -- a network op's message vanishes; the
  sender detects it only after the per-op timeout;
* **timeout episodes** -- the op completes remotely but the completion is
  delayed past the timeout, which to the sender is indistinguishable
  from loss (both are detected-and-retried);
* **link-degradation windows** -- intervals of virtual time during which
  wire time and/or RTT are scaled up (congestion, failover to a slower
  path);
* **far-node slowdown windows** -- intervals during which the far node's
  CPU is further slowed (affects two-sided messages, RPCs, offloads).

Everything is derived from ``random.Random(seed)`` so a plan -- and every
run under it -- is exactly reproducible: the injector consumes the RNG
only inside shared :class:`~repro.memsim.network.Network` operations,
which both execution engines call in identical order, so engine parity
holds with faults enabled (``tests/test_engine_parity.py`` enforces it).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace

from repro.errors import ConfigError
from repro.memsim.cost_model import CostModel


@dataclass(frozen=True)
class LinkWindow:
    """A link-degradation episode: wire/RTT scaled while it is active."""

    start_ns: float
    end_ns: float
    #: wire-time multiplier (>= 1; 4.0 means a quarter of the bandwidth)
    bw_scale: float = 1.0
    #: round-trip-latency multiplier (>= 1)
    rtt_scale: float = 1.0

    def active(self, now: float) -> bool:
        return self.start_ns <= now < self.end_ns


@dataclass(frozen=True)
class FarWindow:
    """A far-node slowdown episode: remote CPU work scaled while active."""

    start_ns: float
    end_ns: float
    #: extra far-CPU slowdown multiplier (>= 1), on top of
    #: :attr:`CostModel.far_cpu_slowdown`
    slowdown: float = 1.0

    def active(self, now: float) -> bool:
        return self.start_ns <= now < self.end_ns


def _check_window(w, what: str) -> None:
    if w.end_ns <= w.start_ns:
        raise ConfigError(f"{what} window must have end_ns > start_ns: {w}")


@dataclass(frozen=True)
class FaultPlan:
    """Seeded, immutable fault schedule for one run.

    Probabilities apply per synchronous network operation (and once per
    async issue); window scales apply to whatever transfers overlap them
    in virtual time.  The reliability knobs (timeout, retry budget,
    backoff, breaker) describe how the *runtime* responds -- they live on
    the plan so a single object fully determines a chaos scenario.
    """

    seed: int = 0
    #: per-op probability that the message is lost outright
    loss_prob: float = 0.0
    #: per-op probability of a timeout episode (late completion)
    timeout_prob: float = 0.0
    link_windows: tuple[LinkWindow, ...] = ()
    far_windows: tuple[FarWindow, ...] = ()
    #: per-op detection timeout charged before a retry can start
    timeout_ns: float = CostModel.net_timeout_ns
    #: retries after the first attempt before the op gives up
    max_retries: int = 4
    #: first retry's backoff; grows by ``backoff_factor`` each attempt
    backoff_base_ns: float = CostModel.net_backoff_base_ns
    backoff_factor: float = 2.0
    #: consecutive failures that trip the circuit breaker open
    breaker_threshold: int = 8
    #: virtual ns the breaker stays open before a half-open probe
    breaker_cooldown_ns: float = 1_000_000.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.loss_prob < 1.0:
            raise ConfigError(f"loss_prob must be in [0, 1): {self.loss_prob}")
        if not 0.0 <= self.timeout_prob < 1.0:
            raise ConfigError(f"timeout_prob must be in [0, 1): {self.timeout_prob}")
        if self.loss_prob + self.timeout_prob >= 1.0:
            raise ConfigError("loss_prob + timeout_prob must stay below 1")
        if self.timeout_ns <= 0:
            raise ConfigError("timeout_ns must be positive")
        if self.max_retries < 0:
            raise ConfigError("max_retries must be >= 0")
        if self.backoff_base_ns < 0:
            raise ConfigError("backoff_base_ns must be >= 0")
        if self.backoff_factor < 1.0:
            raise ConfigError("backoff_factor must be >= 1")
        if self.breaker_threshold < 1:
            raise ConfigError("breaker_threshold must be >= 1")
        if self.breaker_cooldown_ns < 0:
            raise ConfigError("breaker_cooldown_ns must be >= 0")
        for w in self.link_windows:
            _check_window(w, "link")
            if w.bw_scale < 1.0 or w.rtt_scale < 1.0:
                raise ConfigError(f"link window scales must be >= 1: {w}")
        for w in self.far_windows:
            _check_window(w, "far")
            if w.slowdown < 1.0:
                raise ConfigError(f"far window slowdown must be >= 1: {w}")

    # -- derived -----------------------------------------------------------

    @property
    def fault_prob(self) -> float:
        return self.loss_prob + self.timeout_prob

    def backoff_ns(self, attempt: int) -> float:
        """Exponential backoff before retry ``attempt`` (1-based)."""
        return self.backoff_base_ns * self.backoff_factor ** (attempt - 1)

    def with_overrides(self, **kwargs) -> "FaultPlan":
        return replace(self, **kwargs)

    # -- construction ------------------------------------------------------

    #: preset (loss_prob, timeout_prob, windows-per-kind) per intensity
    INTENSITIES = {
        "light": (0.01, 0.005, 1),
        "medium": (0.03, 0.015, 2),
        "heavy": (0.08, 0.04, 3),
    }

    @classmethod
    def generate(
        cls,
        seed: int,
        intensity: str = "light",
        horizon_ns: float = 1e9,
        **overrides,
    ) -> "FaultPlan":
        """A reproducible random plan: same seed, same plan, always.

        ``horizon_ns`` bounds where degradation windows land; runs shorter
        than the horizon simply see fewer windows.  Keyword overrides are
        applied on top of the generated fields.
        """
        try:
            loss, timeout, n_windows = cls.INTENSITIES[intensity]
        except KeyError:
            raise ConfigError(
                f"unknown intensity {intensity!r}; "
                f"choose from {sorted(cls.INTENSITIES)}"
            ) from None
        rng = random.Random(seed)
        link = []
        for _ in range(n_windows):
            start = rng.uniform(0.0, 0.7 * horizon_ns)
            dur = rng.uniform(0.05, 0.25) * horizon_ns
            link.append(
                LinkWindow(
                    start_ns=start,
                    end_ns=start + dur,
                    bw_scale=rng.uniform(2.0, 6.0),
                    rtt_scale=rng.uniform(1.0, 3.0),
                )
            )
        far = []
        for _ in range(n_windows):
            start = rng.uniform(0.0, 0.7 * horizon_ns)
            dur = rng.uniform(0.05, 0.25) * horizon_ns
            far.append(
                FarWindow(
                    start_ns=start,
                    end_ns=start + dur,
                    slowdown=rng.uniform(2.0, 8.0),
                )
            )
        fields = dict(
            seed=seed,
            loss_prob=loss,
            timeout_prob=timeout,
            link_windows=tuple(link),
            far_windows=tuple(far),
        )
        fields.update(overrides)
        return cls(**fields)
