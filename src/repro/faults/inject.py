"""The fault injector: consumes a plan's RNG and tallies what happened.

One injector is created per run (``MemorySystem.enable_faults``) so the
RNG stream always starts from the plan's seed -- two runs of the same
program under the same plan draw identical fault sequences.  The injector
is consulted only from shared simulator code (:class:`Network`,
:class:`FarMemoryNode`), never from engine-specific paths, which is what
keeps the compiled engine and the reference interpreter byte-identical
under faults.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.faults.plan import FaultPlan


@dataclass
class FaultStats:
    """What the injector and the reliability layer did during one run."""

    #: messages lost outright (detected via timeout)
    losses: int = 0
    #: timeout episodes (late completions, detected the same way)
    timeouts: int = 0
    #: retry attempts issued after a detected fault
    retries: int = 0
    #: ops that exhausted their retry budget (completion then forced)
    giveups: int = 0
    #: ops short-circuited while the breaker was open
    fast_fails: int = 0
    #: times the circuit breaker tripped open
    breaker_trips: int = 0
    #: graceful-degradation actions the cache manager applied
    degrades: int = 0
    #: virtual ns spent in retry backoff
    backoff_ns: float = 0.0
    #: virtual ns spent waiting out detection timeouts
    timeout_wait_ns: float = 0.0

    def publish(self, registry) -> None:
        """Publish into a :class:`repro.obs.MetricsRegistry`."""
        for fname, value in vars(self).items():
            registry.gauge(f"fault.{fname}").set(value)


class FaultInjector:
    """Seeded per-run fault source; all draws go through :meth:`roll`."""

    __slots__ = ("plan", "rng", "stats", "_loss_p", "_fault_p")

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self.rng = random.Random(plan.seed)
        self.stats = FaultStats()
        self._loss_p = plan.loss_prob
        self._fault_p = plan.loss_prob + plan.timeout_prob

    def roll(self) -> str | None:
        """One per-op draw: None (healthy), ``"loss"``, or ``"timeout"``.

        Plans without probabilistic faults consume no RNG, so a
        windows-only plan perturbs timing without touching the stream.
        """
        if self._fault_p <= 0.0:
            return None
        r = self.rng.random()
        if r >= self._fault_p:
            return None
        if r < self._loss_p:
            self.stats.losses += 1
            return "loss"
        self.stats.timeouts += 1
        return "timeout"

    def link_scales(self, now: float) -> tuple[float, float]:
        """(bw_scale, rtt_scale) product of link windows active at ``now``."""
        bw = rtt = 1.0
        for w in self.plan.link_windows:
            if w.start_ns <= now < w.end_ns:
                bw *= w.bw_scale
                rtt *= w.rtt_scale
        return bw, rtt

    def far_scale(self, now: float) -> float:
        """Far-CPU slowdown product of far windows active at ``now``."""
        scale = 1.0
        for w in self.plan.far_windows:
            if w.start_ns <= now < w.end_ns:
                scale *= w.slowdown
        return scale
