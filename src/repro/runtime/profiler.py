"""Coarse-grained run-time profiling (paper section 4.1).

Collects, per function: call count, inclusive/exclusive virtual time, and
the share of that time spent in the far-memory runtime (cache lookups,
misses, evictions, network) -- the paper's *cache performance overhead*:

    overhead_ratio = time in Mira runtime / remaining execution time

It also records allocation sites and sizes (the controller picks the
largest objects of the worst functions, section 4.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.memsim.clock import VirtualClock

#: clock-breakdown categories that represent useful program execution
#: rather than far-memory runtime work
_EXEC_CATEGORIES = frozenset({"compute", "dram", "dram_stream", "profiling"})


def runtime_ns(breakdown: dict[str, float]) -> float:
    """Time spent in the far-memory runtime, from a clock breakdown."""
    return sum(ns for cat, ns in breakdown.items() if cat not in _EXEC_CATEGORIES)


@dataclass
class FunctionProfile:
    name: str
    calls: int = 0
    inclusive_ns: float = 0.0
    exclusive_ns: float = 0.0
    inclusive_runtime_ns: float = 0.0
    exclusive_runtime_ns: float = 0.0

    @property
    def overhead_ratio(self) -> float:
        """Cache performance overhead: runtime time over remaining time."""
        exec_ns = self.exclusive_ns - self.exclusive_runtime_ns
        if exec_ns <= 0:
            return float("inf") if self.exclusive_runtime_ns > 0 else 0.0
        return self.exclusive_runtime_ns / exec_ns


@dataclass
class AllocationRecord:
    site: str
    name: str
    size_bytes: int
    function: str


@dataclass
class _Frame:
    name: str
    t_enter: float
    runtime_enter: float
    child_ns: float = 0.0
    child_runtime_ns: float = 0.0


@dataclass
class Profiler:
    """Attributes virtual time to functions via an explicit frame stack."""

    clock: VirtualClock
    functions: dict[str, FunctionProfile] = field(default_factory=dict)
    allocations: list[AllocationRecord] = field(default_factory=list)
    regions: dict[str, float] = field(default_factory=dict)
    #: attached :class:`repro.obs.Tracer`, or None (tracing disabled)
    tracer: object = None
    _stack: list[_Frame] = field(default_factory=list)
    _region_starts: dict[str, float] = field(default_factory=dict)

    def _runtime_now(self) -> float:
        return runtime_ns(self.clock.peek_breakdown())

    def enter(self, name: str) -> None:
        self._stack.append(_Frame(name, self.clock.now, self._runtime_now()))

    def exit(self, name: str) -> None:
        frame = self._stack.pop()
        inclusive = self.clock.now - frame.t_enter
        inclusive_rt = self._runtime_now() - frame.runtime_enter
        prof = self.functions.setdefault(name, FunctionProfile(name))
        prof.calls += 1
        prof.inclusive_ns += inclusive
        prof.exclusive_ns += inclusive - frame.child_ns
        prof.inclusive_runtime_ns += inclusive_rt
        prof.exclusive_runtime_ns += inclusive_rt - frame.child_runtime_ns
        if self._stack:
            parent = self._stack[-1]
            parent.child_ns += inclusive
            parent.child_runtime_ns += inclusive_rt

    def record_allocation(self, site: str, name: str, size: int, function: str) -> None:
        self.allocations.append(AllocationRecord(site, name, size, function))

    def region_begin(self, label: str) -> None:
        now = self.clock.now
        self._region_starts[label] = now
        tr = self.tracer
        if tr is not None:
            tr.emit("prof.region", now, label=label, ev="begin")

    def region_end(self, label: str) -> None:
        start = self._region_starts.pop(label, None)
        if start is not None:
            now = self.clock.now
            self.regions[label] = self.regions.get(label, 0.0) + (now - start)
            tr = self.tracer
            if tr is not None:
                tr.emit("prof.region", now, label=label, ev="end")

    def publish(self, registry) -> None:
        """Publish per-function aggregates and region durations into a
        :class:`repro.obs.MetricsRegistry`."""
        for name, prof in self.functions.items():
            registry.gauge(f"func.{name}.calls").set(prof.calls)
            registry.gauge(f"func.{name}.inclusive_ns").set(prof.inclusive_ns)
            registry.gauge(f"func.{name}.exclusive_ns").set(prof.exclusive_ns)
            registry.gauge(f"func.{name}.overhead_ratio").set(prof.overhead_ratio)
        for label, ns in self.regions.items():
            registry.gauge(f"region.{label}_ns").set(ns)
        registry.gauge("prof.allocations").set(len(self.allocations))

    # -- controller queries (section 4.1) -------------------------------------

    def worst_functions(self, fraction: float) -> list[str]:
        """Function names in the top ``fraction`` by cache overhead ratio
        (at least one when any function has overhead)."""
        ranked = sorted(
            self.functions.values(), key=lambda p: p.overhead_ratio, reverse=True
        )
        ranked = [p for p in ranked if p.exclusive_runtime_ns > 0]
        if not ranked:
            return []
        count = max(1, int(len(ranked) * fraction))
        return [p.name for p in ranked[:count]]

    def largest_allocations(self, fraction: float, functions=None) -> list[str]:
        """Allocation *names* of the largest ``fraction`` of objects,
        optionally restricted to sites inside the given functions."""
        pool = self.allocations
        if functions is not None:
            fset = set(functions)
            pool = [a for a in pool if a.function in fset]
        if not pool:
            return []
        ranked = sorted(pool, key=lambda a: a.size_bytes, reverse=True)
        count = max(1, int(len(ranked) * fraction))
        return [a.name or a.site for a in ranked[:count]]
