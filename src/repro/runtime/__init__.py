"""IR execution against the simulated machine.

The interpreter computes *real results* on a Python-level object store
while charging virtual time for compute (per-op), local DRAM (per access),
and whatever the active :class:`~repro.cache.interface.MemorySystem`'s
data path costs.  A coarse-grained profiler (paper section 4.1) attributes
time and cache overhead to functions.
"""

from repro.runtime.interpreter import Interpreter, RunResult
from repro.runtime.objects import MemRefVal, ObjectStore
from repro.runtime.profiler import FunctionProfile, Profiler

__all__ = [
    "Interpreter",
    "RunResult",
    "MemRefVal",
    "ObjectStore",
    "FunctionProfile",
    "Profiler",
]
