"""The interpreter's object store: real data values for allocated objects.

Performance (placement, misses, network) is simulated by the memory
system; *correctness* lives here.  Struct-element objects store one Python
list per field (columnar), scalar-element objects store a single list.
"""

from __future__ import annotations

from repro.errors import InterpreterError
from repro.ir.types import FloatType, IRType, StructType


def _default_value(t: IRType):
    if isinstance(t, FloatType):
        return 0.0
    return 0


class MemRefVal:
    """Runtime value of a memref: identity plus backing data."""

    __slots__ = ("obj_id", "elem_type", "num_elems", "elem_size", "name", "_data")

    def __init__(
        self, obj_id: int, elem_type: IRType, num_elems: int, name: str = ""
    ) -> None:
        self.obj_id = obj_id
        self.elem_type = elem_type
        self.num_elems = num_elems
        self.elem_size = elem_type.byte_size
        self.name = name
        if isinstance(elem_type, StructType):
            self._data = {
                fname: [_default_value(ft)] * num_elems
                for fname, ft in elem_type.fields
            }
        else:
            self._data = [_default_value(elem_type)] * num_elems

    # -- data access ---------------------------------------------------------

    def load(self, index: int, field: str | None = None):
        self._check(index)
        if field is None:
            if isinstance(self.elem_type, StructType):
                return tuple(col[index] for col in self._data.values())
            return self._data[index]
        return self._data[field][index]

    def store(self, index: int, value, field: str | None = None) -> None:
        self._check(index)
        if field is None:
            if isinstance(self.elem_type, StructType):
                raise InterpreterError(
                    f"whole-struct store to {self.name or self.obj_id}; "
                    f"store individual fields"
                )
            self._data[index] = value
        else:
            self._data[field][index] = value

    def fill(self, values, field: str | None = None) -> None:
        """Bulk-initialize backing data (no virtual time charged)."""
        values = list(values)
        if len(values) != self.num_elems:
            raise InterpreterError(
                f"fill of {self.name or self.obj_id}: got {len(values)} values "
                f"for {self.num_elems} elements"
            )
        if field is None:
            if isinstance(self.elem_type, StructType):
                raise InterpreterError("fill a struct memref per field")
            self._data = values
        else:
            if field not in self._data:
                raise InterpreterError(f"no field {field!r}")
            self._data[field] = values

    def byte_offset(self, index: int, field: str | None = None) -> tuple[int, int]:
        """(byte offset, access size) of an element or field access."""
        base = index * self.elem_size
        if field is None or not isinstance(self.elem_type, StructType):
            return base, self.elem_size
        return (
            base + self.elem_type.field_offset(field),
            self.elem_type.field_type(field).byte_size,
        )

    @property
    def size_bytes(self) -> int:
        return self.num_elems * self.elem_size

    def _check(self, index: int) -> None:
        if not isinstance(index, int):
            raise InterpreterError(
                f"index into {self.name or self.obj_id} must be an int, "
                f"got {type(index).__name__}"
            )
        if not 0 <= index < self.num_elems:
            raise InterpreterError(
                f"index {index} out of bounds for {self.name or self.obj_id} "
                f"({self.num_elems} elements)"
            )

    def __repr__(self) -> str:
        return (
            f"MemRefVal({self.name or self.obj_id}, {self.elem_type} "
            f"x {self.num_elems})"
        )


class ObjectStore:
    """All live MemRefVals, by object id and by allocation name."""

    def __init__(self) -> None:
        self._by_id: dict[int, MemRefVal] = {}
        self._by_name: dict[str, MemRefVal] = {}

    def register(self, val: MemRefVal) -> None:
        self._by_id[val.obj_id] = val
        if val.name:
            self._by_name[val.name] = val

    def by_id(self, obj_id: int) -> MemRefVal:
        try:
            return self._by_id[obj_id]
        except KeyError:
            raise InterpreterError(f"no live object with id {obj_id}") from None

    def by_name(self, name: str) -> MemRefVal:
        try:
            return self._by_name[name]
        except KeyError:
            raise InterpreterError(f"no live object named {name!r}") from None

    def names(self) -> list[str]:
        return list(self._by_name)
