"""The IR interpreter.

Executes a module against a :class:`~repro.cache.interface.MemorySystem`
under the virtual clock, producing both real computation results and the
virtual-time profile every figure is built from.

Charging policy (uniform across all systems, so normalized performance is
meaningful):

* every op: ``cpu_op_ns`` of compute;
* element loads/stores: ``dram_access_ns`` plus the memory system's data
  path;
* range touches: streaming DRAM bandwidth plus the data path;
* ``compute.work``: ``units * cpu_op_ns``;
* offloaded functions: executed in *far mode* -- compute is slowed by
  ``far_cpu_slowdown``, memory accesses are local to the far node (DRAM
  only, no network), and the call pays an RPC plus pre-call flushes
  (section 4.8).

Fault injection lives entirely below this layer: when a run installs a
:class:`~repro.faults.FaultPlan`, the timeout/retry/backoff/breaker
machinery (and its trace events) runs inside the shared network and
far-node code, so the interpreter and the compiled engine stay
byte-identical under faults without any mirrored emission points here.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.errors import InterpreterError
from repro.ir.core import Block, Function, Module, Operation, Value
from repro.ir.dialects import arith, compute, func as func_d, memref, prof, remotable, rmem, scf
from repro.ir.types import FloatType, IndexType, IntType
from repro.cache.interface import MemorySystem
from repro.memsim.clock import VirtualClock
from repro.runtime.objects import MemRefVal, ObjectStore
from repro.runtime.profiler import Profiler, runtime_ns

#: data_init callback type: (alloc name, MemRefVal) -> None
DataInit = Callable[[str, MemRefVal], None]


@dataclass
class RunResult:
    """Outcome of one program execution."""

    results: list
    elapsed_ns: float
    breakdown: dict[str, float]
    profiler: Profiler
    memsys: MemorySystem

    @property
    def runtime_ns(self) -> float:
        """Time in the far-memory runtime (vs. program execution)."""
        return runtime_ns(self.breakdown)


def _int_div(a: int, b: int) -> int:
    """C-style truncating integer division."""
    if b == 0:
        raise InterpreterError("integer division by zero")
    q = abs(a) // abs(b)
    return q if (a >= 0) == (b >= 0) else -q


def _int_rem(a: int, b: int) -> int:
    return a - _int_div(a, b) * b


class Interpreter:
    """Executes one module; one instance per run.

    ``engine`` selects the execution strategy: ``"compiled"`` (default)
    lowers each block once to specialized closures via
    :mod:`repro.runtime.engine`; ``"codegen"`` lowers each function to
    generated Python source via :mod:`repro.runtime.codegen`;
    ``"reference"`` keeps the original op-at-a-time tree walk.  All
    three produce bit-identical virtual time; the ``REPRO_ENGINE``
    environment variable overrides the default.
    """

    def __init__(
        self,
        module: Module,
        memsys: MemorySystem,
        data_init: DataInit | None = None,
        engine: str | None = None,
    ) -> None:
        self.module = module
        self.memsys = memsys
        self.clock = memsys.clock
        self.cost = memsys.cost
        self.store = ObjectStore()
        self.data_init = data_init
        self.profiler = Profiler(self.clock)
        #: tracer inherited from the memory system (attach one with
        #: ``memsys.set_tracer(...)`` *before* building the interpreter)
        self.tracer = getattr(memsys, "tracer", None)
        self.profiler.tracer = self.tracer
        self.instrumented = bool(module.attrs.get("profiling"))
        self._far_depth = 0
        self._cpu_unit = self.cost.cpu_op_ns  # tracks far-mode slowdown
        self._current_fn = "<none>"
        self._dispatch = self._build_dispatch()
        from repro.runtime.engine import ENGINES, Engine, engine_from_env

        if engine is None:
            engine = engine_from_env()
        elif engine not in ENGINES:
            raise InterpreterError(
                f"unknown engine {engine!r}; expected one of {ENGINES}"
            )
        self.engine_name = engine
        if engine == "compiled":
            self._engine = Engine(self)
        elif engine == "codegen":
            from repro.runtime.codegen import CodegenEngine

            self._engine = CodegenEngine(self)
        else:
            self._engine = None

    # -- public API -----------------------------------------------------------

    def run(self, entry: str = "main", args: list | None = None) -> RunResult:
        fn = self.module.get(entry)
        if self._engine is not None:
            results = self._engine.call_function(fn, args or [])
        else:
            results = self._call_function(fn, args or [])
        breakdown = self.clock.breakdown()
        tr = self.tracer
        if tr is not None:
            # end-of-run snapshot; shared by both engines (run() is common)
            now = self.clock.now
            tr.emit(
                "prof.snapshot",
                now,
                elapsed=now,
                runtime=runtime_ns(breakdown),
                funcs=len(self.profiler.functions),
                allocs=len(self.profiler.allocations),
                bd=breakdown,
            )
        return RunResult(
            results=results,
            elapsed_ns=self.clock.now,
            breakdown=breakdown,
            profiler=self.profiler,
            memsys=self.memsys,
        )

    # -- function execution ----------------------------------------------------

    def _call_function(self, fn: Function, arg_values: list) -> list:
        if len(arg_values) != len(fn.args):
            raise InterpreterError(
                f"@{fn.name} called with {len(arg_values)} args, "
                f"expects {len(fn.args)}"
            )
        self.clock.advance(self.cost.call_ns, "compute")
        if self.instrumented:
            self.clock.advance(self.cost.profile_event_ns, "profiling")
        prev_fn = self._current_fn
        self._current_fn = fn.name
        self.profiler.enter(fn.name)
        env: dict[int, object] = {}
        for formal, actual in zip(fn.args, arg_values):
            env[formal.uid] = actual
        try:
            term = self._exec_block(fn.body, env)
            if not isinstance(term, func_d.ReturnOp):
                raise InterpreterError(f"@{fn.name} did not return")
            return [env[v.uid] for v in term.operands]
        finally:
            self.profiler.exit(fn.name)
            self._current_fn = prev_fn
            if self.instrumented:
                self.clock.advance(self.cost.profile_event_ns, "profiling")

    def _exec_block(self, block: Block, env: dict) -> Operation | None:
        """Run a block's ops; returns its terminator (already 'executed'
        in the sense that its operand values are in env)."""
        for op in block.ops:
            if op.is_terminator:
                return op
            handler = self._dispatch.get(type(op))
            if handler is None:
                raise InterpreterError(f"no interpreter handler for {op.opname}")
            handler(op, env)
        return None

    # -- dispatch table ---------------------------------------------------------

    def _build_dispatch(self):
        return {
            arith.ConstantOp: self._exec_constant,
            arith.BinaryOp: self._exec_binary,
            arith.CmpOp: self._exec_cmp,
            arith.SelectOp: self._exec_select,
            arith.CastOp: self._exec_cast,
            memref.AllocOp: self._exec_alloc,
            remotable.RAllocOp: self._exec_alloc,
            memref.LoadOp: self._exec_load,
            rmem.RLoadOp: self._exec_load,
            memref.StoreOp: self._exec_store,
            rmem.RStoreOp: self._exec_store,
            memref.TouchOp: self._exec_touch,
            rmem.RTouchOp: self._exec_touch,
            memref.DeallocOp: self._exec_dealloc,
            scf.ForOp: self._exec_for,
            scf.ParallelOp: self._exec_parallel,
            scf.IfOp: self._exec_if,
            scf.WhileOp: self._exec_while,
            func_d.CallOp: self._exec_call,
            compute.WorkOp: self._exec_work,
            rmem.PrefetchOp: self._exec_prefetch,
            rmem.BatchPrefetchOp: self._exec_batch_prefetch,
            rmem.FlushOp: self._exec_flush,
            rmem.EvictHintOp: self._exec_evict_hint,
            rmem.DiscardOp: self._exec_discard,
            rmem.SectionOpenOp: self._exec_section_open,
            rmem.SectionCloseOp: self._exec_section_close,
            rmem.OffloadCallOp: self._exec_offload_call,
            prof.RegionBeginOp: self._exec_prof_begin,
            prof.RegionEndOp: self._exec_prof_end,
        }

    # -- cost helpers ------------------------------------------------------------

    def _cpu(self, units: float = 1.0) -> None:
        ns = units * self.cost.cpu_op_ns
        if self._far_depth:
            ns *= self.cost.far_cpu_slowdown
        self.clock.advance(ns, "compute")

    def _mem_access(
        self, ref: MemRefVal, offset: int, size: int, is_write: bool, native: bool
    ) -> None:
        self.clock.advance(self.cost.dram_access_ns, "dram")
        if self._far_depth == 0:
            self.memsys.access(ref.obj_id, offset, size, is_write, native=native)

    # -- arith --------------------------------------------------------------------

    def _exec_constant(self, op: arith.ConstantOp, env: dict) -> None:
        env[op.result.uid] = op.value
        self._cpu()

    def _exec_binary(self, op: arith.BinaryOp, env: dict) -> None:
        a = env[op.operands[0].uid]
        b = env[op.operands[1].uid]
        kind = op.kind
        if kind == "div":
            out = a / b if isinstance(op.result.type, FloatType) else _int_div(a, b)
        elif kind == "rem":
            out = _int_rem(a, b)
        else:
            out = arith.BINARY_KINDS[kind](a, b)
        env[op.result.uid] = out
        self._cpu()

    def _exec_cmp(self, op: arith.CmpOp, env: dict) -> None:
        a = env[op.operands[0].uid]
        b = env[op.operands[1].uid]
        env[op.result.uid] = 1 if arith.CMP_PREDICATES[op.pred](a, b) else 0
        self._cpu()

    def _exec_select(self, op: arith.SelectOp, env: dict) -> None:
        cond = env[op.operands[0].uid]
        env[op.result.uid] = env[op.operands[1 if cond else 2].uid]
        self._cpu()

    def _exec_cast(self, op: arith.CastOp, env: dict) -> None:
        v = env[op.operands[0].uid]
        t = op.result.type
        if isinstance(t, FloatType):
            env[op.result.uid] = float(v)
        elif isinstance(t, (IntType, IndexType)):
            env[op.result.uid] = int(v)
        else:
            raise InterpreterError(f"bad cast target {t}")
        self._cpu()

    # -- memory ---------------------------------------------------------------------

    def _exec_alloc(self, op, env: dict) -> None:
        elem_type = op.result.type.elem
        num = op.num_elems
        name = op.alloc_name
        site = f"{self._current_fn}:{name or op.result.uid}"
        obj = self.memsys.allocate(
            size=num * elem_type.byte_size,
            elem_size=elem_type.byte_size,
            name=name,
            alloc_site=site,
            attrs=dict(op.attrs.get("obj_attrs", {})),
        )
        val = MemRefVal(obj.obj_id, elem_type, num, name)
        self.store.register(val)
        env[op.result.uid] = val
        self.profiler.record_allocation(
            site, name, num * elem_type.byte_size, self._current_fn
        )
        if self.data_init is not None and name:
            self.data_init(name, val)
        self._cpu(10)

    def _exec_load(self, op, env: dict) -> None:
        ref: MemRefVal = env[op.ref.uid]
        index = env[op.index.uid]
        if op.attrs.get("prefetch_stage"):
            # stage-1 of a chained prefetch (%1 = fetch A[i+d]): an
            # asynchronous read of an already-prefetched line, off the
            # critical path -- costs issue time only
            env[op.result.uid] = ref.load(index, op.field)
            self._cpu()
            return
        offset, size = ref.byte_offset(index, op.field)
        native = bool(op.attrs.get("native"))
        self._mem_access(ref, offset, size, is_write=False, native=native)
        env[op.result.uid] = ref.load(index, op.field)
        self._cpu()

    def _exec_store(self, op, env: dict) -> None:
        ref: MemRefVal = env[op.ref.uid]
        index = env[op.index.uid]
        value = env[op.value.uid]
        offset, size = ref.byte_offset(index, op.field)
        native = bool(op.attrs.get("native"))
        self._mem_access(ref, offset, size, is_write=True, native=native)
        ref.store(index, value, op.field)
        self._cpu()

    def _exec_touch(self, op, env: dict) -> None:
        ref: MemRefVal = env[op.ref.uid]
        start = env[op.start.uid]
        length = op.length
        if start < 0 or start + length > ref.size_bytes:
            raise InterpreterError(
                f"touch [{start}, {start + length}) out of bounds for "
                f"{ref.name or ref.obj_id} ({ref.size_bytes} B)"
            )
        self.clock.advance(length / self.cost.dram_stream_bpns, "dram_stream")
        if self._far_depth == 0:
            self.memsys.access(ref.obj_id, start, length, op.is_write)
        self._cpu()

    def _exec_dealloc(self, op: memref.DeallocOp, env: dict) -> None:
        ref: MemRefVal = env[op.ref.uid]
        self.memsys.free(ref.obj_id)
        self._cpu(10)

    # -- control flow -----------------------------------------------------------------

    def _exec_for(self, op: scf.ForOp, env: dict) -> None:
        lb = env[op.lb.uid]
        ub = env[op.ub.uid]
        step = env[op.step.uid]
        if step <= 0:
            raise InterpreterError(f"scf.for with non-positive step {step}")
        carried = [env[v.uid] for v in op.iter_args]
        body = op.body
        iv = body.args[0]
        body_args = body.args[1:]
        for i in range(lb, ub, step):
            env[iv.uid] = i
            for formal, val in zip(body_args, carried):
                env[formal.uid] = val
            term = self._exec_block(body, env)
            carried = [env[v.uid] for v in term.operands]
            self._cpu()  # loop back-edge
        for res, val in zip(op.results, carried):
            env[res.uid] = val

    def _exec_parallel(self, op: scf.ParallelOp, env: dict) -> None:
        lb = env[op.lb.uid]
        ub = env[op.ub.uid]
        step = env[op.step.uid]
        iters = list(range(lb, ub, step))
        nthreads = min(op.num_threads, max(1, len(iters)))
        per = (len(iters) + nthreads - 1) // nthreads
        chunks = [iters[t * per : (t + 1) * per] for t in range(nthreads)]
        base_clock = self.clock
        iv = op.body.args[0]
        thread_clocks: list[VirtualClock] = []
        # threads share the link fairly: each sees 1/T of the bandwidth,
        # and the wire timeline is per-thread rather than serialized
        # across the (sequentially simulated) threads
        network = self.memsys.network
        base_link_free = network._link_free_at
        link_ends: list[float] = []
        network.contention = nthreads
        fault_lock = getattr(self.memsys, "fault_lock", None)
        if fault_lock is not None:
            fault_lock.contention = nthreads
        tr = self.tracer
        for tid, chunk in enumerate(chunks):
            tclock = base_clock.fork()
            network._link_free_at = base_link_free
            self._set_active_clock(tclock)
            if hasattr(self.memsys, "current_thread"):
                self.memsys.current_thread = tid
            if tr is not None:
                tr.emit("thread.fork", tclock.now, tid=tid, iters=len(chunk))
            for i in chunk:
                env[iv.uid] = i
                self._exec_block(op.body, env)
                self._cpu()
            thread_clocks.append(tclock)
            link_ends.append(network._link_free_at)
        network.contention = 1
        network._link_free_at = max(link_ends, default=base_link_free)
        if fault_lock is not None:
            fault_lock.contention = 1
        self._set_active_clock(base_clock)
        if hasattr(self.memsys, "current_thread"):
            self.memsys.current_thread = 0
        for tclock in thread_clocks:
            base_clock.join(tclock)
        if tr is not None:
            tr.emit("thread.join", base_clock.now, threads=nthreads)

    def _set_active_clock(self, clock: VirtualClock) -> None:
        self.clock = clock
        self.memsys.set_clock(clock)

    def _exec_if(self, op: scf.IfOp, env: dict) -> None:
        cond = env[op.cond.uid]
        arm = op.then_block if cond else op.else_block
        self._cpu()
        term = self._exec_block(arm, env)
        if op.results:
            if term is None:
                raise InterpreterError("scf.if arm missing yield for results")
            for res, v in zip(op.results, term.operands):
                env[res.uid] = env[v.uid]

    def _exec_while(self, op: scf.WhileOp, env: dict) -> None:
        carried = [env[v.uid] for v in op.init_args]
        limit = 100_000_000  # guard against non-terminating programs
        for _ in range(limit):
            for formal, val in zip(op.before.args, carried):
                env[formal.uid] = val
            cond_term = self._exec_block(op.before, env)
            assert isinstance(cond_term, scf.ConditionOp)
            forwarded = [env[v.uid] for v in cond_term.forwarded]
            self._cpu()
            if not env[cond_term.cond.uid]:
                for res, val in zip(op.results, forwarded):
                    env[res.uid] = val
                return
            for formal, val in zip(op.after.args, forwarded):
                env[formal.uid] = val
            body_term = self._exec_block(op.after, env)
            carried = [env[v.uid] for v in body_term.operands]
        raise InterpreterError("scf.while exceeded iteration limit")

    # -- calls -------------------------------------------------------------------------

    def _exec_call(self, op: func_d.CallOp, env: dict) -> None:
        callee = self.module.get(op.callee)
        args = [env[v.uid] for v in op.operands]
        if callee.is_offloaded and self._far_depth == 0:
            results = self._offloaded_invoke(callee, args)
        else:
            results = self._call_function(callee, args)
        for res, val in zip(op.results, results):
            env[res.uid] = val

    def _exec_offload_call(self, op: rmem.OffloadCallOp, env: dict) -> None:
        callee = self.module.get(op.callee)
        args = [env[v.uid] for v in op.operands]
        results = self._offloaded_invoke(callee, args)
        for res, val in zip(op.results, results):
            env[res.uid] = val

    def _offloaded_invoke(self, fn: Function, args: list) -> list:
        """Run a remotable function on the far node (section 4.8)."""
        # flush cached state of every remotable argument so the far node
        # sees up-to-date data
        request_bytes = 64
        for a in args:
            if isinstance(a, MemRefVal):
                self.memsys.flush(a.obj_id, 0, a.size_bytes)
                self.memsys.discard(a.obj_id)
                request_bytes += 16  # the far-memory pointer travels
            else:
                request_bytes += 8
        tr = self.tracer
        if tr is not None:
            tr.emit(
                "offload.dispatch", self.clock.now, fn=fn.name, req=request_bytes
            )
        self.memsys.network.rpc(request_bytes, 64)
        self._enter_far()
        try:
            return self._call_function(fn, args)
        finally:
            self._exit_far()

    def _enter_far(self) -> None:
        self._far_depth += 1
        self._cpu_unit = self.cost.cpu_op_ns * self.cost.far_cpu_slowdown

    def _exit_far(self) -> None:
        self._far_depth -= 1
        if not self._far_depth:
            self._cpu_unit = self.cost.cpu_op_ns

    # -- compute & profiling ------------------------------------------------------------

    def _exec_work(self, op: compute.WorkOp, env: dict) -> None:
        self._cpu(op.units)

    def _exec_prof_begin(self, op: prof.RegionBeginOp, env: dict) -> None:
        self.profiler.region_begin(op.label)
        if self.instrumented:
            self.clock.advance(self.cost.profile_event_ns, "profiling")

    def _exec_prof_end(self, op: prof.RegionEndOp, env: dict) -> None:
        self.profiler.region_end(op.label)
        if self.instrumented:
            self.clock.advance(self.cost.profile_event_ns, "profiling")

    # -- rmem hints -----------------------------------------------------------------------

    def _exec_prefetch(self, op: rmem.PrefetchOp, env: dict) -> None:
        ref: MemRefVal = env[op.ref.uid]
        index = env[op.index.uid]
        self._cpu()
        span = self._clamp_range(ref, index, op.count)
        if span is not None:
            self.memsys.prefetch(ref.obj_id, *span)

    def _exec_batch_prefetch(self, op: rmem.BatchPrefetchOp, env: dict) -> None:
        items = []
        for (ref_v, idx_v), count in zip(op.pairs(), op.counts):
            ref: MemRefVal = env[ref_v.uid]
            index = env[idx_v.uid]
            span = self._clamp_range(ref, index, count)
            if span is not None:
                items.append((ref.obj_id, *span))
        self._cpu()
        if items:
            self.memsys.prefetch_batch(items)

    def _clamp_range(
        self, ref: MemRefVal, index: int, count: int
    ) -> tuple[int, int] | None:
        """Clamp an element range to the object; prefetch is a hint, so
        an out-of-bounds tail is trimmed rather than an error."""
        if index >= ref.num_elems or index < 0:
            return None
        count = min(count, ref.num_elems - index)
        return index * ref.elem_size, count * ref.elem_size

    def _exec_flush(self, op: rmem.FlushOp, env: dict) -> None:
        ref: MemRefVal = env[op.ref.uid]
        index = env[op.index.uid]
        self._cpu()
        span = self._clamp_range(ref, index, op.count)
        if span is not None:
            self.memsys.flush(ref.obj_id, *span)

    def _exec_evict_hint(self, op: rmem.EvictHintOp, env: dict) -> None:
        ref: MemRefVal = env[op.ref.uid]
        index = env[op.index.uid]
        self._cpu()
        if op.mode == "trailing":
            offset = min(max(index, 0), ref.num_elems - 1) * ref.elem_size
            self.memsys.evict_hint_trailing(ref.obj_id, offset)
            return
        span = self._clamp_range(ref, index, op.count)
        if span is not None:
            self.memsys.evict_hint(ref.obj_id, *span)

    def _exec_discard(self, op: rmem.DiscardOp, env: dict) -> None:
        ref: MemRefVal = env[op.ref.uid]
        self._cpu()
        self.memsys.discard(ref.obj_id)

    def _exec_section_open(self, op: rmem.SectionOpenOp, env: dict) -> None:
        configs = self.module.attrs.get("section_configs", {})
        cfg = configs.get(op.section_name)
        if cfg is None:
            raise InterpreterError(
                f"section_open {op.section_name!r}: no config in module attrs"
            )
        open_section = getattr(self.memsys, "open_section", None)
        if open_section is None:
            return  # baselines run the unconverted program anyway
        obj_ids = [env[v.uid].obj_id for v in op.operands]
        open_section(cfg, obj_ids, per_thread=int(cfg.notes.get("per_thread", 0)))
        self._cpu(10)

    def _exec_section_close(self, op: rmem.SectionCloseOp, env: dict) -> None:
        close_section = getattr(self.memsys, "close_section", None)
        if close_section is not None:
            close_section(op.section_name)
        self._cpu(10)
