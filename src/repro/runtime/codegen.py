"""Codegen execution engine: IR -> Python source lowering.

The compiled engine (:mod:`repro.runtime.engine`) removed the reference
interpreter's per-op dict dispatch but still pays one Python *call* per
op: every step is a closure invoked through ``step(env)``, and every SSA
value round-trips through the ``env`` dict.  This third tier removes that
too.  Each function is lowered once to real Python source -- one
generated function per IR function, ``compile()``d to bytecode -- with
SSA values as local variables (``v<uid>``; uids are globally unique),
cost constants inlined as literals, and callees/handlers/bound methods
passed in through a factory so they become closure cells.  Arithmetic,
compares, selects and casts become inline expressions; ``scf`` loops
become native ``for``/``while`` statements; clock charges become inline
fast paths against :class:`~repro.memsim.clock.VirtualClock` internals.

On top of the scalar lowering sits a **vectorized bulk path** for the
dominant memref loop shapes the Mira transforms produce (contiguous
scans, strided columnar reductions, memcpy-style moves).  When a
``scf.for`` body matches one of the recognized patterns, the generated
code executes the whole loop as one batch call into the memory system
(``MemorySystem.bulk_load`` / ``bulk_store``, which walk sections
line-at-a-time internally) plus a single Python slice/``sum`` over the
backing data.  The batch call charges the virtual clock in aggregated
steps that are bit-identical in total to the per-element path: it is
only taken when no tracer is attached, no fault plan is installed, the
relevant cost constants are integer-valued (so ``n * c`` equals ``c``
added ``n`` times exactly), and the whole range is in bounds -- in every
other case the generated code falls back to its exact per-element loop,
which emits byte-identical trace JSONL by construction.

Virtual-time parity with the reference interpreter is the same hard
contract the compiled engine honors (``tests/test_engine_parity.py``,
three-way): same clock charges against the same memory-system calls,
with consecutive pure-compute ops batched into one buffered ``charge``
exactly like the compiled engine (bit-identical with the shipped cost
models; see the parity note in :mod:`repro.runtime.engine`).

Select with ``REPRO_ENGINE=codegen``.
"""

from __future__ import annotations

import builtins
import re
from typing import TYPE_CHECKING

from repro.errors import InterpreterError
from repro.ir.core import Block, Function, Operation, Value
from repro.ir.dialects import (
    arith,
    compute,
    func as func_d,
    memref,
    prof,
    remotable,
    rmem,
    scf,
)
from repro.ir.types import FloatType, IndexType, IntType, StructType

if TYPE_CHECKING:
    from repro.runtime.interpreter import Interpreter

#: cap on an inlined bulk-fill expression; longer chains fall back to the
#: per-element loop (duplication through min/max/select could blow up)
_MAX_EXPR_LEN = 400

#: ops lowered to inline expressions (one compute unit each, batched)
_PURE_OPS = (
    arith.ConstantOp,
    arith.BinaryOp,
    arith.CmpOp,
    arith.SelectOp,
    arith.CastOp,
)

#: rare / bookkeeping-heavy ops delegated to the reference handlers
_DELEGATED_OPS = (
    memref.AllocOp,
    remotable.RAllocOp,
    memref.DeallocOp,
    rmem.BatchPrefetchOp,
    rmem.DiscardOp,
    rmem.SectionOpenOp,
    rmem.SectionCloseOp,
    prof.RegionBeginOp,
    prof.RegionEndOp,
)


def _v(val: Value) -> str:
    """The local-variable name of an SSA value (uids are globally unique)."""
    return f"v{val.uid}"


class GeneratedFunction:
    """One function lowered to a compiled Python function."""

    __slots__ = ("name", "nargs", "run", "source")

    def __init__(self, name: str, nargs: int, run, source: str) -> None:
        self.name = name
        self.nargs = nargs
        #: the generated callable: positional args, returns a list
        self.run = run
        #: full generated source (factory + body), kept for the unit tests
        self.source = source


class CodegenEngine:
    """Compiles each function of one module to Python source, once.

    Shares all execution state with its interpreter (clock, memory
    system, far-mode depth, profiler) exactly like the compiled engine;
    rare ops delegate to the reference handlers.
    """

    def __init__(self, interp: "Interpreter") -> None:
        self.interp = interp
        self.module = interp.module
        self.cost = interp.cost
        self._functions: dict[int, GeneratedFunction] = {}
        from repro.baselines.native import NativeMemory

        #: NativeMemory.access is a pure no-op (no stats, no bounds, no
        #: clock): against it, access calls are semantically invisible
        #: and the lowering omits them entirely
        self._elide_access = type(interp.memsys) is NativeMemory
        #: bulk aggregation replaces n unit additions by one ``n * c``
        #: add; exact only when the constants are integer-valued floats
        self._bulk_ok = (
            float(self.cost.dram_access_ns).is_integer()
            and float(self.cost.cpu_op_ns).is_integer()
        )

    # -- execution ---------------------------------------------------------

    def call_function(self, fn: Function, args: list) -> list:
        """Mirror of ``Engine.call_function`` over a generated function."""
        st = self.interp
        gf = self._functions.get(id(fn))
        if gf is None:
            gf = self._compile_function(fn)
        if len(args) != gf.nargs:
            raise InterpreterError(
                f"@{fn.name} called with {len(args)} args, expects {gf.nargs}"
            )
        st.clock.charge(self.cost.call_ns, "compute")
        if st.instrumented:
            st.clock.advance(self.cost.profile_event_ns, "profiling")
        prev_fn = st._current_fn
        st._current_fn = gf.name
        st.profiler.enter(gf.name)
        try:
            return gf.run(*args)
        finally:
            st.profiler.exit(gf.name)
            st._current_fn = prev_fn
            if st.instrumented:
                st.clock.advance(self.cost.profile_event_ns, "profiling")

    def offloaded_invoke(self, fn: Function, args: list) -> list:
        """Mirror of ``Interpreter._offloaded_invoke`` (section 4.8)."""
        st = self.interp
        memsys = st.memsys
        request_bytes = 64
        from repro.runtime.objects import MemRefVal

        for a in args:
            if isinstance(a, MemRefVal):
                memsys.flush(a.obj_id, 0, a.size_bytes)
                memsys.discard(a.obj_id)
                request_bytes += 16
            else:
                request_bytes += 8
        tr = st.tracer
        if tr is not None:
            # mirrored emission point (trace parity contract)
            tr.emit("offload.dispatch", st.clock.now, fn=fn.name, req=request_bytes)
        memsys.network.rpc(request_bytes, 64)
        st._enter_far()
        try:
            return self.call_function(fn, args)
        finally:
            st._exit_far()

    # -- introspection (unit tests) ----------------------------------------

    def generated_source(self, fn_name: str) -> str:
        """The generated source of a function, compiling it if needed."""
        fn = self.module.get(fn_name)
        gf = self._functions.get(id(fn))
        if gf is None:
            gf = self._compile_function(fn)
        return gf.source

    # -- compilation -------------------------------------------------------

    def _compile_function(self, fn: Function) -> GeneratedFunction:
        gf = _FunctionLowering(self, fn).build()
        self._functions[id(fn)] = gf
        return gf


class _FunctionLowering:
    """Lowers one IR function to Python source and compiles it."""

    def __init__(self, eng: CodegenEngine, fn: Function) -> None:
        self.eng = eng
        self.st = eng.interp
        self.cost = eng.cost
        self.fn = fn
        self.lines: list[tuple[int, str]] = []
        self.indent = 2  # inside factory + inside the generated def
        self._pool: list[object] = []
        self._pool_names: list[str] = []
        self._pool_ids: dict[int, str] = {}
        self._tmp = 0
        #: uids of SSA values already assigned at the current emission
        #: point (function args, op results, loop block args); a memref's
        #: backing ``_data`` may only be hoisted once its value exists
        self._defined: set[int] = set()
        #: active hoist scope: ``(ref_uid, field) -> local`` for a
        #: ``_data`` column, ``("n", ref_uid) -> local`` for ``num_elems``;
        #: loop emitters install hoists on entry and restore on exit
        self._hoisted: dict = {}
        #: inside a straight-line fast loop: all clock charges were
        #: hoisted out as ``k * const``, the body is pure data movement
        self._fast = False

    # -- source assembly ---------------------------------------------------

    def out(self, text: str) -> None:
        self.lines.append((self.indent, text))

    def gensym(self, prefix: str = "_t") -> str:
        self._tmp += 1
        return f"{prefix}{self._tmp}"

    def bind(self, obj) -> str:
        """Pass an object into the generated code as a factory parameter."""
        name = self._pool_ids.get(id(obj))
        if name is None:
            name = f"_p{len(self._pool)}"
            self._pool_ids[id(obj)] = name
            self._pool.append(obj)
            self._pool_names.append(name)
        return name

    def build(self) -> GeneratedFunction:
        fn = self.fn
        pyname = "_g_" + re.sub(r"\W", "_", fn.name)
        self._defined.update(a.uid for a in fn.args)
        self.lower_block(fn.body)
        term = fn.body.terminator
        if isinstance(term, func_d.ReturnOp):
            self.out("return [" + ", ".join(_v(x) for x in term.operands) + "]")
        else:
            self.out(f"raise _IE({f'@{fn.name} did not return'!r})")
        params = ", ".join(_v(a) for a in fn.args)
        header = [
            "def _factory(_st, _eng, _IE, _int_div, _int_rem, _access"
            + "".join(f", {n}" for n in self._pool_names)
            + "):",
            f"    def {pyname}({params}):",
            "        _clk = _st.clock",
            "        _cpu = _st._cpu_unit",
            "        _far = _st._far_depth",
        ]
        body = ["    " * ind + text for ind, text in self.lines]
        footer = [f"    return {pyname}"]
        source = "\n".join(header + body + footer) + "\n"
        code = compile(source, f"<repro-codegen:{fn.name}>", "exec")
        g: dict = {"__builtins__": builtins}
        exec(code, g)
        st = self.st
        run = g["_factory"](
            st,
            self.eng,
            InterpreterError,
            _int_div_ref(),
            _int_rem_ref(),
            st.memsys.access,
            *self._pool,
        )
        return GeneratedFunction(fn.name, len(fn.args), run, source)

    # -- clock fast paths --------------------------------------------------

    def emit_charge(self, units: float) -> None:
        """Inline ``clock.charge(units * cpu_unit)`` (category compute)."""
        amt = "_cpu" if units == 1.0 else f"{units!r} * _cpu"
        self.out(f"if _clk._pending_cat == 'compute': _clk._pending += {amt}")
        self.out(f"else: _clk.charge({amt})")

    def emit_advance(self, amt_expr: str, category: str) -> None:
        """Inline ``clock.advance(amt, category)`` (amt known non-negative)."""
        bd = self.gensym("_bd")
        self.out("if _clk._pending: _clk._flush()")
        self.out(f"_clk._now += {amt_expr}")
        self.out(f"{bd} = _clk._breakdown")
        self.out(f"{bd}[{category!r}] = {bd}.get({category!r}, 0.0) + {amt_expr}")
        # the telemetry tick check advance() performs; keeps window-boundary
        # detection ordered identically to the reference engine (one float
        # compare against +inf when telemetry is off)
        self.out(
            "if _clk._now >= _clk._next_tick:"
            " _clk._next_tick = _clk._tick_cb(_clk._now)"
        )

    # -- loop-invariant data hoisting --------------------------------------

    def _note_ref_use(self, ref_v: Value, field, uses: dict) -> None:
        if field is None and isinstance(ref_v.type.elem, StructType):
            return  # whole-struct access reads _data.values(); not hoisted
        uses.setdefault((ref_v.uid, field), ref_v)

    def _collect_ref_uses(self, block: Block, uses: dict) -> None:
        for o in block.ops:
            t = type(o)
            if t in (memref.LoadOp, rmem.RLoadOp):
                if not o.attrs.get("prefetch_stage"):
                    self._note_ref_use(o.operands[0], o.attrs.get("field"), uses)
            elif t in (memref.StoreOp, rmem.RStoreOp):
                self._note_ref_use(o.operands[1], o.attrs.get("field"), uses)
            elif t is scf.ForOp or t is scf.ParallelOp:
                self._collect_ref_uses(o.body, uses)
            elif t is scf.IfOp:
                self._collect_ref_uses(o.then_block, uses)
                self._collect_ref_uses(o.else_block, uses)
            elif t is scf.WhileOp:
                self._collect_ref_uses(o.before, uses)
                self._collect_ref_uses(o.after, uses)

    def emit_hoists(self, blocks: list[Block]) -> dict:
        """Bind the ``_data`` columns and ``num_elems`` of every memref
        accessed under ``blocks`` to locals at a loop entry.

        Loop-invariant by construction: ``MemRefVal.fill`` is the only
        thing that replaces ``_data``, and it only runs while an alloc op
        initializes the fresh ref -- a ref allocated inside the loop is
        not in ``_defined`` at the loop header and is skipped.  Returns
        the previous scope for the caller to restore after the loop.
        """
        saved = self._hoisted
        uses: dict = {}
        for b in blocks:
            self._collect_ref_uses(b, uses)
        if not uses:
            return saved
        scope = dict(saved)
        for (uid, field), ref_v in uses.items():
            if uid not in self._defined or (uid, field) in scope:
                continue
            ref = _v(ref_v)
            d = self.gensym("_d")
            col = f"[{field!r}]" if field is not None else ""
            self.out(f"{d} = {ref}._data{col}")
            scope[(uid, field)] = d
            if ("n", uid) not in scope:
                n = self.gensym("_n")
                self.out(f"{n} = {ref}.num_elems")
                scope[("n", uid)] = n
        self._hoisted = scope
        return saved

    # -- block lowering ----------------------------------------------------

    def lower_block(self, block: Block) -> None:
        """Emit statements for a block's non-terminator ops.

        Pure ops become inline expressions; their unit costs accumulate at
        compile time and flush as one buffered charge before the next
        clock-observable op and at block end (same policy as the compiled
        engine, so the two are bit-identical by construction).
        """
        units = 0.0
        for op in block.ops:
            if op.is_terminator:
                break
            if isinstance(op, _PURE_OPS):
                self.emit_pure(op)
                units += 1.0
            else:
                if units and not self._fast:
                    self.emit_charge(units)
                units = 0.0
                units += self.emit_side(op)
            for r in op.results:
                self._defined.add(r.uid)
        if units and not self._fast:
            self.emit_charge(units)

    # -- pure ops ----------------------------------------------------------

    def pure_expr(self, op: Operation, sub: dict[int, str] | None = None) -> str:
        """The Python expression for a pure op's result.

        ``sub`` optionally maps operand uids to replacement expressions
        (used by the bulk-fill recognizer to inline whole chains).
        """

        def opnd(i: int) -> str:
            val = op.operands[i]
            if sub is not None and val.uid in sub:
                return sub[val.uid]
            return _v(val)

        if isinstance(op, arith.ConstantOp):
            value = op.attrs["value"]
            if isinstance(value, (bool, int, float, str)):
                return repr(value)
            return self.bind(value)
        if isinstance(op, arith.BinaryOp):
            kind = op.attrs["kind"]
            a, b = opnd(0), opnd(1)
            if kind == "div":
                if isinstance(op.result.type, FloatType):
                    return f"({a} / {b})"
                return f"_int_div({a}, {b})"
            if kind == "rem":
                return f"_int_rem({a}, {b})"
            if kind == "min":
                # exactly builtin min(a, b): b wins only when strictly less
                return f"({b} if {b} < {a} else {a})"
            if kind == "max":
                return f"({b} if {a} < {b} else {a})"
            sym = {"add": "+", "sub": "-", "mul": "*",
                   "and": "&", "or": "|", "xor": "^"}[kind]
            return f"({a} {sym} {b})"
        if isinstance(op, arith.CmpOp):
            sym = {"eq": "==", "ne": "!=", "lt": "<",
                   "le": "<=", "gt": ">", "ge": ">="}[op.attrs["pred"]]
            return f"(1 if {opnd(0)} {sym} {opnd(1)} else 0)"
        if isinstance(op, arith.SelectOp):
            return f"({opnd(1)} if {opnd(0)} else {opnd(2)})"
        if isinstance(op, arith.CastOp):
            t = op.result.type
            if isinstance(t, FloatType):
                return f"float({opnd(0)})"
            if isinstance(t, (IntType, IndexType)):
                return f"int({opnd(0)})"
            return None  # error cast: handled statement-side
        raise InterpreterError(f"no codegen expression for {op.opname}")

    def emit_pure(self, op: Operation) -> None:
        expr = self.pure_expr(op)
        if expr is None:  # bad cast target: the error fires at execution
            self.out(f"raise _IE({f'bad cast target {op.result.type}'!r})")
            return
        self.out(f"{_v(op.result)} = {expr}")

    # -- side ops (returns trailing compute units) -------------------------

    def emit_side(self, op: Operation) -> float:
        t = type(op)
        if t in (memref.LoadOp, rmem.RLoadOp):
            return self.emit_load(op)
        if t in (memref.StoreOp, rmem.RStoreOp):
            return self.emit_store(op)
        if t in (memref.TouchOp, rmem.RTouchOp):
            return self.emit_touch(op)
        if t is compute.WorkOp:
            return self.emit_work(op)
        if t is rmem.PrefetchOp:
            return self.emit_hint(op, "prefetch")
        if t is rmem.FlushOp:
            return self.emit_hint(op, "flush")
        if t is rmem.EvictHintOp:
            return self.emit_evict_hint(op)
        if t is scf.ForOp:
            return self.emit_for(op)
        if t is scf.IfOp:
            return self.emit_if(op)
        if t is scf.WhileOp:
            return self.emit_while(op)
        if t is scf.ParallelOp:
            return self.emit_parallel(op)
        if t is func_d.CallOp:
            return self.emit_call(op)
        if t is rmem.OffloadCallOp:
            return self.emit_offload_call(op)
        if isinstance(op, _DELEGATED_OPS):
            return self.emit_delegated(op)
        raise InterpreterError(f"no codegen handler for {op.opname}")

    # -- memory ops --------------------------------------------------------

    def _layout(self, op: Operation, ref_index: int) -> tuple[int, int, int]:
        elem = op.operands[ref_index].type.elem
        esz = elem.byte_size
        field = op.attrs.get("field")
        if field is not None:
            return esz, elem.field_offset(field), elem.field_type(field).byte_size
        return esz, 0, esz

    def _offset_expr(self, idx: str, esz: int, foff: int) -> str:
        expr = idx if esz == 1 else f"{idx} * {esz}"
        if foff:
            expr += f" + {foff}"
        return expr

    def emit_access(
        self, ref: str, off_expr: str, size: int, is_write: bool, native: bool
    ) -> None:
        """Guarded memsys.access call (omitted entirely for NativeMemory,
        whose access() is a pure no-op)."""
        if self.eng._elide_access:
            return
        self.out("if not _far:")
        self.indent += 1
        self.out(f"_access({ref}.obj_id, {off_expr}, {size}, {is_write}, {native})")
        self.indent -= 1

    def emit_load(self, op: Operation) -> float:
        ref, idx, res = _v(op.operands[0]), _v(op.operands[1]), _v(op.result)
        field = op.attrs.get("field")
        if op.attrs.get("prefetch_stage"):
            # stage-1 of a chained prefetch: issue cost only
            self.out(f"{res} = {ref}.load({idx}, {field!r})")
            return 1.0
        esz, foff, size = self._layout(op, 0)
        native = bool(op.attrs.get("native"))
        struct_whole = field is None and isinstance(
            op.operands[0].type.elem, StructType
        )
        if not self._fast:
            self.emit_advance(repr(self.cost.dram_access_ns), "dram")
            self.emit_access(
                ref, self._offset_expr(idx, esz, foff), size, False, native
            )
        col = self._hoisted.get((op.operands[0].uid, field))
        n = self._hoisted.get(("n", op.operands[0].uid)) or f"{ref}.num_elems"
        self.out(f"if type({idx}) is int and 0 <= {idx} < {n}:")
        self.indent += 1
        if struct_whole:
            self.out(f"{res} = tuple(col[{idx}] for col in {ref}._data.values())")
        elif col is not None:
            self.out(f"{res} = {col}[{idx}]")
        elif field is not None:
            self.out(f"{res} = {ref}._data[{field!r}][{idx}]")
        else:
            self.out(f"{res} = {ref}._data[{idx}]")
        self.indent -= 1
        self.out("else:")
        self.indent += 1
        self.out(f"{res} = {ref}.load({idx}, {field!r})")
        self.indent -= 1
        return 1.0

    def emit_store(self, op: Operation) -> float:
        val, ref, idx = _v(op.operands[0]), _v(op.operands[1]), _v(op.operands[2])
        field = op.attrs.get("field")
        esz, foff, size = self._layout(op, 1)
        native = bool(op.attrs.get("native"))
        struct_whole = field is None and isinstance(
            op.operands[1].type.elem, StructType
        )
        if not self._fast:
            self.emit_advance(repr(self.cost.dram_access_ns), "dram")
            self.emit_access(
                ref, self._offset_expr(idx, esz, foff), size, True, native
            )
        if struct_whole:
            # whole-struct stores are an error; keep the reference message
            self.out(f"{ref}.store({idx}, {val}, None)")
            return 1.0
        col = self._hoisted.get((op.operands[1].uid, field))
        n = self._hoisted.get(("n", op.operands[1].uid)) or f"{ref}.num_elems"
        self.out(f"if type({idx}) is int and 0 <= {idx} < {n}:")
        self.indent += 1
        if col is not None:
            self.out(f"{col}[{idx}] = {val}")
        elif field is not None:
            self.out(f"{ref}._data[{field!r}][{idx}] = {val}")
        else:
            self.out(f"{ref}._data[{idx}] = {val}")
        self.indent -= 1
        self.out("else:")
        self.indent += 1
        self.out(f"{ref}.store({idx}, {val}, {field!r})")
        self.indent -= 1
        return 1.0

    def emit_touch(self, op: Operation) -> float:
        ref, start = _v(op.operands[0]), _v(op.operands[1])
        length = op.attrs["length"]
        is_write = op.attrs["is_write"]
        stream_ns = length / self.cost.dram_stream_bpns
        self.out(f"if {start} < 0 or {start} + {length} > {ref}.size_bytes:")
        self.indent += 1
        self.out(
            f'raise _IE(f"touch [{{{start}}}, {{{start} + {length}}}) out of '
            f'bounds for {{{ref}.name or {ref}.obj_id}} ({{{ref}.size_bytes}} B)")'
        )
        self.indent -= 1
        if self._fast:  # stream charge hoisted; bounds check kept above
            return 1.0
        self.emit_advance(repr(stream_ns), "dram_stream")
        if not self.eng._elide_access:
            self.out("if not _far:")
            self.indent += 1
            self.out(f"_access({ref}.obj_id, {start}, {length}, {is_write})")
            self.indent -= 1
        return 1.0

    def emit_work(self, op: compute.WorkOp) -> float:
        if self._fast:  # base-rate work ns hoisted into the loop charge
            return 0.0
        # advance (not charge): replicate the reference's flush-then-add
        base = op.units * self.cost.cpu_op_ns
        slow = base * self.cost.far_cpu_slowdown
        w = self.gensym("_w")
        self.out(f"{w} = {slow!r} if _far else {base!r}")
        self.emit_advance(w, "compute")
        return 0.0

    # -- rmem hints --------------------------------------------------------

    def emit_hint(self, op: Operation, method: str) -> float:
        if self._fast:  # native hint methods are no-ops; unit cost hoisted
            return 0.0
        ref, idx = _v(op.operands[0]), _v(op.operands[1])
        count = op.attrs["count"]
        esz = op.operands[0].type.elem.byte_size
        call = self.bind(getattr(self.st.memsys, method))
        self.emit_charge(1.0)
        self.out(f"if 0 <= {idx} < {ref}.num_elems:")
        self.indent += 1
        n = self.gensym("_n")
        self.out(f"{n} = min({count}, {ref}.num_elems - {idx})")
        self.out(f"{call}({ref}.obj_id, {idx} * {esz}, {n} * {esz})")
        self.indent -= 1
        return 0.0

    def emit_evict_hint(self, op: Operation) -> float:
        if self._fast:  # native hint methods are no-ops; unit cost hoisted
            return 0.0
        ref, idx = _v(op.operands[0]), _v(op.operands[1])
        esz = op.operands[0].type.elem.byte_size
        if op.attrs["mode"] == "trailing":
            call = self.bind(self.st.memsys.evict_hint_trailing)
            self.emit_charge(1.0)
            self.out(
                f"{call}({ref}.obj_id, "
                f"min(max({idx}, 0), {ref}.num_elems - 1) * {esz})"
            )
            return 0.0
        count = op.attrs["count"]
        call = self.bind(self.st.memsys.evict_hint)
        self.emit_charge(1.0)
        self.out(f"if 0 <= {idx} < {ref}.num_elems:")
        self.indent += 1
        n = self.gensym("_n")
        self.out(f"{n} = min({count}, {ref}.num_elems - {idx})")
        self.out(f"{call}({ref}.obj_id, {idx} * {esz}, {n} * {esz})")
        self.indent -= 1
        return 0.0

    # -- control flow ------------------------------------------------------

    def _assign(self, lhs: list[str], rhs: list[str]) -> None:
        pairs = [(a, b) for a, b in zip(lhs, rhs) if a != b]
        if not pairs:
            return
        if len(pairs) == 1:
            self.out(f"{pairs[0][0]} = {pairs[0][1]}")
        else:  # tuple assign: RHS fully evaluated first (permutation-safe)
            self.out(
                ", ".join(a for a, _ in pairs)
                + " = "
                + ", ".join(b for _, b in pairs)
            )

    def emit_for(self, op: scf.ForOp) -> float:
        bulk = self._match_bulk(op) if self.eng._bulk_ok else None
        if bulk is not None:
            self.out(f"if {bulk['gate']}:")
            self.indent += 1
            for line in bulk["body"]:
                self.out(line)
            self.indent -= 1
            self.out("else:")
            self.indent += 1
            self._emit_for_scalar(op)
            self.indent -= 1
        else:
            self._emit_for_scalar(op)
        return 0.0

    def _emit_for_scalar(self, op: scf.ForOp) -> None:
        """A scf.for as a native loop: the straight-line fast tier when
        the body qualifies (charges hoisted out), else the general tier."""
        sl = None
        if self.eng._elide_access and self.eng._bulk_ok:
            sl = self._match_straightline(op)
        if sl is None:
            self._emit_for_general(op)
            return
        self.out("if not _far:")
        self.indent += 1
        self._emit_for_fast(op, sl)
        self.indent -= 1
        self.out("else:")
        self.indent += 1
        self._emit_for_general(op)
        self.indent -= 1

    def _for_shape(self, op: scf.ForOp):
        body = op.body
        term = body.terminator
        return (
            [_v(op.operands[i]) for i in range(3)],
            _v(body.args[0]),
            [_v(a) for a in body.args[1:]],
            [_v(x) for x in op.operands[3:]],
            [_v(x) for x in term.operands] if term is not None else [],
            [_v(r) for r in op.results],
        )

    def _emit_for_general(self, op: scf.ForOp) -> None:
        (lb, ub, step), iv, args, inits, yields, res = self._for_shape(op)
        body = op.body
        self.out(f"if {step} <= 0:")
        self.indent += 1
        self.out(
            f'raise _IE(f"scf.for with non-positive step {{{step}}}")'
        )
        self.indent -= 1
        self._assign(args, inits)
        self._defined.update(a.uid for a in body.args)
        saved = self.emit_hoists([body])
        self.out(f"for {iv} in range({lb}, {ub}, {step}):")
        self.indent += 1
        self.lower_block(body)
        self._assign(args, yields)
        self.emit_charge(1.0)  # loop back-edge
        self.indent -= 1
        self._assign(res, args)
        self._hoisted = saved

    def _match_straightline(self, op: scf.ForOp) -> dict | None:
        """Per-iteration clock cost of a straight-line body, or None.

        Against NativeMemory (access/hints are pure no-ops, nothing is
        traced per element) a body of loads/stores/pures/touch/work/hints
        charges a compile-time-constant amount per iteration: the whole
        loop's clock movement hoists out as ``k * const`` (exact because
        every constant involved is an integer-valued float), leaving pure
        data movement inside.  Error paths (bad index, touch bounds) stop
        charging early but propagate out of run(), where nothing observes
        the clock; iteration counts and charges diverge only on the way
        to that raise.
        """
        term = op.body.terminator
        if term is not None and not isinstance(term, scf.YieldOp):
            return None
        dram = 0  # dram advances per iteration (loads + stores)
        stream = 0.0  # touch ns per iteration (dram_stream)
        units = 1.0  # compute units per iteration, incl. the back-edge
        work = 0.0  # compute.work ns per iteration (base rate: not far)
        for o in op.body.ops:
            if o.is_terminator:
                continue
            t = type(o)
            if isinstance(o, _PURE_OPS):
                if isinstance(o, arith.CastOp) and self.pure_expr(o) is None:
                    return None  # bad cast raises per-element
                units += 1.0
            elif t in (memref.LoadOp, rmem.RLoadOp):
                if not o.attrs.get("prefetch_stage"):
                    dram += 1
                units += 1.0
            elif t in (memref.StoreOp, rmem.RStoreOp):
                if o.attrs.get("field") is None and isinstance(
                    o.operands[1].type.elem, StructType
                ):
                    return None  # whole-struct store raises per-element
                dram += 1
                units += 1.0
            elif t in (memref.TouchOp, rmem.RTouchOp):
                ns = o.attrs["length"] / self.cost.dram_stream_bpns
                if not float(ns).is_integer():
                    return None
                stream += ns
                units += 1.0
            elif t is compute.WorkOp:
                base = o.units * self.cost.cpu_op_ns
                if not float(base).is_integer():
                    return None
                work += base
            elif t in (rmem.PrefetchOp, rmem.FlushOp, rmem.EvictHintOp):
                units += 1.0
            else:
                return None  # control flow / calls / delegated: general
        return {"dram": dram, "stream": stream, "units": units, "work": work}

    def _emit_for_fast(self, op: scf.ForOp, sl: dict) -> None:
        """The straight-line tier: clock charges hoisted out of the loop
        as one dram advance, one stream advance and one buffered compute
        charge scaled by the trip count; the body is pure data movement."""
        (lb, ub, step), iv, args, inits, yields, res = self._for_shape(op)
        body = op.body
        self.out(f"if {step} <= 0:")
        self.indent += 1
        self.out(
            f'raise _IE(f"scf.for with non-positive step {{{step}}}")'
        )
        self.indent -= 1
        self._assign(args, inits)
        self._defined.update(a.uid for a in body.args)
        saved = self.emit_hoists([body])
        k = self.gensym("_k")
        self.out(f"{k} = len(range({lb}, {ub}, {step}))")
        self.out(f"if {k}:")
        self.indent += 1
        if sl["dram"]:
            self.emit_advance(
                f"{k} * {sl['dram'] * self.cost.dram_access_ns!r}", "dram"
            )
        if sl["stream"]:
            self.emit_advance(f"{k} * {sl['stream']!r}", "dram_stream")
        per_iter = f"{sl['units']!r} * _cpu"
        if sl["work"]:
            per_iter = f"({per_iter} + {sl['work']!r})"
        self.out(
            f"if _clk._pending_cat == 'compute': _clk._pending += {k} * {per_iter}"
        )
        self.out(f"else: _clk.charge({k} * {per_iter})")
        self.indent -= 1
        self.out(f"for {iv} in range({lb}, {ub}, {step}):")
        self.indent += 1
        self._fast = True
        self.lower_block(body)
        self._fast = False
        self._assign(args, yields)
        self.indent -= 1
        self._assign(res, args)
        self._hoisted = saved

    def emit_if(self, op: scf.IfOp) -> float:
        cond = _v(op.operands[0])
        res_names = [_v(r) for r in op.results]
        self.out(f"if {cond}:")
        for blk in (op.then_block, op.else_block):
            self.indent += 1
            self.emit_charge(1.0)
            self.lower_block(blk)
            term = blk.terminator
            if res_names:
                if term is None:
                    self.out(
                        f"raise _IE({'scf.if arm missing yield for results'!r})"
                    )
                else:
                    self._assign(res_names, [_v(x) for x in term.operands])
            self.indent -= 1
            if blk is op.then_block:
                self.out("else:")
        return 0.0

    def emit_while(self, op: scf.WhileOp) -> float:
        before, after = op.before, op.after
        cond_term = before.terminator
        assert isinstance(cond_term, scf.ConditionOp)
        cond = _v(cond_term.operands[0])
        fwd_names = [_v(x) for x in cond_term.operands[1:]]
        after_term = after.terminator
        yield_names = (
            [_v(x) for x in after_term.operands] if after_term is not None else []
        )
        init_names = [_v(x) for x in op.operands]
        before_args = [_v(a) for a in before.args]
        after_args = [_v(a) for a in after.args]
        res_names = [_v(r) for r in op.results]
        w = self.gensym("_wh")
        self._assign(before_args, init_names)
        self._defined.update(a.uid for a in before.args)
        self._defined.update(a.uid for a in after.args)
        saved = self.emit_hoists([before, after])
        self.out(f"for {w} in range(100000000):")
        self.indent += 1
        self.lower_block(before)
        self.emit_charge(1.0)
        self.out(f"if not {cond}:")
        self.indent += 1
        self._assign(res_names, fwd_names)
        self.out("break")
        self.indent -= 1
        self._assign(after_args, fwd_names)
        self.lower_block(after)
        self._assign(before_args, yield_names)
        self.indent -= 1
        self.out("else:")
        self.indent += 1
        self.out(f"raise _IE({'scf.while exceeded iteration limit'!r})")
        self.indent -= 1
        self._hoisted = saved
        return 0.0

    def emit_parallel(self, op: scf.ParallelOp) -> float:
        lb, ub, step = (_v(op.operands[i]) for i in range(3))
        iv = _v(op.body.args[0])
        num_threads = op.attrs["num_threads"]
        has_tid = hasattr(self.st.memsys, "current_thread")
        g = self.gensym("_pl")
        it, nt, per, ch = f"{g}i", f"{g}n", f"{g}p", f"{g}c"
        ms, nw, blf, le, tcs, fl, tr = (
            f"{g}m", f"{g}w", f"{g}b", f"{g}e", f"{g}k", f"{g}f", f"{g}t",
        )
        tid, chunk, tclk, bclk = f"{g}d", f"{g}h", f"{g}q", f"{g}z"
        self.out(f"{it} = list(range({lb}, {ub}, {step}))")
        self.out(f"{nt} = min({num_threads}, max(1, len({it})))")
        self.out(f"{per} = (len({it}) + {nt} - 1) // {nt}")
        self.out(
            f"{ch} = [{it}[_t * {per}:(_t + 1) * {per}] for _t in range({nt})]"
        )
        self.out(f"{ms} = _st.memsys")
        self.out(f"{bclk} = _clk")
        self.out(f"{nw} = {ms}.network")
        self.out(f"{blf} = {nw}._link_free_at")
        self.out(f"{le} = []")
        self.out(f"{tcs} = []")
        self.out(f"{nw}.contention = {nt}")
        self.out(f"{fl} = getattr({ms}, 'fault_lock', None)")
        self.out(f"if {fl} is not None: {fl}.contention = {nt}")
        self.out(f"{tr} = _st.tracer")
        self._defined.add(op.body.args[0].uid)
        saved = self.emit_hoists([op.body])
        self.out(f"for {tid}, {chunk} in enumerate({ch}):")
        self.indent += 1
        self.out(f"{tclk} = {bclk}.fork()")
        self.out(f"{nw}._link_free_at = {blf}")
        self.out(f"_st._set_active_clock({tclk})")
        self.out(f"_clk = {tclk}")
        if has_tid:
            self.out(f"{ms}.current_thread = {tid}")
        self.out(f"if {tr} is not None:")
        self.indent += 1
        # mirrored emission point (trace parity contract)
        self.out(
            f"{tr}.emit('thread.fork', {tclk}.now, tid={tid}, iters=len({chunk}))"
        )
        self.indent -= 1
        self.out(f"for {iv} in {chunk}:")
        self.indent += 1
        self.lower_block(op.body)
        self.emit_charge(1.0)
        self.indent -= 1
        self.out(f"{tcs}.append({tclk})")
        self.out(f"{le}.append({nw}._link_free_at)")
        self.indent -= 1
        self.out(f"{nw}.contention = 1")
        self.out(f"{nw}._link_free_at = max({le}, default={blf})")
        self.out(f"if {fl} is not None: {fl}.contention = 1")
        self.out(f"_st._set_active_clock({bclk})")
        self.out(f"_clk = {bclk}")
        if has_tid:
            self.out(f"{ms}.current_thread = 0")
        self.out(f"for {tclk} in {tcs}:")
        self.indent += 1
        self.out(f"{bclk}.join({tclk})")
        self.indent -= 1
        self.out(f"if {tr} is not None:")
        self.indent += 1
        self.out(f"{tr}.emit('thread.join', {bclk}.now, threads={nt})")
        self.indent -= 1
        self._hoisted = saved
        return 0.0

    # -- calls -------------------------------------------------------------

    def _emit_call_results(self, op: Operation, call_expr: str) -> None:
        res = [_v(r) for r in op.results]
        if not res:
            self.out(call_expr)
        elif len(res) == 1:
            self.out(f"{res[0]} = {call_expr}[0]")
        else:
            self.out(", ".join(res) + f" = {call_expr}")

    def emit_call(self, op: func_d.CallOp) -> float:
        callee = self.eng.module.get(op.attrs["callee"])
        cal = self.bind(callee)
        args = "[" + ", ".join(_v(x) for x in op.operands) + "]"
        if callee.is_offloaded:
            expr = (
                f"(_eng.call_function({cal}, {args}) if _far "
                f"else _eng.offloaded_invoke({cal}, {args}))"
            )
        else:
            expr = f"_eng.call_function({cal}, {args})"
        self._emit_call_results(op, expr)
        return 0.0

    def emit_offload_call(self, op: rmem.OffloadCallOp) -> float:
        callee = self.eng.module.get(op.attrs["callee"])
        cal = self.bind(callee)
        args = "[" + ", ".join(_v(x) for x in op.operands) + "]"
        self._emit_call_results(op, f"_eng.offloaded_invoke({cal}, {args})")
        return 0.0

    # -- delegation to the reference interpreter ---------------------------

    def emit_delegated(self, op: Operation) -> float:
        handler = self.bind(self.st._dispatch[type(op)])
        opref = self.bind(op)
        env = self.gensym("_env")
        items = ", ".join(f"{x.uid}: {_v(x)}" for x in op.operands)
        self.out(f"{env} = {{{items}}}")
        self.out(f"{handler}({opref}, {env})")
        for r in op.results:
            self.out(f"{_v(r)} = {env}[{r.uid}]")
        return 0.0

    # -- bulk memref recognition -------------------------------------------

    def _match_bulk(self, op: scf.ForOp) -> dict | None:
        """Recognize reduce/fill/copy loops; returns gate + bulk body."""
        body = op.body
        term = body.terminator
        if not isinstance(term, scf.YieldOp):
            return None
        real = [o for o in body.ops if o is not term]
        if len(real) != len(body.ops) - 1:
            return None
        m = self._match_reduce(op, body, term, real)
        if m is None:
            m = self._match_fill(op, body, term, real)
        if m is None:
            m = self._match_copy(op, body, term, real)
        return m

    def _load_parts(self, load: Operation) -> tuple | None:
        """(ref value, field, esz, foff, size, native, data_expr_suffix) of
        a plain single-element load/store ref, or None if not bulk-able."""
        ref_v = load.operands[0] if not isinstance(
            load, (memref.StoreOp, rmem.RStoreOp)
        ) else load.operands[1]
        field = load.attrs.get("field")
        elem = ref_v.type.elem
        if field is None and isinstance(elem, StructType):
            return None  # whole-struct values cannot vectorize
        esz = elem.byte_size
        if field is not None:
            foff = elem.field_offset(field)
            size = elem.field_type(field).byte_size
            data = f"._data[{field!r}]"
        else:
            foff, size, data = 0, esz, "._data"
        native = bool(load.attrs.get("native"))
        return ref_v, field, esz, foff, size, native, data

    def _bulk_gate(
        self, op: scf.ForOp, refs: list[str], extra: str = ""
    ) -> str:
        lb, ub, step = (_v(op.operands[i]) for i in range(3))
        parts = [
            "_st.tracer is None",
            "not _far",
            f"type({lb}) is int",
            f"type({ub}) is int",
            f"type({step}) is int",
            f"{step} > 0",
            f"0 <= {lb}",
        ]
        for ref in refs:
            parts.append(f"0 <= {ub} <= {ref}.num_elems")
        if extra:
            parts.append(extra)
        return " and ".join(parts)

    def _match_reduce(self, op, body, term, real) -> dict | None:
        """acc = init; for i: acc = acc + A[i]  ->  sum(slice, init)."""
        if len(op.operands) != 4 or len(op.results) != 1 or len(real) != 2:
            return None
        load, binop = real
        if not isinstance(load, (memref.LoadOp, rmem.RLoadOp)):
            return None
        if not isinstance(binop, arith.BinaryOp):
            return None
        iv, acc = body.args[0], body.args[1]
        if (
            load.attrs.get("prefetch_stage")
            or load.operands[1] is not iv
            or binop.attrs["kind"] != "add"
            or binop.operands[0] is not acc
            or binop.operands[1] is not load.result
            or len(term.operands) != 1
            or term.operands[0] is not binop.result
        ):
            return None
        parts = self._load_parts(load)
        if parts is None:
            return None
        ref_v, _field, esz, foff, size, native, data = parts
        if ref_v is iv or ref_v is acc:
            return None
        ref = _v(ref_v)
        lb, ub, step = (_v(op.operands[i]) for i in range(3))
        init = _v(op.operands[3])
        res = _v(op.results[0])
        blk = self.bind(self.st.memsys.bulk_load)
        # 3 units/iter: load + add + back-edge
        call = (
            f"{blk}({ref}.obj_id, {lb} * {esz}{f' + {foff}' if foff else ''}, "
            f"{step} * {esz}, {size}, len(range({lb}, {ub}, {step})), {native}, "
            f"{self.cost.dram_access_ns!r}, 3.0 * _cpu)"
        )
        return {
            "gate": self._bulk_gate(op, [ref], call),
            "body": [f"{res} = sum({ref}{data}[{lb}:{ub}:{step}], {init})"],
        }

    def _match_fill(self, op, body, term, real) -> dict | None:
        """for i: A[i] = f(i)  ->  slice-assign a comprehension."""
        if len(op.operands) != 3 or op.results or len(term.operands) != 0:
            return None
        if not real or not isinstance(real[-1], (memref.StoreOp, rmem.RStoreOp)):
            return None
        store = real[-1]
        pures = real[:-1]
        iv = body.args[0]
        if store.operands[2] is not iv:
            return None
        parts = self._load_parts(store)
        if parts is None:
            return None
        ref_v, _field, esz, foff, size, native, data = parts
        if ref_v is iv:
            return None
        val_v = store.operands[0]
        # every pure must feed the stored value: the comprehension only
        # evaluates reachable expressions, and a skipped op that would
        # raise per-element (e.g. a dead div-by-zero) must not vanish
        used = {val_v.uid}
        for p in reversed(pures):
            if not isinstance(p, _PURE_OPS) or p.result.uid not in used:
                return None
            for o in p.operands:
                used.add(o.uid)
        # inline the pure chain into one expression of the induction var
        sub: dict[int, str] = {}
        for p in pures:
            expr = self.pure_expr(p, sub)
            if expr is None or len(expr) > _MAX_EXPR_LEN:
                return None
            sub[p.result.uid] = expr
        val_expr = sub.get(val_v.uid, _v(val_v))
        ref = _v(ref_v)
        lb, ub, step = (_v(op.operands[i]) for i in range(3))
        bst = self.bind(self.st.memsys.bulk_store)
        units = float(len(pures) + 2)  # pures + store + back-edge
        call = (
            f"{bst}({ref}.obj_id, {lb} * {esz}{f' + {foff}' if foff else ''}, "
            f"{step} * {esz}, {size}, len(range({lb}, {ub}, {step})), {native}, "
            f"{self.cost.dram_access_ns!r}, {units!r} * _cpu)"
        )
        return {
            "gate": self._bulk_gate(op, [ref], call),
            "body": [
                f"{ref}{data}[{lb}:{ub}:{step}] = "
                f"[{val_expr} for {_v(iv)} in range({lb}, {ub}, {step})]"
            ],
        }

    def _match_copy(self, op, body, term, real) -> dict | None:
        """for i: B[i] = A[i]  ->  slice copy (native memory only: the
        per-element path interleaves two access streams, which only a
        no-op access() lets us reorder into one aggregate)."""
        if not self.eng._elide_access:
            return None
        if len(op.operands) != 3 or op.results or len(term.operands) != 0:
            return None
        if len(real) != 2:
            return None
        load, store = real
        if not isinstance(load, (memref.LoadOp, rmem.RLoadOp)):
            return None
        if not isinstance(store, (memref.StoreOp, rmem.RStoreOp)):
            return None
        iv = body.args[0]
        if (
            load.attrs.get("prefetch_stage")
            or load.operands[1] is not iv
            or store.operands[2] is not iv
            or store.operands[0] is not load.result
        ):
            return None
        lp = self._load_parts(load)
        sp = self._load_parts(store)
        if lp is None or sp is None:
            return None
        src_v, _sf, _se, _so, _ss, _sn, src_data = lp
        dst_v, _df, _de, _do, _ds, _dn, dst_data = sp
        if src_v is iv or dst_v is iv:
            return None
        src, dst = _v(src_v), _v(dst_v)
        lb, ub, step = (_v(op.operands[i]) for i in range(3))
        k = self.gensym("_k")
        dram2 = 2.0 * self.cost.dram_access_ns
        body_lines = [
            f"{k} = len(range({lb}, {ub}, {step}))",
            f"if {k}:",
            # per iter: two dram advances + 3 compute units (load, store,
            # back-edge); exact because the constants are integer-valued
            f"    _clk.advance({k} * {dram2!r}, 'dram')",
            f"    _clk.charge({k} * 3.0 * _cpu)",
            f"{dst}{dst_data}[{lb}:{ub}:{step}] = {src}{src_data}[{lb}:{ub}:{step}]",
        ]
        return {
            "gate": self._bulk_gate(op, [src, dst] if src != dst else [src]),
            "body": body_lines,
        }


def _int_div_ref():
    from repro.runtime.interpreter import _int_div

    return _int_div


def _int_rem_ref():
    from repro.runtime.interpreter import _int_rem

    return _int_rem
