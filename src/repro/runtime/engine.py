"""Block-compiled execution engine.

The reference :class:`~repro.runtime.interpreter.Interpreter` pays a
``type(op)`` dict dispatch, a handler call, and a chain of attribute
lookups for *every* op it executes.  This module removes that cost by
compiling each :class:`~repro.ir.core.Block` once into a flat list of
specialized Python closures: operand ``uid``s, struct field offsets,
element sizes, cost constants, and dispatch decisions are all bound at
compile time, so executing a block is a tight ``for step in steps:
step(env)`` loop.  Loop ops (``scf.for``/``scf.while``/``scf.parallel``)
reuse their compiled body across iterations, and functions compile once
per run (GPT-2 calls the same layer function hundreds of times).

Virtual-time parity with the reference interpreter is a hard contract
(``tests/test_engine_parity.py``): the engine issues the same clock
charges, in the same order, against the same memory-system calls.  The
only accounting difference is mechanical: consecutive pure-compute ops
(arith, casts, ``compute.work``) are charged as one
:meth:`~repro.memsim.clock.VirtualClock.charge` of their summed units,
which the clock buffers and flushes before any observable read.  With the
shipped cost models this is bit-identical to per-op ``advance`` calls
(unit costs are exactly representable and virtual times stay far below
2**53 ns), and the parity suite enforces exact equality of ``elapsed_ns``,
breakdowns, and results on every workload.

Rare ops with complicated bookkeeping (alloc/dealloc, sections, profiling
markers, discard, batched prefetch) delegate to the reference handlers --
they are off the hot path, and delegation keeps one source of truth.

Fault injection (``repro.faults``) needs no engine-specific code: the
injector's RNG is consumed, and every ``fault.*``/``retry.*`` trace event
emitted, inside the shared :class:`~repro.memsim.network.Network` and
:class:`~repro.memsim.farnode.FarMemoryNode` methods that both engines
call in the same order at the same virtual times -- so the parity
contract (including byte-identical traces) holds under a seeded fault
plan by construction, and the parity suite exercises exactly that.

Select the engine with ``REPRO_ENGINE`` (``compiled`` is the default;
``reference`` opts out and keeps the original interpreter).
"""

from __future__ import annotations

import os
from typing import TYPE_CHECKING, Callable

from repro.errors import InterpreterError
from repro.ir.core import Block, Function, Operation
from repro.ir.dialects import (
    arith,
    compute,
    func as func_d,
    memref,
    prof,
    remotable,
    rmem,
    scf,
)
from repro.ir.types import FloatType, IndexType, IntType, StructType
from repro.runtime.objects import MemRefVal

if TYPE_CHECKING:
    from repro.runtime.interpreter import Interpreter

#: environment variable selecting the engine; ``reference`` opts out
ENGINE_ENV = "REPRO_ENGINE"
DEFAULT_ENGINE = "compiled"
ENGINES = ("compiled", "reference", "codegen")

Step = Callable[[dict], None]


def engine_from_env() -> str:
    """The engine name selected by ``REPRO_ENGINE`` (default: compiled)."""
    name = os.environ.get(ENGINE_ENV, DEFAULT_ENGINE).strip() or DEFAULT_ENGINE
    if name not in ENGINES:
        raise InterpreterError(
            f"unknown {ENGINE_ENV}={name!r}; expected one of {ENGINES}"
        )
    return name


class CompiledFunction:
    """One function lowered to prebound closures."""

    __slots__ = ("name", "arg_uids", "steps", "ret_uids")

    def __init__(
        self,
        name: str,
        arg_uids: tuple[int, ...],
        steps: list[Step],
        ret_uids: tuple[int, ...] | None,
    ) -> None:
        self.name = name
        self.arg_uids = arg_uids
        self.steps = steps
        #: None when the body does not end in ``func.return``
        self.ret_uids = ret_uids


class Engine:
    """Compiles and runs one module's functions for one interpreter run.

    The engine shares all execution *state* with its interpreter (clock,
    memory system, far-mode depth, profiler) so the two can interleave:
    compiled closures handle the hot path while rare ops delegate to the
    reference handlers.
    """

    def __init__(self, interp: "Interpreter") -> None:
        self.interp = interp
        self.module = interp.module
        self.cost = interp.cost
        self._functions: dict[int, CompiledFunction] = {}

    # -- execution ---------------------------------------------------------

    def call_function(self, fn: Function, args: list) -> list:
        """Mirror of ``Interpreter._call_function`` over compiled steps."""
        st = self.interp
        cf = self._functions.get(id(fn))
        if cf is None:
            cf = self._compile_function(fn)
        arg_uids = cf.arg_uids
        if len(args) != len(arg_uids):
            raise InterpreterError(
                f"@{fn.name} called with {len(args)} args, "
                f"expects {len(arg_uids)}"
            )
        st.clock.charge(self.cost.call_ns, "compute")
        if st.instrumented:
            st.clock.advance(self.cost.profile_event_ns, "profiling")
        prev_fn = st._current_fn
        st._current_fn = cf.name
        st.profiler.enter(cf.name)
        env: dict[int, object] = {}
        for uid, actual in zip(arg_uids, args):
            env[uid] = actual
        try:
            for step in cf.steps:
                step(env)
            if cf.ret_uids is None:
                raise InterpreterError(f"@{cf.name} did not return")
            return [env[u] for u in cf.ret_uids]
        finally:
            st.profiler.exit(cf.name)
            st._current_fn = prev_fn
            if st.instrumented:
                st.clock.advance(self.cost.profile_event_ns, "profiling")

    def offloaded_invoke(self, fn: Function, args: list) -> list:
        """Mirror of ``Interpreter._offloaded_invoke`` (section 4.8)."""
        st = self.interp
        memsys = st.memsys
        request_bytes = 64
        for a in args:
            if isinstance(a, MemRefVal):
                memsys.flush(a.obj_id, 0, a.size_bytes)
                memsys.discard(a.obj_id)
                request_bytes += 16
            else:
                request_bytes += 8
        tr = st.tracer
        if tr is not None:
            # mirrored emission point: keep identical to the reference
            # interpreter's _offloaded_invoke (trace parity contract)
            tr.emit("offload.dispatch", st.clock.now, fn=fn.name, req=request_bytes)
        memsys.network.rpc(request_bytes, 64)
        st._enter_far()
        try:
            return self.call_function(fn, args)
        finally:
            st._exit_far()

    # -- compilation -------------------------------------------------------

    def _compile_function(self, fn: Function) -> CompiledFunction:
        term = fn.body.terminator
        ret_uids = (
            tuple(v.uid for v in term.operands)
            if isinstance(term, func_d.ReturnOp)
            else None
        )
        cf = CompiledFunction(
            fn.name,
            tuple(a.uid for a in fn.args),
            self._compile_block(fn.body),
            ret_uids,
        )
        self._functions[id(fn)] = cf
        return cf

    def _compile_block(self, block: Block) -> list[Step]:
        """Lower a block's non-terminator ops to a flat step list.

        Pure compute ops contribute only env updates; their unit costs are
        summed at compile time and emitted as one buffered ``charge`` per
        run, placed before the next clock-observable step.
        """
        st = self.interp
        steps: list[Step] = []
        units = 0.0

        def flush_units() -> None:
            nonlocal units
            if units:
                u = units
                if u == 1.0:

                    def charge_one(env, st=st):
                        st.clock.charge(st._cpu_unit)

                    steps.append(charge_one)
                else:

                    def charge_n(env, st=st, u=u):
                        st.clock.charge(u * st._cpu_unit)

                    steps.append(charge_n)
                units = 0.0

        for op in block.ops:
            if op.is_terminator:
                break
            t = type(op)
            pure = _PURE_EMITTERS.get(t)
            if pure is not None:
                steps.append(pure(op))
                units += 1.0
                continue
            emit = _SIDE_EMITTERS.get(t)
            if emit is None:
                raise InterpreterError(f"no compiled handler for {op.opname}")
            flush_units()
            step, trailing = emit(self, op)
            steps.append(step)
            units += trailing
        flush_units()
        return steps

    # -- memory ops --------------------------------------------------------

    def _layout(self, op: Operation, ref_index: int) -> tuple[int, int, int]:
        """(elem_size, field_offset, access_size) from the static ref type."""
        elem = op.operands[ref_index].type.elem
        esz = elem.byte_size
        field = op.attrs.get("field")
        if field is not None:
            return esz, elem.field_offset(field), elem.field_type(field).byte_size
        return esz, 0, esz

    def _emit_load(self, op: Operation) -> tuple[Step, float]:
        st = self.interp
        ref_u = op.operands[0].uid
        idx_u = op.operands[1].uid
        res_u = op.result.uid
        field = op.attrs.get("field")
        if op.attrs.get("prefetch_stage"):
            # stage-1 of a chained prefetch: async read of an
            # already-prefetched line -- issue cost only
            def load_staged(env, ref_u=ref_u, idx_u=idx_u, res_u=res_u, field=field):
                ref: MemRefVal = env[ref_u]
                env[res_u] = ref.load(env[idx_u], field)

            return load_staged, 1.0

        esz, foff, size = self._layout(op, 0)
        dram = self.cost.dram_access_ns
        native = bool(op.attrs.get("native"))
        access = st.memsys.access
        struct_whole = field is None and isinstance(
            op.operands[0].type.elem, StructType
        )

        if field is not None:

            def load_field(
                env,
                st=st,
                ref_u=ref_u,
                idx_u=idx_u,
                res_u=res_u,
                field=field,
                esz=esz,
                foff=foff,
                size=size,
                dram=dram,
                native=native,
                access=access,
            ):
                ref: MemRefVal = env[ref_u]
                idx = env[idx_u]
                st.clock.advance(dram, "dram")
                if not st._far_depth:
                    access(ref.obj_id, idx * esz + foff, size, False, native)
                if type(idx) is int and 0 <= idx < ref.num_elems:
                    env[res_u] = ref._data[field][idx]
                else:
                    env[res_u] = ref.load(idx, field)  # bool index / errors

            return load_field, 1.0

        if struct_whole:

            def load_struct(
                env,
                st=st,
                ref_u=ref_u,
                idx_u=idx_u,
                res_u=res_u,
                esz=esz,
                dram=dram,
                native=native,
                access=access,
            ):
                ref: MemRefVal = env[ref_u]
                idx = env[idx_u]
                st.clock.advance(dram, "dram")
                if not st._far_depth:
                    access(ref.obj_id, idx * esz, esz, False, native)
                if type(idx) is int and 0 <= idx < ref.num_elems:
                    env[res_u] = tuple(col[idx] for col in ref._data.values())
                else:
                    env[res_u] = ref.load(idx, None)

            return load_struct, 1.0

        def load_scalar(
            env,
            st=st,
            ref_u=ref_u,
            idx_u=idx_u,
            res_u=res_u,
            esz=esz,
            dram=dram,
            native=native,
            access=access,
        ):
            ref: MemRefVal = env[ref_u]
            idx = env[idx_u]
            st.clock.advance(dram, "dram")
            if not st._far_depth:
                access(ref.obj_id, idx * esz, esz, False, native)
            if type(idx) is int and 0 <= idx < ref.num_elems:
                env[res_u] = ref._data[idx]
            else:
                env[res_u] = ref.load(idx, None)

        return load_scalar, 1.0

    def _emit_store(self, op: Operation) -> tuple[Step, float]:
        st = self.interp
        val_u = op.operands[0].uid
        ref_u = op.operands[1].uid
        idx_u = op.operands[2].uid
        field = op.attrs.get("field")
        esz, foff, size = self._layout(op, 1)
        dram = self.cost.dram_access_ns
        native = bool(op.attrs.get("native"))
        access = st.memsys.access
        struct_whole = field is None and isinstance(
            op.operands[1].type.elem, StructType
        )

        if field is not None:

            def store_field(
                env,
                st=st,
                val_u=val_u,
                ref_u=ref_u,
                idx_u=idx_u,
                field=field,
                esz=esz,
                foff=foff,
                size=size,
                dram=dram,
                native=native,
                access=access,
            ):
                ref: MemRefVal = env[ref_u]
                idx = env[idx_u]
                value = env[val_u]
                st.clock.advance(dram, "dram")
                if not st._far_depth:
                    access(ref.obj_id, idx * esz + foff, size, True, native)
                if type(idx) is int and 0 <= idx < ref.num_elems:
                    ref._data[field][idx] = value
                else:
                    ref.store(idx, value, field)  # bool index / errors

            return store_field, 1.0

        if struct_whole:
            # whole-struct stores are an error; keep the reference message
            # (charged exactly like the reference: after the memory access)
            def store_struct(
                env,
                st=st,
                val_u=val_u,
                ref_u=ref_u,
                idx_u=idx_u,
                esz=esz,
                dram=dram,
                native=native,
                access=access,
            ):
                ref: MemRefVal = env[ref_u]
                idx = env[idx_u]
                value = env[val_u]
                st.clock.advance(dram, "dram")
                if not st._far_depth:
                    access(ref.obj_id, idx * esz, esz, True, native)
                ref.store(idx, value, None)

            return store_struct, 1.0

        def store_scalar(
            env,
            st=st,
            val_u=val_u,
            ref_u=ref_u,
            idx_u=idx_u,
            esz=esz,
            dram=dram,
            native=native,
            access=access,
        ):
            ref: MemRefVal = env[ref_u]
            idx = env[idx_u]
            value = env[val_u]
            st.clock.advance(dram, "dram")
            if not st._far_depth:
                access(ref.obj_id, idx * esz, esz, True, native)
            if type(idx) is int and 0 <= idx < ref.num_elems:
                ref._data[idx] = value
            else:
                ref.store(idx, value, None)

        return store_scalar, 1.0

    def _emit_touch(self, op: Operation) -> tuple[Step, float]:
        st = self.interp
        ref_u = op.operands[0].uid
        start_u = op.operands[1].uid
        length = op.attrs["length"]
        is_write = op.attrs["is_write"]
        stream_ns = length / self.cost.dram_stream_bpns
        access = st.memsys.access

        def touch(
            env,
            st=st,
            ref_u=ref_u,
            start_u=start_u,
            length=length,
            is_write=is_write,
            stream_ns=stream_ns,
            access=access,
        ):
            ref: MemRefVal = env[ref_u]
            start = env[start_u]
            if start < 0 or start + length > ref.size_bytes:
                raise InterpreterError(
                    f"touch [{start}, {start + length}) out of bounds for "
                    f"{ref.name or ref.obj_id} ({ref.size_bytes} B)"
                )
            st.clock.advance(stream_ns, "dram_stream")
            if not st._far_depth:
                access(ref.obj_id, start, length, is_write)
            return None

        return touch, 1.0

    def _emit_work(self, op: compute.WorkOp) -> tuple[Step, float]:
        # ``advance`` (not ``charge``): work units can be fractional, and
        # replicating the reference's flush-then-add keeps float rounding
        # bit-identical regardless of neighboring buffered charges
        st = self.interp
        base = op.units * self.cost.cpu_op_ns
        slow = self.cost.far_cpu_slowdown

        def run_work(env, st=st, base=base, slow=slow):
            st.clock.advance(base * slow if st._far_depth else base, "compute")

        return run_work, 0.0

    # -- rmem hints --------------------------------------------------------

    def _emit_prefetch(self, op: Operation) -> tuple[Step, float]:
        st = self.interp
        ref_u = op.operands[0].uid
        idx_u = op.operands[1].uid
        count = op.attrs["count"]
        prefetch = st.memsys.prefetch

        def do_prefetch(
            env, st=st, ref_u=ref_u, idx_u=idx_u, count=count, prefetch=prefetch
        ):
            ref: MemRefVal = env[ref_u]
            index = env[idx_u]
            st.clock.charge(st._cpu_unit)
            if 0 <= index < ref.num_elems:
                n = min(count, ref.num_elems - index)
                prefetch(ref.obj_id, index * ref.elem_size, n * ref.elem_size)

        return do_prefetch, 0.0

    def _emit_flush(self, op: Operation) -> tuple[Step, float]:
        st = self.interp
        ref_u = op.operands[0].uid
        idx_u = op.operands[1].uid
        count = op.attrs["count"]
        flush = st.memsys.flush

        def do_flush(env, st=st, ref_u=ref_u, idx_u=idx_u, count=count, flush=flush):
            ref: MemRefVal = env[ref_u]
            index = env[idx_u]
            st.clock.charge(st._cpu_unit)
            if 0 <= index < ref.num_elems:
                n = min(count, ref.num_elems - index)
                flush(ref.obj_id, index * ref.elem_size, n * ref.elem_size)

        return do_flush, 0.0

    def _emit_evict_hint(self, op: Operation) -> tuple[Step, float]:
        st = self.interp
        ref_u = op.operands[0].uid
        idx_u = op.operands[1].uid
        count = op.attrs["count"]
        memsys = st.memsys
        if op.attrs["mode"] == "trailing":

            def hint_trailing(env, st=st, ref_u=ref_u, idx_u=idx_u, memsys=memsys):
                ref: MemRefVal = env[ref_u]
                index = env[idx_u]
                st.clock.charge(st._cpu_unit)
                offset = min(max(index, 0), ref.num_elems - 1) * ref.elem_size
                memsys.evict_hint_trailing(ref.obj_id, offset)

            return hint_trailing, 0.0

        def hint_exact(
            env, st=st, ref_u=ref_u, idx_u=idx_u, count=count, memsys=memsys
        ):
            ref: MemRefVal = env[ref_u]
            index = env[idx_u]
            st.clock.charge(st._cpu_unit)
            if 0 <= index < ref.num_elems:
                n = min(count, ref.num_elems - index)
                memsys.evict_hint(ref.obj_id, index * ref.elem_size, n * ref.elem_size)

        return hint_exact, 0.0

    # -- control flow ------------------------------------------------------

    def _emit_for(self, op: scf.ForOp) -> tuple[Step, float]:
        st = self.interp
        body = op.body
        body_steps = self._compile_block(body)
        lb_u = op.operands[0].uid
        ub_u = op.operands[1].uid
        step_u = op.operands[2].uid
        init_uids = tuple(v.uid for v in op.operands[3:])
        iv_u = body.args[0].uid
        arg_uids = tuple(a.uid for a in body.args[1:])
        term = body.terminator
        yield_uids = tuple(v.uid for v in term.operands) if term is not None else ()
        res_uids = tuple(r.uid for r in op.results)

        if not init_uids and not res_uids:

            def run_for_simple(
                env,
                st=st,
                lb_u=lb_u,
                ub_u=ub_u,
                step_u=step_u,
                iv_u=iv_u,
                body_steps=body_steps,
            ):
                step = env[step_u]
                if step <= 0:
                    raise InterpreterError(f"scf.for with non-positive step {step}")
                for i in range(env[lb_u], env[ub_u], step):
                    env[iv_u] = i
                    for s in body_steps:
                        s(env)
                    st.clock.charge(st._cpu_unit)  # loop back-edge

            return run_for_simple, 0.0

        def run_for(
            env,
            st=st,
            lb_u=lb_u,
            ub_u=ub_u,
            step_u=step_u,
            init_uids=init_uids,
            iv_u=iv_u,
            arg_uids=arg_uids,
            yield_uids=yield_uids,
            res_uids=res_uids,
            body_steps=body_steps,
        ):
            step = env[step_u]
            if step <= 0:
                raise InterpreterError(f"scf.for with non-positive step {step}")
            carried = [env[u] for u in init_uids]
            for i in range(env[lb_u], env[ub_u], step):
                env[iv_u] = i
                for u, v in zip(arg_uids, carried):
                    env[u] = v
                for s in body_steps:
                    s(env)
                carried = [env[u] for u in yield_uids]
                st.clock.charge(st._cpu_unit)  # loop back-edge
            for u, v in zip(res_uids, carried):
                env[u] = v

        return run_for, 0.0

    def _emit_if(self, op: scf.IfOp) -> tuple[Step, float]:
        st = self.interp
        cond_u = op.operands[0].uid
        then_steps = self._compile_block(op.then_block)
        else_steps = self._compile_block(op.else_block)
        then_term = op.then_block.terminator
        else_term = op.else_block.terminator
        then_uids = (
            tuple(v.uid for v in then_term.operands) if then_term is not None else None
        )
        else_uids = (
            tuple(v.uid for v in else_term.operands) if else_term is not None else None
        )
        res_uids = tuple(r.uid for r in op.results)

        def run_if(
            env,
            st=st,
            cond_u=cond_u,
            then_steps=then_steps,
            else_steps=else_steps,
            then_uids=then_uids,
            else_uids=else_uids,
            res_uids=res_uids,
        ):
            if env[cond_u]:
                steps, term_uids = then_steps, then_uids
            else:
                steps, term_uids = else_steps, else_uids
            st.clock.charge(st._cpu_unit)
            for s in steps:
                s(env)
            if res_uids:
                if term_uids is None:
                    raise InterpreterError("scf.if arm missing yield for results")
                for ru, vu in zip(res_uids, term_uids):
                    env[ru] = env[vu]

        return run_if, 0.0

    def _emit_while(self, op: scf.WhileOp) -> tuple[Step, float]:
        st = self.interp
        before, after = op.before, op.after
        before_steps = self._compile_block(before)
        after_steps = self._compile_block(after)
        cond_term = before.terminator
        assert isinstance(cond_term, scf.ConditionOp)
        cond_u = cond_term.operands[0].uid
        fwd_uids = tuple(v.uid for v in cond_term.operands[1:])
        after_term = after.terminator
        after_yield_uids = (
            tuple(v.uid for v in after_term.operands) if after_term is not None else ()
        )
        init_uids = tuple(v.uid for v in op.operands)
        before_arg_uids = tuple(a.uid for a in before.args)
        after_arg_uids = tuple(a.uid for a in after.args)
        res_uids = tuple(r.uid for r in op.results)

        def run_while(
            env,
            st=st,
            init_uids=init_uids,
            before_arg_uids=before_arg_uids,
            before_steps=before_steps,
            cond_u=cond_u,
            fwd_uids=fwd_uids,
            res_uids=res_uids,
            after_arg_uids=after_arg_uids,
            after_steps=after_steps,
            after_yield_uids=after_yield_uids,
        ):
            carried = [env[u] for u in init_uids]
            for _ in range(100_000_000):  # guard against non-termination
                for u, v in zip(before_arg_uids, carried):
                    env[u] = v
                for s in before_steps:
                    s(env)
                forwarded = [env[u] for u in fwd_uids]
                st.clock.charge(st._cpu_unit)
                if not env[cond_u]:
                    for u, v in zip(res_uids, forwarded):
                        env[u] = v
                    return
                for u, v in zip(after_arg_uids, forwarded):
                    env[u] = v
                for s in after_steps:
                    s(env)
                carried = [env[u] for u in after_yield_uids]
            raise InterpreterError("scf.while exceeded iteration limit")

        return run_while, 0.0

    def _emit_parallel(self, op: scf.ParallelOp) -> tuple[Step, float]:
        st = self.interp
        body_steps = self._compile_block(op.body)
        lb_u = op.operands[0].uid
        ub_u = op.operands[1].uid
        step_u = op.operands[2].uid
        iv_u = op.body.args[0].uid
        num_threads = op.attrs["num_threads"]

        def run_parallel(
            env,
            st=st,
            lb_u=lb_u,
            ub_u=ub_u,
            step_u=step_u,
            iv_u=iv_u,
            num_threads=num_threads,
            body_steps=body_steps,
        ):
            iters = list(range(env[lb_u], env[ub_u], env[step_u]))
            nthreads = min(num_threads, max(1, len(iters)))
            per = (len(iters) + nthreads - 1) // nthreads
            chunks = [iters[t * per : (t + 1) * per] for t in range(nthreads)]
            memsys = st.memsys
            base_clock = st.clock
            thread_clocks = []
            # threads share the link fairly: each sees 1/T of the
            # bandwidth on a per-thread wire timeline (section 4.6)
            network = memsys.network
            base_link_free = network._link_free_at
            link_ends = []
            network.contention = nthreads
            fault_lock = getattr(memsys, "fault_lock", None)
            if fault_lock is not None:
                fault_lock.contention = nthreads
            has_tid = hasattr(memsys, "current_thread")
            tr = st.tracer
            for tid, chunk in enumerate(chunks):
                tclock = base_clock.fork()
                network._link_free_at = base_link_free
                st._set_active_clock(tclock)
                if has_tid:
                    memsys.current_thread = tid
                if tr is not None:
                    # mirrored emission point (trace parity contract)
                    tr.emit("thread.fork", tclock.now, tid=tid, iters=len(chunk))
                for i in chunk:
                    env[iv_u] = i
                    for s in body_steps:
                        s(env)
                    st.clock.charge(st._cpu_unit)
                thread_clocks.append(tclock)
                link_ends.append(network._link_free_at)
            network.contention = 1
            network._link_free_at = max(link_ends, default=base_link_free)
            if fault_lock is not None:
                fault_lock.contention = 1
            st._set_active_clock(base_clock)
            if has_tid:
                memsys.current_thread = 0
            for tclock in thread_clocks:
                base_clock.join(tclock)
            if tr is not None:
                tr.emit("thread.join", base_clock.now, threads=nthreads)

        return run_parallel, 0.0

    # -- calls -------------------------------------------------------------

    def _emit_call(self, op: func_d.CallOp) -> tuple[Step, float]:
        st = self.interp
        callee = self.module.get(op.attrs["callee"])
        arg_uids = tuple(v.uid for v in op.operands)
        res_uids = tuple(r.uid for r in op.results)
        offloaded = callee.is_offloaded

        def run_call(
            env,
            st=st,
            eng=self,
            callee=callee,
            arg_uids=arg_uids,
            res_uids=res_uids,
            offloaded=offloaded,
        ):
            args = [env[u] for u in arg_uids]
            if offloaded and not st._far_depth:
                results = eng.offloaded_invoke(callee, args)
            else:
                results = eng.call_function(callee, args)
            for u, v in zip(res_uids, results):
                env[u] = v

        return run_call, 0.0

    def _emit_offload_call(self, op: rmem.OffloadCallOp) -> tuple[Step, float]:
        callee = self.module.get(op.attrs["callee"])
        arg_uids = tuple(v.uid for v in op.operands)
        res_uids = tuple(r.uid for r in op.results)

        def run_offload(
            env, eng=self, callee=callee, arg_uids=arg_uids, res_uids=res_uids
        ):
            results = eng.offloaded_invoke(callee, [env[u] for u in arg_uids])
            for u, v in zip(res_uids, results):
                env[u] = v

        return run_offload, 0.0

    # -- delegation to the reference interpreter ---------------------------

    def _emit_delegated(self, op: Operation) -> tuple[Step, float]:
        """Rare ops run through the reference handler (one dict dispatch,
        resolved at compile time)."""
        handler = self.interp._dispatch[type(op)]

        def run_delegated(env, handler=handler, op=op):
            handler(op, env)

        return run_delegated, 0.0


# -- pure op emitters (module level: no engine state needed) ----------------


def _emit_constant(op: arith.ConstantOp) -> Step:
    r = op.result.uid
    value = op.attrs["value"]

    def run(env, r=r, value=value):
        env[r] = value

    return run


def _emit_binary(op: arith.BinaryOp) -> Step:
    from repro.runtime.interpreter import _int_div, _int_rem

    a = op.operands[0].uid
    b = op.operands[1].uid
    r = op.result.uid
    kind = op.attrs["kind"]
    if kind == "div":
        if isinstance(op.result.type, FloatType):

            def run(env, a=a, b=b, r=r):
                env[r] = env[a] / env[b]

        else:

            def run(env, a=a, b=b, r=r, div=_int_div):
                env[r] = div(env[a], env[b])

    elif kind == "rem":

        def run(env, a=a, b=b, r=r, rem=_int_rem):
            env[r] = rem(env[a], env[b])

    else:
        fn = arith.BINARY_KINDS[kind]

        def run(env, a=a, b=b, r=r, fn=fn):
            env[r] = fn(env[a], env[b])

    return run


def _emit_cmp(op: arith.CmpOp) -> Step:
    a = op.operands[0].uid
    b = op.operands[1].uid
    r = op.result.uid
    pred = arith.CMP_PREDICATES[op.attrs["pred"]]

    def run(env, a=a, b=b, r=r, pred=pred):
        env[r] = 1 if pred(env[a], env[b]) else 0

    return run


def _emit_select(op: arith.SelectOp) -> Step:
    c = op.operands[0].uid
    a = op.operands[1].uid
    b = op.operands[2].uid
    r = op.result.uid

    def run(env, c=c, a=a, b=b, r=r):
        env[r] = env[a] if env[c] else env[b]

    return run


def _emit_cast(op: arith.CastOp) -> Step:
    a = op.operands[0].uid
    r = op.result.uid
    t = op.result.type
    if isinstance(t, FloatType):

        def run(env, a=a, r=r):
            env[r] = float(env[a])

    elif isinstance(t, (IntType, IndexType)):

        def run(env, a=a, r=r):
            env[r] = int(env[a])

    else:
        # preserve the reference behavior: the error fires at execution
        def run(env, t=t):
            raise InterpreterError(f"bad cast target {t}")

    return run


_PURE_EMITTERS: dict[type, Callable[[Operation], Step]] = {
    arith.ConstantOp: _emit_constant,
    arith.BinaryOp: _emit_binary,
    arith.CmpOp: _emit_cmp,
    arith.SelectOp: _emit_select,
    arith.CastOp: _emit_cast,
}

_SIDE_EMITTERS: dict[type, Callable[[Engine, Operation], tuple[Step, float]]] = {
    memref.LoadOp: Engine._emit_load,
    rmem.RLoadOp: Engine._emit_load,
    memref.StoreOp: Engine._emit_store,
    rmem.RStoreOp: Engine._emit_store,
    memref.TouchOp: Engine._emit_touch,
    rmem.RTouchOp: Engine._emit_touch,
    compute.WorkOp: Engine._emit_work,
    rmem.PrefetchOp: Engine._emit_prefetch,
    rmem.FlushOp: Engine._emit_flush,
    rmem.EvictHintOp: Engine._emit_evict_hint,
    scf.ForOp: Engine._emit_for,
    scf.IfOp: Engine._emit_if,
    scf.WhileOp: Engine._emit_while,
    scf.ParallelOp: Engine._emit_parallel,
    func_d.CallOp: Engine._emit_call,
    rmem.OffloadCallOp: Engine._emit_offload_call,
    # rare / bookkeeping-heavy ops: reference handlers, prebound
    memref.AllocOp: Engine._emit_delegated,
    remotable.RAllocOp: Engine._emit_delegated,
    memref.DeallocOp: Engine._emit_delegated,
    rmem.BatchPrefetchOp: Engine._emit_delegated,
    rmem.DiscardOp: Engine._emit_delegated,
    rmem.SectionOpenOp: Engine._emit_delegated,
    rmem.SectionCloseOp: Engine._emit_delegated,
    prof.RegionBeginOp: Engine._emit_delegated,
    prof.RegionEndOp: Engine._emit_delegated,
}
