"""Adaptive prefetch insertion (paper section 4.5).

Program analysis determines *what* will be accessed (scalar evolution of
the index), and the system environment determines *when*: the prefetch
distance is one network round trip ahead of the access, measured in loop
iterations:

    distance = ceil(net_rtt / estimated_iteration_time)

Patterns handled:

* affine (sequential/strided) loads/stores -- ``prefetch(ref, i + d*stride)``;
* indirect ``B[A[i]]`` -- the chained form from the paper's introduction:
  ``%1 = fetch A[i+d]; fetch B[%1]`` (A's own prefetch distance is doubled
  so the stage-1 fetch hits);
* coarse range touches (layer loops) -- prefetch the next iteration's
  range.
"""

from __future__ import annotations

import math

from repro.analysis.access import analyze_scope
from repro.analysis.alias import AliasAnalysis
from repro.analysis.scev import Affine, Indirect, scev_of
from repro.ir.core import Module, Operation
from repro.ir.dialects import arith, compute, memref, rmem, scf
from repro.memsim.cost_model import CostModel
from repro.transforms.utils import build_before, enclosing_loop

#: clamp for prefetch distances (iterations)
MIN_DISTANCE = 1
MAX_DISTANCE = 4096


def estimate_iteration_ns(loop: scf.ForOp, cost: CostModel) -> float:
    """Static per-iteration execution-time estimate for one loop body."""
    total = 0.0
    for op in loop.walk():
        if op is loop:
            continue
        if isinstance(op, scf.ForOp):
            continue  # its body ops are charged below, scaled by its trips
        scale = _nesting_trips(op, loop)
        if isinstance(op, (memref.LoadOp, memref.StoreOp, rmem.RLoadOp, rmem.RStoreOp)):
            total += (cost.dram_access_ns + cost.cpu_op_ns) * scale
        elif isinstance(op, (memref.TouchOp, rmem.RTouchOp)):
            total += (op.length / cost.dram_stream_bpns) * scale
        elif isinstance(op, compute.WorkOp):
            total += op.units * cost.cpu_op_ns * scale
        else:
            total += cost.cpu_op_ns * scale
    return max(total, cost.cpu_op_ns)


def _nesting_trips(op: Operation, outer: scf.ForOp) -> float:
    """Product of literal trip counts of loops between ``op`` and
    ``outer`` (8 when a bound is not literal)."""
    trips = 1.0
    loop = enclosing_loop(op)
    while loop is not None and loop is not outer:
        trips *= _literal_trip_count(loop) or 8
        loop = enclosing_loop(loop)
    return trips


def _literal_trip_count(loop: scf.ForOp) -> int | None:
    vals = []
    for v in (loop.lb, loop.ub, loop.step):
        prod = v.producer
        if not isinstance(prod, arith.ConstantOp):
            return None
        vals.append(int(prod.value))
    lb, ub, step = vals
    return max(0, (ub - lb + step - 1) // step)


def prefetch_distance(loop: scf.ForOp, cost: CostModel) -> int:
    d = math.ceil(cost.net_rtt_ns / estimate_iteration_ns(loop, cost))
    return max(MIN_DISTANCE, min(MAX_DISTANCE, d))


def insert_prefetches(module: Module, cost: CostModel) -> int:
    """Insert prefetch ops throughout the module; returns how many."""
    alias = AliasAnalysis(module)
    inserted = 0
    for fn in module.functions.values():
        loops = [
            op for op in fn.walk() if isinstance(op, (scf.ForOp, scf.ParallelOp))
        ]
        for loop in loops:
            inserted += _prefetch_loop(loop, alias, cost)
    return inserted


def _prefetch_loop(loop: scf.ForOp, alias: AliasAnalysis, cost: CostModel) -> int:
    summaries = analyze_scope(loop, alias)
    distance = prefetch_distance(loop, cost)
    # sites whose values feed indirect accesses get a doubled distance so
    # the chained stage-1 fetch is already resident when we read it
    index_source_sites = set()
    for summary in summaries.values():
        index_source_sites.update(summary.index_sources)

    inserted = 0
    handled_indirect: set[int] = set()
    prefetched_sites: list[str] = list(loop.attrs.get("prefetched_sites", []))
    for site, summary in summaries.items():
        for rec in summary.records:
            if enclosing_loop(rec.op) is not loop:
                continue  # handled when processing the inner loop
            ref = rec.op.operands[0] if not _is_store(rec.op) else rec.op.operands[1]
            if not getattr(ref.type, "remote", False):
                continue
            if rec.op.attrs.get("prefetch_stage"):
                continue
            if isinstance(rec.scev, Affine) and rec.scev.coeff != 0:
                d = distance * (2 if site in index_source_sites else 1)
                inserted += _insert_affine_prefetch(loop, rec, d, site)
                if site.name not in prefetched_sites:
                    prefetched_sites.append(site.name)
            elif isinstance(rec.scev, Indirect):
                # one chained prefetch per (index-source load, target
                # object): the load and store of B[A[i]] share one fetch
                key = (id(rec.scev.source_load), ref.uid)
                if key in handled_indirect:
                    continue
                handled_indirect.add(key)
                if _insert_indirect_prefetch(loop, rec, distance, alias):
                    inserted += 1
    loop.attrs["prefetched_sites"] = prefetched_sites
    return inserted


def _is_store(op: Operation) -> bool:
    return isinstance(op, (memref.StoreOp, rmem.RStoreOp))


def _insert_affine_prefetch(loop: scf.ForOp, rec, distance: int, site) -> int:
    op = rec.op
    block = op.parent_block
    if isinstance(op, (memref.TouchOp, rmem.RTouchOp)):
        # range touch: prefetch the range `distance` iterations ahead;
        # touch offsets are in bytes, prefetch indices in elements
        elem = site.elem_type.byte_size
        length = op.length
        count = max(1, length // elem)

        def build(b):
            ahead = b.add(op.start, distance * rec.scev.coeff)
            idx = b.div(ahead, elem)
            b.prefetch(op.ref, idx, count=count)

        build_before(block, op, build)
        return 1

    def build(b):
        ahead = b.add(op.index, distance * rec.scev.coeff)
        b.prefetch(op.ref, ahead, count=1)

    build_before(block, op, build)
    op.attrs["prefetched"] = True
    return 1


def _insert_indirect_prefetch(
    loop: scf.ForOp, rec, distance: int, alias: AliasAnalysis
) -> bool:
    """The paper's chained prefetch: %1 = fetch A[i+d]; fetch B[%1]."""
    op = rec.op  # the access B[A[i]]
    src_load = rec.scev.source_load  # the load A[i]
    src_sites = alias.points_to(src_load.operands[0])
    if len(src_sites) != 1:
        return False  # need a unique source array to clamp against
    src_site = next(iter(src_sites))
    src_loop = enclosing_loop(src_load)
    if src_loop is None:
        return False
    src_index_scev = scev_of(src_load.index, src_loop)
    if not isinstance(src_index_scev, Affine) or src_index_scev.coeff == 0:
        return False
    block = src_load.parent_block
    ref_b = op.operands[0] if not _is_store(op) else op.operands[1]
    field = src_load.field

    def build(b):
        ahead = b.add(src_load.index, distance * src_index_scev.coeff)
        clamped = b.min(ahead, src_site.num_elems - 1)
        staged = b.load(src_load.operands[0], clamped, field=field)
        staged.producer.attrs["prefetch_stage"] = True
        from repro.ir.types import INDEX

        idx = b.cast(staged, INDEX)
        b.prefetch(ref_b, idx, count=1)

    build_before(block, src_load, build)
    op.attrs["prefetched"] = True
    return True
