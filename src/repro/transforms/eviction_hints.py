"""Eviction-hint insertion (paper section 4.5).

Two cases:

* **streaming scopes** -- a sequentially accessed object never revisits a
  line, so each iteration marks the line *behind* the current index
  evictable (the runtime also flushes it asynchronously, hiding write-back
  off the critical path);
* **last access in a function** -- after the top-level statement containing
  an object's last access, the whole object is flushed and marked
  evictable, freeing its space for later scopes (this is the "end a
  section's lifetime promptly" behaviour that keeps GPT-2 flat, section
  6.2).

Shared writable sections ignore hints (section 4.6); the cache layer
enforces that, so this pass does not need to know about sharing.
"""

from __future__ import annotations

from repro.analysis.access import AccessPattern, analyze_scope
from repro.analysis.alias import AliasAnalysis
from repro.analysis.lifetime import LifetimeAnalysis
from repro.ir.core import Module
from repro.ir.dialects import memref, rmem, scf
from repro.transforms.utils import (
    build_after,
    build_before,
    enclosing_loop,
    top_level_position,
)


def insert_eviction_hints(module: Module) -> int:
    alias = AliasAnalysis(module)
    lifetime = LifetimeAnalysis(module, alias)
    inserted = 0
    for fn in module.functions.values():
        loops = [
            op for op in fn.walk() if isinstance(op, (scf.ForOp, scf.ParallelOp))
        ]
        # streaming hints inside loops
        for loop in loops:
            for site, summary in analyze_scope(loop, alias).items():
                inserted += _hint_streaming_touches(loop, site, summary)
                if summary.pattern is not AccessPattern.SEQUENTIAL:
                    continue
                rec = next(
                    (
                        r
                        for r in summary.records
                        if enclosing_loop(r.op) is loop
                        and not isinstance(r.op, (memref.TouchOp, rmem.RTouchOp))
                    ),
                    None,
                )
                if rec is None or rec.op.attrs.get("prefetch_stage"):
                    continue
                ref = _ref_of(rec.op)
                if not getattr(ref.type, "remote", False):
                    continue
                idx = _index_of(rec.op)
                op = rec.op

                def build(b, ref=ref, idx=idx):
                    b.evict_hint(ref, idx, mode="trailing")

                build_after(op.parent_block, op, build)
                inserted += 1
        # whole-object hints after the last access in the function
        for site, interval in lifetime.intervals.get(fn.name, {}).items():
            last = interval.last_op
            ref = _ref_of(last)
            if not getattr(ref.type, "remote", False):
                continue
            # the hint goes after the *top-level* statement so it runs
            # once, not every loop iteration
            try:
                pos = top_level_position(fn.body, last)
            except Exception:
                continue
            # the ref must be visible at function-body level
            if not _visible_at_top_level(ref, fn):
                continue

            def build(b, ref=ref, site=site):
                b.flush(ref, 0, count=site.num_elems)
                b.evict_hint(ref, 0, count=site.num_elems, mode="exact")

            build_after(fn.body, fn.body.ops[pos], build)
            inserted += 1
    return inserted


def _hint_streaming_touches(loop, site, summary) -> int:
    """Coarse range touches that advance by a fixed byte stride per
    iteration (layer loops): after each touch, flush and mark the previous
    iteration's range evictable -- the paper's prompt release of one
    layer's matrices when the layer finishes (section 6.2)."""
    from repro.analysis.scev import Affine

    inserted = 0
    for rec in summary.records:
        op = rec.op
        if not isinstance(op, rmem.RTouchOp):
            continue
        if enclosing_loop(op) is not loop:
            continue
        if not isinstance(rec.scev, Affine) or rec.scev.coeff <= 0:
            continue
        elem = site.elem_type.byte_size
        count = max(1, op.length // elem)
        stride = rec.scev.coeff

        def build(b, op=op, elem=elem, count=count, stride=stride):
            prev = b.div(b.sub(op.start, stride), elem)
            b.flush(op.ref, prev, count=count)
            b.evict_hint(op.ref, prev, count=count, mode="exact")

        # the hint goes *before* the touch: by the time range i is
        # accessed, range i-1 is dead -- and the prefetch of range i+1
        # (inserted later, between hint and touch) then displaces the
        # dead lines rather than live ones
        build_before(op.parent_block, op, build)
        inserted += 1
    return inserted


def _ref_of(op):
    if isinstance(op, (memref.StoreOp, rmem.RStoreOp)):
        return op.ref
    return op.operands[0]


def _index_of(op):
    if isinstance(op, (memref.StoreOp, rmem.RStoreOp)):
        return op.index
    return op.operands[1]


def _visible_at_top_level(ref, fn) -> bool:
    if ref in fn.args:
        return True
    producer = ref.producer
    return producer is not None and producer.parent_block is fn.body
