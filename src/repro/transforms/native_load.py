"""Dereference elision (paper section 4.4).

A remote pointer dereference normally runs the cache lookup; but when the
compiler can prove the addressed line is resident at dereference time, the
access compiles to a native memory load.  The provable case implemented
here is the paper's main one: sequential accesses in a loop that are

* prefetched (the line was requested a round trip ago),
* conflict-free (the object's section holds only conflict-free streaming
  objects, which the planner guarantees by giving sequential patterns
  their own directly-mapped sections).

Elided accesses charge no lookup overhead, and the section keeps no
metadata for lines whose lifetime the compiler fully controls -- the
planner sets ``metadata_free`` from the ``elidable`` flag this pass puts
on the allocation.
"""

from __future__ import annotations

from repro.analysis.access import AccessPattern, analyze_scope
from repro.analysis.alias import AliasAnalysis
from repro.ir.core import Module
from repro.ir.dialects import memref, remotable, rmem, scf
from repro.transforms.utils import enclosing_loop


def elide_dereferences(module: Module) -> list[str]:
    """Mark provably-resident rmem accesses native; returns the names of
    allocation sites whose lines need no metadata."""
    alias = AliasAnalysis(module)
    elidable_sites: list[str] = []
    for fn in module.functions.values():
        loops = [
            op for op in fn.walk() if isinstance(op, (scf.ForOp, scf.ParallelOp))
        ]
        for loop in loops:
            prefetched = set(loop.attrs.get("prefetched_sites", []))
            for site, summary in analyze_scope(loop, alias).items():
                if summary.pattern is not AccessPattern.SEQUENTIAL:
                    continue
                if site.name not in prefetched:
                    continue
                for rec in summary.records:
                    if enclosing_loop(rec.op) is not loop:
                        continue
                    if isinstance(rec.op, (rmem.RLoadOp, rmem.RStoreOp)):
                        rec.op.attrs["native"] = True
                if site.name not in elidable_sites:
                    elidable_sites.append(site.name)
                    _mark_alloc(module, site)
            # compiler-inserted stage-1 loads read a prefetched stream at
            # a fixed offset ahead: provably resident as well
            for op in loop.body.ops:
                if (
                    isinstance(op, rmem.RLoadOp)
                    and op.attrs.get("prefetch_stage")
                    and any(s.name in prefetched for s in alias.points_to(op.ref))
                ):
                    op.attrs["native"] = True
            _elide_same_element(loop)
    return elidable_sites


#: max rmem ops between two derefs of the same element for the re-deref
#: to be provably conflict-free (cannot fill a K-way set in between)
_SAME_ELEMENT_WINDOW = 12


def _elide_same_element(loop: scf.ForOp) -> int:
    """Within one iteration, a second access to the same element reuses
    the line the first dereference resolved ("for future accesses of any
    data item in the same cache line, we can directly resolve the
    dereferencing", section 4.4)."""
    last_seen: dict[tuple[int, int], int] = {}
    count = 0
    for pos, op in enumerate(loop.body.ops):
        if not isinstance(op, (rmem.RLoadOp, rmem.RStoreOp)):
            continue
        if op.attrs.get("prefetch_stage"):
            continue
        key = (op.ref.uid, op.index.uid)
        prev = last_seen.get(key)
        if prev is not None and pos - prev <= _SAME_ELEMENT_WINDOW:
            if not op.attrs.get("native"):
                op.attrs["native"] = True
                count += 1
        last_seen[key] = pos
    return count


def _mark_alloc(module: Module, site) -> None:
    for fn in module.functions.values():
        for op in fn.walk():
            if isinstance(op, (memref.AllocOp, remotable.RAllocOp)):
                if op.result.uid == site.uid:
                    op.attrs["elidable"] = True
