"""Conversion to remote code (paper sections 4.4, 5.2.1).

Selected allocation sites become ``remotable.alloc``; every pointer that
may reference them (forward dataflow + alias analysis) is retyped to a
remote memref; loads/stores/touches through those pointers become ``rmem``
operations.  Functions whose memref parameters are all remote afterwards
are marked ``remotable`` (offload candidates).

Soundness rule: if a pointer may reference both a selected and an
unselected site ("pointers to both local and remotable objects", section
5.2.1 -- the paper handles these at runtime with the reserved section 0),
we *widen* the selection to include the unselected sites, which is always
safe because the swap section can back any remotable object.
"""

from __future__ import annotations

from repro.analysis.alias import AliasAnalysis, AllocSite
from repro.ir.core import Module, Value
from repro.ir.dialects import memref, remotable, rmem
from repro.ir.types import MemRefType
from repro.transforms.utils import retype_op


def convert_to_remote(module: Module, site_names: list[str]) -> list[str]:
    """Convert the named allocation sites (and any aliasing closure) to
    remotable; returns the names actually converted."""
    alias = AliasAnalysis(module)
    selected: set[AllocSite] = {
        s for s in alias.sites if s.name in set(site_names)
    }
    if not selected:
        return []
    # widen: any value aliasing a selected site pulls in its other sites
    changed = True
    while changed:
        changed = False
        for fn in module.functions.values():
            for value in _memref_values(fn):
                sites = alias.points_to(value)
                if sites & selected and not sites <= selected:
                    selected |= sites
                    changed = True
    # retype allocation ops
    for fn in module.functions.values():
        for op in fn.walk():
            if isinstance(op, memref.AllocOp):
                site = alias.site_by_op.get(id(op))
                if site in selected:
                    retype_op(op, remotable.RAllocOp)
    # retype every aliasing memref value
    for fn in module.functions.values():
        for value in _memref_values(fn):
            if alias.points_to(value) & selected:
                if not value.type.remote:
                    value.type = value.type.as_remote()
    # retype accesses through remote refs
    swaps = {
        memref.LoadOp: rmem.RLoadOp,
        memref.StoreOp: rmem.RStoreOp,
        memref.TouchOp: rmem.RTouchOp,
    }
    for fn in module.functions.values():
        for op in fn.walk():
            cls = swaps.get(type(op))
            if cls is not None and op.ref.type.remote:
                retype_op(op, cls, {"native": False})
    _mark_remotable_functions(module)
    return sorted(s.name or str(s.uid) for s in selected)


def _memref_values(fn):
    from repro.analysis.alias import _all_values

    for v in _all_values(fn):
        if isinstance(v.type, MemRefType):
            yield v


def _mark_remotable_functions(module: Module) -> None:
    """Backward analysis (section 5.2.1): a function is remotable when all
    of its memref parameters are remote.  Function signatures are also
    refreshed, since parameter/return types may have been retyped."""
    from repro.ir.types import FuncType

    for fn in module.functions.values():
        ret = fn.body.terminator
        result_types = (
            tuple(v.type for v in ret.operands) if ret is not None else ()
        )
        fn.type = FuncType(tuple(a.type for a in fn.args), result_types)
        if fn.name == "main":
            continue
        memref_args = [a for a in fn.args if isinstance(a.type, MemRefType)]
        if memref_args and all(a.type.remote for a in memref_args):
            fn.attrs["remotable"] = True
