"""Profiling instrumentation (paper section 4.1).

The compiler inserts coarse-grained profiling at function granularity;
the interpreter charges ``profile_event_ns`` per instrumented event only
when the module is marked.  Collection itself is free (the profiler always
records), so un-instrumented runs measure steady-state performance while
profiling runs measure it *plus* the 0.4-0.7%-class overhead the paper
reports.
"""

from __future__ import annotations

from repro.ir.core import Module


def instrument_profiling(module: Module, enable: bool = True) -> None:
    module.attrs["profiling"] = enable
