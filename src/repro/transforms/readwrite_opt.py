"""Read/write optimization (paper section 4.5).

* After a loop that only *reads* an object -- and the loop contains the
  object's last access in the function -- the cached copies are discarded
  without write-back.
* A loop that only *writes* an object with whole-element sequential stores
  marks the allocation ``write_no_fetch``: the section allocates lines on
  write misses without fetching them from far memory.  The planner copies
  the flag into the section config.
"""

from __future__ import annotations

from repro.analysis.alias import AliasAnalysis
from repro.analysis.lifetime import LifetimeAnalysis
from repro.analysis.readwrite import readwrite_info
from repro.ir.core import Module
from repro.ir.dialects import memref, remotable, scf
from repro.transforms.utils import build_after


def apply_readwrite_optimization(module: Module) -> dict[str, dict]:
    """Returns per-site flags: {site name: {"write_no_fetch": bool,
    "discard_after": bool}}."""
    alias = AliasAnalysis(module)
    lifetime = LifetimeAnalysis(module, alias)
    flags: dict[str, dict] = {}
    for fn in module.functions.values():
        top_loops = [op for op in fn.body.ops if isinstance(op, scf.ForOp)]
        for loop in top_loops:
            loop_ops = set(id(o) for o in loop.walk())
            for site, info in readwrite_info(loop, alias).items():
                entry = flags.setdefault(
                    site.name or str(site.uid),
                    {"write_no_fetch": False, "discard_after": False},
                )
                if info.full_line_writes:
                    entry["write_no_fetch"] = True
                    _mark_alloc(module, site, "write_no_fetch")
                if info.read_only:
                    interval = lifetime.interval(fn.name, site)
                    if interval is not None and id(interval.last_op) in loop_ops:
                        ref = _ref_visible_at(fn, loop, site, alias)
                        if ref is not None and getattr(ref.type, "remote", False):
                            build_after(fn.body, loop, lambda b, r=ref: b.discard(r))
                            entry["discard_after"] = True
    return flags


def _mark_alloc(module: Module, site, flag: str) -> None:
    for fn in module.functions.values():
        for op in fn.walk():
            if isinstance(op, (memref.AllocOp, remotable.RAllocOp)):
                if op.result.uid == site.uid:
                    op.attrs[flag] = True


def _ref_visible_at(fn, loop, site, alias: AliasAnalysis):
    """A value referencing ``site`` that dominates the point after
    ``loop`` (a function arg or a top-level definition before the loop)."""
    loop_pos = fn.body.ops.index(loop)
    for v in fn.args:
        if site in alias.points_to(v):
            return v
    for op in fn.body.ops[:loop_pos]:
        for res in op.results:
            if site in alias.points_to(res):
                return res
    return None
