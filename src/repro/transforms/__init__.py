"""Compiler passes (paper sections 4.4, 4.5, 4.8, 5.2).

Pass order in the full pipeline (:mod:`repro.core.pipeline`):

1. ``convert_to_remote`` -- selected allocations become ``remotable``,
   their accesses become ``rmem`` ops;
2. ``batching`` -- fuse adjacent compatible loops;
3. ``prefetch`` -- insert pattern-directed (and chained indirect)
   prefetches at the network-delay-derived distance;
4. ``eviction_hints`` -- trailing hints in streaming loops, whole-object
   hints after last accesses;
5. ``readwrite_opt`` -- discard after read-only scopes, no-fetch flags for
   write-only scopes;
6. ``native_load`` -- dereference elision for proven-resident accesses;
7. ``offload`` -- mark profitable remotable functions offloaded;
8. ``instrument_profiling`` -- coarse-grained profiling for the next
   iteration.
"""

from repro.transforms.batching import combine_prefetches, fuse_adjacent_loops
from repro.transforms.convert_to_remote import convert_to_remote
from repro.transforms.eviction_hints import insert_eviction_hints
from repro.transforms.instrument import instrument_profiling
from repro.transforms.native_load import elide_dereferences
from repro.transforms.offload import apply_offload
from repro.transforms.prefetch import insert_prefetches
from repro.transforms.readwrite_opt import apply_readwrite_optimization

__all__ = [
    "convert_to_remote",
    "fuse_adjacent_loops",
    "combine_prefetches",
    "insert_prefetches",
    "insert_eviction_hints",
    "apply_readwrite_optimization",
    "elide_dereferences",
    "apply_offload",
    "instrument_profiling",
]
