"""Shared pass machinery: positional IR insertion and in-place op
retyping.

``retype_op`` swaps an op's class between the local and remote dialect
(e.g. ``memref.load`` -> ``rmem.load``).  The two classes have identical
operand/attribute layout, and swapping in place preserves every SSA result
identity -- exactly what a conversion pass wants.
"""

from __future__ import annotations

from typing import Callable

from repro.errors import IRError
from repro.ir.builder import IRBuilder
from repro.ir.core import Block, Module, Operation


def build_at(block: Block, index: int, build: Callable[[IRBuilder], object]):
    """Build ops with an IRBuilder and splice them into ``block`` at
    ``index``.  Returns (build's return value, number of ops inserted)."""
    b = IRBuilder(Module("__splice__"))
    tmp = Block()
    b._push(tmp)
    result = build(b)
    for i, op in enumerate(tmp.ops):
        op.parent_block = block
        block.ops.insert(index + i, op)
    return result, len(tmp.ops)


def build_before(block: Block, op: Operation, build: Callable[[IRBuilder], object]):
    return build_at(block, block.ops.index(op), build)


def build_after(block: Block, op: Operation, build: Callable[[IRBuilder], object]):
    return build_at(block, block.ops.index(op) + 1, build)


def retype_op(op: Operation, new_class: type[Operation], extra_attrs: dict | None = None) -> None:
    """Swap an op's class in place (local <-> remote dialect conversion)."""
    op.__class__ = new_class
    if extra_attrs:
        op.attrs.update(extra_attrs)


def enclosing_loop(op: Operation):
    """The innermost scf.for / scf.parallel containing ``op`` (None at
    function level)."""
    from repro.ir.dialects import scf

    block = op.parent_block
    while block is not None:
        region = block.parent_region
        if region is None:
            return None
        parent = region.parent_op
        if isinstance(parent, (scf.ForOp, scf.ParallelOp)):
            return parent
        block = parent.parent_block if parent is not None else None
    return None


def top_level_position(fn_body: Block, op: Operation) -> int:
    """Index in ``fn_body`` of the top-level op containing ``op``."""
    target = op
    while target.parent_block is not fn_body:
        region = target.parent_block.parent_region
        if region is None or region.parent_op is None:
            raise IRError("op is not nested in the given function body")
        target = region.parent_op
    return fn_body.ops.index(target)
