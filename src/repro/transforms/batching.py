"""Data-access batching (paper section 4.5).

Two cooperating rewrites:

* :func:`fuse_adjacent_loops` -- when two adjacent loops have identical
  bounds and no memory dependence (e.g. DataFrame's avg/min/max loops over
  the same vector), fuse them so their data is traversed once;
* :func:`combine_prefetches` -- merge the prefetch ops in one loop body
  into a single ``rmem.batch_prefetch``, which the runtime issues as one
  scatter-gather network message (one RTT for N ranges).
"""

from __future__ import annotations

from repro.analysis.alias import AliasAnalysis
from repro.analysis.dependence import adjacent_fusable_pairs
from repro.ir.cloning import _clone_op
from repro.ir.core import Block, Module, Value
from repro.ir.dialects import rmem, scf


class _SelfMap(dict):
    """Value map that defaults to identity (values defined outside the
    cloned region map to themselves)."""

    def __missing__(self, key):
        return key


def fuse_adjacent_loops(module: Module) -> int:
    """Fuse all adjacent fusable top-level loop pairs; returns count."""
    fused = 0
    for fn in module.functions.values():
        while True:
            alias = AliasAnalysis(module)
            pairs = adjacent_fusable_pairs(fn, alias)
            if not pairs:
                break
            a, b = pairs[0]
            _fuse(fn, a, b)
            fused += 1
    return fused


def _fuse(fn, a: scf.ForOp, b: scf.ForOp) -> None:
    # the fused loop takes b's position: any pure ops between a and b
    # (which b's iter_args may use) stay defined before it
    block = fn.body
    pos = block.ops.index(b)
    new = scf.ForOp(a.lb, a.ub, a.step, list(a.iter_args) + list(b.iter_args))
    vmap = _SelfMap()
    vmap[a.induction_var] = new.induction_var
    for old, fresh in zip(a.body_iter_args, new.body_iter_args[: len(a.iter_args)]):
        vmap[old] = fresh
    a_yield = _clone_body(a.body, new.body, vmap)
    vmap[b.induction_var] = new.induction_var
    for old, fresh in zip(b.body_iter_args, new.body_iter_args[len(a.iter_args):]):
        vmap[old] = fresh
    b_yield = _clone_body(b.body, new.body, vmap)
    new.body.ops.append(scf.YieldOp(a_yield + b_yield))
    new.body.ops[-1].parent_block = new.body
    # rewire result uses
    result_map: dict[Value, Value] = {}
    for i, res in enumerate(a.results):
        result_map[res] = new.results[i]
    for j, res in enumerate(b.results):
        result_map[res] = new.results[len(a.results) + j]
    for op in fn.walk():
        for old, fresh in result_map.items():
            op.replace_uses_of(old, fresh)
    block.remove(b)
    block.ops.insert(pos, new)
    new.parent_block = block
    block.remove(a)


def _clone_body(src: Block, dst: Block, vmap: _SelfMap) -> list[Value]:
    """Clone ``src``'s non-terminator ops into ``dst``; returns the mapped
    yield operands."""
    term = src.terminator
    for op in src.ops:
        if op is term:
            continue
        dst.ops.append(_clone_op(op, vmap, dst))
    if term is None:
        return []
    return [vmap[v] for v in term.operands]


def combine_prefetches(module: Module) -> int:
    """Merge multiple prefetch ops per loop body into one batched message;
    returns the number of batch ops created."""
    created = 0
    for fn in module.functions.values():
        for op in fn.walk():
            if isinstance(op, (scf.ForOp, scf.ParallelOp)):
                created += _combine_in_block(op.body)
    return created


def _combine_in_block(block: Block) -> int:
    """Merge maximal *adjacent* runs of prefetch ops.  Only adjacent runs
    may merge: moving a prefetch away from its program point would change
    when its data arrives relative to the accesses around it."""
    created = 0
    runs: list[list[rmem.PrefetchOp]] = []
    current: list[rmem.PrefetchOp] = []
    for op in block.ops:
        if isinstance(op, rmem.PrefetchOp):
            current.append(op)
        else:
            if len(current) >= 2:
                runs.append(current)
            current = []
    if len(current) >= 2:
        runs.append(current)
    for run in runs:
        pairs = [(p.ref, p.index) for p in run]
        counts = [p.count for p in run]
        batch = rmem.BatchPrefetchOp(pairs, counts)
        idx = block.ops.index(run[0])
        block.insert(idx, batch)
        for p in run:
            block.remove(p)
        created += 1
    return created
