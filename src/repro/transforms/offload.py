"""Function-offloading transform (paper section 4.8).

Marks chosen remotable functions ``offloaded``.  The runtime then invokes
them over RPC on the far-memory node: their remotable-object accesses
become node-local, their compute pays the far node's slowdown, and the
caller flushes the functions' cached objects before the call (the
interpreter implements the calling convention).
"""

from __future__ import annotations

from repro.analysis.offload import OffloadDecision, decide_offload, is_offload_candidate
from repro.ir.core import Module
from repro.memsim.cost_model import CostModel
from repro.runtime.profiler import Profiler


def apply_offload(
    module: Module,
    cost: CostModel,
    profiler: Profiler | None = None,
    functions: list[str] | None = None,
    traffic_bytes: dict[str, float] | None = None,
) -> list[OffloadDecision]:
    """Mark functions for offloading.

    With an explicit ``functions`` list, those are marked directly (they
    must be candidates).  Otherwise every candidate is evaluated with the
    profile-guided cost comparison.
    """
    decisions: list[OffloadDecision] = []
    if functions is not None:
        for name in functions:
            fn = module.get(name)
            ok = is_offload_candidate(fn, module)
            if ok:
                fn.attrs["offloaded"] = True
            decisions.append(
                OffloadDecision(name, ok, ok, reason="explicitly requested")
            )
        return decisions
    if profiler is None:
        return decisions
    traffic_bytes = traffic_bytes or {}
    for fn in module.functions.values():
        decision = decide_offload(
            fn, module, cost, profiler, traffic_bytes.get(fn.name, 0.0)
        )
        decisions.append(decision)
        if decision.offload:
            fn.attrs["offloaded"] = True
    return decisions
