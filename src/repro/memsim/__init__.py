"""Far-memory machine simulator.

This package models the hardware substrate the paper runs on -- a compute
node with local DRAM, a far-memory node reachable over an RDMA-class
network -- under a *virtual clock*.  Nothing here knows about Mira itself;
the cache layer, baselines and runtime all sit on top of these primitives.
"""

from repro.memsim.address import AddressSpace, ObjectInfo, PAGE_SIZE
from repro.memsim.clock import VirtualClock
from repro.memsim.cost_model import CostModel
from repro.memsim.farnode import FarMemoryNode
from repro.memsim.network import Network, NetworkStats, TransferKind

__all__ = [
    "AddressSpace",
    "ObjectInfo",
    "PAGE_SIZE",
    "VirtualClock",
    "CostModel",
    "FarMemoryNode",
    "Network",
    "NetworkStats",
    "TransferKind",
]
