"""Virtual time.

Every performance-relevant event in the simulation advances a
:class:`VirtualClock` by some number of virtual nanoseconds taken from the
cost model.  Real (wall-clock) time plays no role in any reported result.
"""

from __future__ import annotations

from repro.errors import MiraError


class VirtualClock:
    """A monotonically non-decreasing virtual-nanosecond counter.

    The clock also keeps a breakdown of where time went (by category
    string), which the profiler and the figure harnesses read.
    """

    def __init__(self) -> None:
        self._now: float = 0.0
        self._breakdown: dict[str, float] = {}

    @property
    def now(self) -> float:
        """Current virtual time in nanoseconds."""
        return self._now

    def advance(self, ns: float, category: str = "other") -> float:
        """Advance the clock by ``ns`` nanoseconds; returns the new time.

        ``category`` labels the time for the breakdown (e.g. ``"compute"``,
        ``"dram"``, ``"miss"``, ``"hit_overhead"``, ``"eviction"``).
        """
        if ns < 0:
            raise MiraError(f"cannot advance clock by negative time {ns}")
        self._now += ns
        self._breakdown[category] = self._breakdown.get(category, 0.0) + ns
        return self._now

    def wait_until(self, t: float, category: str = "wait") -> float:
        """Advance to time ``t`` if it is in the future; no-op otherwise."""
        if t > self._now:
            self.advance(t - self._now, category)
        return self._now

    def breakdown(self) -> dict[str, float]:
        """A copy of the per-category time breakdown."""
        return dict(self._breakdown)

    def category(self, name: str) -> float:
        """Time accumulated under one category."""
        return self._breakdown.get(name, 0.0)

    def reset(self) -> None:
        self._now = 0.0
        self._breakdown.clear()

    def fork(self) -> "VirtualClock":
        """A new clock starting at this clock's current time.

        Used by the thread simulator: each virtual thread runs on a fork of
        the spawning clock and the parent later joins to the max.
        """
        child = VirtualClock()
        child._now = self._now
        return child

    def join(self, other: "VirtualClock") -> None:
        """Merge a forked clock back: jump to its time if later, and fold
        its breakdown into ours."""
        for cat, ns in other._breakdown.items():
            self._breakdown[cat] = self._breakdown.get(cat, 0.0) + ns
        if other._now > self._now:
            self._now = other._now

    def __repr__(self) -> str:
        return f"VirtualClock(now={self._now:.1f}ns)"
