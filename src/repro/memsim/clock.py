"""Virtual time.

Every performance-relevant event in the simulation advances a
:class:`VirtualClock` by some number of virtual nanoseconds taken from the
cost model.  Real (wall-clock) time plays no role in any reported result.

The clock has two charging paths:

* :meth:`advance` -- immediate: the counter and breakdown update at once.
* :meth:`charge` -- buffered: same-category charges accumulate in a local
  float and are folded in lazily.  Every observable read (``now``,
  ``breakdown``, ``category``) and every synchronizing operation
  (``advance``, ``wait_until``, ``fork``, ``join``) flushes the buffer
  first, so the two paths are indistinguishable from the outside.  The
  compiled execution engine uses ``charge`` for its hot compute
  accounting; the reference interpreter only uses ``advance``.

A *tick hook* (:meth:`set_tick_hook`) lets the windowed telemetry
collector observe virtual-time window boundaries: whenever a fold moves
``_now`` at or past the armed boundary, the callback fires with the new
time and returns the next boundary to arm.  Disabled (the default) the
boundary is ``+inf``, so every fold pays exactly one float compare --
the clock's contribution to "telemetry off costs nothing".  Forked
(per-thread) clocks never carry a hook; boundaries crossed inside a
parallel region surface when the parent :meth:`join`\\ s.
"""

from __future__ import annotations

from repro.errors import MiraError


class VirtualClock:
    """A monotonically non-decreasing virtual-nanosecond counter.

    The clock also keeps a breakdown of where time went (by category
    string), which the profiler and the figure harnesses read.
    """

    __slots__ = ("_now", "_breakdown", "_pending", "_pending_cat",
                 "_tick_cb", "_next_tick")

    def __init__(self) -> None:
        self._now: float = 0.0
        self._breakdown: dict[str, float] = {}
        self._pending: float = 0.0
        self._pending_cat: str = "compute"
        self._tick_cb = None
        self._next_tick: float = float("inf")

    def set_tick_hook(self, cb, first_boundary: float = float("inf")) -> None:
        """Arm (or, with ``cb=None``, disarm) the boundary callback.

        ``cb(now)`` is invoked after any fold that reaches
        ``first_boundary`` and must return the next boundary to arm
        (``inf`` to stop).  The callback must not advance this clock.
        """
        if cb is None:
            self._tick_cb = None
            self._next_tick = float("inf")
        else:
            self._tick_cb = cb
            self._next_tick = first_boundary

    @property
    def now(self) -> float:
        """Current virtual time in nanoseconds."""
        if self._pending:
            self._flush()
        return self._now

    def charge(self, ns: float, category: str = "compute") -> None:
        """Buffer a charge on the fast path (see module docstring)."""
        if ns < 0:
            raise MiraError(f"cannot advance clock by negative time {ns}")
        if category == self._pending_cat:
            self._pending += ns
        else:
            if self._pending:
                self._flush()
            self._pending_cat = category
            self._pending = ns

    def flush(self) -> None:
        """Fold any buffered charges into the counter and breakdown."""
        if self._pending:
            self._flush()

    def _flush(self) -> None:
        ns = self._pending
        self._pending = 0.0
        self._now += ns
        cat = self._pending_cat
        bd = self._breakdown
        bd[cat] = bd.get(cat, 0.0) + ns
        if self._now >= self._next_tick:
            self._next_tick = self._tick_cb(self._now)

    def advance(self, ns: float, category: str = "other") -> float:
        """Advance the clock by ``ns`` nanoseconds; returns the new time.

        ``category`` labels the time for the breakdown (e.g. ``"compute"``,
        ``"dram"``, ``"miss"``, ``"hit_overhead"``, ``"eviction"``).
        """
        if self._pending:
            self._flush()
        if ns < 0:
            raise MiraError(f"cannot advance clock by negative time {ns}")
        self._now += ns
        bd = self._breakdown
        bd[category] = bd.get(category, 0.0) + ns
        if self._now >= self._next_tick:
            self._next_tick = self._tick_cb(self._now)
        return self._now

    def wait_until(self, t: float, category: str = "wait") -> float:
        """Advance to time ``t`` if it is in the future; no-op otherwise."""
        if self._pending:
            self._flush()
        if t > self._now:
            self.advance(t - self._now, category)
        return self._now

    def breakdown(self) -> dict[str, float]:
        """A copy of the per-category time breakdown."""
        if self._pending:
            self._flush()
        return dict(self._breakdown)

    def peek_breakdown(self) -> dict[str, float]:
        """The live breakdown dict (flushed, NOT copied) -- read-only use
        on hot paths like the profiler; callers must not mutate it."""
        if self._pending:
            self._flush()
        return self._breakdown

    def category(self, name: str) -> float:
        """Time accumulated under one category."""
        if self._pending:
            self._flush()
        return self._breakdown.get(name, 0.0)

    def reset(self) -> None:
        self._now = 0.0
        self._breakdown.clear()
        self._pending = 0.0
        self._pending_cat = "compute"
        self._tick_cb = None
        self._next_tick = float("inf")

    def fork(self) -> "VirtualClock":
        """A new clock starting at this clock's current time.

        Used by the thread simulator: each virtual thread runs on a fork of
        the spawning clock and the parent later joins to the max.
        """
        if self._pending:
            self._flush()
        child = VirtualClock()
        child._now = self._now
        return child

    def join(self, other: "VirtualClock") -> None:
        """Merge a forked clock back: jump to its time if later, and fold
        its breakdown into ours."""
        if other._pending:
            other._flush()
        if self._pending:
            self._flush()
        for cat, ns in other._breakdown.items():
            self._breakdown[cat] = self._breakdown.get(cat, 0.0) + ns
        if other._now > self._now:
            self._now = other._now
        if self._now >= self._next_tick:
            self._next_tick = self._tick_cb(self._now)

    def __repr__(self) -> str:
        return f"VirtualClock(now={self.now:.1f}ns)"
