"""Far-memory pooling: multiple memory nodes behind a placement layer.

Paper section 5: "Supporting multiple memory nodes, or memory pooling,
can be done via the integration of Mira and a distributed memory
management layer such as the one used in LegoOS, where Mira decides what
objects and functions to offload and the distributed memory manager
decides which memory node to offload them to."

:class:`FarMemoryPool` is that layer: it owns N :class:`FarMemoryNode`
instances and places each allocation on one of them under a pluggable
policy.  :class:`PooledCacheManager` plugs the pool under Mira's cache
manager -- sections and compilation are unchanged (exactly the division
of labor the paper describes); the pool adds per-node capacity limits and
traffic attribution.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.cache.manager import CacheManager
from repro.errors import AllocationError, ConfigError
from repro.memsim.address import ObjectInfo
from repro.memsim.cost_model import CostModel
from repro.memsim.farnode import FarMemoryNode


class PlacementPolicy(enum.Enum):
    ROUND_ROBIN = "round_robin"
    #: place on the node with the most free capacity (LegoOS-style)
    CAPACITY = "capacity"
    #: fill one node before spilling to the next
    FIRST_FIT = "first_fit"


@dataclass
class NodeStats:
    allocated_bytes: int = 0
    objects: int = 0
    bytes_read: int = 0
    bytes_written: int = 0


class FarMemoryPool:
    """N far-memory nodes and the placement decisions across them."""

    def __init__(
        self,
        cost: CostModel,
        num_nodes: int,
        capacity_per_node: int,
        policy: PlacementPolicy = PlacementPolicy.CAPACITY,
    ) -> None:
        if num_nodes <= 0:
            raise ConfigError(f"pool needs >= 1 node, got {num_nodes}")
        self.nodes = [
            FarMemoryNode(cost, capacity_per_node) for _ in range(num_nodes)
        ]
        self.capacity_per_node = capacity_per_node
        self.policy = policy
        self.stats = [NodeStats() for _ in range(num_nodes)]
        self._placement: dict[int, int] = {}
        self._next_rr = 0

    # -- placement -------------------------------------------------------

    def place(self, obj: ObjectInfo) -> int:
        """Choose a node for the object and allocate there."""
        node_id = self._choose(obj.size)
        # capacity accounting lives in the pool (a bump allocator cannot
        # reuse freed ranges; a real distributed manager tracks extents)
        st = self.stats[node_id]
        st.allocated_bytes += obj.size
        st.objects += 1
        self._placement[obj.obj_id] = node_id
        return node_id

    def _choose(self, size: int) -> int:
        candidates = [
            i for i, st in enumerate(self.stats)
            if st.allocated_bytes + size <= self.capacity_per_node
        ]
        if not candidates:
            raise AllocationError(
                f"far-memory pool exhausted: no node can fit {size} bytes"
            )
        if self.policy is PlacementPolicy.ROUND_ROBIN:
            for _ in range(len(self.nodes)):
                i = self._next_rr % len(self.nodes)
                self._next_rr += 1
                if i in candidates:
                    return i
            return candidates[0]
        if self.policy is PlacementPolicy.CAPACITY:
            return min(candidates, key=lambda i: self.stats[i].allocated_bytes)
        return candidates[0]  # FIRST_FIT

    def node_of(self, obj_id: int) -> int:
        try:
            return self._placement[obj_id]
        except KeyError:
            raise AllocationError(f"object {obj_id} not placed in pool") from None

    def release(self, obj: ObjectInfo) -> None:
        node_id = self._placement.pop(obj.obj_id, None)
        if node_id is not None:
            st = self.stats[node_id]
            st.allocated_bytes -= obj.size
            st.objects -= 1

    # -- reporting --------------------------------------------------------

    def record_traffic(self, obj_id: int, nbytes: int, is_write: bool) -> None:
        node_id = self._placement.get(obj_id)
        if node_id is None:
            return
        st = self.stats[node_id]
        if is_write:
            st.bytes_written += nbytes
        else:
            st.bytes_read += nbytes

    def imbalance(self) -> float:
        """max/mean allocated bytes across nodes (1.0 = perfectly even)."""
        sizes = [st.allocated_bytes for st in self.stats]
        mean = sum(sizes) / len(sizes)
        return max(sizes) / mean if mean else 1.0


class PooledCacheManager(CacheManager):
    """Mira's cache manager over a far-memory pool.

    Mira decides *what* is remote and how it is cached (unchanged); the
    pool decides *where* each object lives and enforces per-node
    capacity.  All nodes sit behind the same rack switch, so the timing
    model (one link from the compute node) is unchanged; the pool adds
    placement, capacity, and per-node traffic accounting.
    """

    name = "mira-pooled"

    def __init__(
        self,
        cost: CostModel,
        local_mem_bytes: int,
        pool: FarMemoryPool,
        clock=None,
        fault_lock=None,
    ) -> None:
        super().__init__(cost, local_mem_bytes, clock, fault_lock)
        self.pool = pool

    def _on_allocate(self, obj: ObjectInfo) -> None:
        self.pool.place(obj)
        super()._on_allocate(obj)

    def _on_free(self, obj: ObjectInfo) -> None:
        super()._on_free(obj)
        self.pool.release(obj)

    def access(self, obj_id, offset, size, is_write, native=False) -> None:
        super().access(obj_id, offset, size, is_write, native=native)
        self.pool.record_traffic(obj_id, size, is_write)
