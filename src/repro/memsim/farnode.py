"""The far-memory node.

Holds the remote allocator (paper section 5.2.1: a low-level allocator at
far memory fronted by a buffering local allocator) and a weak CPU able to
execute offloaded functions (section 4.8).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import AllocationError
from repro.memsim.cost_model import CostModel

#: granularity at which the local allocator requests address ranges from
#: the remote allocator (amortizes the allocation round trip)
REMOTE_ALLOC_CHUNK = 16 * 1024 * 1024


@dataclass
class _Extent:
    base: int
    size: int


class RemoteAllocator:
    """Low-level bump allocator in the far node's virtual address space."""

    def __init__(self, capacity: int, base: int = 0x7F00_0000_0000) -> None:
        self.capacity = capacity
        self._base = base
        self._brk = base

    def allocate(self, size: int) -> int:
        if self._brk + size > self._base + self.capacity:
            raise AllocationError(
                f"far memory exhausted: need {size} bytes, "
                f"{self._base + self.capacity - self._brk} remain"
            )
        addr = self._brk
        self._brk += size
        return addr

    @property
    def used(self) -> int:
        return self._brk - self._base


class LocalAllocator:
    """Buffers far-memory address ranges locally (``remotable.alloc``).

    Works like a library malloc over the remote allocator's mmap: it asks
    the remote side for large chunks and carves allocations out of them
    without a network round trip.  ``round_trips`` counts how often the
    remote allocator had to be contacted.
    """

    def __init__(self, remote: RemoteAllocator) -> None:
        self._remote = remote
        self._extents: list[_Extent] = []
        self.round_trips = 0

    def allocate(self, size: int) -> int:
        for ext in self._extents:
            if ext.size >= size:
                addr = ext.base
                ext.base += size
                ext.size -= size
                return addr
        chunk = max(size, REMOTE_ALLOC_CHUNK)
        base = self._remote.allocate(chunk)
        self.round_trips += 1
        self._extents.append(_Extent(base + size, chunk - size))
        return base


class FarMemoryNode:
    """Far-memory node: capacity, allocators, and offload compute."""

    def __init__(self, cost: CostModel, capacity: int = 1 << 40) -> None:
        self.cost = cost
        self.remote_allocator = RemoteAllocator(capacity)
        self.local_allocator = LocalAllocator(self.remote_allocator)
        #: per-run :class:`repro.faults.FaultInjector` (slowdown windows
        #: scale offload compute); None when healthy
        self.faults = None
        #: the owning system's virtual clock, used only to locate the
        #: current time inside fault windows
        self.clock = None

    def allocate(self, size: int) -> int:
        """Allocate ``size`` bytes of far memory; returns the far VA."""
        return self.local_allocator.allocate(size)

    def compute_ns(self, local_equiv_ns: float) -> float:
        """Time for the far node's weaker CPU to do work that would take
        ``local_equiv_ns`` on the compute node."""
        ns = local_equiv_ns * self.cost.far_cpu_slowdown
        flt = self.faults
        if flt is not None and self.clock is not None:
            ns *= flt.far_scale(self.clock.now)
        return ns

    @property
    def used_bytes(self) -> int:
        return self.remote_allocator.used

    def publish_metrics(self, registry) -> None:
        """Publish allocator state into a :class:`repro.obs.MetricsRegistry`."""
        registry.gauge("far.used_bytes").set(self.used_bytes)
        registry.gauge("far.alloc_round_trips").set(self.local_allocator.round_trips)
