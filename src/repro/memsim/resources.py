"""Shared-resource contention for the multi-thread simulation.

Virtual threads run on private clocks; a :class:`SerialResource` models
something only one thread can use at a time (e.g. the kernel swap lock that
bottlenecks Linux-based swap systems -- paper section 6.2, Fig. 24/25).
"""

from __future__ import annotations

from repro.memsim.clock import VirtualClock


class SerialResource:
    """A mutually-exclusive resource on the virtual timeline.

    ``acquire(clock, hold_ns)`` makes the calling thread wait until the
    resource frees, then holds it for ``hold_ns``.  Because virtual threads
    are simulated one after another, the busy timeline is just a
    high-water mark.
    """

    def __init__(self, name: str = "lock") -> None:
        self.name = name
        self.free_at: float = 0.0
        self.contended_ns: float = 0.0
        self.acquisitions: int = 0
        #: threads currently competing (set by the thread simulator);
        #: inside a parallel region each acquisition expects to queue
        #: behind contention-1 other holders on average
        self.contention: int = 1

    def acquire(self, clock: VirtualClock, hold_ns: float) -> None:
        self.acquisitions += 1
        if self.contention > 1:
            # threads are simulated sequentially, so a shared timeline
            # over-serializes; model steady-state queueing instead
            queue_ns = hold_ns * (self.contention - 1)
            self.contended_ns += queue_ns
            clock.advance(queue_ns, "lock_wait")
            clock.advance(hold_ns, "lock_hold")
            return
        if self.free_at > clock.now:
            self.contended_ns += self.free_at - clock.now
            clock.wait_until(self.free_at, "lock_wait")
        self.free_at = clock.now + hold_ns
        clock.advance(hold_ns, "lock_hold")

    def reset(self) -> None:
        self.free_at = 0.0
        self.contended_ns = 0.0
        self.acquisitions = 0
