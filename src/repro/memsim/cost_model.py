"""Virtual-time cost model.

All latencies are virtual nanoseconds.  Defaults approximate the paper's
testbed: CloudLab c6220 nodes (2.6 GHz Xeons, 64 GB RAM) connected by
50 Gbps Mellanox FDR InfiniBand.  Absolute values need not match the
hardware exactly -- every experiment reports performance normalized to a
native all-local run on the *same* cost model -- but the ratios between
them (DRAM vs RTT, bandwidth vs page size, lookup vs load) determine where
the paper's crossovers fall, so they are chosen to be realistic.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.errors import ConfigError


@dataclass(frozen=True)
class CostModel:
    """Latency/throughput constants shared by every simulated system."""

    # --- compute node ---------------------------------------------------
    #: one local DRAM access (a cache-line-granularity load/store)
    dram_access_ns: float = 100.0
    #: one simple ALU/branch operation
    cpu_op_ns: float = 1.0
    #: local DRAM streaming bandwidth in bytes/ns (bulk range accesses)
    dram_stream_bpns: float = 25.0
    #: function call / return bookkeeping
    call_ns: float = 5.0

    # --- cache-section lookup overheads (Mira runtime, section 4.2) ------
    #: directly-mapped lookup: mask + compare
    hit_overhead_direct_ns: float = 15.0
    #: set-associative lookup: index + K tag compares
    hit_overhead_set_assoc_ns: float = 35.0
    #: fully-associative lookup: hash-map probe
    hit_overhead_full_assoc_ns: float = 70.0
    #: inserting a fetched line into a section (metadata update)
    insert_overhead_ns: float = 40.0
    #: evicting one line (unlink + free-list push; write-back priced via net)
    evict_overhead_ns: float = 30.0

    # --- network (RDMA-class) -------------------------------------------
    #: one-sided read/write round-trip latency (small message)
    net_rtt_ns: float = 3000.0
    #: link bandwidth in bytes per nanosecond (50 Gbps = 6.25 B/ns)
    net_bandwidth_bpns: float = 6.25
    #: extra per-message cost of two-sided communication: far-node CPU
    #: receives, copies, replies
    two_sided_msg_ns: float = 400.0
    #: per-byte copy cost on the far node for two-sided messages
    two_sided_copy_bpns: float = 12.0
    #: per-op detection timeout under fault injection: how long the sender
    #: waits before declaring a message lost (default for
    #: :class:`repro.faults.FaultPlan.timeout_ns`)
    net_timeout_ns: float = 50_000.0
    #: first-retry backoff under fault injection (default for
    #: :class:`repro.faults.FaultPlan.backoff_base_ns`)
    net_backoff_base_ns: float = 10_000.0

    # --- kernel swap path (FastSwap / Leap substrate) ---------------------
    #: page-fault trap + kernel swap path (FastSwap's optimized datapath)
    page_fault_ns: float = 3500.0
    #: Leap's datapath is less optimized than FastSwap's (paper section 6.1:
    #: "Leap performs worse than FastSwap ... because of FastSwap's more
    #: efficient data-path implementation in Linux")
    leap_extra_fault_ns: float = 1200.0
    #: asynchronous dirty-page writeback cost charged on eviction
    page_writeback_ns: float = 300.0

    # --- AIFM-style library runtime ---------------------------------------
    #: hot-path dereference of a remotable pointer (metadata checks,
    #: dereference-scope bookkeeping)
    aifm_deref_ns: float = 350.0
    #: per-remotable-object metadata (header + remote pointer state)
    aifm_object_metadata_bytes: int = 16
    #: miss path adds object lookup + eviction-handler bookkeeping
    aifm_miss_extra_ns: float = 1000.0

    # --- far-memory node ---------------------------------------------------
    #: far node compute slowdown relative to the compute node (low-power
    #: cores, section 4.8)
    far_cpu_slowdown: float = 3.0
    #: RPC invocation overhead for offloaded functions
    rpc_ns: float = 5000.0

    # --- Mira profiling ------------------------------------------------
    #: cost of one coarse-grained profiling event (counter update)
    profile_event_ns: float = 20.0

    # --- hybrid data plane (repro.cache.hybrid) --------------------------
    #: one online path switch of a section group (swap <-> object):
    #: metadata rebuild, page-table/section bookkeeping.  The migration
    #: traffic itself (write-backs, refills) is priced by the normal
    #: cache/swap machinery; this is only the control-plane cost.
    path_switch_ns: float = 2000.0

    #: free-form overrides recorded for provenance
    notes: dict = field(default_factory=dict, compare=False)

    def __post_init__(self) -> None:
        if self.net_bandwidth_bpns <= 0:
            raise ConfigError("network bandwidth must be positive")
        if self.dram_access_ns <= 0:
            raise ConfigError("DRAM latency must be positive")

    # -- derived helpers ----------------------------------------------------

    def transfer_ns(self, nbytes: int) -> float:
        """Wire time for ``nbytes`` at link bandwidth."""
        if nbytes < 0:
            raise ConfigError(f"negative transfer size {nbytes}")
        return nbytes / self.net_bandwidth_bpns

    def one_sided_ns(self, nbytes: int) -> float:
        """Latency of a one-sided RDMA read/write of ``nbytes``."""
        return self.net_rtt_ns + self.transfer_ns(nbytes)

    def two_sided_ns(self, nbytes: int) -> float:
        """Latency of a two-sided message carrying ``nbytes`` of payload."""
        return (
            self.net_rtt_ns
            + self.transfer_ns(nbytes)
            + self.two_sided_msg_ns
            + nbytes / self.two_sided_copy_bpns
        )

    def page_fetch_ns(self, page_size: int, extra_fault_ns: float = 0.0) -> float:
        """Demand-fetching one swap page: trap + kernel path + RDMA read."""
        return self.page_fault_ns + extra_fault_ns + self.one_sided_ns(page_size)

    def hit_overhead_ns(self, structure: str) -> float:
        """Lookup overhead for a cache-section structure name."""
        table = {
            "direct": self.hit_overhead_direct_ns,
            "set_associative": self.hit_overhead_set_assoc_ns,
            "fully_associative": self.hit_overhead_full_assoc_ns,
        }
        try:
            return table[structure]
        except KeyError:
            raise ConfigError(f"unknown cache structure {structure!r}") from None

    def with_overrides(self, **kwargs) -> "CostModel":
        """A copy of this model with some constants replaced."""
        return replace(self, **kwargs)

    @classmethod
    def rdma(cls) -> "CostModel":
        """The default: 50 Gbps InfiniBand-class remote memory (the
        paper's testbed)."""
        return cls()

    @classmethod
    def cxl(cls) -> "CostModel":
        """A CXL-attached memory-pool profile (paper section 2.1: "our
        general designs apply to ... CXL-based memory pools").

        Cache-line-class access latency (~400 ns round trip), much higher
        effective bandwidth, no kernel fault path needed for the swap
        substrate (load/store semantics), cheaper messages.  Mira's
        *decisions* shift accordingly -- smaller efficient line sizes,
        shorter prefetch distances -- which
        ``benchmarks/test_cxl_ablation.py`` exercises.
        """
        return cls(
            net_rtt_ns=400.0,
            net_bandwidth_bpns=32.0,  # ~256 Gbps CXL x8-class
            two_sided_msg_ns=150.0,
            two_sided_copy_bpns=32.0,
            page_fault_ns=1200.0,  # no full kernel swap path
            leap_extra_fault_ns=400.0,
            rpc_ns=2000.0,
            notes={"profile": "cxl"},
        )

    @classmethod
    def slow_storage(cls) -> "CostModel":
        """A slower-storage-tier profile (NVMe-class far memory): the
        other end of the spectrum the paper's adaptivity targets."""
        return cls(
            net_rtt_ns=80_000.0,
            net_bandwidth_bpns=3.0,
            page_fault_ns=6000.0,
            rpc_ns=100_000.0,
            notes={"profile": "slow-storage"},
        )
