"""Object identities and the shared virtual address space.

Every allocation in a simulated program becomes an :class:`ObjectInfo` with
a stable object id and a page-aligned virtual base address.  Object-granular
systems (Mira cache sections, AIFM) key their state by object id; the
page-granular swap baselines (FastSwap, Leap) see flat virtual addresses.
Both views are derived from one :class:`AddressSpace`, so every system
observes the *same* access stream.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass, field

from repro.errors import MemoryError_

#: OS page size used by the swap-based systems (paper section 5.3).
PAGE_SIZE = 4096


@dataclass
class ObjectInfo:
    """One allocated far-memory-capable object."""

    obj_id: int
    size: int
    elem_size: int
    base_va: int
    name: str = ""
    alloc_site: str = ""
    freed: bool = False
    #: arbitrary per-object annotations (e.g. struct field layout)
    attrs: dict = field(default_factory=dict)

    @property
    def num_elems(self) -> int:
        return self.size // self.elem_size if self.elem_size else 0

    @property
    def end_va(self) -> int:
        return self.base_va + self.size

    def va_of(self, byte_offset: int) -> int:
        """Virtual address of a byte offset inside this object."""
        if not 0 <= byte_offset < max(self.size, 1):
            raise MemoryError_(
                f"offset {byte_offset} out of bounds for object "
                f"{self.name or self.obj_id} of size {self.size}"
            )
        return self.base_va + byte_offset


class AddressSpace:
    """Allocates object ids and page-aligned virtual address ranges."""

    def __init__(self, base: int = 0x1000_0000) -> None:
        self._next_id = 1
        self._next_va = base
        self._objects: dict[int, ObjectInfo] = {}
        #: parallel arrays for VA -> object lookup (``_next_va`` only
        #: grows, so appends keep ``_va_bases`` sorted and bisect works)
        self._va_bases: list[int] = []
        self._va_objs: list[ObjectInfo] = []

    def allocate(
        self,
        size: int,
        elem_size: int = 8,
        name: str = "",
        alloc_site: str = "",
        attrs: dict | None = None,
    ) -> ObjectInfo:
        """Create a new object covering ``size`` bytes."""
        if size <= 0:
            raise MemoryError_(f"allocation size must be positive, got {size}")
        if elem_size <= 0:
            raise MemoryError_(f"element size must be positive, got {elem_size}")
        obj = ObjectInfo(
            obj_id=self._next_id,
            size=size,
            elem_size=elem_size,
            base_va=self._next_va,
            name=name,
            alloc_site=alloc_site,
            attrs=attrs or {},
        )
        self._objects[obj.obj_id] = obj
        self._va_bases.append(obj.base_va)
        self._va_objs.append(obj)
        self._next_id += 1
        # keep objects page-aligned and non-adjacent (guard page) so that a
        # page never spans two objects -- matches how real allocators place
        # large objects and keeps swap accounting simple
        pages = (size + PAGE_SIZE - 1) // PAGE_SIZE + 1
        self._next_va += pages * PAGE_SIZE
        return obj

    def free(self, obj_id: int) -> None:
        obj = self.get(obj_id)
        if obj.freed:
            raise MemoryError_(f"double free of object {obj_id}")
        obj.freed = True

    def get(self, obj_id: int) -> ObjectInfo:
        try:
            return self._objects[obj_id]
        except KeyError:
            raise MemoryError_(f"unknown object id {obj_id}") from None

    def objects(self) -> list[ObjectInfo]:
        """All allocated objects, in allocation order."""
        return list(self._objects.values())

    def live_objects(self) -> list[ObjectInfo]:
        return [o for o in self._objects.values() if not o.freed]

    def total_live_bytes(self) -> int:
        return sum(o.size for o in self.live_objects())

    def find_by_name(self, name: str) -> ObjectInfo:
        for obj in self._objects.values():
            if obj.name == name:
                return obj
        raise MemoryError_(f"no object named {name!r}")

    def page_of(self, va: int) -> int:
        return va // PAGE_SIZE

    # -- VA -> object resolution (raw-trace frontend) ------------------------

    def object_at(self, va: int) -> ObjectInfo:
        """The live object containing virtual address ``va``.

        Raises :class:`~repro.errors.MemoryError_` (never ``KeyError``)
        for addresses outside every allocation -- including the guard
        pages between objects -- and for addresses inside freed objects.
        """
        idx = bisect_right(self._va_bases, va) - 1
        if idx >= 0:
            obj = self._va_objs[idx]
            if va < obj.end_va:
                if obj.freed:
                    raise MemoryError_(
                        f"address {va:#x} is inside freed object "
                        f"{obj.name or obj.obj_id}"
                    )
                return obj
        raise MemoryError_(f"address {va:#x} is not mapped to any object")

    def resolve(self, va: int, size: int) -> tuple[ObjectInfo, int]:
        """Resolve an access of ``size`` bytes at ``va`` to
        ``(object, byte offset)``.

        The whole range ``[va, va+size)`` must sit inside one object: a
        range that runs off the end of its object (into the guard page,
        or straddling toward the next allocation) is a typed error, as is
        a zero- or negative-length access.
        """
        if size <= 0:
            raise MemoryError_(
                f"access size must be positive, got {size} at {va:#x}"
            )
        obj = self.object_at(va)
        if va + size > obj.end_va:
            raise MemoryError_(
                f"access [{va:#x}, {va + size:#x}) straddles the end of "
                f"object {obj.name or obj.obj_id} "
                f"([{obj.base_va:#x}, {obj.end_va:#x}))"
            )
        return obj, va - obj.base_va
