"""Simulated RDMA-class network between the compute and far-memory nodes.

Supports the paper's two communication methods (section 4.7):

* **one-sided** -- the compute node reads/writes far memory directly with
  zero copy; cost = RTT + wire time.
* **two-sided** -- data travels as a message that the far node's CPU must
  receive and copy; cost adds per-message CPU time and per-byte copy time,
  but only the *requested* bytes travel, which is what makes two-sided the
  right choice for partial-structure (selective) transmission.

The network also supports asynchronous operations for prefetching: an async
fetch issued at time ``t`` completes at ``t + latency``; a consumer that
arrives early waits only for the remainder.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.faults.reliability import CircuitBreaker
from repro.memsim.clock import VirtualClock
from repro.memsim.cost_model import CostModel


class TransferKind(enum.Enum):
    """Which verb a transfer used."""

    ONE_SIDED_READ = "1s-read"
    ONE_SIDED_WRITE = "1s-write"
    TWO_SIDED = "2s-msg"
    RPC = "rpc"

    # members are singletons, so identity hashing is sound; Enum.__hash__
    # is a Python-level call and shows up in per-transfer accounting
    __hash__ = object.__hash__


@dataclass
class NetworkStats:
    """Aggregate traffic counters, per transfer kind."""

    bytes_read: int = 0
    bytes_written: int = 0
    messages: int = 0
    by_kind: dict[TransferKind, int] = field(default_factory=dict)

    def record(self, kind: TransferKind, nbytes: int, is_write: bool) -> None:
        self.messages += 1
        self.by_kind[kind] = self.by_kind.get(kind, 0) + nbytes
        if is_write:
            self.bytes_written += nbytes
        else:
            self.bytes_read += nbytes

    @property
    def total_bytes(self) -> int:
        return self.bytes_read + self.bytes_written

    def publish(self, registry) -> None:
        """Publish the counters into a :class:`repro.obs.MetricsRegistry`."""
        registry.gauge("net.bytes_read").set(self.bytes_read)
        registry.gauge("net.bytes_written").set(self.bytes_written)
        registry.gauge("net.messages").set(self.messages)
        for kind, nbytes in self.by_kind.items():
            registry.gauge(f"net.kind.{kind.value}.bytes").set(nbytes)


class Network:
    """Point-to-point link between the local node and far memory."""

    def __init__(self, cost: CostModel, clock: VirtualClock) -> None:
        self.cost = cost
        self.clock = clock
        self.stats = NetworkStats()
        #: attached :class:`repro.obs.Tracer`, or None (tracing disabled)
        self.tracer = None
        #: virtual time at which the link is next free; models bandwidth
        #: contention between overlapping async transfers
        self._link_free_at: float = 0.0
        #: active threads sharing the link (set by the thread simulator);
        #: each sees 1/contention of the bandwidth
        self.contention: int = 1
        #: attached :class:`repro.faults.FaultInjector`, or None (healthy
        #: link); installed per run via :meth:`install_faults`
        self.faults = None
        #: circuit breaker built from the fault plan (None when healthy)
        self.breaker = None
        #: callback fired (with the op name) when the breaker trips open;
        #: the cache manager hooks this to trigger graceful degradation
        self.on_persistent_failure = None
        # per-transfer constants, resolved once (per-access path)
        self._bw_bpns = cost.net_bandwidth_bpns
        self._rtt_ns = cost.net_rtt_ns
        self._msg_ns = cost.two_sided_msg_ns
        self._copy_bpns = cost.two_sided_copy_bpns
        self._issue_ns = cost.cpu_op_ns

    # -- synchronous ops ---------------------------------------------------

    def read(self, nbytes: int, one_sided: bool = True) -> float:
        """Synchronously fetch ``nbytes``; advances the clock; returns the
        total stall (link queue wait + transfer)."""
        if self.faults is not None:
            return self._sync_faulty(nbytes, one_sided, is_write=False)
        kind = TransferKind.ONE_SIDED_READ if one_sided else TransferKind.TWO_SIDED
        stats = self.stats  # record() inlined: per-transfer path
        stats.messages += 1
        by_kind = stats.by_kind
        by_kind[kind] = by_kind.get(kind, 0) + nbytes
        stats.bytes_read += nbytes
        wait = self._drain_link() if self._link_free_at > 0.0 else 0.0
        ns = self._latency(nbytes, one_sided)
        self.clock.advance(ns, "net_read")
        tr = self.tracer
        if tr is not None:
            tr.emit(
                "net.recv", self.clock.now, bytes=nbytes, one_sided=one_sided, ns=ns
            )
        return wait + ns

    def write(self, nbytes: int, one_sided: bool = True) -> float:
        """Synchronously write ``nbytes`` to far memory."""
        if self.faults is not None:
            return self._sync_faulty(nbytes, one_sided, is_write=True)
        kind = TransferKind.ONE_SIDED_WRITE if one_sided else TransferKind.TWO_SIDED
        stats = self.stats
        stats.messages += 1
        by_kind = stats.by_kind
        by_kind[kind] = by_kind.get(kind, 0) + nbytes
        stats.bytes_written += nbytes
        wait = self._drain_link() if self._link_free_at > 0.0 else 0.0
        ns = self._latency(nbytes, one_sided)
        self.clock.advance(ns, "net_write")
        tr = self.tracer
        if tr is not None:
            tr.emit(
                "net.send", self.clock.now, bytes=nbytes, one_sided=one_sided, ns=ns
            )
        return wait + ns

    def write_async(self, nbytes: int, one_sided: bool = True) -> float:
        """Issue a write that completes in the background (eviction
        write-back, flush hints).  Charges only issue cost now; returns the
        completion time."""
        kind = TransferKind.ONE_SIDED_WRITE if one_sided else TransferKind.TWO_SIDED
        stats = self.stats
        stats.messages += 1
        by_kind = stats.by_kind
        by_kind[kind] = by_kind.get(kind, 0) + nbytes
        stats.bytes_written += nbytes
        if self.faults is None:
            ready = self._schedule(nbytes, one_sided)
        else:
            ready = self._schedule_faulty(nbytes, one_sided, "write_async")
        self.clock.advance(self._issue_ns, "net_issue")
        tr = self.tracer
        if tr is not None:
            tr.emit(
                "net.send",
                self.clock.now,
                bytes=nbytes,
                one_sided=one_sided,
                ready=ready,
                issue=self._issue_ns,
            )
        return ready

    def read_async(self, nbytes: int, one_sided: bool = True) -> float:
        """Issue a prefetch; returns the virtual time it will be ready."""
        kind = TransferKind.ONE_SIDED_READ if one_sided else TransferKind.TWO_SIDED
        stats = self.stats
        stats.messages += 1
        by_kind = stats.by_kind
        by_kind[kind] = by_kind.get(kind, 0) + nbytes
        stats.bytes_read += nbytes
        if self.faults is None:
            ready = self._schedule(nbytes, one_sided)
        else:
            ready = self._schedule_faulty(nbytes, one_sided, "read_async")
        self.clock.advance(self._issue_ns, "net_issue")
        tr = self.tracer
        if tr is not None:
            tr.emit(
                "net.recv",
                self.clock.now,
                bytes=nbytes,
                one_sided=one_sided,
                ready=ready,
                issue=self._issue_ns,
            )
        return ready

    def rpc(self, request_bytes: int, response_bytes: int) -> float:
        """A two-sided RPC round trip (function offloading)."""
        total = request_bytes + response_bytes
        stats = self.stats
        stats.messages += 1
        by_kind = stats.by_kind
        by_kind[TransferKind.RPC] = by_kind.get(TransferKind.RPC, 0) + total
        # the request travels out, the response travels back
        stats.bytes_written += request_bytes
        stats.bytes_read += response_bytes
        flt = self.faults
        penalty = 0.0
        if flt is None:
            ns = (
                self.cost.rpc_ns
                + self.cost.transfer_ns(total)
                + self.cost.two_sided_msg_ns
            )
        else:
            penalty = self._fault_penalty("rpc")
            now = self.clock.now
            bw_scale, _ = flt.link_scales(now)
            far = flt.far_scale(now)
            ns = (
                self.cost.rpc_ns * far
                + self.cost.transfer_ns(total) * bw_scale
                + self.cost.two_sided_msg_ns * far
            )
        self.clock.advance(ns, "rpc")
        tr = self.tracer
        if tr is not None:
            tr.emit(
                "net.rpc", self.clock.now, req=request_bytes, resp=response_bytes, ns=ns
            )
        return penalty + ns

    # -- fault injection / reliability -------------------------------------

    def install_faults(self, injector) -> None:
        """Attach a per-run :class:`repro.faults.FaultInjector` (None to
        disable).  Builds the circuit breaker from the injector's plan."""
        self.faults = injector
        if injector is None:
            self.breaker = None
            return
        plan = injector.plan
        self.breaker = CircuitBreaker(plan.breaker_threshold, plan.breaker_cooldown_ns)

    def _drain_link(self) -> float:
        """An async transfer booked the wire: a sync op starts no earlier
        than the link is free.  Returns the queue wait charged."""
        clock = self.clock
        now = clock.now
        free_at = self._link_free_at
        self._link_free_at = 0.0
        if free_at > now:
            clock.wait_until(free_at, "net_wait")
            return free_at - now
        return 0.0

    def _sync_faulty(self, nbytes: int, one_sided: bool, is_write: bool) -> float:
        """Sync transfer under fault injection: queue wait, then the
        detect/retry/backoff/breaker loop, then the transfer at whatever
        the degraded link costs.  Completion is eventually forced -- the
        data is simulated, so a given-up op still produces its bytes and
        the cost model charges the whole ordeal."""
        if is_write:
            kind = TransferKind.ONE_SIDED_WRITE if one_sided else TransferKind.TWO_SIDED
            cat, ev, op = "net_write", "net.send", "write"
        else:
            kind = TransferKind.ONE_SIDED_READ if one_sided else TransferKind.TWO_SIDED
            cat, ev, op = "net_read", "net.recv", "read"
        stats = self.stats
        stats.messages += 1
        by_kind = stats.by_kind
        by_kind[kind] = by_kind.get(kind, 0) + nbytes
        if is_write:
            stats.bytes_written += nbytes
        else:
            stats.bytes_read += nbytes
        wait = self._drain_link() if self._link_free_at > 0.0 else 0.0
        penalty = self._fault_penalty(op)
        clock = self.clock
        ns = self._latency_faulty(nbytes, one_sided, clock.now)
        clock.advance(ns, cat)
        tr = self.tracer
        if tr is not None:
            tr.emit(ev, clock.now, bytes=nbytes, one_sided=one_sided, ns=ns)
        return wait + penalty + ns

    def _fault_penalty(self, op: str) -> float:
        """The reliability loop for one sync op: roll for a fault, pay the
        detection timeout, back off exponentially, retry up to the plan's
        budget; consecutive failures trip the circuit breaker, which fails
        fast while open and reports upward via ``on_persistent_failure``.
        Charges the clock; returns the total penalty in virtual ns."""
        flt = self.faults
        plan = flt.plan
        fstats = flt.stats
        br = self.breaker
        clock = self.clock
        tr = self.tracer
        timeout_ns = plan.timeout_ns
        penalty = 0.0
        attempt = 0
        while True:
            attempt += 1
            if not br.allows(clock.now):
                # breaker open: fail fast -- no injection, no retries; the
                # caller proceeds straight to the (degraded) transfer
                fstats.fast_fails += 1
                return penalty
            fault = flt.roll()
            if fault is None:
                br.record_success()
                return penalty
            if tr is not None:
                tr.emit(
                    "fault.inject",
                    clock.now,
                    op=op,
                    fault=fault,
                    attempt=attempt,
                    timeout=timeout_ns,
                )
            clock.advance(timeout_ns, "net_timeout")
            penalty += timeout_ns
            fstats.timeout_wait_ns += timeout_ns
            if br.record_failure(clock.now):
                fstats.breaker_trips += 1
                if tr is not None:
                    tr.emit("fault.breaker", clock.now, op=op, trips=br.trips)
                cb = self.on_persistent_failure
                if cb is not None:
                    cb(op)
                return penalty
            if attempt > plan.max_retries:
                fstats.giveups += 1
                if tr is not None:
                    tr.emit("fault.giveup", clock.now, op=op, attempts=attempt)
                return penalty
            backoff = plan.backoff_ns(attempt)
            fstats.retries += 1
            fstats.backoff_ns += backoff
            if tr is not None:
                tr.emit(
                    "retry.attempt", clock.now, op=op, attempt=attempt, backoff=backoff
                )
            clock.advance(backoff, "net_backoff")
            penalty += backoff

    def _latency_faulty(self, nbytes: int, one_sided: bool, now: float) -> float:
        """Like :meth:`_latency`, with active degradation windows applied."""
        flt = self.faults
        bw_scale, rtt_scale = flt.link_scales(now)
        transfer = nbytes / self._bw_bpns * bw_scale
        wire_scale = self.contention
        extra = transfer * (wire_scale - 1) if wire_scale > 1 else 0.0
        rtt = self._rtt_ns * rtt_scale
        if one_sided:
            return rtt + transfer + extra
        far = flt.far_scale(now)
        return rtt + transfer + (self._msg_ns + nbytes / self._copy_bpns) * far + extra

    def _schedule_faulty(self, nbytes: int, one_sided: bool, op: str) -> float:
        """Like :meth:`_schedule`, under fault injection.  Async transfers
        absorb faults into their completion time: a lost issue is detected
        and re-issued in the background, so the timeout + one backoff land
        on ``ready`` instead of stalling the issuing thread.  Async faults
        do not touch the circuit breaker (no synchronous failure signal)."""
        flt = self.faults
        clock = self.clock
        now = clock.now
        penalty = 0.0
        fault = flt.roll()
        if fault is not None:
            plan = flt.plan
            backoff = plan.backoff_ns(1)
            penalty = plan.timeout_ns + backoff
            fstats = flt.stats
            fstats.retries += 1
            fstats.backoff_ns += backoff
            fstats.timeout_wait_ns += plan.timeout_ns
            tr = self.tracer
            if tr is not None:
                tr.emit("fault.inject", now, op=op, fault=fault, attempt=1)
                tr.emit("retry.attempt", now, op=op, attempt=1, backoff=backoff)
        bw_scale, rtt_scale = flt.link_scales(now)
        free_at = self._link_free_at
        start = free_at if free_at > now else now
        scale = self.contention
        wire = nbytes / self._bw_bpns * bw_scale * (scale if scale > 1 else 1)
        self._link_free_at = start + wire
        base = self._rtt_ns * rtt_scale
        if not one_sided:
            base += (self._msg_ns + nbytes / self._copy_bpns) * flt.far_scale(now)
        return start + base + wire + penalty

    # -- internals ---------------------------------------------------------

    def _latency(self, nbytes: int, one_sided: bool) -> float:
        transfer = nbytes / self._bw_bpns
        wire_scale = self.contention
        extra = transfer * (wire_scale - 1) if wire_scale > 1 else 0.0
        if one_sided:
            return self._rtt_ns + transfer + extra
        return self._rtt_ns + transfer + self._msg_ns + nbytes / self._copy_bpns + extra

    def _schedule(self, nbytes: int, one_sided: bool) -> float:
        """Book wire time on the link starting no earlier than now; returns
        the completion time of the async transfer."""
        now = self.clock.now
        free_at = self._link_free_at
        start = free_at if free_at > now else now
        scale = self.contention
        wire = nbytes / self._bw_bpns * (scale if scale > 1 else 1)
        self._link_free_at = start + wire
        base = self._rtt_ns
        if not one_sided:
            base += self._msg_ns + nbytes / self._copy_bpns
        return start + base + wire
