"""Simulated RDMA-class network between the compute and far-memory nodes.

Supports the paper's two communication methods (section 4.7):

* **one-sided** -- the compute node reads/writes far memory directly with
  zero copy; cost = RTT + wire time.
* **two-sided** -- data travels as a message that the far node's CPU must
  receive and copy; cost adds per-message CPU time and per-byte copy time,
  but only the *requested* bytes travel, which is what makes two-sided the
  right choice for partial-structure (selective) transmission.

The network also supports asynchronous operations for prefetching: an async
fetch issued at time ``t`` completes at ``t + latency``; a consumer that
arrives early waits only for the remainder.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.memsim.clock import VirtualClock
from repro.memsim.cost_model import CostModel


class TransferKind(enum.Enum):
    """Which verb a transfer used."""

    ONE_SIDED_READ = "1s-read"
    ONE_SIDED_WRITE = "1s-write"
    TWO_SIDED = "2s-msg"
    RPC = "rpc"

    # members are singletons, so identity hashing is sound; Enum.__hash__
    # is a Python-level call and shows up in per-transfer accounting
    __hash__ = object.__hash__


@dataclass
class NetworkStats:
    """Aggregate traffic counters, per transfer kind."""

    bytes_read: int = 0
    bytes_written: int = 0
    messages: int = 0
    by_kind: dict[TransferKind, int] = field(default_factory=dict)

    def record(self, kind: TransferKind, nbytes: int, is_write: bool) -> None:
        self.messages += 1
        self.by_kind[kind] = self.by_kind.get(kind, 0) + nbytes
        if is_write:
            self.bytes_written += nbytes
        else:
            self.bytes_read += nbytes

    @property
    def total_bytes(self) -> int:
        return self.bytes_read + self.bytes_written

    def publish(self, registry) -> None:
        """Publish the counters into a :class:`repro.obs.MetricsRegistry`."""
        registry.gauge("net.bytes_read").set(self.bytes_read)
        registry.gauge("net.bytes_written").set(self.bytes_written)
        registry.gauge("net.messages").set(self.messages)
        for kind, nbytes in self.by_kind.items():
            registry.gauge(f"net.kind.{kind.value}.bytes").set(nbytes)


class Network:
    """Point-to-point link between the local node and far memory."""

    def __init__(self, cost: CostModel, clock: VirtualClock) -> None:
        self.cost = cost
        self.clock = clock
        self.stats = NetworkStats()
        #: attached :class:`repro.obs.Tracer`, or None (tracing disabled)
        self.tracer = None
        #: virtual time at which the link is next free; models bandwidth
        #: contention between overlapping async transfers
        self._link_free_at: float = 0.0
        #: active threads sharing the link (set by the thread simulator);
        #: each sees 1/contention of the bandwidth
        self.contention: int = 1
        # per-transfer constants, resolved once (per-access path)
        self._bw_bpns = cost.net_bandwidth_bpns
        self._rtt_ns = cost.net_rtt_ns
        self._msg_ns = cost.two_sided_msg_ns
        self._copy_bpns = cost.two_sided_copy_bpns
        self._issue_ns = cost.cpu_op_ns

    # -- synchronous ops ---------------------------------------------------

    def read(self, nbytes: int, one_sided: bool = True) -> float:
        """Synchronously fetch ``nbytes``; advances the clock; returns cost."""
        ns = self._latency(nbytes, one_sided)
        kind = TransferKind.ONE_SIDED_READ if one_sided else TransferKind.TWO_SIDED
        stats = self.stats  # record() inlined: per-transfer path
        stats.messages += 1
        by_kind = stats.by_kind
        by_kind[kind] = by_kind.get(kind, 0) + nbytes
        stats.bytes_read += nbytes
        self.clock.advance(ns, "net_read")
        tr = self.tracer
        if tr is not None:
            tr.emit(
                "net.recv", self.clock.now, bytes=nbytes, one_sided=one_sided, ns=ns
            )
        return ns

    def write(self, nbytes: int, one_sided: bool = True) -> float:
        """Synchronously write ``nbytes`` to far memory."""
        ns = self._latency(nbytes, one_sided)
        kind = TransferKind.ONE_SIDED_WRITE if one_sided else TransferKind.TWO_SIDED
        stats = self.stats
        stats.messages += 1
        by_kind = stats.by_kind
        by_kind[kind] = by_kind.get(kind, 0) + nbytes
        stats.bytes_written += nbytes
        self.clock.advance(ns, "net_write")
        tr = self.tracer
        if tr is not None:
            tr.emit(
                "net.send", self.clock.now, bytes=nbytes, one_sided=one_sided, ns=ns
            )
        return ns

    def write_async(self, nbytes: int, one_sided: bool = True) -> float:
        """Issue a write that completes in the background (eviction
        write-back, flush hints).  Charges only issue cost now; returns the
        completion time."""
        kind = TransferKind.ONE_SIDED_WRITE if one_sided else TransferKind.TWO_SIDED
        stats = self.stats
        stats.messages += 1
        by_kind = stats.by_kind
        by_kind[kind] = by_kind.get(kind, 0) + nbytes
        stats.bytes_written += nbytes
        ready = self._schedule(nbytes, one_sided)
        self.clock.advance(self._issue_ns, "net_issue")
        tr = self.tracer
        if tr is not None:
            tr.emit(
                "net.send",
                self.clock.now,
                bytes=nbytes,
                one_sided=one_sided,
                ready=ready,
            )
        return ready

    def read_async(self, nbytes: int, one_sided: bool = True) -> float:
        """Issue a prefetch; returns the virtual time it will be ready."""
        kind = TransferKind.ONE_SIDED_READ if one_sided else TransferKind.TWO_SIDED
        stats = self.stats
        stats.messages += 1
        by_kind = stats.by_kind
        by_kind[kind] = by_kind.get(kind, 0) + nbytes
        stats.bytes_read += nbytes
        ready = self._schedule(nbytes, one_sided)
        self.clock.advance(self._issue_ns, "net_issue")
        tr = self.tracer
        if tr is not None:
            tr.emit(
                "net.recv",
                self.clock.now,
                bytes=nbytes,
                one_sided=one_sided,
                ready=ready,
            )
        return ready

    def rpc(self, request_bytes: int, response_bytes: int) -> float:
        """A two-sided RPC round trip (function offloading)."""
        ns = (
            self.cost.rpc_ns
            + self.cost.transfer_ns(request_bytes + response_bytes)
            + self.cost.two_sided_msg_ns
        )
        self.stats.record(TransferKind.RPC, request_bytes + response_bytes, False)
        self.clock.advance(ns, "rpc")
        tr = self.tracer
        if tr is not None:
            tr.emit(
                "net.rpc", self.clock.now, req=request_bytes, resp=response_bytes, ns=ns
            )
        return ns

    # -- internals ---------------------------------------------------------

    def _latency(self, nbytes: int, one_sided: bool) -> float:
        transfer = nbytes / self._bw_bpns
        wire_scale = self.contention
        extra = transfer * (wire_scale - 1) if wire_scale > 1 else 0.0
        if one_sided:
            return self._rtt_ns + transfer + extra
        return self._rtt_ns + transfer + self._msg_ns + nbytes / self._copy_bpns + extra

    def _schedule(self, nbytes: int, one_sided: bool) -> float:
        """Book wire time on the link starting no earlier than now; returns
        the completion time of the async transfer."""
        now = self.clock.now
        free_at = self._link_free_at
        start = free_at if free_at > now else now
        scale = self.contention
        wire = nbytes / self._bw_bpns * (scale if scale > 1 else 1)
        self._link_free_at = start + wire
        base = self._rtt_ns
        if not one_sided:
            base += self._msg_ns + nbytes / self._copy_bpns
        return start + base + wire
