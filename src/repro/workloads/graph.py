"""The paper's running example (Fig. 4): graph traversal.

    edges, nodes = malloc()
    for (i = 0; i < num_edges; i++)
        update_node(edges[i], edges[i].from, edges[i].to);

The edge array is scanned sequentially; the node array is accessed
indirectly through edge endpoints.  This interleaving is exactly what
defeats history-based prefetching (Leap) and page-granularity caching
(FastSwap) while Mira's analysis separates the two patterns into two
sections (Figs. 5-15).

Node elements are 128-byte records of which the traversal touches only
the leading 16 bytes (``value`` + ``visits``) -- the paper's "128 bytes is
the smallest size that can hold the accessed data unit" setup that makes
line-size choice (Fig. 9) and selective transmission matter.
"""

from __future__ import annotations

import numpy as np

from repro.ir.builder import IRBuilder
from repro.ir.types import F64, I64, INDEX, StructType
from repro.ir.verifier import verify
from repro.workloads.base import Workload
from repro.workloads.datagen import graph_edges, random_indices

EDGE_T = StructType("edge", (("src", I64), ("dst", I64), ("weight", F64)))
NODE_T = StructType(
    "node",
    (("value", F64), ("visits", I64))
    + tuple((f"pad{i}", F64) for i in range(14)),  # pad to 128 B
)


def make_graph_workload(
    num_edges: int = 6000,
    num_nodes: int = 2000,
    seed: int = 7,
    with_random_array: bool = False,
    random_elems: int = 4096,
) -> Workload:
    """The Fig. 4 traversal; ``with_random_array`` adds the third,
    uniformly-randomly accessed array of section 4.3 (Figs. 11/12)."""
    src, dst, weight = graph_edges(num_edges, num_nodes, seed)
    rand_idx = random_indices(num_edges, random_elems, seed + 1)

    def build_module():
        b = IRBuilder()
        with b.func("main", result_types=[F64]):
            # an AIFM port would use its vector/array types: edges in
            # chunked segments, nodes as one remotable record each
            edges = b.alloc(EDGE_T, num_edges, "edges",
                            obj_attrs={"aifm_obj_bytes": 1024})
            nodes = b.alloc(NODE_T, num_nodes, "nodes",
                            obj_attrs={"aifm_obj_bytes": NODE_T.byte_size})
            third = None
            if with_random_array:
                third = b.alloc(F64, random_elems, "third")
            zero = b.f64(0.0)
            with b.for_(0, num_edges, iter_args=[zero]) as loop:
                i, acc = loop.iv, loop.args[0]
                s = b.cast(b.load(edges, i, field="src"), INDEX)
                d = b.cast(b.load(edges, i, field="dst"), INDEX)
                w = b.load(edges, i, field="weight")
                # update_node(edges[i], edges[i].from, edges[i].to)
                sv = b.load(nodes, s, field="value")
                b.store(b.add(sv, w), nodes, s, field="value")
                dv = b.load(nodes, d, field="visits")
                b.store(b.add(dv, 1), nodes, d, field="visits")
                new_acc = b.add(acc, w)
                if third is not None:
                    # uniformly random accesses: a pseudo-random index
                    # stream the analysis cannot classify
                    r = b.rem(b.mul(i, 48271), random_elems)
                    tv = b.load(third, r)
                    b.store(b.add(tv, w), third, r)
                b.yield_([new_acc])
            b.ret([loop.results[0]])
        verify(b.module)
        return b.module

    def data_init(name, mrv):
        if name == "edges":
            mrv.fill([int(x) for x in src], field="src")
            mrv.fill([int(x) for x in dst], field="dst")
            mrv.fill([float(x) for x in weight], field="weight")

    expected = float(np.sum(weight))

    def check(results):
        got = results[0]
        assert abs(got - expected) < 1e-6 * max(1.0, abs(expected)), (
            f"graph traversal result {got} != expected {expected}"
        )

    return Workload(
        name="graph_traversal",
        build_module=build_module,
        data_init=data_init,
        check=check,
        description="Fig. 4 running example: sequential edges, indirect nodes",
        params={
            "num_edges": num_edges,
            "num_nodes": num_nodes,
            "with_random_array": with_random_array,
            "random_elems": random_elems,
        },
    )
