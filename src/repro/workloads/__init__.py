"""Evaluation workloads (paper section 6).

Each workload packages an IR program builder, deterministic synthetic
input data, and a correctness check, so every system runs the *same*
computation on the *same* access stream.

* :mod:`repro.workloads.graph` -- the running graph-traversal example
  (Fig. 4): sequential edge array + indirectly accessed node array;
* :mod:`repro.workloads.array_sum` -- the micro-benchmark of Fig. 19/20;
* :mod:`repro.workloads.dataframe` -- a mini columnar analytics engine on
  NYC-taxi-shaped synthetic data (avg/min/max, filter, group-by);
* :mod:`repro.workloads.gpt2` -- transformer inference at layer
  granularity (weights + KV cache streaming, FLOP-charged compute);
* :mod:`repro.workloads.mcf` -- a network-simplex-flavored kernel
  (indirect arc scans + pointer chasing), SPEC MCF's access shape.
"""

from repro.workloads.array_sum import make_array_sum_workload
from repro.workloads.base import Workload
from repro.workloads.dataframe import make_dataframe_workload
from repro.workloads.gpt2 import make_gpt2_workload
from repro.workloads.graph import make_graph_workload
from repro.workloads.mcf import make_mcf_workload

__all__ = [
    "Workload",
    "make_array_sum_workload",
    "make_dataframe_workload",
    "make_gpt2_workload",
    "make_graph_workload",
    "make_mcf_workload",
]
