"""Evaluation workloads (paper section 6).

Each workload packages an IR program builder, deterministic synthetic
input data, and a correctness check, so every system runs the *same*
computation on the *same* access stream.

* :mod:`repro.workloads.graph` -- the running graph-traversal example
  (Fig. 4): sequential edge array + indirectly accessed node array;
* :mod:`repro.workloads.array_sum` -- the micro-benchmark of Fig. 19/20;
* :mod:`repro.workloads.dataframe` -- a mini columnar analytics engine on
  NYC-taxi-shaped synthetic data (avg/min/max, filter, group-by);
* :mod:`repro.workloads.gpt2` -- transformer inference at layer
  granularity (weights + KV cache streaming, FLOP-charged compute);
* :mod:`repro.workloads.mcf` -- a network-simplex-flavored kernel
  (indirect arc scans + pointer chasing), SPEC MCF's access shape.
"""

import inspect

from repro.workloads.array_sum import make_array_sum_workload
from repro.workloads.base import Workload
from repro.workloads.dataframe import (
    make_dataframe_amm_workload,
    make_dataframe_workload,
    make_filter_workload,
)
from repro.workloads.gpt2 import make_gpt2_workload
from repro.workloads.graph import make_graph_workload
from repro.workloads.mcf import make_mcf_workload

#: workload-name -> factory; lets worker processes reconstruct a workload
#: from ``(name, params)`` (Workload objects hold closures and cannot be
#: pickled across a ProcessPoolExecutor)
WORKLOAD_FACTORIES = {
    "array_sum": make_array_sum_workload,
    "dataframe": make_dataframe_workload,
    "dataframe_amm": make_dataframe_amm_workload,
    "dataframe_filter": make_filter_workload,
    "gpt2": make_gpt2_workload,
    "graph_traversal": make_graph_workload,
    "mcf": make_mcf_workload,
}


def make_workload(name: str, **params) -> Workload:
    """Rebuild a registered workload by name.

    ``params`` may be a workload's recorded ``params`` dict; entries the
    factory does not accept (derived values like gpt2's ``layer_bytes``)
    are dropped.
    """
    try:
        factory = WORKLOAD_FACTORIES[name]
    except KeyError:
        raise KeyError(
            f"unknown workload {name!r}; registered: "
            f"{sorted(WORKLOAD_FACTORIES)}"
        ) from None
    accepted = inspect.signature(factory).parameters
    return factory(**{k: v for k, v in params.items() if k in accepted})


__all__ = [
    "WORKLOAD_FACTORIES",
    "Workload",
    "make_array_sum_workload",
    "make_dataframe_amm_workload",
    "make_dataframe_workload",
    "make_filter_workload",
    "make_gpt2_workload",
    "make_graph_workload",
    "make_mcf_workload",
    "make_workload",
]
