"""GPT-2 inference at layer granularity (paper section 6: GPT-2 on
ONNX/MLIR, CPU inference with KV caching).

The program is the transformer's layer loop: each forward pass streams
every layer's weight matrices, reads and appends the layer's KV-cache
slab, reuses a small activation buffer, and charges the layer's FLOPs as
compute time.  The properties the paper's evaluation rests on hold by
construction:

* layer-by-layer lifetime -- a layer's weights/KV are dead until the next
  pass (Mira's analysis prefetches the next layer and evicts the previous
  one, keeping performance flat down to a few percent of local memory,
  Fig. 17);
* CPU inference is compute-bound relative to the link (seq x batch FLOPs
  per weight byte), so overlapped transfers hide entirely -- while
  demand-paged systems serialize 4 KB faults and collapse;
* read-only weights shared across threads (Fig. 24).

Sizes are scaled down from the 100M-1.5B-parameter models (the shape, not
the absolute footprint, drives every effect).
"""

from __future__ import annotations

from repro.ir.builder import IRBuilder
from repro.ir.types import F64, IntType, MemRefType
from repro.ir.verifier import verify
from repro.workloads.base import Workload

#: pseudo-fp16 weights: 2-byte elements
HALF = IntType(16)


def make_gpt2_workload(
    layers: int = 48,
    d_model: int = 256,
    seq_len: int = 256,
    batch: int = 4,
    passes: int = 3,
    warmup_passes: int = 1,
    num_threads: int = 1,
    compute_per_byte_ns: float = 0.5,
) -> Workload:
    """Transformer inference: ``passes`` measured forward passes after
    ``warmup_passes`` untimed ones (model loading / steady state, as the
    paper measures inference throughput, not cold start)."""
    elem = HALF.byte_size
    attn_bytes = 4 * d_model * d_model * elem  # Wq,Wk,Wv,Wproj
    mlp_bytes = 8 * d_model * d_model * elem  # Wmlp1 (d->4d), Wmlp2 (4d->d)
    kv_bytes = 2 * seq_len * d_model * batch * elem
    act_bytes = seq_len * d_model * batch * elem
    attn_elems = attn_bytes // elem
    mlp_elems = mlp_bytes // elem
    kv_elems = kv_bytes // elem
    act_elems = act_bytes // elem
    layer_bytes = attn_bytes + mlp_bytes + kv_bytes
    compute_units_per_layer = layer_bytes * compute_per_byte_ns

    def build_module():
        b = IRBuilder()

        with b.func(
            "forward_pass",
            [MemRefType(HALF)] * 4,
            [],
            ["w_attn", "w_mlp", "kv_cache", "acts"],
        ) as fn:
            w_attn, w_mlp, kv_cache, acts = fn.args
            threads = max(1, num_threads)
            kv_slice = kv_bytes // threads
            act_slice = act_bytes // threads
            slice_compute = compute_units_per_layer / threads

            def layer_loop(thread_iv):
                """One thread's full forward pass over its batch slice:
                weights are shared read-only, KV/activations are sliced."""
                with b.for_(0, layers) as loop:
                    layer = loop.iv
                    attn_off = b.mul(layer, attn_bytes)
                    b.touch(w_attn, attn_off, attn_bytes)
                    kv_off = b.add(
                        b.mul(layer, kv_bytes), b.mul(thread_iv, kv_slice)
                    )
                    b.touch(kv_cache, kv_off, kv_slice)
                    b.work(slice_compute * 0.5, "attention")
                    b.touch(kv_cache, kv_off, kv_slice, is_write=True)
                    mlp_off = b.mul(layer, mlp_bytes)
                    b.touch(w_mlp, mlp_off, mlp_bytes)
                    b.work(slice_compute * 0.5, "mlp")
                    act_off = b.mul(thread_iv, act_slice)
                    b.touch(acts, act_off, act_slice, is_write=True)

            if threads > 1:
                # batch-parallel inference: every thread runs the whole
                # layer loop on shared read-only weights (Fig. 24)
                with b.parallel(0, threads, num_threads=threads) as par:
                    layer_loop(par.iv)
            else:
                zero = b.index(0)
                layer_loop(zero)

        with b.func("main", result_types=[F64]):
            w_attn = b.alloc(HALF, layers * attn_elems, "w_attn")
            w_mlp = b.alloc(HALF, layers * mlp_elems, "w_mlp")
            kv_cache = b.alloc(HALF, layers * kv_elems, "kv_cache")
            acts = b.alloc(HALF, act_elems, "acts")
            with b.for_(0, warmup_passes):
                b.call("forward_pass", [w_attn, w_mlp, kv_cache, acts])
            b.prof_begin("measured")
            with b.for_(0, passes):
                b.call("forward_pass", [w_attn, w_mlp, kv_cache, acts])
            b.prof_end("measured")
            b.ret([b.f64(float(layers * passes))])
        verify(b.module)
        return b.module

    def check(results):
        assert results[0] == float(layers * passes)

    return Workload(
        name="gpt2",
        build_module=build_module,
        data_init=None,  # touch ops do not read values
        check=check,
        description="transformer inference: layer-wise weight/KV streaming",
        params={
            "layers": layers,
            "d_model": d_model,
            "seq_len": seq_len,
            "batch": batch,
            "passes": passes,
            "layer_bytes": layer_bytes,
            "num_threads": num_threads,
        },
    )
