"""Workload packaging."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.core.pipeline import footprint_bytes
from repro.ir.core import Module
from repro.runtime.objects import MemRefVal


@dataclass
class Workload:
    """A reproducible program + data + correctness check."""

    name: str
    #: builds a fresh module (modules are mutated by compilation)
    build_module: Callable[[], Module]
    #: fills backing data when an allocation executes (by name)
    data_init: Callable[[str, MemRefVal], None] | None = None
    entry: str = "main"
    #: validates the entry function's results; raises on mismatch
    check: Callable[[list], None] | None = None
    description: str = ""
    params: dict = field(default_factory=dict)

    def footprint_bytes(self) -> int:
        return footprint_bytes(self.build_module())

    def verify_results(self, results: list) -> None:
        if self.check is not None:
            self.check(results)
