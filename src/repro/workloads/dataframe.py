"""Mini DataFrame engine (paper section 6: DataFrame [34] on NYC taxi
data).

Columnar tables with the operators the paper's evaluation exercises:

* ``avg_fare`` / ``min_fare`` / ``max_fare`` -- sequential reductions
  (the three-operator job of Fig. 23 when inlined as adjacent loops);
* ``filter_long`` -- predicate scan writing a result vector (the
  writable-shared multithreading test of Fig. 25);
* ``group_by_hour`` -- histogram aggregation with indirect writes.

Two builders: :func:`make_dataframe_workload` (operators as functions --
what the profiler and offload analysis see) and
:func:`make_dataframe_amm_workload` (avg/min/max as three adjacent
top-level loops -- the loop-fusion/batching target of Fig. 23).
"""

from __future__ import annotations

import numpy as np

from repro.ir.builder import IRBuilder
from repro.ir.types import F64, I64, INDEX, MemRefType
from repro.ir.verifier import verify
from repro.workloads.base import Workload
from repro.workloads.datagen import taxi_table

LONG_TRIP_KM = 5.0
HOURS = 24


def _filter_body(b, distance, out, i):
    v = b.load(distance, i)
    flag = b.cmp("gt", v, LONG_TRIP_KM)
    b.store(b.cast(flag, I64), out, i)
    return flag


def make_dataframe_workload(
    num_rows: int = 16384,
    seed: int = 11,
    num_threads: int = 1,
    num_locations: int = 65536,
) -> Workload:
    hour, distance, fare, passengers = taxi_table(num_rows, seed)
    rng = np.random.default_rng(seed + 1)
    location = rng.integers(0, num_locations, size=num_rows).astype(np.int64)
    perm = rng.permutation(num_rows).astype(np.int64)
    #: an AIFM port of DataFrame keeps columns in chunked remote vectors
    AIFM_CHUNK = {"aifm_obj_bytes": 4096}

    def build_module():
        b = IRBuilder()
        f64ref = MemRefType(F64)
        i64ref = MemRefType(I64)

        with b.func("avg_fare", [f64ref], [F64], ["fare"]) as fn:
            col = fn.args[0]
            zero = b.f64(0.0)
            with b.for_(0, num_rows, iter_args=[zero]) as loop:
                v = b.load(col, loop.iv)
                b.yield_([b.add(loop.args[0], v)])
            b.ret([b.div(loop.results[0], float(num_rows))])

        with b.func("min_fare", [f64ref], [F64], ["fare"]) as fn:
            col = fn.args[0]
            init = b.f64(1e30)
            with b.for_(0, num_rows, iter_args=[init]) as loop:
                v = b.load(col, loop.iv)
                b.yield_([b.min(loop.args[0], v)])
            b.ret([loop.results[0]])

        with b.func("max_fare", [f64ref], [F64], ["fare"]) as fn:
            col = fn.args[0]
            init = b.f64(-1e30)
            with b.for_(0, num_rows, iter_args=[init]) as loop:
                v = b.load(col, loop.iv)
                b.yield_([b.max(loop.args[0], v)])
            b.ret([loop.results[0]])

        with b.func("filter_long", [f64ref, i64ref], [I64], ["distance", "out"]) as fn:
            dist, out = fn.args
            if num_threads > 1:
                with b.parallel(0, num_rows, num_threads=num_threads) as loop:
                    _filter_body(b, dist, out, loop.iv)
                count = b.i64(0)
                with b.for_(0, num_rows, iter_args=[count]) as red:
                    f = b.load(out, red.iv)
                    b.yield_([b.add(red.args[0], f)])
                b.ret([red.results[0]])
            else:
                zero = b.i64(0)
                with b.for_(0, num_rows, iter_args=[zero]) as loop:
                    flag = _filter_body(b, dist, out, loop.iv)
                    b.yield_([b.add(loop.args[0], b.cast(flag, I64))])
                b.ret([loop.results[0]])

        with b.func(
            "group_by_hour", [i64ref, f64ref, f64ref], [], ["hour", "fare", "hist"]
        ) as fn:
            hour_col, fare_col, hist = fn.args
            with b.for_(0, num_rows) as loop:
                h = b.cast(b.load(hour_col, loop.iv), INDEX)
                f = b.load(fare_col, loop.iv)
                cur = b.load(hist, h)
                b.store(b.add(cur, f), hist, h)

        # group-by over many distinct keys: indirect writes across a
        # histogram larger than small local memories
        with b.func(
            "group_by_location",
            [i64ref, f64ref, f64ref],
            [],
            ["location", "fare", "loc_hist"],
        ) as fn:
            loc_col, fare_col, hist = fn.args
            with b.for_(0, num_rows) as loop:
                h = b.cast(b.load(loc_col, loop.iv), INDEX)
                f = b.load(fare_col, loop.iv)
                cur = b.load(hist, h)
                b.store(b.add(cur, f), hist, h)

        # sort-order materialization: gather through a permutation (the
        # fully random read pattern swap systems cannot prefetch)
        with b.func(
            "gather_sorted", [i64ref, f64ref, f64ref], [F64], ["perm", "fare", "out"]
        ) as fn:
            perm_col, fare_col, out = fn.args
            zero = b.f64(0.0)
            with b.for_(0, num_rows, iter_args=[zero]) as loop:
                p = b.cast(b.load(perm_col, loop.iv), INDEX)
                v = b.load(fare_col, p)
                b.store(v, out, loop.iv)
                b.yield_([b.add(loop.args[0], v)])
            b.ret([loop.results[0]])

        with b.func("main", result_types=[F64, F64, F64, I64, F64, F64]):
            hour_c = b.alloc(I64, num_rows, "hour", obj_attrs=AIFM_CHUNK)
            dist_c = b.alloc(F64, num_rows, "distance", obj_attrs=AIFM_CHUNK)
            fare_c = b.alloc(F64, num_rows, "fare", obj_attrs=AIFM_CHUNK)
            loc_c = b.alloc(I64, num_rows, "location", obj_attrs=AIFM_CHUNK)
            perm_c = b.alloc(I64, num_rows, "perm", obj_attrs=AIFM_CHUNK)
            out_c = b.alloc(I64, num_rows, "filter_out", obj_attrs=AIFM_CHUNK)
            gather_c = b.alloc(F64, num_rows, "gather_out", obj_attrs=AIFM_CHUNK)
            hist = b.alloc(F64, HOURS, "hist")
            loc_hist = b.alloc(F64, num_locations, "loc_hist", obj_attrs=AIFM_CHUNK)
            avg = b.call("avg_fare", [fare_c], [F64]).results[0]
            mn = b.call("min_fare", [fare_c], [F64]).results[0]
            mx = b.call("max_fare", [fare_c], [F64]).results[0]
            cnt = b.call("filter_long", [dist_c, out_c], [I64]).results[0]
            b.call("group_by_hour", [hour_c, fare_c, hist])
            b.call("group_by_location", [loc_c, fare_c, loc_hist])
            gsum = b.call("gather_sorted", [perm_c, fare_c, gather_c], [F64]).results[0]
            probe = b.load(loc_hist, 7)
            b.ret([avg, mn, mx, cnt, gsum, probe])
        verify(b.module)
        return b.module

    base_init = _make_data_init(hour, distance, fare)

    def data_init(name, mrv):
        base_init(name, mrv)
        if name == "location":
            mrv.fill([int(x) for x in location])
        elif name == "perm":
            mrv.fill([int(x) for x in perm])

    probe_expected = float(np.sum(fare[location == 7]))
    expected = (
        float(np.mean(fare)),
        float(np.min(fare)),
        float(np.max(fare)),
        int(np.sum(distance > LONG_TRIP_KM)),
        float(np.sum(fare)),
        probe_expected,
    )

    def check(results):
        avg, mn, mx, cnt, gsum, probe = results
        assert abs(avg - expected[0]) < 1e-6 * abs(expected[0]), (avg, expected[0])
        assert abs(mn - expected[1]) < 1e-9, (mn, expected[1])
        assert abs(mx - expected[2]) < 1e-9, (mx, expected[2])
        assert cnt == expected[3], (cnt, expected[3])
        assert abs(gsum - expected[4]) < 1e-6 * abs(expected[4]), (gsum, expected[4])
        assert abs(probe - expected[5]) < 1e-6 * max(1.0, abs(expected[5]))

    return Workload(
        name="dataframe",
        build_module=build_module,
        data_init=data_init,
        check=check,
        description="mini DataFrame: reductions, filter, group-by on taxi data",
        params={"num_rows": num_rows, "num_threads": num_threads},
    )


def make_dataframe_amm_workload(num_rows: int = 12288, seed: int = 11) -> Workload:
    """Fig. 23's job: avg, min, max as three adjacent loops over the same
    vector (the original code shape Mira's batching pass fuses)."""
    _, _, fare, _ = taxi_table(num_rows, seed)

    def build_module():
        b = IRBuilder()
        with b.func("main", result_types=[F64, F64, F64]):
            fare_c = b.alloc(
                F64, num_rows, "fare", obj_attrs={"aifm_obj_bytes": 4096}
            )
            zero = b.f64(0.0)
            with b.for_(0, num_rows, iter_args=[zero]) as s_loop:
                v = b.load(fare_c, s_loop.iv)
                b.yield_([b.add(s_loop.args[0], v)])
            lo = b.f64(1e30)
            with b.for_(0, num_rows, iter_args=[lo]) as mn_loop:
                v = b.load(fare_c, mn_loop.iv)
                b.yield_([b.min(mn_loop.args[0], v)])
            hi = b.f64(-1e30)
            with b.for_(0, num_rows, iter_args=[hi]) as mx_loop:
                v = b.load(fare_c, mx_loop.iv)
                b.yield_([b.max(mx_loop.args[0], v)])
            avg = b.div(s_loop.results[0], float(num_rows))
            b.ret([avg, mn_loop.results[0], mx_loop.results[0]])
        verify(b.module)
        return b.module

    def data_init(name, mrv):
        if name == "fare":
            mrv.fill([float(x) for x in fare])

    expected = (float(np.mean(fare)), float(np.min(fare)), float(np.max(fare)))

    def check(results):
        avg, mn, mx = results
        assert abs(avg - expected[0]) < 1e-6 * abs(expected[0])
        assert abs(mn - expected[1]) < 1e-9
        assert abs(mx - expected[2]) < 1e-9

    return Workload(
        name="dataframe_amm",
        build_module=build_module,
        data_init=data_init,
        check=check,
        description="avg/min/max as three adjacent loops (batching target)",
        params={"num_rows": num_rows},
    )


def make_filter_workload(
    num_rows: int = 32768, seed: int = 11, num_threads: int = 1, repeats: int = 4
) -> Workload:
    """Fig. 25's job: the DataFrame "filter" operator with multiple
    threads writing a shared result vector (writable shared memory,
    section 4.6)."""
    _, distance, _, _ = taxi_table(num_rows, seed)

    def build_module():
        b = IRBuilder()
        with b.func("main", result_types=[I64]):
            chunk = {"aifm_obj_bytes": 4096}
            dist_c = b.alloc(F64, num_rows, "distance", obj_attrs=chunk)
            out_c = b.alloc(I64, num_rows, "filter_out", obj_attrs=chunk)
            with b.for_(0, repeats):
                if num_threads > 1:
                    with b.parallel(0, num_rows, num_threads=num_threads) as loop:
                        _filter_body(b, dist_c, out_c, loop.iv)
                else:
                    with b.for_(0, num_rows) as loop:
                        _filter_body(b, dist_c, out_c, loop.iv)
            zero = b.i64(0)
            with b.for_(0, num_rows, iter_args=[zero]) as red:
                b.yield_([b.add(red.args[0], b.load(out_c, red.iv))])
            b.ret([red.results[0]])
        verify(b.module)
        return b.module

    def data_init(name, mrv):
        if name == "distance":
            mrv.fill([float(x) for x in distance])

    expected = int(np.sum(distance > LONG_TRIP_KM))

    def check(results):
        assert results[0] == expected, (results[0], expected)

    return Workload(
        name="dataframe_filter",
        build_module=build_module,
        data_init=data_init,
        check=check,
        description="filter operator writing a shared result vector",
        params={"num_rows": num_rows, "num_threads": num_threads},
    )


def _make_data_init(hour, distance, fare):
    def data_init(name, mrv):
        if name == "hour":
            mrv.fill([int(x) for x in hour])
        elif name == "distance":
            mrv.fill([float(x) for x in distance])
        elif name == "fare":
            mrv.fill([float(x) for x in fare])

    return data_init
