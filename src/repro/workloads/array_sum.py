"""Micro-benchmark: a simple loop summing an array (paper section 6.1,
runtime/metadata overhead measurements alongside the real applications)."""

from __future__ import annotations

import numpy as np

from repro.ir.builder import IRBuilder
from repro.ir.types import F64
from repro.ir.verifier import verify
from repro.workloads.base import Workload


def make_array_sum_workload(num_elems: int = 32768, seed: int = 3) -> Workload:
    rng = np.random.default_rng(seed)
    values = rng.uniform(0.0, 1.0, size=num_elems)

    def build_module():
        b = IRBuilder()
        with b.func("main", result_types=[F64]):
            arr = b.alloc(F64, num_elems, "arr")
            zero = b.f64(0.0)
            with b.for_(0, num_elems, iter_args=[zero]) as loop:
                v = b.load(arr, loop.iv)
                b.yield_([b.add(loop.args[0], v)])
            b.ret([loop.results[0]])
        verify(b.module)
        return b.module

    def data_init(name, mrv):
        if name == "arr":
            mrv.fill([float(x) for x in values])

    expected = float(np.sum(values))

    def check(results):
        assert abs(results[0] - expected) < 1e-6 * max(1.0, abs(expected))

    return Workload(
        name="array_sum",
        build_module=build_module,
        data_init=data_init,
        check=check,
        description="simple loop over an array summing its values",
        params={"num_elems": num_elems},
    )
