"""MCF-flavored kernel (paper section 6: SPEC-2006 429.mcf, single-depot
vehicle scheduling by network simplex).

The access shape that makes MCF "the least friendly to program analysis"
(section 6.1): a big arc array scanned sequentially whose tail/head fields
index the node array (indirect), plus pointer chasing along the
predecessor tree (value-dependent control flow through an scf.while the
static analysis cannot classify).

AIFM runs it through its array library at per-element remotable-object
granularity, which is what makes its metadata rival the data and collapse
below full memory (Fig. 18).
"""

from __future__ import annotations

import numpy as np

from repro.ir.builder import IRBuilder
from repro.ir.types import BoolType, F64, I64, INDEX, MemRefType, StructType
from repro.ir.verifier import verify
from repro.workloads.base import Workload
from repro.workloads.datagen import mcf_network

ARC_T = StructType("arc", (("tail", I64), ("head", I64), ("cost", F64), ("flow", F64)))
NODE_T = StructType(
    "node", (("potential", F64), ("pred", I64), ("depth", I64), ("mark", F64))
)


def make_mcf_workload(
    num_nodes: int = 16384,
    num_arcs: int = 16384,
    iterations: int = 2,
    chases: int = 128,
    seed: int = 13,
) -> Workload:
    tail, head, cost, pred, potential = mcf_network(num_nodes, num_arcs, seed)

    def build_module():
        b = IRBuilder()
        arcs_t = MemRefType(ARC_T)
        nodes_t = MemRefType(NODE_T)

        # price scan: reduced costs over all arcs (sequential arcs,
        # indirect nodes)
        with b.func("price_scan", [arcs_t, nodes_t], [F64], ["arcs", "nodes"]) as fn:
            arcs, nodes = fn.args
            init = b.f64(1e30)
            with b.for_(0, num_arcs, iter_args=[init]) as loop:
                i = loop.iv
                c = b.load(arcs, i, field="cost")
                t = b.cast(b.load(arcs, i, field="tail"), INDEX)
                h = b.cast(b.load(arcs, i, field="head"), INDEX)
                pt = b.load(nodes, t, field="potential")
                ph = b.load(nodes, h, field="potential")
                red = b.add(b.sub(c, pt), ph)
                b.yield_([b.min(loop.args[0], red)])
            b.ret([loop.results[0]])

        # flow update: sequential read-modify-write over arcs
        with b.func("update_flows", [arcs_t], [], ["arcs"]) as fn:
            arcs = fn.args[0]
            with b.for_(0, num_arcs) as loop:
                f = b.load(arcs, loop.iv, field="flow")
                b.store(b.add(f, 1.0), arcs, loop.iv, field="flow")

        # pointer chase: walk predecessor chains updating potentials
        # (value-dependent control flow; unanalyzable statically)
        with b.func("chase_update", [nodes_t], [F64], ["nodes"]) as fn:
            nodes = fn.args[0]
            total0 = b.f64(0.0)
            with b.for_(0, chases, iter_args=[total0]) as outer:
                start = b.rem(b.mul(outer.iv, 131), num_nodes)
                wh = b.while_([start, outer.args[0]])
                with wh.before() as (cur, acc):
                    not_root = b.cmp("gt", cur, 0)
                    b.condition(not_root, [cur, acc])
                with wh.body() as (cur, acc):
                    p = b.load(nodes, cur, field="potential")
                    b.store(b.add(p, 0.125), nodes, cur, field="potential")
                    nxt = b.cast(b.load(nodes, cur, field="pred"), INDEX)
                    b.yield_([nxt, b.add(acc, p)])
                b.yield_([wh.results[1]])
            b.ret([outer.results[0]])

        with b.func("main", result_types=[F64, F64]):
            arcs = b.alloc(
                ARC_T, num_arcs, "arcs", obj_attrs={"aifm_obj_bytes": ARC_T.byte_size}
            )
            nodes = b.alloc(
                NODE_T,
                num_nodes,
                "nodes",
                obj_attrs={"aifm_obj_bytes": NODE_T.byte_size},
            )
            best0 = b.f64(0.0)
            walked0 = b.f64(0.0)
            with b.for_(0, iterations, iter_args=[best0, walked0]) as loop:
                red = b.call("price_scan", [arcs, nodes], [F64]).results[0]
                b.call("update_flows", [arcs])
                walked = b.call("chase_update", [nodes], [F64]).results[0]
                b.yield_([b.add(loop.args[0], red), b.add(loop.args[1], walked)])
            b.ret([loop.results[0], loop.results[1]])
        verify(b.module)
        return b.module

    def data_init(name, mrv):
        if name == "arcs":
            mrv.fill([int(x) for x in tail], field="tail")
            mrv.fill([int(x) for x in head], field="head")
            mrv.fill([float(x) for x in cost], field="cost")
        elif name == "nodes":
            mrv.fill([float(x) for x in potential], field="potential")
            mrv.fill([int(x) for x in pred], field="pred")

    expected = _reference(tail, head, cost, pred, potential, iterations, chases,
                          num_nodes)

    def check(results):
        red_sum, walked = results
        assert abs(red_sum - expected[0]) < 1e-6 * max(1.0, abs(expected[0])), (
            red_sum,
            expected[0],
        )
        assert abs(walked - expected[1]) < 1e-6 * max(1.0, abs(expected[1])), (
            walked,
            expected[1],
        )

    return Workload(
        name="mcf",
        build_module=build_module,
        data_init=data_init,
        check=check,
        description="network-simplex kernel: indirect arc scan + pointer chase",
        params={
            "num_nodes": num_nodes,
            "num_arcs": num_arcs,
            "iterations": iterations,
            "chases": chases,
        },
    )


def _reference(tail, head, cost, pred, potential, iterations, chases, num_nodes):
    """Pure-Python reference of the kernel for the correctness check."""
    pot = list(map(float, potential))
    red_sum = 0.0
    walked_sum = 0.0
    for _ in range(iterations):
        best = 1e30
        for c, t, h in zip(cost, tail, head):
            best = min(best, float(c) - pot[t] + pot[h])
        red_sum += best
        walked = 0.0
        for s in range(chases):
            cur = (s * 131) % num_nodes
            while cur > 0:
                p = pot[cur]
                pot[cur] = p + 0.125
                walked += p
                cur = int(pred[cur])
        walked_sum += walked
    return red_sum, walked_sum
