"""Seeded synthetic dataset generators.

Substitutes for the paper's inputs (section 6): the NYC taxi trip dataset
(DataFrame), SPEC-2006 MCF graphs, and GPT-2 token batches.  Only the
statistical shape matters to the memory-system evaluation, so each
generator produces data with the same relevant distributions
(uniform/skewed integer keys, positive continuous values, power-law-ish
graph degrees) from a fixed seed.
"""

from __future__ import annotations

import numpy as np


def graph_edges(num_edges: int, num_nodes: int, seed: int = 7, skew: float = 0.0):
    """(src, dst, weight) arrays; ``skew > 0`` biases endpoints toward
    low-numbered nodes (zipf-ish hotspots)."""
    rng = np.random.default_rng(seed)
    if skew > 0:
        raw = rng.zipf(1.0 + skew, size=(2, num_edges))
        src = (raw[0] - 1) % num_nodes
        dst = (raw[1] - 1) % num_nodes
    else:
        src = rng.integers(0, num_nodes, size=num_edges)
        dst = rng.integers(0, num_nodes, size=num_edges)
    weight = rng.uniform(0.5, 2.0, size=num_edges)
    return src.astype(np.int64), dst.astype(np.int64), weight


def taxi_table(num_rows: int, seed: int = 11):
    """Columns shaped like the NYC taxi dataset: hour-of-day, trip
    distance (log-normal), fare (distance-correlated), passengers."""
    rng = np.random.default_rng(seed)
    hour = rng.integers(0, 24, size=num_rows).astype(np.int64)
    distance = np.exp(rng.normal(0.8, 0.7, size=num_rows))
    fare = 2.5 + 2.0 * distance + rng.normal(0.0, 1.0, size=num_rows)
    fare = np.maximum(fare, 2.5)
    passengers = rng.integers(1, 7, size=num_rows).astype(np.int64)
    return hour, distance, fare, passengers


def mcf_network(num_nodes: int, num_arcs: int, seed: int = 13):
    """An MCF-flavored network: arcs with tail/head/cost, and a spanning
    predecessor tree over the nodes (for pointer chasing)."""
    rng = np.random.default_rng(seed)
    tail = rng.integers(0, num_nodes, size=num_arcs).astype(np.int64)
    head = rng.integers(0, num_nodes, size=num_arcs).astype(np.int64)
    cost = rng.uniform(1.0, 100.0, size=num_arcs)
    # predecessor tree: node i's parent is a uniformly random lower index
    pred = np.zeros(num_nodes, dtype=np.int64)
    for i in range(1, num_nodes):
        pred[i] = rng.integers(0, i)
    potential = rng.uniform(0.0, 50.0, size=num_nodes)
    return tail, head, cost, pred, potential


def random_indices(count: int, universe: int, seed: int = 17):
    rng = np.random.default_rng(seed)
    return rng.integers(0, universe, size=count).astype(np.int64)
