"""Seeded synthetic address-stream generators.

Every generator is a lazy iterator of ``(addr, is_write)`` tuples --
virtual byte addresses in a scenario-private address range -- produced
from a ``random.Random(seed)`` stream, so the same ``(kind, params,
seed)`` always yields the same ops on every platform (CPython's Mersenne
Twister is specified and stable).  Ops stream: a million-event scenario
never materializes a million-tuple list here.

The four kinds mirror the access regimes the paper's workloads span:

* ``zipf`` -- skewed page popularity (hot working set), the cache-friendly
  regime; ``alpha`` steers the skew, low alpha approaches uniform.
* ``sequential`` -- strided scan with wraparound, the prefetch-friendly
  regime.
* ``pointer_chase`` -- a seeded single-cycle permutation over pages, the
  prefetch-hostile regime (every hop is an unpredictable page).
* ``mixed`` -- phases of the above with per-phase base offsets (working-
  set shifts) and read/write ratios.

All offsets are 8-byte aligned and sized so no access straddles a page.
"""

from __future__ import annotations

import hashlib
import random
from bisect import bisect_right
from dataclasses import dataclass, field
from typing import Iterator

from repro.errors import TraceError
from repro.memsim.address import PAGE_SIZE

#: bytes touched by one generated access (one aligned machine word)
ACCESS_BYTES = 8


def _aligned_offset(rng: random.Random, span: int) -> int:
    """A random 8-aligned offset such that an 8-byte access fits in span."""
    return rng.randrange(span // ACCESS_BYTES) * ACCESS_BYTES


def zipf_ops(
    num_pages: int = 256,
    num_events: int = 20_000,
    *,
    seed: int = 0,
    alpha: float = 1.1,
    read_ratio: float = 0.8,
    base: int = 0,
) -> Iterator[tuple[int, bool]]:
    """Zipf-popular pages: rank r is drawn with weight 1/(r+1)^alpha.

    Page ranks are scattered over the region with a seeded shuffle so the
    hot set is not physically contiguous (contiguity would gift the
    stride prefetchers an unearned win).
    """
    if num_pages <= 0 or num_events < 0:
        raise TraceError("zipf: num_pages must be > 0 and num_events >= 0")
    rng = random.Random(seed)
    cum: list[float] = []
    total = 0.0
    for rank in range(num_pages):
        total += 1.0 / (rank + 1) ** alpha
        cum.append(total)
    placement = list(range(num_pages))
    rng.shuffle(placement)
    for _ in range(num_events):
        rank = bisect_right(cum, rng.random() * total)
        page = placement[min(rank, num_pages - 1)]
        off = _aligned_offset(rng, PAGE_SIZE)
        yield (base + page * PAGE_SIZE + off, rng.random() >= read_ratio)


def sequential_ops(
    num_bytes: int = 1 << 20,
    num_events: int = 20_000,
    *,
    seed: int = 0,
    stride: int = ACCESS_BYTES,
    read_ratio: float = 1.0,
    base: int = 0,
) -> Iterator[tuple[int, bool]]:
    """A strided scan over ``num_bytes``, wrapping back to the start."""
    if num_bytes < stride or stride <= 0 or stride % ACCESS_BYTES:
        raise TraceError(
            "sequential: stride must be a positive multiple of 8 <= num_bytes"
        )
    rng = random.Random(seed)
    pos = 0
    for _ in range(num_events):
        yield (base + pos, rng.random() >= read_ratio)
        pos += stride
        if pos + ACCESS_BYTES > num_bytes:
            pos = 0


def pointer_chase_ops(
    num_pages: int = 512,
    num_events: int = 20_000,
    *,
    seed: int = 0,
    base: int = 0,
) -> Iterator[tuple[int, bool]]:
    """Reads along a seeded single-cycle permutation of pages.

    Every page has one fixed in-page slot (the "next pointer"); the walk
    visits all pages before repeating, so at working sets beyond local
    memory every hop is a fault -- the regime where history-based
    prefetchers shine and stride prefetchers drown.
    """
    if num_pages <= 0:
        raise TraceError("pointer_chase: num_pages must be > 0")
    rng = random.Random(seed)
    order = list(range(num_pages))
    rng.shuffle(order)
    succ = {order[i]: order[(i + 1) % num_pages] for i in range(num_pages)}
    slot = [_aligned_offset(rng, PAGE_SIZE) for _ in range(num_pages)]
    cur = order[0]
    for _ in range(num_events):
        yield (base + cur * PAGE_SIZE + slot[cur], False)
        cur = succ[cur]


def mixed_ops(
    phases: list[dict],
    *,
    seed: int = 0,
    base: int = 0,
) -> Iterator[tuple[int, bool]]:
    """Concatenated phases, each a dict naming a kind plus its params.

    Each phase derives its own sub-seed from ``(seed, phase index)`` and
    may carry an ``offset`` (bytes, added to the scenario base) to model
    working-set shifts between phases.  Example::

        mixed_ops([
            {"kind": "zipf", "num_pages": 64, "num_events": 5000},
            {"kind": "sequential", "num_bytes": 1 << 19,
             "num_events": 5000, "offset": 1 << 20},
        ], seed=7)
    """
    for index, phase in enumerate(phases):
        params = dict(phase)
        kind = params.pop("kind")
        offset = params.pop("offset", 0)
        params.setdefault("seed", seed * 1000 + index)
        try:
            gen = _GENERATORS[kind]
        except KeyError:
            raise TraceError(f"mixed: unknown phase kind {kind!r}") from None
        yield from gen(base=base + offset, **params)


_GENERATORS = {
    "zipf": zipf_ops,
    "sequential": sequential_ops,
    "pointer_chase": pointer_chase_ops,
    "mixed": mixed_ops,
}


def _phase_span(phase: dict, kind_span) -> int:
    p = dict(phase)
    p.pop("seed", None)
    off = p.pop("offset", 0)
    return off + kind_span(p.pop("kind"), p)


def _span_of(kind: str, params: dict) -> int:
    """Total bytes a generator's addresses can reach past its base."""
    if kind == "zipf":
        return params.get("num_pages", 256) * PAGE_SIZE
    if kind == "sequential":
        return params.get("num_bytes", 1 << 20)
    if kind == "pointer_chase":
        return params.get("num_pages", 512) * PAGE_SIZE
    if kind == "mixed":
        return max(_phase_span(ph, _span_of) for ph in params["phases"])
    raise TraceError(f"unknown generator kind {kind!r}")


@dataclass(frozen=True)
class ScenarioSpec:
    """A reproducible named scenario: generator kind + params + seed.

    ``ops()`` returns a fresh iterator every call, so a spec can be
    replayed any number of times (and on any number of systems) with an
    identical stream.
    """

    name: str
    kind: str
    params: dict = field(default_factory=dict)
    seed: int = 0

    def ops(self) -> Iterator[tuple[int, bool]]:
        try:
            gen = _GENERATORS[self.kind]
        except KeyError:
            raise TraceError(f"unknown generator kind {self.kind!r}") from None
        return gen(seed=self.seed, **self.params)

    @property
    def footprint_bytes(self) -> int:
        """The scenario's address span (what replay must map)."""
        params = dict(self.params)
        if self.kind == "mixed":
            return _span_of("mixed", params)
        return _span_of(self.kind, params)

    def digest(self) -> str:
        """SHA-256 over the canonical ``addr,w`` lines of the stream.

        This fingerprints the generator output alone (no system in the
        loop): a digest drift means the generators themselves changed.
        """
        h = hashlib.sha256()
        for addr, is_write in self.ops():
            h.update(f"{addr},{int(is_write)}\n".encode("ascii"))
        return h.hexdigest()


#: the pinned scenario corpus (golden-digested in tests, benchmarked by
#: ``repro.bench.tracebench``); 8 scenarios spanning the four regimes
SCENARIOS: dict[str, ScenarioSpec] = {
    spec.name: spec
    for spec in (
        ScenarioSpec(
            "zipf_hot", "zipf",
            {"num_pages": 256, "num_events": 20_000, "alpha": 1.2}, seed=1,
        ),
        ScenarioSpec(
            "zipf_cold", "zipf",
            {"num_pages": 256, "num_events": 20_000, "alpha": 0.4,
             "read_ratio": 0.7}, seed=2,
        ),
        ScenarioSpec(
            "seq_scan", "sequential",
            {"num_bytes": 1 << 20, "num_events": 20_000}, seed=3,
        ),
        ScenarioSpec(
            "seq_stride64", "sequential",
            {"num_bytes": 2 << 20, "num_events": 20_000, "stride": 64,
             "read_ratio": 0.9}, seed=4,
        ),
        ScenarioSpec(
            "chase_small", "pointer_chase",
            {"num_pages": 128, "num_events": 20_000}, seed=5,
        ),
        ScenarioSpec(
            "chase_large", "pointer_chase",
            {"num_pages": 1024, "num_events": 20_000}, seed=6,
        ),
        ScenarioSpec(
            "mixed_shift", "mixed",
            {"phases": [
                {"kind": "zipf", "num_pages": 64, "num_events": 7_000},
                {"kind": "sequential", "num_bytes": 1 << 19,
                 "num_events": 6_000, "offset": 1 << 20},
                {"kind": "zipf", "num_pages": 64, "num_events": 7_000,
                 "offset": 2 << 20},
            ]}, seed=7,
        ),
        ScenarioSpec(
            "mixed_rw", "mixed",
            {"phases": [
                {"kind": "sequential", "num_bytes": 1 << 19,
                 "num_events": 8_000, "read_ratio": 1.0},
                {"kind": "zipf", "num_pages": 96, "num_events": 12_000,
                 "read_ratio": 0.3},
            ]}, seed=8,
        ),
    )
}
