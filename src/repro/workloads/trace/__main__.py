"""CLI for the trace frontend.

Examples::

    # list the pinned scenario corpus with footprints and digests
    PYTHONPATH=src python -m repro.workloads.trace --list

    # replay a built-in scenario on one system
    PYTHONPATH=src python -m repro.workloads.trace \\
        --scenario zipf_hot --system mira-set --ratio 0.5

    # export a scenario's op stream to a raw CSV/JSONL trace
    PYTHONPATH=src python -m repro.workloads.trace \\
        --scenario seq_scan --export scan.csv

    # import somebody else's addr,is_write[,tid] trace and run it
    PYTHONPATH=src python -m repro.workloads.trace \\
        --import-trace scan.csv --system fastswap

    # bit-exact self-replay of a recorded run (scripts/make_trace.py)
    PYTHONPATH=src python -m repro.workloads.trace --replay trace.jsonl
"""

from __future__ import annotations

import argparse
import sys

from repro.errors import TraceError
from repro.workloads.trace.generators import SCENARIOS
from repro.workloads.trace.raw import ops_digest, read_raw, write_raw
from repro.workloads.trace.replay import (
    TRACE_SYSTEMS,
    run_imported,
    run_scenario,
)
from repro.workloads.trace.selfreplay import replay_trace_file


def _print_result(res) -> None:
    print(
        f"{res.scenario} on {res.system}: {res.num_ops} ops, "
        f"{res.elapsed_ns:.0f} virtual ns, miss rate {res.miss_rate:.4f} "
        f"(footprint {res.footprint_bytes} B, local {res.local_mem_bytes} B)"
    )


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(
        prog="python -m repro.workloads.trace", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    mode = ap.add_mutually_exclusive_group(required=True)
    mode.add_argument(
        "--list", action="store_true", help="list the pinned scenario corpus"
    )
    mode.add_argument(
        "--scenario", choices=sorted(SCENARIOS), help="run a built-in scenario"
    )
    mode.add_argument(
        "--import-trace", metavar="PATH", help="replay a raw CSV/JSONL trace"
    )
    mode.add_argument(
        "--replay", metavar="PATH",
        help="bit-exact self-replay of a recorded access_log trace",
    )
    ap.add_argument(
        "--system", default="fastswap",
        choices=sorted(TRACE_SYSTEMS + ("native", "hybrid")),
    )
    ap.add_argument(
        "--ratio", type=float, default=0.5,
        help="local memory as a fraction of the trace footprint",
    )
    ap.add_argument(
        "--export", metavar="PATH",
        help="with --scenario: write the op stream to a raw trace file",
    )
    ap.add_argument(
        "--force", action="store_true",
        help="allow --export to overwrite an existing file",
    )
    args = ap.parse_args(argv)

    try:
        if args.list:
            for name in sorted(SCENARIOS):
                spec = SCENARIOS[name]
                print(
                    f"{name:14s} {spec.kind:14s} "
                    f"footprint {spec.footprint_bytes:>9d} B  "
                    f"digest {spec.digest()[:16]}"
                )
            return 0
        if args.scenario:
            spec = SCENARIOS[args.scenario]
            if args.export:
                n = write_raw(args.export, spec.ops(), force=args.force)
                print(f"wrote {n} ops to {args.export} (digest {spec.digest()})")
                return 0
            _print_result(run_scenario(spec, args.system, args.ratio))
            return 0
        if args.import_trace:
            ops = list(read_raw(args.import_trace))
            res = run_imported(
                ops, name=args.import_trace, system=args.system, ratio=args.ratio
            )
            _print_result(res)
            print(f"trace digest {ops_digest(ops)}")
            return 0
        result = replay_trace_file(args.replay)
        print(
            f"replayed {args.replay}: {result.num_ops} ops, "
            f"{result.elapsed_ns:.0f} virtual ns, bit-exact"
        )
        return 0
    except (TraceError, FileNotFoundError) as e:
        print(f"error: {e}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    raise SystemExit(main())
