"""Trace-driven scenario frontend (no IR in the loop).

Two ways to produce an op stream, one way to run it:

* **Synthetic generators** (:mod:`.generators`): seeded zipf /
  sequential / pointer-chase / mixed-phase address streams, packaged as
  a pinned corpus of named :class:`ScenarioSpec` scenarios.
* **Imported traces** (:mod:`.raw`): ``addr,is_write[,tid]`` CSV/JSONL
  files, schema-tagged, round-trip safe.
* **Replay** (:mod:`.replay`): drives any op stream through the real
  simulated memory systems (FastSwap, Leap, AIFM, the three Mira cache
  geometries) under the virtual clock, standing in for the interpreter's
  uniform per-access charges.

Plus **self-replay** (:mod:`.selfreplay`): any run traced with
``Tracer(access_log=True)`` -- IR workloads included -- records a
``mem.*`` op log that replays bit-exactly: same virtual time, same event
stream, same counters.  ``python -m repro.workloads.trace --help`` is
the command-line face of all of it.
"""

from repro.workloads.trace.generators import (
    ACCESS_BYTES,
    SCENARIOS,
    ScenarioSpec,
    mixed_ops,
    pointer_chase_ops,
    sequential_ops,
    zipf_ops,
)
from repro.workloads.trace.raw import RAW_SCHEMA, ops_digest, read_raw, write_raw
from repro.workloads.trace.replay import (
    TRACE_SYSTEMS,
    TraceRunResult,
    make_system,
    regions_from_ops,
    replay_ops,
    run_imported,
    run_scenario,
    system_counters,
)
from repro.workloads.trace.selfreplay import (
    EXCLUDED_COMPARE,
    FORBIDDEN_KINDS,
    REPLAY_SCHEMA,
    ReplayResult,
    compare_traces,
    fresh_system_for,
    replay_events,
    replay_trace_file,
    split_runs,
)

__all__ = [
    "ACCESS_BYTES",
    "EXCLUDED_COMPARE",
    "FORBIDDEN_KINDS",
    "RAW_SCHEMA",
    "REPLAY_SCHEMA",
    "SCENARIOS",
    "TRACE_SYSTEMS",
    "ReplayResult",
    "ScenarioSpec",
    "TraceRunResult",
    "compare_traces",
    "fresh_system_for",
    "make_system",
    "mixed_ops",
    "ops_digest",
    "pointer_chase_ops",
    "read_raw",
    "regions_from_ops",
    "replay_events",
    "replay_ops",
    "replay_trace_file",
    "run_imported",
    "run_scenario",
    "sequential_ops",
    "split_runs",
    "system_counters",
    "write_raw",
    "zipf_ops",
]
