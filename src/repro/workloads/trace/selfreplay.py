"""Self-replay: re-executing a recorded ``mem.*`` op log exactly.

A tracer built with ``access_log=True`` records the *entry* of every
public :class:`~repro.cache.interface.MemorySystem` call -- virtual time
plus arguments.  Replay is then a pure loop: wait until the recorded
entry time, re-issue the same public call on an identically constructed
fresh system.  Everything the call did internally (hit overheads, fault
paths, network bookings, evictions, prefetch settling) is deterministic
given the same state, clock, and call order, so the replayed run
reproduces the original *bit-exactly*: same virtual times, same event
stream, same per-section hit/miss/eviction counters.  The equivalence
contract is pinned by ``tests/test_trace_replay.py`` across all five IR
workloads (DESIGN.md section 4h).

Interpreter-side time (compute, DRAM charges, RPC round trips) is not
recorded per se; it reappears as the gap to the next recorded entry and
is absorbed by ``wait_until``.  The strict-overshoot rule is the
divergence detector: if the replay clock is ever *past* a recorded entry
time, the replayed system did more work than the original -- state drift
-- and replay aborts rather than silently producing a near-miss.

Not replayable (rejected up front): multi-threaded runs (forked clocks
interleave per-thread time), fault-injection runs and the degradations
they trigger (the injector rolls its RNG on un-recorded internal calls).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Iterable

from repro.cache.config import SectionConfig
from repro.errors import ReplayDivergence, TraceError
from repro.memsim.cost_model import CostModel
from repro.obs.trace import MEM_OP_KINDS, Tracer, read_jsonl
from repro.workloads.trace.replay import system_counters

#: schema tag for the replay contract (bump on any change to what the
#: op log records or how replay re-issues it)
REPLAY_SCHEMA = "repro.trace-replay/v1"

#: event kinds whose presence makes a trace non-replayable
FORBIDDEN_KINDS = frozenset(
    {
        "thread.fork",
        "fault.inject",
        "retry.attempt",
        "fault.breaker",
        "fault.giveup",
        "degrade.section",
    }
)

#: kinds excluded from trace comparison: emitted by machinery outside the
#: MemorySystem surface (interpreter, profiler, controller), which replay
#: deliberately does not re-run
EXCLUDED_COMPARE = frozenset(
    {
        "prof.region",
        "prof.snapshot",
        "ctrl.iter",
        "offload.dispatch",
        "thread.fork",
        "thread.join",
        "net.rpc",
    }
)


def split_runs(events: list[dict]) -> list[list[dict]]:
    """Split a multi-run trace into per-run segments.

    Every run starts on a fresh clock at 0, so a drop in event time marks
    a run boundary (e.g. a controller optimization traces its profiling
    runs and the final run into one file).  A single-run trace comes back
    as one segment.
    """
    runs: list[list[dict]] = []
    current: list[dict] = []
    prev_t = float("-inf")
    for ev in events:
        t = ev["t"]
        if t < prev_t and current:
            runs.append(current)
            current = []
        current.append(ev)
        prev_t = t
    if current:
        runs.append(current)
    return runs


@dataclass
class ReplayResult:
    """Outcome of one replayed segment."""

    elapsed_ns: float
    num_ops: int
    counters: dict
    system: object


def _overshoot(idx: int, kind: str, now: float, t: float) -> ReplayDivergence:
    return ReplayDivergence(
        f"replay clock overshot event {idx} ({kind}): clock at {now!r} ns "
        f"but the recorded entry is {t!r} ns -- the replayed system did "
        f"work the original did not"
    )


def replay_events(system, events: list[dict], elapsed_ns: float | None = None):
    """Replay one run segment's op log through a fresh ``system``.

    ``system`` must be constructed exactly as the recorded run's was
    (same class, cost model, local memory, policy); its clock must be at
    0.  ``elapsed_ns`` optionally extends the clock to the recorded run's
    total time (trailing interpreter work after the last memory op).
    Raises :class:`~repro.errors.ReplayDivergence` on any drift.
    """
    clock = system.clock
    assignment = getattr(system, "_assignment", None)
    pending = getattr(system, "pending_assignment", None)
    for idx, ev in enumerate(events):
        kind = ev["k"]
        if kind in FORBIDDEN_KINDS:
            raise ReplayDivergence(
                f"event {idx} is {kind!r}: traces from multi-threaded or "
                f"fault-injected runs are not replayable"
            )
        if kind == "sec.assign":
            # an assign performed as a consequence of a replayed
            # mem.alloc/mem.open has already run (current assignment
            # matches); anything else was an explicit assign() call by
            # the driver (the raw-trace frontend) -- re-issue it
            if assignment is not None and assignment.get(ev["obj"]) != ev["sec"]:
                system.assign(ev["obj"], ev["sec"])
            continue
        if kind not in MEM_OP_KINDS:
            continue  # internal consequence event; re-emitted by replay
        t = ev["t"]
        if clock.now > t:
            raise _overshoot(idx, kind, clock.now, t)
        clock.wait_until(t)
        if kind == "mem.access":
            system.access(
                ev["obj"],
                ev["off"],
                ev["size"],
                bool(ev["w"]),
                native=bool(ev.get("nat", False)),
            )
        elif kind == "mem.alloc":
            _replay_alloc(system, events, idx, ev, pending)
        elif kind == "mem.free":
            system.free(ev["obj"])
        elif kind == "mem.open":
            system.open_section(
                SectionConfig.from_fields(ev["cfg"]),
                list(ev["ids"]),
                per_thread=ev["pt"],
            )
        elif kind == "mem.plan":
            # hybrid path group; a no-op on a system already planned the
            # same way (make_system), a real registration on a bare one
            if not hasattr(system, "plan_group"):
                raise TraceError(
                    f"event {idx} is a hybrid 'mem.plan' but the replay "
                    f"system {type(system).__name__} has no plan_group()"
                )
            system.plan_group(
                SectionConfig.from_fields(ev["cfg"]),
                list(ev["names"]),
                per_thread=ev["pt"],
                path=ev["path"],
            )
        elif kind == "mem.close":
            system.close_section(ev["sec"])
        elif kind == "mem.prefetch":
            system.prefetch(ev["obj"], ev["off"], ev["size"])
        elif kind == "mem.flush":
            system.flush(ev["obj"], ev["off"], ev["size"])
        elif kind == "mem.evict":
            system.evict_hint(ev["obj"], ev["off"], ev["size"])
        elif kind == "mem.evict_trail":
            system.evict_hint_trailing(ev["obj"], ev["off"])
        elif kind == "mem.discard":
            system.discard(ev["obj"])
        elif kind == "mem.batch":
            system.prefetch_batch([tuple(item) for item in ev["items"]])
        elif kind == "mem.native":
            system.set_native(ev["obj"], bool(ev["on"]))
        else:  # pragma: no cover - MEM_OP_KINDS and this dispatch co-evolve
            raise TraceError(f"op-log kind {kind!r} has no replay dispatch")
    if elapsed_ns is not None:
        if clock.now > elapsed_ns:
            raise _overshoot(len(events), "end-of-run", clock.now, elapsed_ns)
        clock.wait_until(elapsed_ns)
    return ReplayResult(
        elapsed_ns=clock.now,
        num_ops=sum(1 for ev in events if ev["k"] in MEM_OP_KINDS),
        counters=system_counters(system),
        system=system,
    )


def _replay_alloc(system, events, idx, ev, pending) -> None:
    """Re-issue one recorded allocation.

    The recorded run may have had a plan-side ``pending_assignment`` for
    this name (applied inside ``allocate``, *before* the ``obj.alloc``
    event fires).  The plan itself is not in the trace, but its effect
    is: a ``sec.assign`` for the new object id appearing between this
    ``mem.alloc`` and its ``obj.alloc``.  Look ahead for that signature,
    re-install the pending assignment for just this call, and verify the
    fresh address space handed out the recorded id.
    """
    expected_id = None
    assigns: list[dict] = []
    for nxt in events[idx + 1 :]:
        nk = nxt["k"]
        if nk == "obj.alloc":
            expected_id = nxt["obj"]
            break
        if nk == "sec.assign":
            assigns.append(nxt)
    section = next(
        (a["sec"] for a in assigns if a["obj"] == expected_id), None
    )
    name = ev.get("name", "")
    inject = section is not None and pending is not None
    sentinel = object()
    saved = pending.get(name, sentinel) if inject else sentinel
    if inject:
        pending[name] = section
    try:
        obj = system.allocate(
            ev["size"], ev["elem"], name=name, attrs=ev.get("attrs")
        )
    finally:
        if inject:
            if saved is sentinel:
                pending.pop(name, None)
            else:
                pending[name] = saved
    if expected_id is not None and obj.obj_id != expected_id:
        raise ReplayDivergence(
            f"event {idx}: replayed allocation of {name!r} got object id "
            f"{obj.obj_id}, recorded run got {expected_id}"
        )


# -- trace comparison --------------------------------------------------------


def canonical_lines(
    events: Iterable, exclude: frozenset = EXCLUDED_COMPARE
) -> list[str]:
    """Canonical JSON strings for comparison: decoded event dicts (the
    ``"i"`` index stripped) and live ``Tracer.events`` tuples normalize
    to the same line, so a file and an in-memory re-trace compare 1:1."""
    out: list[str] = []
    for ev in events:
        if isinstance(ev, dict):
            kind = ev["k"]
            if kind in exclude:
                continue
            rec = {key: v for key, v in ev.items() if key != "i"}
        else:
            kind, t, fields = ev
            if kind in exclude:
                continue
            rec = {"k": kind, "t": t, **fields}
        out.append(json.dumps(rec, sort_keys=True, separators=(",", ":")))
    return out


def compare_traces(recorded: Iterable, replayed: Iterable, context: str = "") -> int:
    """Assert two event streams are identical (modulo excluded kinds).

    Returns the number of compared events; raises
    :class:`~repro.errors.ReplayDivergence` naming the first difference.
    """
    a = canonical_lines(recorded)
    b = canonical_lines(replayed)
    where = f" ({context})" if context else ""
    for i, (la, lb) in enumerate(zip(a, b)):
        if la != lb:
            raise ReplayDivergence(
                f"trace divergence{where} at compared event {i}:\n"
                f"  recorded: {la}\n  replayed: {lb}"
            )
    if len(a) != len(b):
        raise ReplayDivergence(
            f"trace divergence{where}: {len(a)} recorded events vs "
            f"{len(b)} replayed"
        )
    return len(a)


# -- file-level entry (scripts/make_trace.py output) -------------------------


def fresh_system_for(header: dict, cost: CostModel | None = None):
    """Construct the system a recorded trace ran on, from its metadata.

    Needs ``system`` and ``local_mem_bytes`` in the header (traces from
    ``scripts/make_trace.py`` carry both).  ``mira`` traces come back as
    a bare CacheManager: the recorded ``mem.open`` events rebuild its
    sections during replay.
    """
    system = header.get("system")
    local = header.get("local_mem_bytes")
    if system is None or local is None:
        raise TraceError(
            "trace header lacks 'system'/'local_mem_bytes' metadata; "
            "re-record it with scripts/make_trace.py"
        )
    cost = cost or CostModel()
    if system == "mira":
        from repro.cache.manager import CacheManager

        return CacheManager(cost, local)
    if system == "hybrid":
        # bare manager: the recorded mem.plan events rebuild the path
        # groups during replay (default HybridConfig -- thresholds are
        # part of the replay contract, not the trace)
        from repro.cache.hybrid import HybridManager

        return HybridManager(cost, local)
    from repro.workloads.trace.replay import make_system

    return make_system(system, local, cost=cost)


def replay_trace_file(
    path, cost: CostModel | None = None, run_index: int = -1
) -> ReplayResult:
    """Replay a recorded trace file and verify it byte-for-byte.

    Loads the file, splits multi-run traces (a traced ``mira``
    optimization records every internal run), replays run ``run_index``
    (default: the last -- the final measured run) on a freshly built
    system with a fresh ``access_log`` tracer, and compares the re-emitted
    events against the recording.  Returns the :class:`ReplayResult`.
    """
    header, events = read_jsonl(path)
    if not header.get("access_log"):
        raise TraceError(
            f"{path}: trace was not recorded with access_log=True, "
            f"so it carries no mem.* op log to replay"
        )
    runs = split_runs(events)
    if not runs:
        raise TraceError(f"{path}: trace contains no events")
    segment = runs[run_index]
    system = fresh_system_for(header, cost)
    tracer = Tracer(access_log=True)
    system.set_tracer(tracer)
    elapsed = header.get("elapsed_ns") if run_index in (-1, len(runs) - 1) else None
    result = replay_events(system, segment, elapsed_ns=elapsed)
    compare_traces(segment, tracer.events, context=f"run {run_index} of {path}")
    return result
