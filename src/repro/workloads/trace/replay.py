"""Replaying raw address streams through the simulated memory systems.

This is the no-IR datapath: ops go straight from a generator or an
imported trace file into a :class:`~repro.cache.interface.MemorySystem`,
with the replayer standing in for the interpreter's uniform per-access
charges (one DRAM access + one CPU op per event, the same constants the
IR datapath pays around each ``memref`` touch).  Everything downstream --
swap sections, cache sections, prefetch policies, the virtual clock --
is the exact production code the IR workloads exercise, so a trace
measured here is comparable with the figure sweeps.

Address translation: the trace's flat byte addresses are covered by one
simulated object per contiguous region (``regions_from_ops`` splits on
gaps > 64 pages so a sparse trace does not allocate its whole span).
Accesses outside every region, or straddling past a region's end, raise
the same typed :class:`~repro.errors.MemoryError_` the IR path raises --
never ``KeyError``.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass, field
from typing import Iterable

from repro.baselines import AIFM, FastSwap, Leap, NativeMemory
from repro.cache.config import SectionConfig, Structure
from repro.cache.hybrid import HybridManager
from repro.cache.manager import CacheManager
from repro.errors import MemoryError_, TraceError
from repro.memsim.address import PAGE_SIZE
from repro.memsim.cost_model import CostModel
from repro.workloads.trace.generators import ACCESS_BYTES, SCENARIOS, ScenarioSpec

#: regions split where the address stream leaves a hole larger than this
REGION_GAP_PAGES = 64

#: AIFM remotable-object granularity for trace regions: 256-byte chunks
#: keep per-object metadata sane for megabyte regions (a trace has no
#: element structure to derive the granularity from)
AIFM_CHUNK_BYTES = 256

#: every system name ``make_system`` accepts (the benchmark matrix)
TRACE_SYSTEMS = (
    "fastswap",
    "leap",
    "aifm",
    "mira-direct",
    "mira-set",
    "mira-full",
)

_MIRA_STRUCTURES = {
    "mira-direct": Structure.DIRECT,
    "mira-set": Structure.SET_ASSOCIATIVE,
    "mira-full": Structure.FULLY_ASSOCIATIVE,
}


def regions_from_ops(ops: Iterable[tuple]) -> list[tuple[int, int]]:
    """Contiguous ``(base, size)`` byte regions covering an op stream.

    One streaming pass collects the touched page set, then sorted pages
    are grouped into runs separated by gaps > :data:`REGION_GAP_PAGES`.
    Regions are page-aligned and include every touched page whole.
    """
    pages: set[int] = set()
    for op in ops:
        addr = op[0]
        if addr < 0:
            raise TraceError(f"negative trace address {addr}")
        pages.add(addr // PAGE_SIZE)
        pages.add((addr + ACCESS_BYTES - 1) // PAGE_SIZE)
    if not pages:
        return []
    ordered = sorted(pages)
    regions: list[tuple[int, int]] = []
    start = prev = ordered[0]
    for page in ordered[1:]:
        if page - prev > REGION_GAP_PAGES:
            regions.append((start * PAGE_SIZE, (prev - start + 1) * PAGE_SIZE))
            start = page
        prev = page
    regions.append((start * PAGE_SIZE, (prev - start + 1) * PAGE_SIZE))
    return regions


def make_system(
    system: str,
    local_mem_bytes: int,
    cost: CostModel | None = None,
    policy=None,
):
    """Build one of :data:`TRACE_SYSTEMS` (plus ``"native"`` and
    ``"hybrid"``) for replay.

    The three ``mira-*`` geometries are the CacheManager with one cache
    section per structure kind sized at 3/4 of local memory (256-byte
    lines), the remainder backing the swap section -- the standing
    configuration a Mira plan would produce for a single hot region.
    ``policy`` attaches a prefetch policy to the swap-path systems.
    """
    cost = cost or CostModel.rdma()
    if system == "native":
        return NativeMemory(cost, local_mem_bytes)
    if system == "fastswap":
        return FastSwap(cost, local_mem_bytes, policy=policy)
    if system == "leap":
        # pin the classic majority-trend policy unless overridden: replay
        # results must not depend on the $REPRO_PREFETCH environment
        return Leap(cost, local_mem_bytes, policy=policy or "leap")
    if system == "aifm":
        return AIFM(cost, local_mem_bytes)
    if system == "hybrid":
        # the path switcher starts every region on the swap path (a raw
        # trace carries no plan-time signals) with a standing mira-set
        # shaped group to promote into when the windowed signals say so
        manager = HybridManager(cost, local_mem_bytes, policy=policy)
        line = 256
        size = max(line, (local_mem_bytes * 3 // 4) // line * line)
        manager.plan_group(
            SectionConfig(
                name="trace",
                size_bytes=size,
                line_size=line,
                structure=Structure.SET_ASSOCIATIVE,
            ),
            ["*"],
            path="swap",
        )
        return manager
    structure = _MIRA_STRUCTURES.get(system)
    if structure is None:
        raise TraceError(
            f"unknown trace system {system!r}; expected one of "
            f"{TRACE_SYSTEMS + ('native', 'hybrid')}"
        )
    manager = CacheManager(cost, local_mem_bytes, policy=policy)
    line = 256
    size = max(line, (local_mem_bytes * 3 // 4) // line * line)
    manager.open_section(
        SectionConfig(
            name="trace",
            size_bytes=size,
            line_size=line,
            structure=structure,
        ),
        [],
    )
    return manager


@dataclass
class TraceRunResult:
    """Outcome of replaying one op stream on one system."""

    scenario: str
    system: str
    elapsed_ns: float
    num_ops: int
    footprint_bytes: int
    local_mem_bytes: int
    #: per-section counter dicts (CacheManager shape; ``{"swap": ...}``
    #: for the page-swap systems, ``{}`` for native)
    sections: dict = field(default_factory=dict)
    breakdown: dict = field(default_factory=dict)

    @property
    def miss_rate(self) -> float:
        acc = sum(s.get("accesses", 0) for s in self.sections.values())
        if not acc:
            return 0.0
        return sum(s.get("misses", 0) for s in self.sections.values()) / acc


def system_counters(system) -> dict:
    """Per-section hit/miss/eviction counters in one uniform shape."""
    if hasattr(system, "collect_section_stats"):
        return system.collect_section_stats()
    if hasattr(system, "swap_stats"):  # AIFM
        return {"aifm": vars(system.swap_stats).copy()}
    return {}


def replay_ops(
    system,
    ops: Iterable[tuple],
    regions: list[tuple[int, int]],
    assign_section: str | None = None,
) -> int:
    """Drive an op stream through a built system; returns the op count.

    Allocates one object per region (``trace_region_<k>``), then replays
    each ``(addr, is_write[, tid])`` as an 8-byte access with the
    interpreter's uniform DRAM + CPU charge.  ``assign_section`` moves
    every region object into that cache section first (the mira-* path).
    """
    if not regions:
        raise TraceError("cannot replay an empty trace (no regions)")
    bases: list[int] = []
    objs: list = []
    for k, (base, size) in enumerate(regions):
        obj = system.allocate(
            size,
            elem_size=ACCESS_BYTES,
            name=f"trace_region_{k}",
            attrs={"aifm_obj_bytes": AIFM_CHUNK_BYTES},
        )
        if assign_section is not None:
            system.assign(obj.obj_id, assign_section)
        bases.append(base)
        objs.append(obj)
    clock = system.clock
    cost = system.cost
    dram_ns = cost.dram_access_ns
    cpu_ns = cost.cpu_op_ns
    # cache the last region: real traces have long runs of locality
    last_idx = 0
    last_base, last_obj = bases[0], objs[0]
    last_end = last_base + last_obj.size
    count = 0
    for op in ops:
        addr = op[0]
        if not last_base <= addr < last_end:
            idx = bisect_right(bases, addr) - 1
            if idx < 0:
                raise MemoryError_(
                    f"trace address {addr:#x} is below every mapped region"
                )
            last_idx = idx
            last_base, last_obj = bases[idx], objs[idx]
            last_end = last_base + last_obj.size
            if addr >= last_end:
                raise MemoryError_(
                    f"trace address {addr:#x} falls in the gap after region "
                    f"{last_idx} ([{last_base:#x}, {last_end:#x}))"
                )
        off = addr - last_base
        if off + ACCESS_BYTES > last_obj.size:
            # delegate to the address space for the canonical straddle error
            system.address_space.resolve(last_obj.base_va + off, ACCESS_BYTES)
        clock.advance(dram_ns, "dram")
        clock.charge(cpu_ns)
        system.access(last_obj.obj_id, off, ACCESS_BYTES, bool(op[1]))
        count += 1
    clock.flush()
    return count


def run_scenario(
    scenario: ScenarioSpec | str,
    system: str = "fastswap",
    ratio: float = 0.5,
    cost: CostModel | None = None,
    policy=None,
    tracer=None,
) -> TraceRunResult:
    """Replay one named/spec'd scenario on one system at a local-memory
    ratio of its footprint; the standard cell of the trace benchmark.

    ``tracer`` optionally attaches a :class:`repro.obs.Tracer` -- built
    with ``access_log=True`` it captures a self-replayable op log of the
    run (see :mod:`repro.workloads.trace.selfreplay`).
    """
    if isinstance(scenario, str):
        try:
            scenario = SCENARIOS[scenario]
        except KeyError:
            raise TraceError(f"unknown scenario {scenario!r}") from None
    footprint = scenario.footprint_bytes
    local = max(4 * PAGE_SIZE, int(footprint * ratio))
    sys_obj = make_system(system, local, cost=cost, policy=policy)
    if tracer is not None:
        sys_obj.set_tracer(tracer)
    assign = "trace" if system in _MIRA_STRUCTURES else None
    count = replay_ops(
        sys_obj, scenario.ops(), [(0, footprint)], assign_section=assign
    )
    return TraceRunResult(
        scenario=scenario.name,
        system=system,
        elapsed_ns=sys_obj.clock.now,
        num_ops=count,
        footprint_bytes=footprint,
        local_mem_bytes=local,
        sections=system_counters(sys_obj),
        breakdown=sys_obj.clock.breakdown(),
    )


def run_imported(
    ops: list[tuple],
    name: str = "imported",
    system: str = "fastswap",
    ratio: float = 0.5,
    cost: CostModel | None = None,
    policy=None,
    tracer=None,
) -> TraceRunResult:
    """Replay an imported (materialized) op list: regions are discovered
    from the stream itself, local memory is a ratio of their total size."""
    regions = regions_from_ops(ops)
    footprint = sum(size for _, size in regions)
    local = max(4 * PAGE_SIZE, int(footprint * ratio))
    sys_obj = make_system(system, local, cost=cost, policy=policy)
    if tracer is not None:
        sys_obj.set_tracer(tracer)
    assign = "trace" if system in _MIRA_STRUCTURES else None
    count = replay_ops(sys_obj, ops, regions, assign_section=assign)
    return TraceRunResult(
        scenario=name,
        system=system,
        elapsed_ns=sys_obj.clock.now,
        num_ops=count,
        footprint_bytes=footprint,
        local_mem_bytes=local,
        sections=system_counters(sys_obj),
        breakdown=sys_obj.clock.breakdown(),
    )
