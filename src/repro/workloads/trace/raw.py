"""Raw address-trace files: ``addr,is_write[,tid]`` in CSV or JSONL.

The on-disk trace is the interchange point with real systems: anything
that can dump its memory accesses as one line per access can be replayed
through every simulated memory system here.  Two encodings share one
schema tag:

* **CSV** -- ``addr,is_write[,tid]`` per line; ``addr`` decimal or
  ``0x``-hex; ``is_write`` ``0/1/true/false`` (case-insensitive).  An
  optional first line ``# repro.trace/v1`` pins the schema, and a header
  row starting with ``addr`` is skipped, so both our own exports and
  bare third-party dumps import cleanly.
* **JSONL** -- a header object ``{"schema": "repro.trace/v1", ...}``
  followed by ``{"a": addr, "w": 0|1[, "tid": n]}`` per line.

``read_raw`` yields exactly the tuples the file holds (2-tuples, or
3-tuples where a thread id is present), so ``write_raw(read_raw(p))``
is the identity on the op stream -- the round-trip property the test
suite pins.  All malformed input raises
:class:`~repro.errors.TraceFormatError` naming ``path:line``; an
existing output file is never overwritten without ``force=True``.
"""

from __future__ import annotations

import hashlib
import json
import os
from typing import Iterable, Iterator

from repro.errors import TraceError, TraceFormatError

#: schema tag for raw op-stream files (CSV comment / JSONL header)
RAW_SCHEMA = "repro.trace/v1"

_TRUE = {"1", "true", "t", "w"}
_FALSE = {"0", "false", "f", "r"}


def _parse_write(token: str, where: str) -> bool:
    low = token.strip().lower()
    if low in _TRUE:
        return True
    if low in _FALSE:
        return False
    raise TraceFormatError(f"{where}: bad is_write flag {token!r}")


def _parse_addr(token: str, where: str) -> int:
    try:
        addr = int(token.strip(), 0)  # base 0: decimal or 0x-hex
    except ValueError:
        raise TraceFormatError(f"{where}: bad address {token!r}") from None
    if addr < 0:
        raise TraceFormatError(f"{where}: negative address {addr}")
    return addr


def _guess_format(path: str) -> str:
    if path.endswith((".jsonl", ".ndjson", ".json")):
        return "jsonl"
    return "csv"


def read_raw(path: str, fmt: str | None = None) -> Iterator[tuple]:
    """Stream ops from a raw trace file.

    Yields ``(addr, is_write)`` or ``(addr, is_write, tid)`` per line,
    preserving exactly the arity the file uses.  ``fmt`` is ``"csv"`` or
    ``"jsonl"``; by default it is inferred from the extension.
    """
    fmt = fmt or _guess_format(path)
    if fmt == "csv":
        yield from _read_csv(path)
    elif fmt == "jsonl":
        yield from _read_jsonl(path)
    else:
        raise TraceError(f"unknown raw trace format {fmt!r}")


def _read_csv(path: str) -> Iterator[tuple]:
    with open(path, "r", encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, 1):
            line = line.strip()
            if not line:
                continue
            if line.startswith("#"):
                tag = line.lstrip("#").strip()
                if tag.startswith("repro.trace/") and tag != RAW_SCHEMA:
                    raise TraceFormatError(
                        f"{path}:{lineno}: unsupported trace schema {tag!r} "
                        f"(this reader speaks {RAW_SCHEMA})"
                    )
                continue
            fields = [f.strip() for f in line.split(",")]
            if fields[0].lower() == "addr":
                continue  # third-party column-header row
            where = f"{path}:{lineno}"
            if len(fields) == 2:
                yield (_parse_addr(fields[0], where), _parse_write(fields[1], where))
            elif len(fields) == 3:
                try:
                    tid = int(fields[2])
                except ValueError:
                    raise TraceFormatError(
                        f"{where}: bad thread id {fields[2]!r}"
                    ) from None
                yield (
                    _parse_addr(fields[0], where),
                    _parse_write(fields[1], where),
                    tid,
                )
            else:
                raise TraceFormatError(
                    f"{where}: expected 2 or 3 comma-separated fields, "
                    f"got {len(fields)}"
                )


def _read_jsonl(path: str) -> Iterator[tuple]:
    with open(path, "r", encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, 1):
            line = line.strip()
            if not line:
                continue
            where = f"{path}:{lineno}"
            try:
                rec = json.loads(line)
            except json.JSONDecodeError as e:
                raise TraceFormatError(f"{where}: invalid JSON ({e.msg})") from None
            if not isinstance(rec, dict):
                raise TraceFormatError(f"{where}: expected a JSON object")
            if "schema" in rec:
                if rec["schema"] != RAW_SCHEMA:
                    raise TraceFormatError(
                        f"{where}: unsupported trace schema {rec['schema']!r} "
                        f"(this reader speaks {RAW_SCHEMA})"
                    )
                continue
            try:
                addr = int(rec["a"])
                is_write = bool(rec["w"])
            except (KeyError, TypeError, ValueError):
                raise TraceFormatError(
                    f"{where}: op records need integer 'a' and 'w' fields"
                ) from None
            if addr < 0:
                raise TraceFormatError(f"{where}: negative address {addr}")
            if "tid" in rec:
                try:
                    tid = int(rec["tid"])
                except (TypeError, ValueError):
                    raise TraceFormatError(
                        f"{where}: bad thread id {rec['tid']!r}"
                    ) from None
                yield (addr, is_write, tid)
            else:
                yield (addr, is_write)


def write_raw(
    path: str,
    ops: Iterable[tuple],
    fmt: str | None = None,
    meta: dict | None = None,
    force: bool = False,
) -> int:
    """Write an op stream to ``path``; returns the number of ops written.

    Refuses to clobber an existing file unless ``force=True`` (traces are
    experiment inputs; silent overwrites destroy reproducibility).  Every
    op must be a 2- or 3-tuple; anything else raises
    :class:`~repro.errors.TraceFormatError` naming the offending op, so a
    malformed stream can never be written in a shape that would not
    round-trip through :func:`read_raw`.
    """
    fmt = fmt or _guess_format(path)
    if fmt not in ("csv", "jsonl"):
        raise TraceError(f"unknown raw trace format {fmt!r}")
    if not force and os.path.exists(path):
        raise TraceError(
            f"refusing to overwrite existing trace {path!r} (pass force=True)"
        )
    count = 0
    with open(path, "w", encoding="utf-8") as fh:
        if fmt == "csv":
            fh.write(f"# {RAW_SCHEMA}\n")
            if meta:
                fh.write(f"# {json.dumps(meta, sort_keys=True)}\n")
            for op in ops:
                if len(op) == 3:
                    fh.write(f"{op[0]},{int(op[1])},{op[2]}\n")
                elif len(op) == 2:
                    fh.write(f"{op[0]},{int(op[1])}\n")
                else:
                    raise TraceFormatError(
                        f"op {count}: expected (addr, is_write[, tid]), "
                        f"got a {len(op)}-tuple"
                    )
                count += 1
        else:
            header = {"schema": RAW_SCHEMA}
            if meta:
                header["meta"] = meta
            fh.write(json.dumps(header, sort_keys=True) + "\n")
            for op in ops:
                if len(op) not in (2, 3):
                    raise TraceFormatError(
                        f"op {count}: expected (addr, is_write[, tid]), "
                        f"got a {len(op)}-tuple"
                    )
                rec = {"a": op[0], "w": int(op[1])}
                if len(op) == 3:
                    rec["tid"] = op[2]
                fh.write(json.dumps(rec, sort_keys=True) + "\n")
                count += 1
    return count


def ops_digest(ops: Iterable[tuple]) -> str:
    """SHA-256 over canonical ``addr,w[,tid]`` lines -- format-independent,
    so a CSV file and its JSONL re-export share one digest."""
    h = hashlib.sha256()
    for op in ops:
        if len(op) == 3:
            h.update(f"{op[0]},{int(op[1])},{op[2]}\n".encode("ascii"))
        else:
            h.update(f"{op[0]},{int(op[1])}\n".encode("ascii"))
    return h.hexdigest()
