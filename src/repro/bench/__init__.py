"""Experiment harness for the paper's figures.

:mod:`repro.bench.harness` runs (workload, system, local-memory ratio)
points and returns normalized performance exactly as the paper reports it
("normalized over native execution on full local memory").
:mod:`repro.bench.reporting` renders the sweep tables the benchmark files
print.
"""

from repro.bench.harness import (
    ExperimentPoint,
    Sweep,
    mira_point,
    native_time_ns,
    sweep_systems,
    system_point,
)
from repro.bench.reporting import format_sweep_table

__all__ = [
    "ExperimentPoint",
    "Sweep",
    "mira_point",
    "native_time_ns",
    "sweep_systems",
    "system_point",
    "format_sweep_table",
]
