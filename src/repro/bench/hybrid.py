"""Hybrid path-switch benchmark: the two-path system vs the baselines.

Two halves, both virtual-time deterministic and regression-gated
(``repro.obs.regress``, ``hybrid.*`` metrics):

* **IR cells** -- each of the five paper workloads compiled by the Mira
  controller, then run four ways at one local-memory ratio: fastswap,
  aifm, the plain Mira runtime (``run_plan``), and the hybrid runtime
  (``run_plan(hybrid=True)``), which materializes the same plan as path
  groups that may switch online.  The acceptance criterion is that
  hybrid matches or beats the better of fastswap/aifm everywhere.
* **Trace cells** -- the trace frontend's full scenario corpus replayed
  on the ``"hybrid"`` trace system next to fastswap/aifm/mira-set.  The
  hybrid system starts every region on the swap path (a raw trace has no
  plan-time signals), so these cells exercise the *online* promote path;
  ``switches`` records every applied ``path.switch`` with its trigger
  signals.

``benchmarks/hybrid_smoke.py`` is the CLI wrapper that writes
``BENCH_hybrid.json``.
"""

from __future__ import annotations

from repro.bench.harness import (
    ModuleMemo,
    effective_ns,
    mira_point,
    native_time_ns,
    system_point,
)
from repro.bench.prefetch import WORKLOADS
from repro.bench.tracebench import measure_cell as trace_measure_cell
from repro.memsim.cost_model import CostModel
from repro.obs import Tracer
from repro.workloads import make_workload
from repro.workloads.trace.generators import SCENARIOS
from repro.workloads.trace.replay import run_scenario

#: local memory as a fraction of the footprint, both halves (equal across
#: every system -- the comparison requires it)
RATIO = 0.5

#: the systems the IR half compares (hybrid last, so the winner check
#: reads naturally in the report)
IR_SYSTEMS = ("fastswap", "aifm", "mira", "hybrid")

#: trace systems the hybrid competes against on the corpus
TRACE_SYSTEMS = ("fastswap", "aifm", "mira-set", "hybrid")


def measure_ir_workload(
    workload: str, ratio: float = RATIO, cost: CostModel | None = None
) -> list[dict]:
    """All four systems on one compiled workload; returns the cell list.

    The Mira controller compiles once; ``mira`` and ``hybrid`` run the
    *same* plan, so any delta between them is purely the path machinery
    (group bookkeeping plus any online switches).
    """
    cost = cost or CostModel()
    wl = make_workload(workload, **WORKLOADS[workload])
    memo = ModuleMemo(wl)
    native_ns = native_time_ns(wl, cost, memo=memo)
    local = max(4096, int(memo.footprint_bytes * ratio))
    cells: list[dict] = []

    def cell(system: str, elapsed_ns: float, **extra) -> dict:
        return {
            "workload": workload,
            "system": system,
            "ratio": ratio,
            "local_mem_bytes": local,
            "native_ns": native_ns,
            "elapsed_ns": elapsed_ns,
            **extra,
        }

    for system in ("fastswap", "aifm"):
        p = system_point(wl, system, cost, ratio, native_ns, memo=memo)
        if p.failed:
            # AIFM's allocation failures are data, not errors (Fig. 18)
            cells.append(cell(system, 0.0, failed=True, error=p.extra.get("error")))
        else:
            cells.append(cell(system, p.elapsed_ns))
    mira, program = mira_point(wl, cost, ratio, native_ns, memo=memo)
    cells.append(cell("mira", mira.elapsed_ns))
    from repro.core import run_plan

    tracer = Tracer()
    result = run_plan(
        program.module,
        cost,
        local,
        data_init=wl.data_init,
        entry=wl.entry,
        hybrid=True,
        tracer=tracer,
    )
    wl.verify_results(result.results)
    switches = [
        {"t": t, **fields}
        for kind, t, fields in tracer.events
        if kind == "path.switch"
    ]
    plan_paths = {
        sp.config.name: getattr(sp, "path", "object")
        for sp in program.plan.sections
    }
    cells.append(
        cell(
            "hybrid",
            effective_ns(result),
            switches=switches,
            plan_paths=plan_paths,
        )
    )
    return cells


def measure_trace_cell(
    scenario: str, system: str, ratio: float = RATIO,
    cost: CostModel | None = None,
) -> dict:
    """One (scenario, system) corpus cell; hybrid cells carry the applied
    switches (each with the windowed signals that triggered it)."""
    if system != "hybrid":
        return trace_measure_cell(scenario, system, ratio, cost)
    tracer = Tracer()
    res = run_scenario(scenario, "hybrid", ratio, cost=cost, tracer=tracer)
    base = trace_measure_cell(scenario, "hybrid", ratio, cost)
    # the traced re-run must agree with the untraced one (tracing is
    # observation, not perturbation)
    assert base["elapsed_ns"] == res.elapsed_ns
    base["switches"] = [
        {"t": t, **fields}
        for kind, t, fields in tracer.events
        if kind == "path.switch"
    ]
    return base


def measure_all(
    workloads=None,
    scenarios=None,
    ratio: float = RATIO,
    cost: CostModel | None = None,
) -> dict:
    """The full benchmark: IR cells + trace-corpus cells + the acceptance
    summary (hybrid vs the better of fastswap/aifm, per workload)."""
    ir_cells: list[dict] = []
    for workload in list(workloads or WORKLOADS):
        ir_cells.extend(measure_ir_workload(workload, ratio, cost))
    trace_names = list(scenarios or SCENARIOS)
    trace_cells = [
        measure_trace_cell(sc, sy, ratio, cost)
        for sc in trace_names
        for sy in TRACE_SYSTEMS
    ]
    acceptance: dict[str, dict] = {}
    for workload in {c["workload"] for c in ir_cells}:
        by_sys = {c["system"]: c for c in ir_cells if c["workload"] == workload}
        rivals = [
            by_sys[s]["elapsed_ns"]
            for s in ("fastswap", "aifm")
            if s in by_sys and not by_sys[s].get("failed")
        ]
        hybrid_ns = by_sys["hybrid"]["elapsed_ns"]
        best_rival = min(rivals) if rivals else None
        acceptance[workload] = {
            "hybrid_ns": hybrid_ns,
            "best_rival_ns": best_rival,
            "hybrid_wins": best_rival is None or hybrid_ns <= best_rival,
            "switches": len(by_sys["hybrid"].get("switches", [])),
        }
    midrun = [
        {
            "scenario": c["scenario"],
            "switches": c["switches"],
            "hybrid_ns": c["elapsed_ns"],
        }
        for c in trace_cells
        if c["system"] == "hybrid" and c.get("switches")
    ]
    return {
        "config": {
            "ratio": ratio,
            "ir_workloads": {w: WORKLOADS[w] for w in (workloads or WORKLOADS)},
            "trace_scenarios": {
                name: {
                    "kind": SCENARIOS[name].kind,
                    "seed": SCENARIOS[name].seed,
                    "digest": SCENARIOS[name].digest(),
                }
                for name in trace_names
                if name in SCENARIOS
            },
            "ir_systems": list(IR_SYSTEMS),
            "trace_systems": list(TRACE_SYSTEMS),
        },
        "ir_cells": ir_cells,
        "trace_cells": trace_cells,
        "acceptance": acceptance,
        "midrun_switches": midrun,
    }
