"""Plain-text tables for the benchmark harness (the "same rows/series the
paper reports")."""

from __future__ import annotations

from repro.bench.harness import Sweep


def format_sweep_table(sweep: Sweep, title: str = "") -> str:
    """Rows = local-memory ratio, columns = systems, cells = normalized
    performance (x over native); FAIL marks runs the system could not
    complete (AIFM in Fig. 18)."""
    systems: list[str] = []
    ratios: list[float] = []
    for p in sweep.points:
        if p.system not in systems:
            systems.append(p.system)
        if not any(abs(r - p.local_ratio) < 1e-9 for r in ratios):
            ratios.append(p.local_ratio)
    ratios.sort()
    lines = []
    if title:
        lines.append(title)
    header = f"{'local mem':>10} | " + " | ".join(f"{s:>9}" for s in systems)
    lines.append(header)
    lines.append("-" * len(header))
    for ratio in ratios:
        cells = []
        for system in systems:
            try:
                p = sweep.get(system, ratio)
            except KeyError:
                cells.append(f"{'-':>9}")
                continue
            cells.append(
                f"{'FAIL':>9}" if p.failed else f"{p.normalized_perf:>9.3f}"
            )
        lines.append(f"{ratio:>9.0%} | " + " | ".join(cells))
    return "\n".join(lines)


def format_series(name: str, xs: list, ys: list, xlabel: str, ylabel: str) -> str:
    lines = [name, f"{xlabel:>14} | {ylabel:>14}"]
    lines.append("-" * 31)
    for x, y in zip(xs, ys):
        ys_str = f"{y:>14.4f}" if isinstance(y, float) else f"{y!s:>14}"
        lines.append(f"{x!s:>14} | {ys_str}")
    return "\n".join(lines)
