"""Plain-text tables for the benchmark harness (the "same rows/series the
paper reports")."""

from __future__ import annotations

from repro.bench.harness import Sweep


def format_sweep_table(sweep: Sweep, title: str = "") -> str:
    """Rows = local-memory ratio, columns = systems, cells = normalized
    performance (x over native); FAIL marks runs the system could not
    complete (AIFM in Fig. 18)."""
    systems: list[str] = []
    ratios: list[float] = []
    for p in sweep.points:
        if p.system not in systems:
            systems.append(p.system)
        if not any(abs(r - p.local_ratio) < 1e-9 for r in ratios):
            ratios.append(p.local_ratio)
    ratios.sort()
    lines = []
    if title:
        lines.append(title)
    header = f"{'local mem':>10} | " + " | ".join(f"{s:>9}" for s in systems)
    lines.append(header)
    lines.append("-" * len(header))
    for ratio in ratios:
        cells = []
        for system in systems:
            try:
                p = sweep.get(system, ratio)
            except KeyError:
                cells.append(f"{'-':>9}")
                continue
            cells.append(
                f"{'FAIL':>9}" if p.failed else f"{p.normalized_perf:>9.3f}"
            )
        lines.append(f"{ratio:>9.0%} | " + " | ".join(cells))
    return "\n".join(lines)


def format_series(name: str, xs: list, ys: list, xlabel: str, ylabel: str) -> str:
    lines = [name, f"{xlabel:>14} | {ylabel:>14}"]
    lines.append("-" * 31)
    for x, y in zip(xs, ys):
        ys_str = f"{y:>14.4f}" if isinstance(y, float) else f"{y!s:>14}"
        lines.append(f"{x!s:>14} | {ys_str}")
    return "\n".join(lines)


def _fmt_ns(ns: float) -> str:
    """Human-scaled virtual time (ns/us/ms/s)."""
    if ns >= 1e9:
        return f"{ns / 1e9:.3f}s"
    if ns >= 1e6:
        return f"{ns / 1e6:.3f}ms"
    if ns >= 1e3:
        return f"{ns / 1e3:.3f}us"
    return f"{ns:.0f}ns"


def format_phase_timeline(rows: list[dict]) -> str:
    """Table for :func:`repro.obs.report.phase_timeline` rows: one line per
    completed ``prof.region`` span with its cache/network activity."""
    header = (
        f"{'phase':>16} | {'start':>10} | {'duration':>10} | "
        f"{'hits':>8} | {'misses':>8} | {'net bytes':>10}"
    )
    lines = ["phase timeline", header, "-" * len(header)]
    if not rows:
        lines.append("(no prof.region events in trace)")
        return "\n".join(lines)
    for r in rows:
        lines.append(
            f"{r['phase']:>16} | {_fmt_ns(r['start_ns']):>10} | "
            f"{_fmt_ns(r['duration_ns']):>10} | {r['hits']:>8} | "
            f"{r['misses']:>8} | {r['net_bytes']:>10}"
        )
    return "\n".join(lines)


def format_attribution(att) -> str:
    """Tables for a :class:`repro.obs.analyze.Attribution`: exclusive
    buckets (summing exactly to the total), per-section split, wasted
    prefetches, degradation windows, and any analyzer warnings."""
    total = att.total_ns or 1.0
    runs = len(att.segments)
    lines = [
        f"virtual-time attribution: total {_fmt_ns(att.total_ns)} "
        f"over {runs} run{'s' if runs != 1 else ''}"
    ]
    header = f"{'bucket':>16} | {'time':>10} | {'share':>6}"
    lines += [header, "-" * len(header)]
    for bucket, ns in sorted(att.by_bucket.items(), key=lambda kv: -kv[1]):
        lines.append(f"{bucket:>16} | {_fmt_ns(ns):>10} | {ns / total:>6.1%}")
    lines.append("")
    header = f"{'section':>16} | {'bucket':>16} | {'time':>10} | {'share':>6}"
    lines += ["per-section attribution", header, "-" * len(header)]
    for sec in sorted(att.by_section):
        for bucket, ns in sorted(
            att.by_section[sec].items(), key=lambda kv: -kv[1]
        ):
            lines.append(
                f"{sec:>16} | {bucket:>16} | {_fmt_ns(ns):>10} | "
                f"{ns / total:>6.1%}"
            )
    if att.wasted_prefetch:
        lines.append("")
        lines.append("wasted prefetches (fetched but never used):")
        for sec in sorted(att.wasted_prefetch):
            w = att.wasted_prefetch[sec]
            lines.append(
                f"  {sec}: {w['in_flight']} evicted in flight, "
                f"{w['unused']} arrived unused, ~{w['bytes']} bytes wasted"
            )
    if att.degradations:
        lines.append("")
        lines.append("degradation windows:")
        for d in att.degradations:
            dur = (d["end"] or d["start"]) - d["start"]
            lines.append(
                f"  [{d.get('segment', '?')}] {d['action']} sec={d['sec']} "
                f"at t={d['start']:.0f}, window {_fmt_ns(dur)}, "
                f"{_fmt_ns(d['attr_ns'])} attributed inside"
            )
    if att.warnings:
        lines.append("")
        lines.append("analyzer warnings:")
        lines += [f"  ! {w}" for w in att.warnings]
    return "\n".join(lines)


def format_critical_path(steps: list[dict]) -> str:
    """Indented drill-down for :func:`repro.obs.analyze.critical_path`."""
    lines = ["virtual-time critical path"]
    if not steps:
        lines.append("(empty trace)")
        return "\n".join(lines)
    for depth, s in enumerate(steps):
        lines.append(
            f"{'  ' * depth}-> {s['name']} [{s['level']}] "
            f"{_fmt_ns(s['inclusive_ns'])} ({s['share']:.1%} of parent)"
        )
    return "\n".join(lines)


def format_regression(checks: list) -> str:
    """Table for :func:`repro.obs.regress.compare` checks."""
    header = (
        f"{'metric':>48} | {'baseline':>12} | {'current':>12} | "
        f"{'delta':>7} | {'verdict':>8}"
    )
    lines = ["perf-regression gate", header, "-" * len(header)]
    if not checks:
        lines.append("(no overlapping metrics between baseline and current)")
        return "\n".join(lines)
    for c in checks:
        verdict = "ok" if c.ok else "FAIL"
        if c.ok and c.note:
            verdict = "note"
        lines.append(
            f"{c.metric:>48} | {c.baseline:>12.1f} | {c.current:>12.1f} | "
            f"{c.rel:>+7.1%} | {verdict:>8}"
        )
        if c.note:
            lines.append(f"{'':>48}   {c.note}")
    return "\n".join(lines)


def format_percentiles(name: str, snap: dict) -> str:
    """One line for a :class:`repro.obs.metrics.Histogram` snapshot."""
    if not snap.get("count"):
        return f"{name}: (no observations)"
    return (
        f"{name}: n={snap['count']} mean={_fmt_ns(snap['mean'])} "
        f"p50={_fmt_ns(snap['p50'])} p95={_fmt_ns(snap['p95'])} "
        f"p99={_fmt_ns(snap['p99'])} max={_fmt_ns(snap['max'])}"
    )


def format_section_summary(rows: dict[str, dict]) -> str:
    """Table for :func:`repro.obs.report.section_summary`: one line per
    cache section (swap included) with aggregate hit/miss/evict counts."""
    header = (
        f"{'section':>16} | {'accesses':>9} | {'hits':>9} | {'misses':>8} | "
        f"{'miss%':>6} | {'pf hits':>7} | {'evicts':>7} | {'wb':>6} | "
        f"{'miss wait':>10}"
    )
    lines = ["section summary", header, "-" * len(header)]
    if not rows:
        lines.append("(no cache events in trace)")
        return "\n".join(lines)
    for sec in sorted(rows):
        r = rows[sec]
        lines.append(
            f"{sec:>16} | {r['accesses']:>9} | {r['hits']:>9} | "
            f"{r['misses']:>8} | {r['miss_rate']:>6.1%} | "
            f"{r['prefetch_hits']:>7} | {r['evictions']:>7} | "
            f"{r['writebacks']:>6} | {_fmt_ns(r['miss_wait_ns']):>10}"
        )
    return "\n".join(lines)
