"""Shared experiment harness.

All figures report *normalized performance* = native virtual time /
system virtual time on the same program and data (higher is better,
1.0 = no far-memory penalty).  AIFM's allocation failures (Fig. 18) are
recorded as ``failed`` points rather than exceptions.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.baselines import AIFM, FastSwap, Leap, NativeMemory
from repro.core import MiraController, run_on_baseline, run_plan
from repro.errors import AllocationError
from repro.memsim.cost_model import CostModel
from repro.runtime.interpreter import RunResult
from repro.workloads.base import Workload

BASELINE_SYSTEMS = {
    "fastswap": FastSwap,
    "leap": Leap,
    "aifm": AIFM,
}


@dataclass
class ExperimentPoint:
    system: str
    local_ratio: float
    normalized_perf: float | None  # None = failed to run
    elapsed_ns: float = 0.0
    extra: dict = field(default_factory=dict)

    @property
    def failed(self) -> bool:
        return self.normalized_perf is None


@dataclass
class Sweep:
    """One figure's data: points indexed by (system, ratio)."""

    name: str
    native_ns: float
    points: list[ExperimentPoint] = field(default_factory=list)

    def add(self, point: ExperimentPoint) -> None:
        self.points.append(point)

    def get(self, system: str, ratio: float) -> ExperimentPoint:
        for p in self.points:
            if p.system == system and abs(p.local_ratio - ratio) < 1e-9:
                return p
        raise KeyError((system, ratio))

    def series(self, system: str) -> list[ExperimentPoint]:
        return [p for p in self.points if p.system == system]


def effective_ns(result: RunResult) -> float:
    """Measured time of a run: the ``measured`` profiling region when the
    workload marks one (steady state, excluding warm-up), else the whole
    run."""
    return result.profiler.regions.get("measured", result.elapsed_ns)


def native_time_ns(workload: Workload, cost: CostModel) -> float:
    """Native all-local run; also validates workload correctness."""
    result = run_on_baseline(
        workload.build_module(),
        NativeMemory(cost, 2 * workload.footprint_bytes() + (1 << 20)),
        workload.data_init,
        entry=workload.entry,
    )
    workload.verify_results(result.results)
    return effective_ns(result)


def system_point(
    workload: Workload,
    system_name: str,
    cost: CostModel,
    local_ratio: float,
    native_ns: float,
    num_threads: int = 1,
) -> ExperimentPoint:
    """Run one baseline system at one local-memory ratio."""
    local = max(4096, int(workload.footprint_bytes() * local_ratio))
    cls = BASELINE_SYSTEMS[system_name]
    kwargs = {} if system_name == "aifm" else {"num_threads": num_threads}
    try:
        result = run_on_baseline(
            workload.build_module(),
            cls(cost, local, **kwargs),
            workload.data_init,
            entry=workload.entry,
        )
        workload.verify_results(result.results)
    except AllocationError as e:
        return ExperimentPoint(system_name, local_ratio, None, extra={"error": str(e)})
    ns = effective_ns(result)
    return ExperimentPoint(system_name, local_ratio, native_ns / ns, ns)


def mira_point(
    workload: Workload,
    cost: CostModel,
    local_ratio: float,
    native_ns: float,
    max_iterations: int = 2,
    sample_sizes: bool = False,
    num_threads: int = 1,
) -> tuple[ExperimentPoint, "MiraController | None"]:
    """Run the full Mira controller at one ratio; returns the point and
    the compiled program (for deep-dive figures)."""
    local = max(4096, int(workload.footprint_bytes() * local_ratio))
    controller = MiraController(
        workload.build_module,
        cost,
        local,
        data_init=workload.data_init,
        entry=workload.entry,
        max_iterations=max_iterations,
        sample_sizes=sample_sizes,
        num_threads=num_threads,
    )
    program = controller.optimize()
    final = run_plan(
        program.module,
        cost,
        local,
        data_init=workload.data_init,
        entry=workload.entry,
        num_threads=num_threads,
    )
    workload.verify_results(final.results)
    ns = effective_ns(final)
    point = ExperimentPoint(
        "mira",
        local_ratio,
        native_ns / ns,
        ns,
        extra={"sections": [sp.config.name for sp in program.plan.sections]},
    )
    return point, program


def sweep_systems(
    workload: Workload,
    cost: CostModel,
    ratios: list[float],
    systems: list[str] = ("fastswap", "leap", "aifm", "mira"),
    max_iterations: int = 2,
    num_threads: int = 1,
) -> Sweep:
    """The standard figure shape: systems x local-memory ratios."""
    native_ns = native_time_ns(workload, cost)
    sweep = Sweep(workload.name, native_ns)
    for ratio in ratios:
        for system in systems:
            if system == "mira":
                point, _ = mira_point(
                    workload,
                    cost,
                    ratio,
                    native_ns,
                    max_iterations=max_iterations,
                    num_threads=num_threads,
                )
            else:
                point = system_point(
                    workload, system, cost, ratio, native_ns, num_threads
                )
            sweep.add(point)
    return sweep
