"""Shared experiment harness.

All figures report *normalized performance* = native virtual time /
system virtual time on the same program and data (higher is better,
1.0 = no far-memory penalty).  AIFM's allocation failures (Fig. 18) are
recorded as ``failed`` points rather than exceptions.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field

from repro.baselines import AIFM, FastSwap, Leap, NativeMemory
from repro.core import MiraController, run_on_baseline, run_plan
from repro.core.pipeline import footprint_bytes as _module_footprint
from repro.errors import AllocationError
from repro.ir.core import Module
from repro.memsim.cost_model import CostModel
from repro.runtime.interpreter import RunResult
from repro.workloads.base import Workload

BASELINE_SYSTEMS = {
    "fastswap": FastSwap,
    "leap": Leap,
    "aifm": AIFM,
}


class ModuleMemo:
    """Per-sweep cache of a workload's built module and footprint.

    Baseline runs never mutate IR, so they can all share one built module
    (``.module``); the Mira pipeline rewrites the module in place, so it
    gets a clone of the pristine copy via ``.fresh``.  This turns the
    O(points) repeated ``build_module()``/``footprint_bytes()`` calls of a
    sweep into one build.
    """

    def __init__(self, workload: Workload) -> None:
        self.workload = workload
        self._module: Module | None = None
        self._footprint: int | None = None

    @property
    def module(self) -> Module:
        if self._module is None:
            self._module = self.workload.build_module()
        return self._module

    def fresh(self) -> Module:
        """A private copy for pipelines that mutate the module."""
        return self.module.clone()

    @property
    def footprint_bytes(self) -> int:
        if self._footprint is None:
            self._footprint = _module_footprint(self.module)
        return self._footprint


@dataclass
class ExperimentPoint:
    system: str
    local_ratio: float
    normalized_perf: float | None  # None = failed to run
    elapsed_ns: float = 0.0
    extra: dict = field(default_factory=dict)

    @property
    def failed(self) -> bool:
        return self.normalized_perf is None


def _point_key(system: str, ratio: float) -> tuple[str, float]:
    return (system, round(ratio, 9))


@dataclass
class Sweep:
    """One figure's data: points indexed by (system, ratio).

    ``points`` keeps insertion order for plotting; ``get`` is O(1) via a
    dict keyed on ``(system, round(ratio, 9))``.
    """

    name: str
    native_ns: float
    points: list[ExperimentPoint] = field(default_factory=list)
    _index: dict[tuple[str, float], ExperimentPoint] = field(
        default_factory=dict, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        for p in self.points:
            self._index[_point_key(p.system, p.local_ratio)] = p

    def add(self, point: ExperimentPoint) -> None:
        self.points.append(point)
        self._index[_point_key(point.system, point.local_ratio)] = point

    def get(self, system: str, ratio: float) -> ExperimentPoint:
        try:
            return self._index[_point_key(system, ratio)]
        except KeyError:
            raise KeyError((system, ratio)) from None

    def series(self, system: str) -> list[ExperimentPoint]:
        return [p for p in self.points if p.system == system]


def effective_ns(result: RunResult) -> float:
    """Measured time of a run: the ``measured`` profiling region when the
    workload marks one (steady state, excluding warm-up), else the whole
    run."""
    return result.profiler.regions.get("measured", result.elapsed_ns)


def native_time_ns(
    workload: Workload, cost: CostModel, memo: ModuleMemo | None = None
) -> float:
    """Native all-local run; also validates workload correctness."""
    if memo is None:
        memo = ModuleMemo(workload)
    result = run_on_baseline(
        memo.module,
        NativeMemory(cost, 2 * memo.footprint_bytes + (1 << 20)),
        workload.data_init,
        entry=workload.entry,
    )
    workload.verify_results(result.results)
    return effective_ns(result)


def system_point(
    workload: Workload,
    system_name: str,
    cost: CostModel,
    local_ratio: float,
    native_ns: float,
    num_threads: int = 1,
    memo: ModuleMemo | None = None,
) -> ExperimentPoint:
    """Run one baseline system at one local-memory ratio."""
    if memo is None:
        memo = ModuleMemo(workload)
    local = max(4096, int(memo.footprint_bytes * local_ratio))
    cls = BASELINE_SYSTEMS[system_name]
    kwargs = {} if system_name == "aifm" else {"num_threads": num_threads}
    try:
        result = run_on_baseline(
            memo.module,
            cls(cost, local, **kwargs),
            workload.data_init,
            entry=workload.entry,
        )
        workload.verify_results(result.results)
    except AllocationError as e:
        return ExperimentPoint(system_name, local_ratio, None, extra={"error": str(e)})
    ns = effective_ns(result)
    return ExperimentPoint(system_name, local_ratio, native_ns / ns, ns)


def mira_point(
    workload: Workload,
    cost: CostModel,
    local_ratio: float,
    native_ns: float,
    max_iterations: int = 2,
    sample_sizes: bool = False,
    num_threads: int = 1,
    memo: ModuleMemo | None = None,
) -> tuple[ExperimentPoint, "MiraController | None"]:
    """Run the full Mira controller at one ratio; returns the point and
    the compiled program (for deep-dive figures)."""
    if memo is None:
        memo = ModuleMemo(workload)
    local = max(4096, int(memo.footprint_bytes * local_ratio))
    # the transform pipeline mutates modules, so the controller builds
    # from clones of the memo's pristine copy
    controller = MiraController(
        memo.fresh,
        cost,
        local,
        data_init=workload.data_init,
        entry=workload.entry,
        max_iterations=max_iterations,
        sample_sizes=sample_sizes,
        num_threads=num_threads,
    )
    program = controller.optimize()
    final = run_plan(
        program.module,
        cost,
        local,
        data_init=workload.data_init,
        entry=workload.entry,
        num_threads=num_threads,
    )
    workload.verify_results(final.results)
    ns = effective_ns(final)
    point = ExperimentPoint(
        "mira",
        local_ratio,
        native_ns / ns,
        ns,
        extra={"sections": [sp.config.name for sp in program.plan.sections]},
    )
    return point, program


def _one_point(
    workload: Workload,
    system: str,
    cost: CostModel,
    ratio: float,
    native_ns: float,
    max_iterations: int,
    num_threads: int,
    memo: ModuleMemo,
) -> ExperimentPoint:
    if system == "mira":
        point, _ = mira_point(
            workload,
            cost,
            ratio,
            native_ns,
            max_iterations=max_iterations,
            num_threads=num_threads,
            memo=memo,
        )
        return point
    return system_point(
        workload, system, cost, ratio, native_ns, num_threads, memo=memo
    )


def _sweep_job(job: tuple) -> ExperimentPoint:
    """Worker-process entry: rebuild the workload from its registry name
    and run one (system, ratio) point.  Module-level so it pickles."""
    (name, params, system, ratio, cost, native_ns, max_iterations, num_threads) = job
    from repro.workloads import make_workload

    workload = make_workload(name, **params)
    return _one_point(
        workload,
        system,
        cost,
        ratio,
        native_ns,
        max_iterations,
        num_threads,
        ModuleMemo(workload),
    )


def _parallelizable(workload: Workload) -> bool:
    """Workloads cross process boundaries by name: their closures do not
    pickle, so only registered ones can fan out."""
    from repro.workloads import WORKLOAD_FACTORIES

    return workload.name in WORKLOAD_FACTORIES


def sweep_systems(
    workload: Workload,
    cost: CostModel,
    ratios: list[float],
    systems: list[str] = ("fastswap", "leap", "aifm", "mira"),
    max_iterations: int = 2,
    num_threads: int = 1,
    workers: int | None = None,
    native_ns: float | None = None,
) -> Sweep:
    """The standard figure shape: systems x local-memory ratios.

    ``workers > 1`` runs the independent (system, ratio) points in a
    process pool.  The native baseline is computed once up front (or
    passed in via ``native_ns``) and shared with every worker; results
    are collected in submission order, so the sweep's points are
    identical to a serial run's.  Falls back to serial for unregistered
    (ad-hoc) workloads, whose closures cannot be shipped to another
    process.
    """
    memo = ModuleMemo(workload)
    if native_ns is None:
        native_ns = native_time_ns(workload, cost, memo=memo)
    sweep = Sweep(workload.name, native_ns)
    jobs = [(ratio, system) for ratio in ratios for system in systems]
    if workers and workers > 1 and len(jobs) > 1 and _parallelizable(workload):
        payloads = [
            (
                workload.name,
                dict(workload.params),
                system,
                ratio,
                cost,
                native_ns,
                max_iterations,
                num_threads,
            )
            for ratio, system in jobs
        ]
        with ProcessPoolExecutor(max_workers=min(workers, len(payloads))) as pool:
            for point in pool.map(_sweep_job, payloads):
                sweep.add(point)
        return sweep
    for ratio, system in jobs:
        sweep.add(
            _one_point(
                workload, system, cost, ratio, native_ns,
                max_iterations, num_threads, memo,
            )
        )
    return sweep
