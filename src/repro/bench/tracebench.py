"""Trace-replay benchmark: scenario x system sweep under the virtual clock.

Each cell replays one pinned scenario from the trace frontend's corpus
(:data:`repro.workloads.trace.SCENARIOS`) through one memory system at a
fixed local-memory ratio and reports virtual time, miss behavior, and
the clock's category breakdown.  Everything is virtual-time
deterministic -- the generators are seeded, the systems are the
production simulators -- so the numbers are bit-stable across hosts and
can be regression-gated (``repro.obs.regress``, ``trace.*`` metrics).

``benchmarks/trace_smoke.py`` is the CLI wrapper that writes
``BENCH_trace.json``.
"""

from __future__ import annotations

from repro.memsim.cost_model import CostModel
from repro.workloads.trace.generators import SCENARIOS
from repro.workloads.trace.replay import TRACE_SYSTEMS, run_scenario

#: systems swept: the page-swap baselines, the object runtime, and the
#: three Mira cache-section geometries
SYSTEMS = TRACE_SYSTEMS

#: local memory as a fraction of the scenario footprint (equal across
#: every system -- the comparison requires it)
RATIO = 0.5


def measure_cell(
    scenario: str, system: str, ratio: float = RATIO, cost: CostModel | None = None
) -> dict:
    """Replay one (scenario, system) cell; returns the benchmark record."""
    res = run_scenario(scenario, system, ratio, cost=cost)
    sections = {
        name: {
            "accesses": s.get("accesses", 0),
            "hits": s.get("hits", 0),
            "misses": s.get("misses", 0),
            "evictions": s.get("evictions", 0),
        }
        for name, s in res.sections.items()
    }
    return {
        "scenario": scenario,
        "system": system,
        "ratio": ratio,
        "num_ops": res.num_ops,
        "footprint_bytes": res.footprint_bytes,
        "local_mem_bytes": res.local_mem_bytes,
        "elapsed_ns": res.elapsed_ns,
        "miss_rate": res.miss_rate,
        "sections": sections,
        "breakdown": res.breakdown,
    }


def measure_all(
    scenarios=None, systems=SYSTEMS, ratio: float = RATIO,
    cost: CostModel | None = None,
) -> dict:
    """The full sweep plus per-scenario winners (lowest virtual time)."""
    names = list(scenarios or SCENARIOS)
    cells = [measure_cell(sc, sy, ratio, cost) for sc in names for sy in systems]
    winners: dict[str, str] = {}
    for sc in names:
        best = min(
            (c for c in cells if c["scenario"] == sc),
            key=lambda c: (c["elapsed_ns"], c["system"]),
        )
        winners[sc] = best["system"]
    return {
        "config": {
            "scenarios": {
                name: {
                    "kind": SCENARIOS[name].kind,
                    "seed": SCENARIOS[name].seed,
                    "params": SCENARIOS[name].params,
                    "digest": SCENARIOS[name].digest(),
                }
                for name in names
                if name in SCENARIOS
            },
            "systems": list(systems),
            "ratio": ratio,
        },
        "cells": cells,
        "winners": winners,
    }
