"""Prefetch-policy benchmark: policy x workload sweep scored by the
critical-path profiler.

Each cell runs one workload on the Leap chassis (FastSwap structure +
Leap's fault path) with one prefetch policy attached, traces the run,
and attributes virtual time with :func:`repro.obs.analyze.analyze_events`.
The score is the *prefetch-relevant stall*: the profiler buckets that a
better prefetcher can shrink (``prefetch_wait`` + ``swap_fault`` +
``miss_service`` + ``net_wait``).  Everything is virtual-time
deterministic, so the emitted numbers are bit-stable across hosts and
engines and can be regression-gated (``repro.obs.regress``).

``benchmarks/prefetch_smoke.py`` is the CLI wrapper that writes
``BENCH_prefetch.json``.
"""

from __future__ import annotations

import json

from repro.baselines.leap import Leap
from repro.bench.harness import ModuleMemo
from repro.core import run_on_baseline
from repro.memsim.cost_model import CostModel
from repro.obs import Tracer
from repro.obs.analyze import analyze_events
from repro.workloads import make_workload

#: policies swept ("none" = demand paging on the same chassis)
POLICIES = ("none", "leap", "markov", "programmed", "learned")

#: the five paper workloads, sized so sequential/interleaved page streams
#: dominate (dataframe is the *oblivious* headliner: its interleaved
#: column scans defeat a single global stride but are fully affine)
WORKLOADS: dict[str, dict] = {
    "array_sum": {"num_elems": 8192},
    "dataframe": {"num_rows": 16384, "num_locations": 2048},
    "graph_traversal": {"num_edges": 1500, "num_nodes": 500},
    "mcf": {"num_nodes": 2048, "num_arcs": 2048, "iterations": 1, "chases": 32},
    "gpt2": {
        "layers": 3,
        "d_model": 64,
        "seq_len": 32,
        "batch": 2,
        "passes": 1,
        "warmup_passes": 1,
    },
}

#: local memory as a fraction of the workload footprint (equal cache
#: size across every policy -- the acceptance comparison requires it)
RATIO = 0.5

#: profiler buckets a prefetcher can shrink
STALL_BUCKETS = ("prefetch_wait", "swap_fault", "miss_service", "net_wait")


def measure_cell(workload: str, policy: str, cost: CostModel | None = None) -> dict:
    """One traced (workload, policy) run on the Leap chassis."""
    cost = cost or CostModel()
    wl = make_workload(workload, **WORKLOADS[workload])
    memo = ModuleMemo(wl)
    local = max(4096, int(memo.footprint_bytes * RATIO))
    tracer = Tracer()
    system = Leap(cost, local, policy=policy)
    result = run_on_baseline(
        memo.module, system, wl.data_init, entry=wl.entry, tracer=tracer
    )
    wl.verify_results(result.results)
    events = [json.loads(line) for line in tracer.lines()]
    att = analyze_events(events)
    buckets = {b: att.by_bucket.get(b, 0.0) for b in STALL_BUCKETS}
    stats = system.swap.stats
    cell = {
        "workload": workload,
        "policy": policy,
        "system": "leap",
        "ratio": RATIO,
        "local_mem_bytes": local,
        "elapsed_ns": result.elapsed_ns,
        "stall_ns": sum(buckets.values()),
        "buckets": buckets,
        "wasted_prefetch": att.wasted_prefetch.get("swap", {}),
        "swap": {
            "misses": stats.misses,
            "prefetch_hits": stats.prefetch_hits,
            "prefetches_issued": stats.prefetches_issued,
            "prefetch_wasted": stats.prefetch_wasted,
            "prefetch_waste_ratio": stats.prefetch_waste_ratio,
        },
        "trace_digest": tracer.digest(),
        "trace_events": len(tracer),
    }
    if system.policy is not None:
        cell["policy_stats"] = system.policy.snapshot()
    return cell


def measure_all(
    policies=POLICIES, workloads=None, cost: CostModel | None = None
) -> dict:
    """The full sweep plus per-workload winners and the programmed-vs-Leap
    stall comparison the acceptance criterion tabulates."""
    names = list(workloads or WORKLOADS)
    cells = [measure_cell(w, p, cost) for w in names for p in policies]
    winners: dict[str, str] = {}
    for w in names:
        best = min(
            (c for c in cells if c["workload"] == w),
            key=lambda c: (c["stall_ns"], c["elapsed_ns"], c["policy"]),
        )
        winners[w] = best["policy"]
    comparison: dict[str, dict] = {}
    for w in names:
        by_pol = {c["policy"]: c for c in cells if c["workload"] == w}
        if "leap" in by_pol and "programmed" in by_pol:
            leap_ns = by_pol["leap"]["stall_ns"]
            prog_ns = by_pol["programmed"]["stall_ns"]
            comparison[w] = {
                "leap_stall_ns": leap_ns,
                "programmed_stall_ns": prog_ns,
                "reduction": 1.0 - prog_ns / leap_ns if leap_ns else 0.0,
            }
    return {
        "config": {
            "policies": list(policies),
            "workloads": {w: WORKLOADS[w] for w in names},
            "ratio": RATIO,
            "stall_buckets": list(STALL_BUCKETS),
        },
        "cells": cells,
        "winners": winners,
        "programmed_vs_leap": comparison,
    }
