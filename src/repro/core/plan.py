"""The Mira plan: everything one optimization iteration decides.

A plan couples the cache configuration (sections and their parameters,
sections 4.1-4.3) with the compilation decisions (which sites become
remotable, which functions offload, which optimizations run, sections
4.4-4.8).  The pipeline embeds the plan in the compiled module's
attributes; the runner materializes it on the cache manager.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.cache.config import SectionConfig


@dataclass
class SectionPlan:
    """One cache section and the objects (by allocation name) it holds."""

    config: SectionConfig
    object_names: list[str]
    #: split into this many per-thread private clones (section 4.6)
    per_thread: int = 0
    #: initial data path for the hybrid system: "object" runs through the
    #: planned CacheSection, "swap" leaves the group on the kernel page
    #: path (dense streams, where a page fault amortizes over the whole
    #: page).  Plain ``run_plan`` ignores it; ``run_plan(hybrid=True)``
    #: materializes it and may switch the group online.
    path: str = "object"

    def with_size(self, size_bytes: int) -> "SectionPlan":
        return SectionPlan(
            replace(self.config, size_bytes=size_bytes),
            list(self.object_names),
            self.per_thread,
            self.path,
        )


@dataclass
class MiraPlan:
    """A full iteration's output (empty plan = generic all-swap)."""

    sections: list[SectionPlan] = field(default_factory=list)
    #: allocation names converted to remotable
    converted_sites: list[str] = field(default_factory=list)
    #: functions to offload to the far-memory node
    offload_functions: list[str] = field(default_factory=list)
    #: which pipeline passes run (see pipeline.ALL_OPTIONS)
    options: frozenset[str] = frozenset(
        {"convert", "batching", "prefetch", "evict", "readwrite", "native", "offload"}
    )
    #: provenance: analysis fractions, chosen functions, etc.
    notes: dict = field(default_factory=dict)

    def section(self, name: str) -> SectionPlan:
        for sp in self.sections:
            if sp.config.name == name:
                return sp
        raise KeyError(f"no section plan named {name!r}")

    def total_section_bytes(self) -> int:
        return sum(sp.config.size_bytes for sp in self.sections)

    def without_options(self, *dropped: str) -> "MiraPlan":
        """A copy with some optimizations disabled (ablation studies)."""
        return MiraPlan(
            sections=[
                SectionPlan(
                    sp.config, list(sp.object_names), sp.per_thread, sp.path
                )
                for sp in self.sections
            ],
            converted_sites=list(self.converted_sites),
            offload_functions=list(self.offload_functions),
            options=self.options - set(dropped),
            notes=dict(self.notes),
        )

    @staticmethod
    def swap_only() -> "MiraPlan":
        """The initial configuration: everything in the swap section."""
        return MiraPlan(options=frozenset())
