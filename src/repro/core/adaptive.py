"""Input adaptation (paper section 3, "Input adaptation").

"To adapt our compilation and cache configurations to inputs, we invoke
profiling on sampled inputs.  When the current compilation and cache
configurations' performance degrades, we trigger a round of iterative
code optimization in the background while the user invocation of a
program keeps using the current compilation."

:class:`AdaptiveRunner` wraps a compiled program: every invocation runs
on the *current* compilation; when an invocation's time exceeds the
expected time by more than ``degradation_threshold``, a re-optimization
round runs (with the new inputs' data) and subsequent invocations use its
output.  The administrator knobs of section 3 map to
``degradation_threshold`` and the controller's ``max_iterations`` /
``min_gain`` stopping criteria.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.controller import CompiledProgram, MiraController
from repro.core.runner import run_plan
from repro.memsim.cost_model import CostModel
from repro.runtime.interpreter import DataInit, RunResult


@dataclass
class InvocationRecord:
    elapsed_ns: float
    degraded: bool
    reoptimized: bool


class AdaptiveRunner:
    """Serves program invocations, re-optimizing when inputs change the
    performance profile."""

    def __init__(
        self,
        build_module,
        cost: CostModel,
        local_mem_bytes: int,
        train_data_init: DataInit | None,
        entry: str = "main",
        degradation_threshold: float = 0.25,
        max_iterations: int = 2,
        sample_sizes: bool = False,
    ) -> None:
        self.build_module = build_module
        self.cost = cost
        self.local_mem_bytes = local_mem_bytes
        self.entry = entry
        self.degradation_threshold = degradation_threshold
        self.max_iterations = max_iterations
        self.sample_sizes = sample_sizes
        self.history: list[InvocationRecord] = []
        self.reoptimizations = 0
        self.program: CompiledProgram = self._optimize(train_data_init)
        #: expected per-invocation time, from the training round
        self.expected_ns = self.program.best_ns

    def _optimize(self, data_init: DataInit | None) -> CompiledProgram:
        controller = MiraController(
            self.build_module,
            self.cost,
            self.local_mem_bytes,
            data_init=data_init,
            entry=self.entry,
            max_iterations=self.max_iterations,
            sample_sizes=self.sample_sizes,
        )
        return controller.optimize()

    def invoke(self, data_init: DataInit | None) -> RunResult:
        """One user invocation with (possibly new) input data."""
        result = run_plan(
            self.program.module,
            self.cost,
            self.local_mem_bytes,
            data_init=data_init,
            entry=self.entry,
        )
        degraded = result.elapsed_ns > self.expected_ns * (
            1.0 + self.degradation_threshold
        )
        reoptimized = False
        if degraded:
            # the paper re-optimizes in the background while the current
            # compilation keeps serving; subsequent invocations use the
            # new round's output
            self.program = self._optimize(data_init)
            self.expected_ns = self.program.best_ns
            self.reoptimizations += 1
            reoptimized = True
        self.history.append(
            InvocationRecord(result.elapsed_ns, degraded, reoptimized)
        )
        return result
