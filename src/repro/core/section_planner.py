"""Section planning: profiling results + program analysis -> cache
sections (paper sections 4.1-4.2).

The planner implements the scope-narrowing of section 4.1:

1. rank functions by profiled cache-performance overhead, take the top
   ``fraction`` (10% in the first iteration, 20% in the second, ...);
2. within those functions, take the largest ``fraction`` of accessed
   objects;
3. analyze their access patterns and group *similar* patterns into one
   section, different patterns into different sections;
4. configure each section's line size and structure from analysis, and
   sizes heuristically (the controller refines sizes by sampling + ILP).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass

from repro.analysis.access import AccessPattern, AccessSummary, analyze_scope
from repro.analysis.alias import AliasAnalysis, AllocSite
from repro.analysis.locality import choose_line_size, choose_path, choose_structure
from repro.cache.config import SectionConfig, Structure
from repro.core.plan import MiraPlan, SectionPlan
from repro.ir.core import Module
from repro.ir.dialects import func as func_d
from repro.ir.dialects import scf
from repro.memsim.cost_model import CostModel
from repro.runtime.profiler import Profiler

#: leave at least this share of local memory to the swap section (stack,
#: code, unconverted objects)
SWAP_RESERVE = 0.05


@dataclass
class SiteChoice:
    site: AllocSite
    summary: AccessSummary
    #: True when some write could be shared across threads; affine writes
    #: inside scf.parallel partition the object (shared-nothing, section
    #: 4.6) and do not count
    shared_write: bool = False


def plan_sections(
    module: Module,
    cost: CostModel,
    local_mem_bytes: int,
    profiler: Profiler,
    fraction: float = 0.1,
    obj_fraction: float | None = None,
    num_threads: int = 0,
) -> MiraPlan:
    """Produce a plan from the previous iteration's profile."""
    obj_fraction = obj_fraction if obj_fraction is not None else fraction
    worst = profiler.worst_functions(fraction)
    worst = _with_callees(module, worst)
    if not worst:
        return MiraPlan.swap_only()
    choices = _select_objects(module, worst, obj_fraction)
    if not choices:
        return MiraPlan.swap_only()
    groups = _group_by_pattern(choices)
    budget = int(local_mem_bytes * (1.0 - SWAP_RESERVE))
    sections = _configure(groups, cost, budget, num_threads)
    plan = MiraPlan(
        sections=sections,
        converted_sites=[c.site.name for c in choices if c.site.name],
        notes={
            "fraction": fraction,
            "worst_functions": worst,
            "selected_objects": [str(c.site) for c in choices],
        },
    )
    return plan


def attach_prefetch_program(
    plan: MiraPlan, module: Module, entry: str = "main"
) -> dict:
    """Lower the module's affine page streams and inject them into the
    plan (3PO-style programmed prefetching, consumed by
    ``repro.prefetch.programmed.ProgrammedPolicy`` at run time).

    Idempotent: an already-attached program is returned unchanged, so the
    planner and the runner can both call this without re-lowering.
    """
    program = plan.notes.get("prefetch_program")
    if program is None:
        from repro.prefetch.programmed import lower_prefetch_program

        program = lower_prefetch_program(module, entry)
        plan.notes["prefetch_program"] = program
    return program


def _with_callees(module: Module, functions: list[str]) -> list[str]:
    """Selecting a function implicitly selects its callees (section 4.1)."""
    out = list(functions)
    work = list(functions)
    while work:
        name = work.pop()
        fn = module.functions.get(name)
        if fn is None:
            continue
        for op in fn.walk():
            if isinstance(op, func_d.CallOp) and op.callee not in out:
                out.append(op.callee)
                work.append(op.callee)
    return out


def _select_objects(
    module: Module, functions: list[str], obj_fraction: float
) -> list[SiteChoice]:
    """Largest objects accessed in the selected functions, with their
    merged access summaries."""
    alias = AliasAnalysis(module)
    per_site: dict[AllocSite, AccessSummary] = {}
    shared_write: dict[AllocSite, bool] = {}
    for fn_name in functions:
        fn = module.functions.get(fn_name)
        if fn is None:
            continue
        for loop in fn.walk():
            if not isinstance(loop, (scf.ForOp, scf.ParallelOp)):
                continue
            for site, summary in analyze_scope(loop, alias).items():
                if summary.writes:
                    from repro.analysis.scev import Affine

                    partitioned = summary.parallel_scope and all(
                        isinstance(r.scev, Affine)
                        for r in summary.records
                        if r.is_write
                    )
                    if not partitioned and not summary.parallel_scope:
                        # a sequential-scope write is private to the one
                        # thread executing it only if no parallel scope
                        # also writes; stay conservative when any
                        # non-partitioned write exists under threading
                        shared_write.setdefault(site, False)
                    if not partitioned and summary.parallel_scope:
                        shared_write[site] = True
                merged = per_site.get(site)
                if merged is None:
                    per_site[site] = summary
                else:
                    merged.records.extend(summary.records)
                    merged.parallel_scope |= summary.parallel_scope
    if not per_site:
        return []
    # re-classify merged summaries
    from repro.analysis.access import _classify

    for summary in per_site.values():
        _classify(summary, alias)
    # objects below a page are kept in the swap section (not worth a
    # section of their own)
    ranked = sorted(per_site.values(), key=lambda s: s.site.size_bytes, reverse=True)
    ranked = [s for s in ranked if s.site.size_bytes >= 4096]
    if not ranked:
        return []
    if len(ranked) <= 12:
        # small programs: analyze everything at once (the 10%-at-a-time
        # narrowing is for applications with hundreds of allocation sites)
        count = len(ranked)
    else:
        count = max(1, int(len(ranked) * obj_fraction))
        # any object that alone holds >=10% of the accessed footprint is
        # "large" in the paper's sense and joins regardless of the fraction
        total_bytes = sum(s.site.size_bytes for s in ranked) or 1
        while (
            count < len(ranked)
            and ranked[count].site.size_bytes >= 0.1 * total_bytes
        ):
            count += 1
    # always keep index-source arrays of chosen indirect objects: the
    # chained prefetch needs both converted
    chosen = ranked[:count]
    names = {c.site for c in chosen}
    for summary in list(chosen):
        for src in summary.index_sources:
            if src not in names and src in per_site:
                chosen.append(per_site[src])
                names.add(src)
    return [
        SiteChoice(s.site, s, shared_write=shared_write.get(s.site, False))
        for s in chosen
    ]


_PATTERN_CLASS = {
    AccessPattern.SEQUENTIAL: "stream",
    AccessPattern.STRIDED: "stream",
    AccessPattern.INVARIANT: "pinned",
    AccessPattern.INDIRECT: "indirect",
    AccessPattern.RANDOM: "random",
    AccessPattern.MIXED: "random",
}


def _group_by_pattern(choices: list[SiteChoice]) -> dict[str, list[SiteChoice]]:
    """Similar patterns share a section; different patterns get their own
    (multiple objects may land in one section, section 4.1).  Read-only
    and writable objects split so multi-threaded plans can make the
    read-only group thread-private (section 4.6)."""
    groups: dict[str, list[SiteChoice]] = defaultdict(list)
    for choice in choices:
        cls = _PATTERN_CLASS[choice.summary.pattern]
        rw = "ro" if choice.summary.read_only else "rw"
        groups[f"{cls}_{rw}"].append(choice)
    return dict(groups)


def _configure(
    groups: dict[str, list[SiteChoice]],
    cost: CostModel,
    budget: int,
    num_threads: int,
) -> list[SectionPlan]:
    """Initial (pre-ILP) section configs with heuristic sizes."""
    sections: list[SectionPlan] = []
    stream_plans: list[tuple[str, list[SiteChoice], int]] = []
    pinned_plans: list[tuple[str, list[SiteChoice], int]] = []
    other_plans: list[tuple[str, list[SiteChoice], int]] = []
    for cls, members in groups.items():
        line = max(choose_line_size(m.summary, cost) for m in members)
        if cls.startswith("pinned"):
            pinned_plans.append((cls, members, line))
        elif cls.startswith("stream"):
            # coarse range streams (layer loops) get one section per
            # object -- the paper's "separate matrices in different cache
            # sections" -- so independent streams never conflict
            coarse = [m for m in members if m.summary.max_granularity() > line]
            fine = [m for m in members if m.summary.max_granularity() <= line]
            for m in coarse:
                stream_plans.append(
                    (f"{cls}_{m.site.name or m.site.uid}", [m], line)
                )
            if fine:
                stream_plans.append((cls, fine, line))
        else:
            other_plans.append((cls, members, line))
    used = 0
    # pinned sections: small repeatedly-reused objects held entirely
    for cls, members, line in pinned_plans:
        size = sum(_round_up(m.site.size_bytes, line) for m in members)
        size = max(line, min(size, budget // 2))
        cfg = SectionConfig(
            name=f"sec_{cls}",
            size_bytes=size,
            line_size=line,
            structure=Structure.DIRECT,
            notes={"reason": "invariant reuse: pin locally"},
        )
        sections.append(_mk_plan(cfg, members, num_threads, cost))
        used += size
    # streaming sections, two-phase: first the prefetch-pipeline minimum
    # (~2.5 of the stream's range: current + prefetched next + dying
    # previous; a few lines for element streams), then leftover budget in
    # proportion to object footprints, capped at the objects themselves
    # (at full memory a stream section simply holds its whole object)
    mins: list[int] = []
    caps: list[int] = []
    for cls, members, line in stream_plans:
        max_touch = max(
            (m.summary.max_granularity() for m in members), default=line
        )
        obj_bytes = sum(_round_up(m.site.size_bytes, line) for m in members)
        if max_touch > line:
            mins.append(min(int(2.5 * max_touch), obj_bytes))
            caps.append(obj_bytes)
        else:
            # element streams gain nothing beyond the prefetch window;
            # leftover memory belongs to the other sections
            want = min(line * 8 * max(1, len(members)), obj_bytes)
            mins.append(want)
            caps.append(want)
    stream_budget = max(0, (budget if not other_plans else budget // 2) - used)
    total_min = sum(mins)
    scale = min(1.0, stream_budget / total_min) if total_min else 1.0
    desired = [max(1, int(m * scale)) for m in mins]
    leftover = stream_budget - sum(desired)
    if leftover > 0:
        headrooms = [c - d for c, d in zip(caps, desired)]
        total_head = sum(headrooms)
        if total_head > 0:
            grant = min(leftover, total_head)
            desired = [
                d + grant * h // total_head for d, h in zip(desired, headrooms)
            ]
    for (cls, members, line), want in zip(stream_plans, desired):
        size = max(line, want)
        coarse = any(m.summary.max_granularity() > line for m in members)
        cfg = SectionConfig(
            name=f"sec_{cls}",
            size_bytes=size,
            line_size=line,
            # element streams are conflict-free in a directly-mapped
            # section; coarse multi-range streams use low associativity so
            # prefetched lines displace dead lines, never live ones
            structure=Structure.SET_ASSOCIATIVE if coarse else Structure.DIRECT,
            ways=4 if coarse else 8,
        )
        sections.append(_mk_plan(cfg, members, num_threads, cost))
        used += size
    # non-streaming sections: share the remainder in proportion to the
    # object footprints, structure from locality analysis
    remaining = max(0, budget - used)
    total_obj = sum(
        sum(m.site.size_bytes for m in members) for _, members, _ in other_plans
    )
    for cls, members, line in other_plans:
        obj_bytes = sum(m.site.size_bytes for m in members)
        share = remaining if total_obj == 0 else int(remaining * obj_bytes / total_obj)
        share = max(line, min(share, _round_up(obj_bytes, line)))
        rep = max(members, key=lambda m: m.site.size_bytes)
        structure = choose_structure(rep.summary, share, line)
        fetch = None
        acc = rep.summary.accessed_bytes_per_elem()
        if acc < rep.site.elem_type.byte_size and line >= rep.site.elem_type.byte_size:
            # selective transmission: only the accessed fields travel,
            # over two-sided messages (section 4.7)
            elems_per_line = max(1, line // rep.site.elem_type.byte_size)
            fetch = max(1, acc * elems_per_line)
        cfg = SectionConfig(
            name=f"sec_{cls}",
            size_bytes=share,
            line_size=line,
            structure=structure.structure,
            ways=structure.ways,
            one_sided=fetch is None,
            fetch_bytes=fetch,
            notes={"reason": structure.reason},
        )
        sections.append(_mk_plan(cfg, members, num_threads, cost))
    return sections


def _mk_plan(
    cfg: SectionConfig,
    members: list[SiteChoice],
    num_threads: int,
    cost: CostModel | None = None,
) -> SectionPlan:
    per_thread = 0
    if num_threads > 1:
        if any(m.shared_write for m in members):
            # genuinely shared writable data: one conservative shared
            # section (fully associative, hints off, section 4.6)
            from dataclasses import replace

            cfg = replace(
                cfg,
                structure=Structure.FULLY_ASSOCIATIVE,
                shared=True,
                notes={**cfg.notes, "shared": True},
            )
        else:
            # read-only or shared-nothing (affine writes partitioned by
            # the parallel IV): private per-thread sections
            per_thread = num_threads
            cfg.notes["per_thread"] = num_threads
    # initial path for the hybrid system: swap only when *every* member's
    # analyzed pattern prefers it (a single indirect/reused member makes
    # the object path the safe default); plain runs ignore the field
    path = "object"
    if cost is not None and members:
        if all(choose_path(m.summary, cost) == "swap" for m in members):
            path = "swap"
    return SectionPlan(
        cfg, [m.site.name for m in members if m.site.name], per_thread, path
    )


def _round_up(n: int, multiple: int) -> int:
    return ((n + multiple - 1) // multiple) * multiple
