"""Section-size selection via sampling + ILP (paper section 4.3).

For each section we sample a few candidate sizes and profile the section's
cache performance overhead at each.  We then solve an integer linear
program: pick exactly one sampled size per section, minimizing total
overhead, subject to every group of concurrently-live sections fitting the
local-memory budget.

The ILP uses ``scipy.optimize.milp``; a brute-force solver cross-checks it
in tests and serves as a fallback.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

import numpy as np
from scipy.optimize import Bounds, LinearConstraint, milp

from repro.errors import SolverError

#: default sampling ratios of the local-memory budget (paper: "we sample a
#: few section sizes as ratios of total local memory size")
DEFAULT_RATIOS = (0.2, 0.4, 0.6, 0.8)


@dataclass(frozen=True)
class SizeSample:
    """One sampled (size, profiled overhead) point for a section."""

    size_bytes: int
    overhead_ns: float


def solve_sizes(
    curves: dict[str, list[SizeSample]],
    budget_bytes: int,
    live_groups: list[set[str]] | None = None,
) -> dict[str, int]:
    """Pick one sampled size per section minimizing total overhead.

    ``live_groups``: sets of sections alive at the same time; each group's
    chosen sizes must sum within the budget.  Default: all concurrent.
    """
    names = sorted(curves)
    if not names:
        return {}
    for name in names:
        if not curves[name]:
            raise SolverError(f"section {name!r} has no size samples")
    if live_groups is None:
        live_groups = [set(names)]
    try:
        return _solve_milp(curves, names, budget_bytes, live_groups)
    except SolverError:
        return solve_sizes_bruteforce(curves, budget_bytes, live_groups)


def _solve_milp(
    curves: dict[str, list[SizeSample]],
    names: list[str],
    budget_bytes: int,
    live_groups: list[set[str]],
) -> dict[str, int]:
    # variables: x[s][k] in {0,1}, one per (section, sample)
    index: dict[tuple[str, int], int] = {}
    costs: list[float] = []
    for name in names:
        for k, sample in enumerate(curves[name]):
            index[(name, k)] = len(costs)
            costs.append(sample.overhead_ns)
    n = len(costs)
    constraints = []
    # exactly one size per section
    for name in names:
        row = np.zeros(n)
        for k in range(len(curves[name])):
            row[index[(name, k)]] = 1.0
        constraints.append(LinearConstraint(row, 1.0, 1.0))
    # each live group fits the budget
    for group in live_groups:
        row = np.zeros(n)
        for name in group:
            if name not in curves:
                continue
            for k, sample in enumerate(curves[name]):
                row[index[(name, k)]] = float(sample.size_bytes)
        constraints.append(LinearConstraint(row, 0.0, float(budget_bytes)))
    res = milp(
        c=np.array(costs),
        integrality=np.ones(n),
        bounds=Bounds(0, 1),
        constraints=constraints,
    )
    if not res.success or res.x is None:
        raise SolverError(f"size ILP infeasible: {res.message}")
    out: dict[str, int] = {}
    for (name, k), i in index.items():
        if res.x[i] > 0.5:
            out[name] = curves[name][k].size_bytes
    return out


def solve_sizes_bruteforce(
    curves: dict[str, list[SizeSample]],
    budget_bytes: int,
    live_groups: list[set[str]] | None = None,
) -> dict[str, int]:
    """Exhaustive reference solver (exponential; for tests/small inputs)."""
    names = sorted(curves)
    if not names:
        return {}
    if live_groups is None:
        live_groups = [set(names)]
    combos = 1
    for name in names:
        combos *= len(curves[name])
    if combos > 2_000_000:
        raise SolverError(f"brute-force space too large ({combos} combos)")
    best_choice = None
    best_cost = float("inf")
    for picks in itertools.product(*(range(len(curves[n])) for n in names)):
        choice = {n: curves[n][k] for n, k in zip(names, picks)}
        feasible = all(
            sum(choice[n].size_bytes for n in g if n in choice) <= budget_bytes
            for g in live_groups
        )
        if not feasible:
            continue
        total = sum(s.overhead_ns for s in choice.values())
        if total < best_cost:
            best_cost = total
            best_choice = {n: s.size_bytes for n, s in choice.items()}
    if best_choice is None:
        raise SolverError(
            f"no feasible size assignment within {budget_bytes} bytes"
        )
    return best_choice


def candidate_sizes(
    budget_bytes: int,
    line_size: int,
    streaming: bool,
    object_bytes: int,
    ratios: tuple[float, ...] = DEFAULT_RATIOS,
) -> list[int]:
    """Candidate sizes to sample for one section.

    Streaming (sequential/strided) sections only need enough lines to hold
    the prefetch window, so we sample a few small multiples of the line
    size; other sections sample ratios of the budget (capped at the object
    footprint -- more cache than data is wasted).
    """
    if streaming:
        sizes = [line_size * k for k in (4, 16, 64)]
    else:
        sizes = [max(line_size, int(budget_bytes * r)) for r in ratios]
    cap = max(line_size, _round_up(object_bytes, line_size))
    sizes = sorted({min(max(s, line_size), cap) for s in sizes})
    return sizes


def _round_up(n: int, multiple: int) -> int:
    return ((n + multiple - 1) // multiple) * multiple
