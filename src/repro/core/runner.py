"""Executing compiled programs on Mira's runtime or on a baseline.

``run_plan`` materializes the plan embedded by the pipeline: it opens the
planned sections on a fresh cache manager, registers object->section
assignments (applied when the program's allocations execute), and runs the
interpreter.
"""

from __future__ import annotations

from typing import Callable

from repro.cache.interface import MemorySystem
from repro.cache.manager import CacheManager
from repro.core.plan import MiraPlan
from repro.ir.core import Module
from repro.memsim.cost_model import CostModel
from repro.runtime.interpreter import DataInit, Interpreter, RunResult


def run_plan(
    compiled: Module,
    cost: CostModel,
    local_mem_bytes: int,
    data_init: DataInit | None = None,
    entry: str = "main",
    num_threads: int = 1,
    tracer=None,
    faults=None,
    prefetch_policy=None,
    hybrid: bool = False,
    telemetry=None,
) -> RunResult:
    """Run a pipeline-compiled module on the Mira runtime.

    ``tracer`` (a :class:`repro.obs.Tracer`) records every cache, network,
    and runtime event of the run; None (the default) disables tracing.
    ``faults`` (a :class:`repro.faults.FaultPlan`) injects seeded network
    and far-node faults; None (the default) runs a healthy machine.
    ``prefetch_policy`` (a :class:`repro.prefetch.PrefetchPolicy` or
    name) drives swap-path prefetching; None keeps demand paging.
    ``hybrid`` materializes the plan on a
    :class:`repro.cache.hybrid.HybridManager` instead: each section plan
    becomes a path group starting on the plan's chosen path
    (``SectionPlan.path``), and the manager may switch groups between the
    swap and object paths online.
    ``telemetry`` (a :class:`repro.obs.TelemetryCollector`) attaches the
    windowed series collector and finishes it when the run returns; None
    (the default) disables telemetry at zero cost.
    """
    from repro.memsim.resources import SerialResource

    fault_lock = SerialResource("swap-lock") if num_threads > 1 else None
    if hybrid:
        from repro.cache.hybrid import HybridManager

        manager = HybridManager(
            cost, local_mem_bytes, fault_lock=fault_lock, policy=prefetch_policy
        )
    else:
        manager = CacheManager(
            cost, local_mem_bytes, fault_lock=fault_lock, policy=prefetch_policy
        )
    if tracer is not None:
        # attach before sections open so sec.open events are captured
        manager.set_tracer(tracer)
    if faults is not None:
        manager.enable_faults(faults)
    plan: MiraPlan = compiled.attrs.get("plan", MiraPlan.swap_only())
    if manager.policy is not None:
        if getattr(manager.policy, "wants_program", False):
            # plan-time injection: the programmed policy reads its page
            # program from the plan notes (lowered here if the planner
            # did not already attach one)
            from repro.core.section_planner import attach_prefetch_program

            attach_prefetch_program(plan, compiled, entry)
        manager.policy.prepare(compiled, plan=plan, entry=entry)
    for sp in plan.sections:
        if hybrid:
            manager.plan_group(
                sp.config,
                list(sp.object_names),
                per_thread=sp.per_thread,
                path=getattr(sp, "path", "object"),
            )
        else:
            manager.open_section(sp.config, [], per_thread=sp.per_thread)
            for name in sp.object_names:
                manager.pending_assignment[name] = sp.config.name
    if telemetry is not None:
        telemetry.attach(manager)
    interp = Interpreter(compiled, manager, data_init)
    result = interp.run(entry)
    if telemetry is not None:
        telemetry.finish()
    return result


def run_on_baseline(
    module: Module,
    system: MemorySystem,
    data_init: DataInit | None = None,
    entry: str = "main",
    tracer=None,
    faults=None,
    telemetry=None,
) -> RunResult:
    """Run an (uncompiled) module on any memory system."""
    if tracer is not None:
        system.set_tracer(tracer)
    if faults is not None:
        system.enable_faults(faults)
    policy = getattr(system, "policy", None)
    if policy is not None:
        policy.prepare(module, entry=entry)
    if telemetry is not None:
        telemetry.attach(system)
    interp = Interpreter(module, system, data_init)
    result = interp.run(entry)
    if telemetry is not None:
        telemetry.finish()
    return result
