"""The compile pipeline: plan -> compiled module (sections 4.4-4.5).

Pass order matters: conversion first (later passes only optimize remote
accesses), fusion before prefetch insertion (so fused loops get one
batched prefetch), elision last (it requires prefetch marks).
"""

from __future__ import annotations

from dataclasses import replace

from repro.core.plan import MiraPlan
from repro.ir.core import Module
from repro.ir.dialects import memref, remotable
from repro.memsim.cost_model import CostModel
from repro.transforms import (
    apply_offload,
    apply_readwrite_optimization,
    combine_prefetches,
    convert_to_remote,
    elide_dereferences,
    fuse_adjacent_loops,
    insert_eviction_hints,
    insert_prefetches,
    instrument_profiling,
)

ALL_OPTIONS = frozenset(
    {"convert", "batching", "prefetch", "evict", "readwrite", "native", "offload"}
)


def compile_program(
    module: Module,
    plan: MiraPlan,
    cost: CostModel,
    instrument: bool = False,
) -> Module:
    """Clone and compile ``module`` according to ``plan``."""
    m = module.clone()
    opts = plan.options
    if "convert" in opts and plan.converted_sites:
        convert_to_remote(m, plan.converted_sites)
    if "batching" in opts:
        fuse_adjacent_loops(m)
    if "evict" in opts:
        # hints first: the prefetch pass then lands between a range's
        # death hint and the next range's access
        insert_eviction_hints(m)
    if "prefetch" in opts:
        insert_prefetches(m, cost)
    if "batching" in opts:
        combine_prefetches(m)
    rw_flags: dict[str, dict] = {}
    if "readwrite" in opts:
        rw_flags = apply_readwrite_optimization(m)
    elided: list[str] = []
    if "native" in opts:
        elided = elide_dereferences(m)
    if "offload" in opts and plan.offload_functions:
        apply_offload(m, cost, functions=plan.offload_functions)
    instrument_profiling(m, instrument)
    _finalize_section_configs(plan, rw_flags, elided)
    m.attrs["section_configs"] = {
        sp.config.name: sp.config for sp in plan.sections
    }
    m.attrs["plan"] = plan
    return m


def _finalize_section_configs(
    plan: MiraPlan, rw_flags: dict[str, dict], elided: list[str]
) -> None:
    """Copy per-site pass discoveries into the section configs."""
    elided_set = set(elided)
    for i, sp in enumerate(plan.sections):
        cfg = sp.config
        if any(name in elided_set for name in sp.object_names):
            cfg = replace(cfg, metadata_free=True)
        if any(
            rw_flags.get(name, {}).get("write_no_fetch") for name in sp.object_names
        ):
            cfg = replace(cfg, write_no_fetch=True)
        sp.config = cfg


def footprint_bytes(module: Module) -> int:
    """Total bytes the program allocates (static alloc sites)."""
    total = 0
    for op in module.walk():
        if isinstance(op, (memref.AllocOp, remotable.RAllocOp)):
            total += op.num_elems * op.result.type.elem.byte_size
    return total
