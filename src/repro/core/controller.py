"""The iterative optimization controller (paper Fig. 1, section 3).

Each round:

1. run the current compilation (initially: everything in the generic swap
   section) with profiling instrumentation;
2. pick the top ``10% * iteration`` functions by cache performance
   overhead and the largest ``10% * iteration`` objects they access
   (section 4.1);
3. analyze those scopes, plan cache sections, optionally refine section
   sizes by sampling + ILP (section 4.3);
4. compile with the full pass pipeline and re-run;
5. keep the new configuration if it improved, otherwise roll back to the
   previous best (section 4.1: "we roll back to the previous iteration's
   configuration").
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable

from repro.core.pipeline import compile_program, footprint_bytes
from repro.core.plan import MiraPlan, SectionPlan
from repro.core.runner import run_plan
from repro.core.section_planner import SWAP_RESERVE, plan_sections
from repro.core.size_solver import SizeSample, candidate_sizes, solve_sizes
from repro.cache.config import Structure
from repro.errors import ConfigError, SolverError
from repro.ir.core import Module
from repro.ir.dialects import memref, remotable
from repro.ir.verifier import verify
from repro.memsim.cost_model import CostModel
from repro.runtime.interpreter import DataInit, RunResult


@dataclass
class IterationRecord:
    iteration: int
    fraction: float
    plan: MiraPlan
    elapsed_ns: float
    accepted: bool


@dataclass
class CompiledProgram:
    """The controller's final output."""

    module: Module
    plan: MiraPlan
    history: list[IterationRecord]
    swap_baseline_ns: float
    best_ns: float
    #: scope-reduction stats for the section 6.1 numbers
    functions_total: int = 0
    functions_analyzed: int = 0
    alloc_sites_total: int = 0
    alloc_sites_selected: int = 0

    @property
    def speedup_over_swap(self) -> float:
        return self.swap_baseline_ns / self.best_ns if self.best_ns else 0.0


class MiraController:
    """Drives profile -> analyze -> configure -> compile -> evaluate."""

    def __init__(
        self,
        build_module: Callable[[], Module],
        cost: CostModel,
        local_mem_bytes: int,
        data_init: DataInit | None = None,
        entry: str = "main",
        max_iterations: int = 3,
        sample_sizes: bool = False,
        num_threads: int = 1,
        min_gain: float = 0.02,
        tracer=None,
        faults=None,
    ) -> None:
        self.build_module = build_module
        self.cost = cost
        self.local_mem_bytes = local_mem_bytes
        self.data_init = data_init
        self.entry = entry
        self.max_iterations = max_iterations
        self.sample_sizes = sample_sizes
        self.num_threads = num_threads
        self.min_gain = min_gain
        #: optional :class:`repro.obs.Tracer`; traces every internal run
        #: and records one ``ctrl.iter`` event per optimization round
        self.tracer = tracer
        #: optional :class:`repro.faults.FaultPlan` applied to every
        #: internal run (each gets a fresh injector seeded from the plan,
        #: so iterations are mutually deterministic)
        self.faults = faults

    # -- main loop -----------------------------------------------------------

    def optimize(self) -> CompiledProgram:
        source = self.build_module()
        verify(source)
        history: list[IterationRecord] = []
        # iteration 0: generic swap, instrumented
        swap_plan = MiraPlan.swap_only()
        compiled = compile_program(source, swap_plan, self.cost, instrument=True)
        result = self._run(compiled)
        measured = self._measured_ns(result)
        history.append(IterationRecord(0, 0.0, swap_plan, measured, True))
        self._trace_iter(0, measured, True)
        best_module, best_plan = compiled, swap_plan
        best_ns = measured
        swap_ns = measured
        profiler = result.profiler
        analyzed: set[str] = set()
        selected_sites: set[str] = set()

        for k in range(1, self.max_iterations + 1):
            fraction = min(1.0, 0.1 * k)
            plan = plan_sections(
                source,
                self.cost,
                self.local_mem_bytes,
                profiler,
                fraction=fraction,
                num_threads=self.num_threads,
            )
            if not plan.sections:
                break
            if self.sample_sizes:
                plan = self._refine_sizes(source, plan)
            try:
                candidate = compile_program(source, plan, self.cost, instrument=True)
                result = self._run(candidate)
            except ConfigError:
                history.append(IterationRecord(k, fraction, plan, float("inf"), False))
                self._trace_iter(k, float("inf"), False)
                continue
            measured = self._measured_ns(result)
            accepted = measured < best_ns
            history.append(IterationRecord(k, fraction, plan, measured, accepted))
            self._trace_iter(k, measured, accepted)
            analyzed.update(plan.notes.get("worst_functions", []))
            selected_sites.update(plan.converted_sites)
            if accepted:
                gain = (best_ns - measured) / best_ns
                best_module, best_plan, best_ns = candidate, plan, measured
                profiler = result.profiler
                if gain < self.min_gain:
                    break
            # on rejection: roll back (best_* unchanged) but keep widening
            # the analysis fraction next round, as the paper does

        final = compile_program(source, best_plan, self.cost, instrument=False)
        return CompiledProgram(
            module=final,
            plan=best_plan,
            history=history,
            swap_baseline_ns=swap_ns,
            best_ns=best_ns,
            functions_total=len(source.functions),
            functions_analyzed=len(analyzed),
            alloc_sites_total=self._count_sites(source),
            alloc_sites_selected=len(selected_sites),
        )

    # -- helpers --------------------------------------------------------------

    def _run(self, compiled: Module) -> RunResult:
        return run_plan(
            compiled,
            self.cost,
            self.local_mem_bytes,
            data_init=self.data_init,
            entry=self.entry,
            num_threads=self.num_threads,
            tracer=self.tracer,
            faults=self.faults,
        )

    def _trace_iter(self, k: int, measured: float, accepted: bool) -> None:
        tr = self.tracer
        if tr is not None:
            tr.emit("ctrl.iter", measured, it=k, measured=measured, accepted=accepted)

    @staticmethod
    def _measured_ns(result: RunResult) -> float:
        """Steady-state time when the workload marks a ``measured``
        region (warm-up excluded), else the whole run."""
        return result.profiler.regions.get("measured", result.elapsed_ns)

    @staticmethod
    def _count_sites(module: Module) -> int:
        return sum(
            1
            for op in module.walk()
            if isinstance(op, (memref.AllocOp, remotable.RAllocOp))
        )

    def _refine_sizes(self, source: Module, plan: MiraPlan) -> MiraPlan:
        """Sample per-section sizes and solve the ILP (section 4.3)."""
        budget = int(self.local_mem_bytes * (1.0 - SWAP_RESERVE))
        curves: dict[str, list[SizeSample]] = {}
        obj_sizes = self._object_sizes(source)
        for sp in plan.sections:
            streaming = sp.config.structure is Structure.DIRECT
            obj_bytes = sum(obj_sizes.get(n, 0) for n in sp.object_names)
            sizes = candidate_sizes(
                budget, sp.config.line_size, streaming, obj_bytes or budget
            )
            samples: list[SizeSample] = []
            for size in sizes:
                overhead = self._sample_overhead(source, plan, sp, size, budget)
                if overhead is not None:
                    samples.append(SizeSample(size, overhead))
            if samples:
                curves[sp.config.name] = samples
        if not curves:
            return plan
        try:
            chosen = solve_sizes(curves, budget)
        except SolverError:
            return plan
        new_sections = [
            sp.with_size(chosen[sp.config.name]) if sp.config.name in chosen else sp
            for sp in plan.sections
        ]
        return replace(plan, sections=new_sections, notes={**plan.notes, "ilp": chosen})

    def _sample_overhead(
        self,
        source: Module,
        plan: MiraPlan,
        target: SectionPlan,
        size: int,
        budget: int,
    ) -> float | None:
        """Run once with ``target`` at ``size`` (other sections minimal)
        and return the target section's profiled overhead."""
        sections = []
        for sp in plan.sections:
            if sp is target:
                sections.append(sp.with_size(size))
            else:
                sections.append(sp.with_size(sp.config.line_size * 8))
        if sum(s.config.size_bytes for s in sections) > budget:
            return None
        trial_plan = replace(plan, sections=sections)
        try:
            compiled = compile_program(source, trial_plan, self.cost)
            result = self._run(compiled)
        except ConfigError:
            return None
        stats = getattr(result.memsys, "collect_section_stats", lambda: {})()
        entry = stats.get(target.config.name)
        if entry is None:
            # per-thread clones: sum them
            total = 0.0
            for name, st in stats.items():
                if name.startswith(target.config.name + "@t"):
                    total += st["overhead_ns"] + st["miss_wait_ns"]
            return total or None
        return entry["overhead_ns"] + entry["miss_wait_ns"]

    @staticmethod
    def _object_sizes(module: Module) -> dict[str, int]:
        out: dict[str, int] = {}
        for op in module.walk():
            if isinstance(op, (memref.AllocOp, remotable.RAllocOp)):
                if op.alloc_name:
                    out[op.alloc_name] = (
                        op.num_elems * op.result.type.elem.byte_size
                    )
        return out
