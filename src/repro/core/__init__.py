"""Mira's controller: the paper's primary contribution, assembled.

* :mod:`repro.core.plan` -- the compilation/configuration plan;
* :mod:`repro.core.section_planner` -- profiling + analysis -> sections
  (sections 4.1, 4.2);
* :mod:`repro.core.size_solver` -- sampled overhead curves + ILP -> section
  sizes (section 4.3);
* :mod:`repro.core.pipeline` -- the pass pipeline producing compiled code
  (sections 4.4, 4.5);
* :mod:`repro.core.controller` -- the iterative profile -> analyze ->
  configure -> compile loop of Fig. 1, with rollback;
* :mod:`repro.core.runner` -- executes compiled programs on the Mira
  runtime (cache manager) or on any baseline.
"""

from repro.core.adaptive import AdaptiveRunner
from repro.core.controller import CompiledProgram, MiraController
from repro.core.pipeline import ALL_OPTIONS, compile_program
from repro.core.plan import MiraPlan, SectionPlan
from repro.core.runner import run_on_baseline, run_plan
from repro.core.section_planner import plan_sections
from repro.core.size_solver import SizeSample, solve_sizes

__all__ = [
    "AdaptiveRunner",
    "CompiledProgram",
    "MiraController",
    "ALL_OPTIONS",
    "compile_program",
    "MiraPlan",
    "SectionPlan",
    "run_on_baseline",
    "run_plan",
    "plan_sections",
    "SizeSample",
    "solve_sizes",
]
