"""Reproduction of *Mira: A Program-Behavior-Guided Far Memory System*
(Guo, He, Zhang -- SOSP 2023).

Quickstart::

    from repro import CostModel, MiraController, run_on_baseline
    from repro.baselines import NativeMemory, FastSwap
    from repro.workloads import make_graph_workload

    cost = CostModel()
    wl = make_graph_workload()
    local = wl.footprint_bytes() // 4           # 25% local memory

    native = run_on_baseline(wl.build_module(),
                             NativeMemory(cost, 2 * wl.footprint_bytes()),
                             wl.data_init)
    swap = run_on_baseline(wl.build_module(), FastSwap(cost, local),
                           wl.data_init)
    mira = MiraController(wl.build_module, cost, local,
                          data_init=wl.data_init).optimize()
    print("FastSwap:", native.elapsed_ns / swap.elapsed_ns)
    print("Mira:    ", native.elapsed_ns / mira.best_ns)

See DESIGN.md for the architecture and EXPERIMENTS.md for figure-by-figure
reproduction results.
"""

from repro.baselines import AIFM, FastSwap, Leap, NativeMemory
from repro.cache import CacheManager, SectionConfig, Structure
from repro.core import (
    CompiledProgram,
    MiraController,
    MiraPlan,
    SectionPlan,
    compile_program,
    run_on_baseline,
    run_plan,
)
from repro.errors import MiraError
from repro.memsim import CostModel, VirtualClock
from repro.runtime import Interpreter, RunResult

__version__ = "1.0.0"

__all__ = [
    "AIFM",
    "FastSwap",
    "Leap",
    "NativeMemory",
    "CacheManager",
    "SectionConfig",
    "Structure",
    "CompiledProgram",
    "MiraController",
    "MiraPlan",
    "SectionPlan",
    "compile_program",
    "run_on_baseline",
    "run_plan",
    "MiraError",
    "CostModel",
    "VirtualClock",
    "Interpreter",
    "RunResult",
    "__version__",
]
