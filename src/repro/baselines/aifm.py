"""AIFM baseline (Ruan et al., OSDI'20).

AIFM is a far-memory *programming model*: the programmer (or a library)
wraps data in remotable pointers; the runtime swaps whole remotable
objects and intercepts every dereference.  The paper's comparisons exercise
three AIFM characteristics (sections 2.1, 6.1):

* **per-dereference overhead** -- every access of a remotable pointer runs
  the library hot path (dereference-scope bookkeeping), even when the
  object is local; this is why AIFM trails the others at 100% local memory
  (Fig. 16, 18, 19);
* **per-object metadata** -- each remotable object carries a header; for
  fine-grained objects (AIFM's array library over 8-byte elements in MCF)
  the metadata rivals the data and starves the cache, to the point where
  AIFM cannot run below full memory (Fig. 18, 20);
* **whole-object fetches** -- a dereference moves the entire remotable
  object even if one field is needed (motivates Mira's selective
  transmission, section 4.5).

The remotable-object granularity is per allocation: workloads set
``attrs["aifm_obj_bytes"]`` to the granularity the AIFM port of that
application would use (array library: per element; DataFrame: per vector
chunk).  Default is one element.
"""

from __future__ import annotations

from collections import OrderedDict

from repro.cache.interface import MemorySystem
from repro.cache.stats import SectionStats
from repro.errors import AllocationError
from repro.memsim.address import ObjectInfo


class AIFM(MemorySystem):
    """Object-granularity remotable-pointer runtime."""

    name = "aifm"

    def __init__(self, cost, local_mem_bytes, clock=None) -> None:
        super().__init__(cost, local_mem_bytes, clock)
        #: resident remotable objects, LRU order: (obj_id, chunk) -> dirty
        self._resident: OrderedDict[tuple[int, int], bool] = OrderedDict()
        self._resident_bytes = 0
        self._metadata_bytes = 0
        self._chunk_bytes: dict[int, int] = {}
        self.swap_stats = SectionStats()
        self.failed: bool = False
        #: obj_id -> (ObjectInfo, chunk_bytes, ObjectStats); ids are never
        #: reused, so entries stay valid (per-dereference path)
        self._obj_cache: dict[int, tuple] = {}
        self._deref_ns = cost.aifm_deref_ns
        self._miss_extra_ns = cost.aifm_miss_extra_ns

    # -- allocation: metadata is charged up front ----------------------------

    def _on_allocate(self, obj: ObjectInfo) -> None:
        granularity = int(obj.attrs.get("aifm_obj_bytes", obj.elem_size))
        granularity = max(1, min(granularity, obj.size))
        self._chunk_bytes[obj.obj_id] = granularity
        num_chunks = (obj.size + granularity - 1) // granularity
        self._metadata_bytes += num_chunks * self.cost.aifm_object_metadata_bytes
        if self._metadata_bytes >= self.local_mem_bytes:
            # AIFM cannot even hold its remotable-pointer metadata; the
            # paper observes exactly this for MCF below full memory
            self.failed = True
            raise AllocationError(
                f"AIFM metadata ({self._metadata_bytes} B) exceeds local "
                f"memory ({self.local_mem_bytes} B)"
            )

    def _on_free(self, obj: ObjectInfo) -> None:
        doomed = [k for k in self._resident if k[0] == obj.obj_id]
        chunk = self._chunk_bytes[obj.obj_id]
        for key in doomed:
            del self._resident[key]
            self._resident_bytes -= chunk

    # -- data path ----------------------------------------------------------

    def access(
        self,
        obj_id: int,
        offset: int,
        size: int,
        is_write: bool,
        native: bool = False,
    ) -> None:
        rec = self._rec_access
        if rec is not None:
            rec(self.clock.now, obj=obj_id, off=offset, size=size, w=is_write)
        entry = self._obj_cache.get(obj_id)
        if entry is None:
            entry = (
                self.address_space.get(obj_id),
                self._chunk_bytes[obj_id],
                self.stats.object(obj_id),
            )
            self._obj_cache[obj_id] = entry
        obj, chunk_size, ostats = entry
        first = offset // chunk_size
        last = (offset + max(size, 1) - 1) // chunk_size
        for chunk in range(first, last + 1):
            ostats.accesses += 1
            self._deref(obj, chunk, chunk_size, is_write, ostats)

    def _deref(self, obj, chunk: int, chunk_size: int, is_write: bool, ostats):
        stats = self.swap_stats
        stats.accesses += 1
        # hot path: every dereference pays the library overhead
        deref_ns = self._deref_ns
        self.clock.advance(deref_ns, "aifm_deref")
        stats.overhead_ns += deref_ns
        key = (obj.obj_id, chunk)
        resident = self._resident
        if key in resident:
            resident.move_to_end(key)
            if is_write:
                resident[key] = True
            stats.hits += 1
            tr = self.tracer
            if tr is not None:
                tr.emit(
                    "cache.hit",
                    self.clock.now,
                    sec="aifm",
                    obj=obj.obj_id,
                    line=chunk,
                    ov=deref_ns,
                )
            return
        # miss: evict until the whole object fits, then fetch it entirely
        stats.misses += 1
        ostats.misses += 1
        budget = self.local_bytes_available()
        if budget < chunk_size:
            self.failed = True
            raise AllocationError(
                f"AIFM cannot fit a {chunk_size}-byte remotable object in "
                f"{budget} bytes of post-metadata local memory"
            )
        while self._resident_bytes + chunk_size > budget:
            self._evict_one()
        wait = self.network.read(chunk_size, one_sided=True)
        miss_extra = self._miss_extra_ns
        self.clock.advance(miss_extra, "aifm_miss")
        stats.miss_wait_ns += wait + miss_extra
        tel = self.telemetry
        if tel is not None:
            tel.observe_miss_wait(wait + miss_extra)
        resident[key] = is_write
        self._resident_bytes += chunk_size
        tr = self.tracer
        if tr is not None:
            tr.emit(
                "cache.miss",
                self.clock.now,
                sec="aifm",
                obj=obj.obj_id,
                line=chunk,
                wait=wait + miss_extra,
                write=is_write,
                ov=self._deref_ns,
            )

    def _evict_one(self) -> None:
        key, dirty = self._resident.popitem(last=False)
        chunk_size = self._chunk_bytes[key[0]]
        self._resident_bytes -= chunk_size
        self.swap_stats.evictions += 1
        # eviction handler runs for every evicted object
        self.clock.advance(self.cost.evict_overhead_ns, "eviction")
        tr = self.tracer
        if tr is not None:
            tr.emit(
                "cache.evict",
                self.clock.now,
                sec="aifm",
                obj=key[0],
                line=key[1],
                dirty=dirty,
                hinted=False,
                ov=self.cost.evict_overhead_ns,
            )
        if dirty:
            self.network.write_async(chunk_size, one_sided=True)
            self.swap_stats.writebacks += 1

    # -- reporting -----------------------------------------------------------

    def metadata_bytes(self) -> int:
        return self._metadata_bytes

    def collect_section_stats(self) -> dict[str, dict]:
        """Per-section stats in the CacheManager shape (one pseudo-section
        for the remotable-object pool), so metrics collection and the
        windowed telemetry collector treat AIFM uniformly."""
        return {"aifm": vars(self.swap_stats).copy()}
