"""Comparison systems from the paper's evaluation (section 6).

* :class:`NativeMemory` -- all data local; defines the normalization
  baseline for every figure.
* :class:`FastSwap` -- kernel swap over RDMA with an optimized datapath.
* :class:`Leap` -- kernel swap plus majority-trend prefetching.
* :class:`AIFM` -- library runtime with remotable pointers, per-object
  metadata, and per-dereference overhead.
* :class:`HybridManager` -- re-exported from :mod:`repro.cache.hybrid`:
  the per-section-group swap/object path switcher ("A Tale of Two
  Paths").  Not a paper baseline, but it competes in the same sweeps
  (``run_plan(..., hybrid=True)``, trace system ``"hybrid"``).
"""

from repro.baselines.aifm import AIFM
from repro.baselines.fastswap import FastSwap
from repro.baselines.leap import Leap
from repro.baselines.native import NativeMemory
from repro.cache.hybrid import HybridManager

__all__ = ["NativeMemory", "FastSwap", "Leap", "AIFM", "HybridManager"]
