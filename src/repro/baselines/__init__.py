"""Comparison systems from the paper's evaluation (section 6).

* :class:`NativeMemory` -- all data local; defines the normalization
  baseline for every figure.
* :class:`FastSwap` -- kernel swap over RDMA with an optimized datapath.
* :class:`Leap` -- kernel swap plus majority-trend prefetching.
* :class:`AIFM` -- library runtime with remotable pointers, per-object
  metadata, and per-dereference overhead.
"""

from repro.baselines.aifm import AIFM
from repro.baselines.fastswap import FastSwap
from repro.baselines.leap import Leap
from repro.baselines.native import NativeMemory

__all__ = ["NativeMemory", "FastSwap", "Leap", "AIFM"]
