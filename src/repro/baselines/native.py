"""Native execution: all memory local, no far-memory machinery.

Every experiment reports performance normalized to this system's virtual
time on the same program ("normalized over native execution on full local
memory", paper section 4).
"""

from __future__ import annotations

from repro.cache.interface import MemorySystem


class NativeMemory(MemorySystem):
    """All-local memory; accesses cost nothing beyond the interpreter's
    uniform CPU/DRAM charges."""

    name = "native"

    def access(
        self,
        obj_id: int,
        offset: int,
        size: int,
        is_write: bool,
        native: bool = False,
    ) -> None:
        # data is local: the interpreter's DRAM charge covers it
        return None
