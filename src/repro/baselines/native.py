"""Native execution: all memory local, no far-memory machinery.

Every experiment reports performance normalized to this system's virtual
time on the same program ("normalized over native execution on full local
memory", paper section 4).
"""

from __future__ import annotations

from repro.cache.interface import MemorySystem


class NativeMemory(MemorySystem):
    """All-local memory; accesses cost nothing beyond the interpreter's
    uniform CPU/DRAM charges."""

    name = "native"

    def access(
        self,
        obj_id: int,
        offset: int,
        size: int,
        is_write: bool,
        native: bool = False,
    ) -> None:
        rec = self._rec_access
        if rec is not None:
            rec(self.clock.now, obj=obj_id, off=offset, size=size, w=is_write)
        # data is local: the interpreter's DRAM charge covers it
        return None

    # -- bulk path (codegen engine): access() is a no-op, so a strided
    # batch is exactly the interpreter-side charges, aggregated.  Exact
    # because the constants are integer-valued floats (n * c == c added
    # n times); non-integer cost models fall back to per-element.  With
    # the op log on, the per-element path must run so every access is
    # recorded (same rule as the swap/section bulk paths).

    def _bulk(self, count: int, dram_ns: float, cpu_ns: float) -> bool:
        if count <= 0:
            return True
        if self._rec_access is not None:
            return False
        if not (float(dram_ns).is_integer() and float(cpu_ns).is_integer()):
            return False
        self.clock.advance(count * dram_ns, "dram")
        self.clock.charge(count * cpu_ns)
        return True

    def bulk_load(
        self, obj_id, offset0, stride, size, count, native, dram_ns, cpu_ns
    ) -> bool:
        return self._bulk(count, dram_ns, cpu_ns)

    def bulk_store(
        self, obj_id, offset0, stride, size, count, native, dram_ns, cpu_ns
    ) -> bool:
        return self._bulk(count, dram_ns, cpu_ns)
