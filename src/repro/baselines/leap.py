"""Leap baseline (Al Maruf & Chowdhury, ATC'20).

Leap augments the Linux swap path with *majority-trend* prefetching: it
keeps a window of recent page accesses, finds the majority stride with a
Boyer-Moore vote (growing the detection window until a majority emerges),
and prefetches along that stride with a prefetch window that expands on
useful prefetches and shrinks on useless ones.

Two properties the paper leans on (sections 4.5, 6.1):

* Leap captures the process's *global majority* pattern, so an interleaved
  pattern (sequential edges + random nodes) defeats it -- the random
  accesses dilute the majority, or the sequential majority prefetches
  pages the random accesses never use.
* Leap's fault datapath is less optimized than FastSwap's, so it loses to
  FastSwap when its prefetches do not help.

Since PR 7 the prefetcher itself is a pluggable policy
(:mod:`repro.prefetch`); ``Leap`` is the FastSwap chassis plus Leap's
fault path plus whichever policy ``$REPRO_PREFETCH`` selects (default:
the classic majority-trend detector, re-exported below for
compatibility).
"""

from __future__ import annotations

import os

from repro.baselines.fastswap import FastSwap
from repro.prefetch.majority import (  # noqa: F401  (compat re-exports)
    DETECT_WINDOWS,
    HISTORY_LEN,
    MAX_PREFETCH,
    MIN_PREFETCH,
    MajorityTrendPrefetcher,
    _boyer_moore,
)
from repro.prefetch.policy import POLICY_ENV


class Leap(FastSwap):
    """FastSwap's structure with Leap's fault path and a prefetch policy."""

    name = "leap"

    def __init__(
        self, cost, local_mem_bytes, clock=None, num_threads=1, policy=None
    ) -> None:
        if policy is None:
            policy = os.environ.get(POLICY_ENV, "leap")
        super().__init__(cost, local_mem_bytes, clock, num_threads, policy=policy)
        #: compat alias for the embedded-prefetcher era (None unless the
        #: active policy is the classic majority-trend one)
        self.prefetcher = getattr(self.policy, "prefetcher", None)

    def _extra_fault_ns(self) -> float:
        return self.cost.leap_extra_fault_ns
