"""Leap baseline (Al Maruf & Chowdhury, ATC'20).

Leap augments the Linux swap path with *majority-trend* prefetching: it
keeps a window of recent page accesses, finds the majority stride with a
Boyer-Moore vote (growing the detection window until a majority emerges),
and prefetches along that stride with a prefetch window that expands on
useful prefetches and shrinks on useless ones.

Two properties the paper leans on (sections 4.5, 6.1):

* Leap captures the process's *global majority* pattern, so an interleaved
  pattern (sequential edges + random nodes) defeats it -- the random
  accesses dilute the majority, or the sequential majority prefetches
  pages the random accesses never use.
* Leap's fault datapath is less optimized than FastSwap's, so it loses to
  FastSwap when its prefetches do not help.
"""

from __future__ import annotations

from collections import deque

from repro.baselines.fastswap import FastSwap
from repro.memsim.address import PAGE_SIZE

#: page-access history length
HISTORY_LEN = 32
#: Boyer-Moore detection windows tried smallest-first (Leap grows the
#: window until a majority appears)
DETECT_WINDOWS = (8, 16, 32)
#: prefetch window bounds
MIN_PREFETCH = 1
MAX_PREFETCH = 32


class MajorityTrendPrefetcher:
    """Boyer-Moore majority-stride detector with an adaptive window."""

    def __init__(self) -> None:
        self._history: deque[int] = deque(maxlen=HISTORY_LEN)
        #: inter-access strides, maintained incrementally alongside the
        #: history (always == pairwise deltas of ``_history``); rebuilding
        #: both lists per fault dominated Leap's wall-clock cost
        self._deltas: deque[int] = deque(maxlen=HISTORY_LEN - 1)
        self._window = MIN_PREFETCH
        self._outstanding: set[int] = set()
        self._useful = 0
        self._issued = 0
        self._last_page: int | None = None

    def record(self, page: int) -> None:
        # Leap observes the fault/access stream at page granularity:
        # repeated accesses within one page are a single history event
        if page == self._last_page:
            return
        history = self._history
        if history:
            self._deltas.append(page - history[-1])
        self._last_page = page
        history.append(page)
        if page in self._outstanding:
            self._outstanding.discard(page)
            self._useful += 1

    def majority_stride(self) -> int | None:
        """The majority inter-access page stride, or None."""
        if not self._deltas:
            return None
        deltas = list(self._deltas)
        for w in DETECT_WINDOWS:
            window = deltas[-w:]
            if len(window) < 2:
                continue
            candidate = _boyer_moore(window)
            if candidate is None or candidate == 0:
                continue
            if window.count(candidate) * 2 > len(window):
                return candidate
        return None

    def plan(self, page: int) -> list[int]:
        """Pages to prefetch after a miss on ``page``."""
        self._adapt()
        stride = self.majority_stride()
        if stride is None:
            return []
        plan = [page + stride * i for i in range(1, self._window + 1)]
        self._outstanding.update(plan)
        self._issued += len(plan)
        return plan

    def _adapt(self) -> None:
        if self._issued == 0:
            return
        if self._useful * 2 >= self._issued:
            self._window = min(self._window * 2, MAX_PREFETCH)
        else:
            self._window = max(self._window // 2, MIN_PREFETCH)
        self._useful = 0
        self._issued = 0
        self._outstanding.clear()


def _boyer_moore(items: list[int]) -> int | None:
    """Boyer-Moore majority-vote candidate (unverified)."""
    count = 0
    candidate: int | None = None
    for x in items:
        if count == 0:
            candidate = x
            count = 1
        elif x == candidate:
            count += 1
        else:
            count -= 1
    return candidate


class Leap(FastSwap):
    """FastSwap's structure with Leap's prefetcher and fault path."""

    name = "leap"

    def __init__(self, cost, local_mem_bytes, clock=None, num_threads=1) -> None:
        super().__init__(cost, local_mem_bytes, clock, num_threads)
        self.prefetcher = MajorityTrendPrefetcher()

    def _extra_fault_ns(self) -> float:
        return self.cost.leap_extra_fault_ns

    def _after_access(self, obj, offset: int, size: int, hit: bool) -> None:
        va = obj.va_of(offset)
        for page in self.swap.pages_of(va, size):
            self.prefetcher.record(page)
        if hit:
            return
        # a fault occurred: plan prefetches along the majority stride
        for p in self.prefetcher.plan(va // PAGE_SIZE):
            if p >= 0 and not self.swap.contains(p):
                self.swap.prefetch(p, obj.obj_id)
