"""FastSwap baseline (Amaro et al., EuroSys'20).

A Linux kernel swap system over RDMA with an optimized fault datapath and
polling.  Characteristics the paper's comparisons exercise:

* 4 KB page granularity -> read/write amplification for fine accesses;
* no program knowledge -> demand paging only, global LRU eviction;
* zero per-access overhead on hits (pages are MMU-mapped);
* the swap datapath serializes under multi-threading (Fig. 24/25).
"""

from __future__ import annotations

from repro.cache.interface import MemorySystem
from repro.cache.swap import SwapSection
from repro.memsim.address import PAGE_SIZE
from repro.memsim.clock import VirtualClock
from repro.memsim.resources import SerialResource
from repro.prefetch import make_policy


class FastSwap(MemorySystem):
    """Whole-heap page swapping with demand paging.

    ``policy`` attaches an optional :class:`~repro.prefetch.PrefetchPolicy`
    (instance or name): the policy observes every touched page, proposes
    prefetches on demand misses, and receives used/wasted feedback from
    the swap section.  FastSwap itself defaults to no policy.
    """

    name = "fastswap"

    def __init__(
        self, cost, local_mem_bytes, clock=None, num_threads=1, policy=None
    ) -> None:
        super().__init__(cost, local_mem_bytes, clock)
        self.fault_lock = SerialResource("swap-lock") if num_threads > 1 else None
        self.swap = SwapSection(
            local_mem_bytes,
            cost,
            self.clock,
            self.network,
            extra_fault_ns=self._extra_fault_ns(),
            fault_lock=self.fault_lock,
        )
        if isinstance(policy, str):
            policy = make_policy(policy)
        self.policy = policy
        if policy is not None:
            policy.bind(self)
            self.swap.feedback_policy = policy
        #: obj_id -> (ObjectInfo, ObjectStats, base_va, size limit); ids are
        #: never reused, so entries stay valid for the system's lifetime
        self._obj_cache: dict[int, tuple] = {}
        #: skip the per-access hook unless a policy is attached or a
        #: subclass overrides it
        self._has_after_hook = (
            policy is not None
            or type(self)._after_access is not FastSwap._after_access
        )

    def _extra_fault_ns(self) -> float:
        return 0.0

    def set_clock(self, clock: VirtualClock) -> None:
        self.clock = clock
        self.network.clock = clock
        self.far_node.clock = clock
        self.swap.clock = clock

    def set_tracer(self, tracer) -> None:
        self.tracer = tracer
        self.network.tracer = tracer
        self._bind_access_log(tracer)
        self.swap.set_tracer(tracer)

    def set_telemetry(self, telemetry) -> None:
        self.telemetry = telemetry
        self.swap.telemetry = telemetry

    def access(
        self,
        obj_id: int,
        offset: int,
        size: int,
        is_write: bool,
        native: bool = False,
    ) -> None:
        rec = self._rec_access
        if rec is not None:
            rec(self.clock.now, obj=obj_id, off=offset, size=size, w=is_write)
        entry = self._obj_cache.get(obj_id)
        if entry is None:
            obj = self.address_space.get(obj_id)
            entry = (obj, self.stats.object(obj_id), obj.base_va, max(obj.size, 1))
            self._obj_cache[obj_id] = entry
        obj, ostats, base_va, limit = entry
        ostats.accesses += 1
        # inlined obj.va_of + single-page fast path (most accesses are
        # fine-grained and land on one page)
        if 0 <= offset < limit:
            va = base_va + offset
        else:
            va = obj.va_of(offset)  # raises the canonical bounds error
        last = (va + (size if size > 0 else 1) - 1) // PAGE_SIZE
        first = va // PAGE_SIZE
        if first == last:
            hit = self.swap._access_page(first, is_write, obj_id)
        else:
            hit = self.swap.access(va, size, is_write, obj_id)
        if not hit:
            ostats.misses += 1
        if self._has_after_hook:
            self._after_access(obj, offset, size, hit)

    def _after_access(self, obj, offset: int, size: int, hit: bool) -> None:
        """Drive the attached prefetch policy (record stream + plan on miss)."""
        policy = self.policy
        if policy is None:
            return
        va = obj.va_of(offset)
        swap = self.swap
        for page in swap.pages_of(va, size):
            policy.record(page)
        if hit:
            return
        # a demand miss: ask the policy for future pages
        plan = policy.plan(va // PAGE_SIZE)
        if not plan:
            return
        tracer = self.tracer
        if tracer is not None and policy.traced:
            tracer.emit(
                "prefetch.plan",
                self.clock.now,
                pol=policy.name,
                line=va // PAGE_SIZE,
                n=len(plan),
            )
        # cap issuance below the section capacity: a plan longer than the
        # cache would evict the page just faulted in (and then each other),
        # turning an aggressive window into guaranteed thrashing
        budget = swap.capacity_pages - 1
        for p in plan:
            if budget <= 0:
                break
            if p >= 0 and not swap.contains(p):
                swap.prefetch(p, obj.obj_id)
                policy.issued += 1
                budget -= 1

    # -- bulk path (codegen engine) ------------------------------------------

    def bulk_load(
        self, obj_id, offset0, stride, size, count, native, dram_ns, cpu_ns
    ) -> bool:
        return self._bulk_stream(
            obj_id, offset0, stride, size, count, dram_ns, cpu_ns, False
        )

    def bulk_store(
        self, obj_id, offset0, stride, size, count, native, dram_ns, cpu_ns
    ) -> bool:
        return self._bulk_stream(
            obj_id, offset0, stride, size, count, dram_ns, cpu_ns, True
        )

    def _bulk_stream(
        self,
        obj_id: int,
        offset0: int,
        stride: int,
        size: int,
        count: int,
        dram_ns: float,
        cpu_ns: float,
        is_write: bool,
    ) -> bool:
        """Page-at-a-time walk of a strided run; same exactness argument
        as :meth:`CacheManager._bulk_stream` (chunk-first element through
        the real fault path, the rest aggregated as known-hits).  Leap
        keeps its per-access prefetcher hook and always falls back."""
        if count <= 0:
            return True
        if (
            self._has_after_hook
            or self.tracer is not None
            or self.telemetry is not None
            or self.network.faults is not None
            or stride % 8
            or offset0 % 8
            or size <= 0
            or size > 8
            or not float(dram_ns).is_integer()
            or not float(cpu_ns).is_integer()
        ):
            return False
        entry = self._obj_cache.get(obj_id)
        if entry is None:
            obj = self.address_space.get(obj_id)
            entry = (obj, self.stats.object(obj_id), obj.base_va, max(obj.size, 1))
            self._obj_cache[obj_id] = entry
        obj, ostats, base_va, limit = entry
        # per-element bounds: every offset must satisfy 0 <= offset < limit
        if offset0 < 0 or offset0 + (count - 1) * stride >= limit:
            return False
        base = base_va + offset0
        if base % 8:
            return False
        clock = self.clock
        swap = self.swap
        j = 0
        while j < count:
            page = (base + j * stride) // PAGE_SIZE
            last = min(
                count - 1, ((page + 1) * PAGE_SIZE - size - base) // stride
            )
            n = last - j
            clock.advance(dram_ns, "dram")
            hit = swap._access_page(page, is_write, obj_id)
            if not hit:
                ostats.misses += 1
            if n:
                clock.advance(n * dram_ns, "dram")
                swap._bulk_hits(page, n, is_write)
            ostats.accesses += n + 1
            clock.charge((n + 1) * cpu_ns)
            j = last + 1
        return True

    def metadata_bytes(self) -> int:
        return self.swap.metadata_bytes()

    def collect_section_stats(self) -> dict[str, dict]:
        """Per-section stats in the CacheManager shape (one swap section),
        so metrics collection and the prefetch benchmark treat baselines
        and Mira uniformly."""
        return {"swap": vars(self.swap.stats).copy()}
