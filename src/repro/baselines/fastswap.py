"""FastSwap baseline (Amaro et al., EuroSys'20).

A Linux kernel swap system over RDMA with an optimized fault datapath and
polling.  Characteristics the paper's comparisons exercise:

* 4 KB page granularity -> read/write amplification for fine accesses;
* no program knowledge -> demand paging only, global LRU eviction;
* zero per-access overhead on hits (pages are MMU-mapped);
* the swap datapath serializes under multi-threading (Fig. 24/25).
"""

from __future__ import annotations

from repro.cache.interface import MemorySystem
from repro.cache.swap import SwapSection
from repro.memsim.clock import VirtualClock
from repro.memsim.resources import SerialResource


class FastSwap(MemorySystem):
    """Whole-heap page swapping with demand paging."""

    name = "fastswap"

    def __init__(self, cost, local_mem_bytes, clock=None, num_threads=1) -> None:
        super().__init__(cost, local_mem_bytes, clock)
        self.fault_lock = SerialResource("swap-lock") if num_threads > 1 else None
        self.swap = SwapSection(
            local_mem_bytes,
            cost,
            self.clock,
            self.network,
            extra_fault_ns=self._extra_fault_ns(),
            fault_lock=self.fault_lock,
        )

    def _extra_fault_ns(self) -> float:
        return 0.0

    def set_clock(self, clock: VirtualClock) -> None:
        self.clock = clock
        self.network.clock = clock
        self.swap.clock = clock

    def access(
        self,
        obj_id: int,
        offset: int,
        size: int,
        is_write: bool,
        native: bool = False,
    ) -> None:
        obj = self.address_space.get(obj_id)
        ostats = self.stats.object(obj_id)
        ostats.accesses += 1
        hit = self.swap.access(obj.va_of(offset), size, is_write, obj_id)
        if not hit:
            ostats.misses += 1
        self._after_access(obj, offset, size, hit)

    def _after_access(self, obj, offset: int, size: int, hit: bool) -> None:
        """Hook for Leap's prefetcher."""

    def metadata_bytes(self) -> int:
        return self.swap.metadata_bytes()
