"""FastSwap baseline (Amaro et al., EuroSys'20).

A Linux kernel swap system over RDMA with an optimized fault datapath and
polling.  Characteristics the paper's comparisons exercise:

* 4 KB page granularity -> read/write amplification for fine accesses;
* no program knowledge -> demand paging only, global LRU eviction;
* zero per-access overhead on hits (pages are MMU-mapped);
* the swap datapath serializes under multi-threading (Fig. 24/25).
"""

from __future__ import annotations

from repro.cache.interface import MemorySystem
from repro.cache.swap import SwapSection
from repro.memsim.address import PAGE_SIZE
from repro.memsim.clock import VirtualClock
from repro.memsim.resources import SerialResource


class FastSwap(MemorySystem):
    """Whole-heap page swapping with demand paging."""

    name = "fastswap"

    def __init__(self, cost, local_mem_bytes, clock=None, num_threads=1) -> None:
        super().__init__(cost, local_mem_bytes, clock)
        self.fault_lock = SerialResource("swap-lock") if num_threads > 1 else None
        self.swap = SwapSection(
            local_mem_bytes,
            cost,
            self.clock,
            self.network,
            extra_fault_ns=self._extra_fault_ns(),
            fault_lock=self.fault_lock,
        )
        #: obj_id -> (ObjectInfo, ObjectStats, base_va, size limit); ids are
        #: never reused, so entries stay valid for the system's lifetime
        self._obj_cache: dict[int, tuple] = {}
        #: skip the per-access hook unless a subclass (Leap) overrides it
        self._has_after_hook = type(self)._after_access is not FastSwap._after_access

    def _extra_fault_ns(self) -> float:
        return 0.0

    def set_clock(self, clock: VirtualClock) -> None:
        self.clock = clock
        self.network.clock = clock
        self.far_node.clock = clock
        self.swap.clock = clock

    def set_tracer(self, tracer) -> None:
        self.tracer = tracer
        self.network.tracer = tracer
        self.swap.tracer = tracer

    def access(
        self,
        obj_id: int,
        offset: int,
        size: int,
        is_write: bool,
        native: bool = False,
    ) -> None:
        entry = self._obj_cache.get(obj_id)
        if entry is None:
            obj = self.address_space.get(obj_id)
            entry = (obj, self.stats.object(obj_id), obj.base_va, max(obj.size, 1))
            self._obj_cache[obj_id] = entry
        obj, ostats, base_va, limit = entry
        ostats.accesses += 1
        # inlined obj.va_of + single-page fast path (most accesses are
        # fine-grained and land on one page)
        if 0 <= offset < limit:
            va = base_va + offset
        else:
            va = obj.va_of(offset)  # raises the canonical bounds error
        last = (va + (size if size > 0 else 1) - 1) // PAGE_SIZE
        first = va // PAGE_SIZE
        if first == last:
            hit = self.swap._access_page(first, is_write, obj_id)
        else:
            hit = self.swap.access(va, size, is_write, obj_id)
        if not hit:
            ostats.misses += 1
        if self._has_after_hook:
            self._after_access(obj, offset, size, hit)

    def _after_access(self, obj, offset: int, size: int, hit: bool) -> None:
        """Hook for Leap's prefetcher."""

    def metadata_bytes(self) -> int:
        return self.swap.metadata_bytes()
