"""Dialect op definitions.

Mirrors the paper's layering: standard dialects (``arith``, ``memref``,
``scf``, ``func``, ``compute``) plus Mira's two far-memory dialects,
``remotable`` and ``rmem`` (section 5.1), and a ``prof`` dialect for the
compiler-inserted coarse-grained profiling (section 4.1).
"""

from repro.ir.dialects import arith, compute, func, memref, prof, remotable, rmem, scf

__all__ = ["arith", "compute", "func", "memref", "prof", "remotable", "rmem", "scf"]
