"""``arith`` dialect: constants, integer/float arithmetic, comparisons."""

from __future__ import annotations

from repro.errors import IRError
from repro.ir.core import Operation, Value
from repro.ir.types import BoolType, FloatType, IndexType, IntType, IRType

#: binary op kinds and their Python semantics (integer division truncates
#: toward zero, like C)
BINARY_KINDS = {
    "add": lambda a, b: a + b,
    "sub": lambda a, b: a - b,
    "mul": lambda a, b: a * b,
    "div": None,  # resolved per-type at interpretation
    "rem": None,
    "min": min,
    "max": max,
    "and": lambda a, b: a & b,
    "or": lambda a, b: a | b,
    "xor": lambda a, b: a ^ b,
}

CMP_PREDICATES = {
    "eq": lambda a, b: a == b,
    "ne": lambda a, b: a != b,
    "lt": lambda a, b: a < b,
    "le": lambda a, b: a <= b,
    "gt": lambda a, b: a > b,
    "ge": lambda a, b: a >= b,
}


class ConstantOp(Operation):
    opname = "arith.constant"

    def __init__(self, value, type: IRType) -> None:
        super().__init__((), [type], {"value": value})

    @property
    def value(self):
        return self.attrs["value"]


class BinaryOp(Operation):
    opname = "arith.binary"

    def __init__(self, kind: str, lhs: Value, rhs: Value) -> None:
        if kind not in BINARY_KINDS:
            raise IRError(f"unknown arith kind {kind!r}")
        if not isinstance(lhs, Value) or not isinstance(rhs, Value):
            raise IRError(
                f"arith.{kind}: operands must be SSA Values, got "
                f"{type(lhs).__name__}/{type(rhs).__name__}"
            )
        if lhs.type != rhs.type:
            raise IRError(
                f"arith.{kind}: operand types differ ({lhs.type} vs {rhs.type})"
            )
        super().__init__([lhs, rhs], [lhs.type], {"kind": kind})

    @property
    def kind(self) -> str:
        return self.attrs["kind"]


class CmpOp(Operation):
    opname = "arith.cmp"

    def __init__(self, pred: str, lhs: Value, rhs: Value) -> None:
        if pred not in CMP_PREDICATES:
            raise IRError(f"unknown compare predicate {pred!r}")
        super().__init__([lhs, rhs], [BoolType], {"pred": pred})

    @property
    def pred(self) -> str:
        return self.attrs["pred"]


class SelectOp(Operation):
    opname = "arith.select"

    def __init__(self, cond: Value, a: Value, b: Value) -> None:
        if a.type != b.type:
            raise IRError(f"arith.select: branch types differ ({a.type} vs {b.type})")
        super().__init__([cond, a, b], [a.type])


class CastOp(Operation):
    """index <-> int <-> float conversions."""

    opname = "arith.cast"

    def __init__(self, value: Value, to_type: IRType) -> None:
        ok = isinstance(value.type, (IndexType, IntType, FloatType)) and isinstance(
            to_type, (IndexType, IntType, FloatType)
        )
        if not ok:
            raise IRError(f"cannot cast {value.type} to {to_type}")
        super().__init__([value], [to_type])
