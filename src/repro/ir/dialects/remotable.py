"""``remotable`` dialect (paper section 5.1).

Defines data objects placed in non-swap cache sections and functions that
may be offloaded.  ``remotable.alloc`` is produced by the convert-to-remote
pass from a selected ``memref.alloc``; remotable *functions* are plain
functions with the ``remotable`` attribute set by the backward analysis of
section 5.2.1.
"""

from __future__ import annotations

from repro.errors import IRError
from repro.ir.core import Operation
from repro.ir.types import IRType, MemRefType


class RAllocOp(Operation):
    """Allocate a remotable object (far-memory backed)."""

    opname = "remotable.alloc"

    def __init__(
        self,
        elem_type: IRType,
        num_elems: int,
        name: str = "",
        obj_attrs: dict | None = None,
    ) -> None:
        if num_elems <= 0:
            raise IRError(
                f"remotable.alloc: num_elems must be positive, got {num_elems}"
            )
        super().__init__(
            (),
            [MemRefType(elem_type, remote=True)],
            {"num_elems": num_elems, "name": name, "obj_attrs": obj_attrs or {}},
        )
        self.result.name_hint = name

    @property
    def num_elems(self) -> int:
        return self.attrs["num_elems"]

    @property
    def alloc_name(self) -> str:
        return self.attrs["name"]
