"""``rmem`` dialect (paper section 5.1): operations on remotable objects.

Basic accesses (``rmem.load``/``rmem.store``) extend memref operations to
remote memrefs; the rest are the compiler-inserted optimizations of
section 4.5: asynchronous prefetch, batched prefetch, flush, eviction
hints, read-only discard, and section lifetime markers.

Important attributes passes set on these ops:

* ``native`` (load/store) -- dereference elided; the access compiles to a
  native memory instruction (section 4.4);
* ``mode`` (evict_hint) -- ``"trailing"`` marks the line *behind* the
  current index (streaming), ``"exact"`` marks the addressed line.
"""

from __future__ import annotations

from repro.errors import IRError
from repro.ir.core import Operation, Value
from repro.ir.types import IndexType, IRType, MemRefType, StructType


def _check_remote_ref(op: str, ref: Value) -> MemRefType:
    if not isinstance(ref.type, MemRefType) or not ref.type.remote:
        raise IRError(f"{op}: expected a remote memref, got {ref.type}")
    return ref.type


def _check_index(op: str, index: Value) -> None:
    if not isinstance(index.type, IndexType):
        raise IRError(f"{op}: index must be of index type, got {index.type}")


def _loaded_type(ref_type: MemRefType, field: str | None) -> IRType:
    if field is None:
        return ref_type.elem
    if not isinstance(ref_type.elem, StructType):
        raise IRError(f"field access {field!r} on non-struct element {ref_type.elem}")
    return ref_type.elem.field_type(field)


class RLoadOp(Operation):
    opname = "rmem.load"

    def __init__(self, ref: Value, index: Value, field: str | None = None) -> None:
        rt = _check_remote_ref(self.opname, ref)
        _check_index(self.opname, index)
        super().__init__(
            [ref, index], [_loaded_type(rt, field)], {"field": field, "native": False}
        )

    @property
    def ref(self) -> Value:
        return self.operands[0]

    @property
    def index(self) -> Value:
        return self.operands[1]

    @property
    def field(self) -> str | None:
        return self.attrs.get("field")

    @property
    def native(self) -> bool:
        return bool(self.attrs.get("native"))


class RStoreOp(Operation):
    opname = "rmem.store"

    def __init__(
        self, value: Value, ref: Value, index: Value, field: str | None = None
    ) -> None:
        rt = _check_remote_ref(self.opname, ref)
        _check_index(self.opname, index)
        expected = _loaded_type(rt, field)
        if value.type != expected:
            raise IRError(
                f"rmem.store: storing {value.type} into slot of type {expected}"
            )
        super().__init__([value, ref, index], (), {"field": field, "native": False})

    @property
    def value(self) -> Value:
        return self.operands[0]

    @property
    def ref(self) -> Value:
        return self.operands[1]

    @property
    def index(self) -> Value:
        return self.operands[2]

    @property
    def field(self) -> str | None:
        return self.attrs.get("field")

    @property
    def native(self) -> bool:
        return bool(self.attrs.get("native"))


class RTouchOp(Operation):
    """Coarse range access on a remote memref (layer-granularity code)."""

    opname = "rmem.touch"

    def __init__(
        self, ref: Value, start: Value, length: int, is_write: bool = False
    ) -> None:
        _check_remote_ref(self.opname, ref)
        _check_index(self.opname, start)
        if length <= 0:
            raise IRError(f"rmem.touch: length must be positive, got {length}")
        super().__init__([ref, start], (), {"length": length, "is_write": is_write})

    @property
    def ref(self) -> Value:
        return self.operands[0]

    @property
    def start(self) -> Value:
        return self.operands[1]

    @property
    def length(self) -> int:
        return self.attrs["length"]

    @property
    def is_write(self) -> bool:
        return self.attrs["is_write"]


class PrefetchOp(Operation):
    """Asynchronously fetch ``count`` elements starting at ``index``."""

    opname = "rmem.prefetch"

    def __init__(self, ref: Value, index: Value, count: int = 1) -> None:
        _check_remote_ref(self.opname, ref)
        _check_index(self.opname, index)
        super().__init__([ref, index], (), {"count": count})

    @property
    def ref(self) -> Value:
        return self.operands[0]

    @property
    def index(self) -> Value:
        return self.operands[1]

    @property
    def count(self) -> int:
        return self.attrs["count"]


class BatchPrefetchOp(Operation):
    """One network message prefetching ranges from several objects
    (data-access batching, section 4.5): operands alternate
    ``ref0, index0, ref1, index1, ...``; ``counts[i]`` elements each."""

    opname = "rmem.batch_prefetch"

    def __init__(self, pairs: list[tuple[Value, Value]], counts: list[int]) -> None:
        if len(pairs) != len(counts) or not pairs:
            raise IRError("rmem.batch_prefetch: pairs/counts mismatch or empty")
        flat: list[Value] = []
        for ref, index in pairs:
            _check_remote_ref(self.opname, ref)
            _check_index(self.opname, index)
            flat.extend((ref, index))
        super().__init__(flat, (), {"counts": list(counts)})

    @property
    def counts(self) -> list[int]:
        return self.attrs["counts"]

    def pairs(self) -> list[tuple[Value, Value]]:
        ops = self.operands
        return [(ops[i], ops[i + 1]) for i in range(0, len(ops), 2)]


class FlushOp(Operation):
    """Asynchronously write back ``count`` elements (pre-eviction flush)."""

    opname = "rmem.flush"

    def __init__(self, ref: Value, index: Value, count: int = 1) -> None:
        _check_remote_ref(self.opname, ref)
        _check_index(self.opname, index)
        super().__init__([ref, index], (), {"count": count})

    @property
    def ref(self) -> Value:
        return self.operands[0]

    @property
    def index(self) -> Value:
        return self.operands[1]

    @property
    def count(self) -> int:
        return self.attrs["count"]


class EvictHintOp(Operation):
    """Mark lines evictable after their last access (section 4.5)."""

    opname = "rmem.evict_hint"

    def __init__(
        self, ref: Value, index: Value, count: int = 1, mode: str = "exact"
    ) -> None:
        _check_remote_ref(self.opname, ref)
        _check_index(self.opname, index)
        if mode not in ("exact", "trailing"):
            raise IRError(f"rmem.evict_hint: unknown mode {mode!r}")
        super().__init__([ref, index], (), {"count": count, "mode": mode})

    @property
    def ref(self) -> Value:
        return self.operands[0]

    @property
    def index(self) -> Value:
        return self.operands[1]

    @property
    def count(self) -> int:
        return self.attrs["count"]

    @property
    def mode(self) -> str:
        return self.attrs["mode"]


class DiscardOp(Operation):
    """Drop an object's clean cached lines without write-back (read-only
    loop epilogue, section 4.5 read/write optimization)."""

    opname = "rmem.discard"

    def __init__(self, ref: Value) -> None:
        _check_remote_ref(self.opname, ref)
        super().__init__([ref])

    @property
    def ref(self) -> Value:
        return self.operands[0]


class SectionOpenOp(Operation):
    """Open a cache section whose config lives in the module's
    ``section_configs`` attribute; operands are the member objects."""

    opname = "rmem.section_open"

    def __init__(self, section_name: str, refs: list[Value]) -> None:
        for ref in refs:
            _check_remote_ref(self.opname, ref)
        super().__init__(list(refs), (), {"section": section_name})

    @property
    def section_name(self) -> str:
        return self.attrs["section"]


class SectionCloseOp(Operation):
    opname = "rmem.section_close"

    def __init__(self, section_name: str) -> None:
        super().__init__((), (), {"section": section_name})

    @property
    def section_name(self) -> str:
        return self.attrs["section"]


class OffloadCallOp(Operation):
    """Invoke a remotable function on the far-memory node via RPC
    (section 4.8); the runtime flushes the function's cached remotable
    objects before the call."""

    opname = "rmem.offload_call"

    def __init__(self, callee: str, args: list[Value], result_types=()) -> None:
        super().__init__(list(args), list(result_types), {"callee": callee})

    @property
    def callee(self) -> str:
        return self.attrs["callee"]
