"""``prof`` dialect: compiler-inserted coarse-grained profiling markers
(paper section 4.1).

Profiling is instrumented at compile time and only fires on non-native
cache events, keeping overhead in the sub-percent range the paper reports.
"""

from __future__ import annotations

from repro.ir.core import Operation


class RegionBeginOp(Operation):
    opname = "prof.begin"

    def __init__(self, label: str) -> None:
        super().__init__((), (), {"label": label})

    @property
    def label(self) -> str:
        return self.attrs["label"]


class RegionEndOp(Operation):
    opname = "prof.end"

    def __init__(self, label: str) -> None:
        super().__init__((), (), {"label": label})

    @property
    def label(self) -> str:
        return self.attrs["label"]
