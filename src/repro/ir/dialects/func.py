"""``func`` dialect: calls and returns."""

from __future__ import annotations

from repro.ir.core import Operation, Value


class CallOp(Operation):
    opname = "func.call"

    def __init__(
        self, callee: str, args: list[Value] | tuple = (), result_types=()
    ) -> None:
        super().__init__(list(args), list(result_types), {"callee": callee})

    @property
    def callee(self) -> str:
        return self.attrs["callee"]


class ReturnOp(Operation):
    opname = "func.return"
    is_terminator = True

    def __init__(self, values: list[Value] | tuple = ()) -> None:
        super().__init__(list(values))
