"""``compute`` dialect: abstract computation cost.

``WorkOp`` charges pure CPU time without simulating the arithmetic --
used by layer-granularity programs (GPT-2 matmuls) where per-element
interpretation would add nothing to the memory-system evaluation.
"""

from __future__ import annotations

from repro.errors import IRError
from repro.ir.core import Operation


class WorkOp(Operation):
    """Charge ``units`` x ``cpu_op_ns`` of compute time."""

    opname = "compute.work"

    def __init__(self, units: float, label: str = "") -> None:
        if units < 0:
            raise IRError(f"compute.work: negative units {units}")
        super().__init__((), (), {"units": float(units), "label": label})

    @property
    def units(self) -> float:
        return self.attrs["units"]
