"""``scf`` dialect: structured control flow (for, if, while, parallel)."""

from __future__ import annotations

from repro.errors import IRError
from repro.ir.core import Block, Operation, Region, Value
from repro.ir.types import INDEX, IndexType, IntType


def _check_bound(op: str, v: Value, what: str) -> None:
    if not isinstance(v.type, IndexType):
        raise IRError(f"{op}: {what} must be index-typed, got {v.type}")


class YieldOp(Operation):
    """Terminator of loop/if bodies, forwarding iteration/branch values."""

    opname = "scf.yield"
    is_terminator = True

    def __init__(self, values: list[Value] | tuple = ()) -> None:
        super().__init__(list(values))


class ConditionOp(Operation):
    """Terminator of a while-loop's 'before' region: continue predicate
    plus the values forwarded to the body."""

    opname = "scf.condition"
    is_terminator = True

    def __init__(self, cond: Value, forwarded: list[Value] | tuple = ()) -> None:
        if cond.type != IntType(1):
            raise IRError(f"scf.condition: predicate must be i1, got {cond.type}")
        super().__init__([cond, *forwarded])

    @property
    def cond(self) -> Value:
        return self.operands[0]

    @property
    def forwarded(self) -> list[Value]:
        return self.operands[1:]


class ForOp(Operation):
    """Counted loop with loop-carried values (iter_args).

    Body block args: ``[induction_var, *iter_args]``; body terminates with
    ``scf.yield`` of the next iter_arg values; the op's results are the
    final iter_arg values.
    """

    opname = "scf.for"

    def __init__(
        self,
        lb: Value,
        ub: Value,
        step: Value,
        iter_args: list[Value] | tuple = (),
    ) -> None:
        for v, what in ((lb, "lower bound"), (ub, "upper bound"), (step, "step")):
            _check_bound(self.opname, v, what)
        iter_args = list(iter_args)
        body = Block(
            [INDEX] + [v.type for v in iter_args],
            ["i"] + [v.name_hint for v in iter_args],
        )
        super().__init__(
            [lb, ub, step, *iter_args],
            [v.type for v in iter_args],
            {},
            [Region([body])],
        )

    @property
    def lb(self) -> Value:
        return self.operands[0]

    @property
    def ub(self) -> Value:
        return self.operands[1]

    @property
    def step(self) -> Value:
        return self.operands[2]

    @property
    def iter_args(self) -> list[Value]:
        return self.operands[3:]

    @property
    def body(self) -> Block:
        return self.regions[0].block

    @property
    def induction_var(self) -> Value:
        return self.body.args[0]

    @property
    def body_iter_args(self) -> list[Value]:
        return self.body.args[1:]


class ParallelOp(Operation):
    """Parallel counted loop over ``num_threads`` virtual threads.

    No loop-carried values; iterations must be independent except through
    memory (the interpreter simulates per-thread clocks, section 4.6).
    """

    opname = "scf.parallel"

    def __init__(self, lb: Value, ub: Value, step: Value, num_threads: int) -> None:
        for v, what in ((lb, "lower bound"), (ub, "upper bound"), (step, "step")):
            _check_bound(self.opname, v, what)
        if num_threads <= 0:
            raise IRError(f"scf.parallel: need >=1 threads, got {num_threads}")
        body = Block([INDEX], ["i"])
        super().__init__(
            [lb, ub, step], (), {"num_threads": num_threads}, [Region([body])]
        )

    @property
    def lb(self) -> Value:
        return self.operands[0]

    @property
    def ub(self) -> Value:
        return self.operands[1]

    @property
    def step(self) -> Value:
        return self.operands[2]

    @property
    def num_threads(self) -> int:
        return self.attrs["num_threads"]

    @property
    def body(self) -> Block:
        return self.regions[0].block

    @property
    def induction_var(self) -> Value:
        return self.body.args[0]


class IfOp(Operation):
    """Two-armed conditional; both arms yield the same result types."""

    opname = "scf.if"

    def __init__(self, cond: Value, result_types: list | tuple = ()) -> None:
        if cond.type != IntType(1):
            raise IRError(f"scf.if: condition must be i1, got {cond.type}")
        super().__init__(
            [cond],
            list(result_types),
            {},
            [Region([Block()]), Region([Block()])],
        )

    @property
    def cond(self) -> Value:
        return self.operands[0]

    @property
    def then_block(self) -> Block:
        return self.regions[0].block

    @property
    def else_block(self) -> Block:
        return self.regions[1].block


class WhileOp(Operation):
    """General loop: 'before' region computes the continue condition from
    the carried values (terminated by ``scf.condition``); 'after' region is
    the body (terminated by ``scf.yield`` of the next carried values)."""

    opname = "scf.while"

    def __init__(self, init_args: list[Value]) -> None:
        types = [v.type for v in init_args]
        names = [v.name_hint for v in init_args]
        before = Block(types, names)
        after = Block(types, names)
        super().__init__(
            list(init_args), types, {}, [Region([before]), Region([after])]
        )

    @property
    def init_args(self) -> list[Value]:
        return self.operands

    @property
    def before(self) -> Block:
        return self.regions[0].block

    @property
    def after(self) -> Block:
        return self.regions[1].block
