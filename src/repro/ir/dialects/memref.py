"""``memref`` dialect: allocation and element-wise / range memory access.

``TouchOp`` is the coarse-grained access used by layer-granularity
programs (GPT-2): it streams a byte range through the memory system
without per-element interpretation.
"""

from __future__ import annotations

from repro.errors import IRError
from repro.ir.core import Operation, Value
from repro.ir.types import INDEX, IndexType, IRType, MemRefType, StructType


def _check_index(op: str, index: Value) -> None:
    if not isinstance(index.type, IndexType):
        raise IRError(f"{op}: index must be of index type, got {index.type}")


def _check_ref(op: str, ref: Value, remote: bool | None = None) -> MemRefType:
    if not isinstance(ref.type, MemRefType):
        raise IRError(f"{op}: expected a memref operand, got {ref.type}")
    if remote is not None and ref.type.remote != remote:
        kind = "remote" if remote else "local"
        raise IRError(f"{op}: expected a {kind} memref, got {ref.type}")
    return ref.type


def _loaded_type(ref_type: MemRefType, field: str | None) -> IRType:
    if field is None:
        return ref_type.elem
    if not isinstance(ref_type.elem, StructType):
        raise IRError(f"field access {field!r} on non-struct element {ref_type.elem}")
    return ref_type.elem.field_type(field)


class AllocOp(Operation):
    opname = "memref.alloc"

    def __init__(
        self,
        elem_type: IRType,
        num_elems: int,
        name: str = "",
        obj_attrs: dict | None = None,
    ) -> None:
        if num_elems <= 0:
            raise IRError(f"memref.alloc: num_elems must be positive, got {num_elems}")
        super().__init__(
            (),
            [MemRefType(elem_type)],
            {"num_elems": num_elems, "name": name, "obj_attrs": obj_attrs or {}},
        )
        self.result.name_hint = name

    @property
    def num_elems(self) -> int:
        return self.attrs["num_elems"]

    @property
    def alloc_name(self) -> str:
        return self.attrs["name"]


class LoadOp(Operation):
    opname = "memref.load"

    def __init__(self, ref: Value, index: Value, field: str | None = None) -> None:
        rt = _check_ref(self.opname, ref, remote=False)
        _check_index(self.opname, index)
        super().__init__([ref, index], [_loaded_type(rt, field)], {"field": field})

    @property
    def ref(self) -> Value:
        return self.operands[0]

    @property
    def index(self) -> Value:
        return self.operands[1]

    @property
    def field(self) -> str | None:
        return self.attrs.get("field")


class StoreOp(Operation):
    opname = "memref.store"

    def __init__(
        self, value: Value, ref: Value, index: Value, field: str | None = None
    ) -> None:
        rt = _check_ref(self.opname, ref, remote=False)
        _check_index(self.opname, index)
        expected = _loaded_type(rt, field)
        if value.type != expected:
            raise IRError(
                f"memref.store: storing {value.type} into slot of type {expected}"
            )
        super().__init__([value, ref, index], (), {"field": field})

    @property
    def value(self) -> Value:
        return self.operands[0]

    @property
    def ref(self) -> Value:
        return self.operands[1]

    @property
    def index(self) -> Value:
        return self.operands[2]

    @property
    def field(self) -> str | None:
        return self.attrs.get("field")


class DeallocOp(Operation):
    opname = "memref.dealloc"

    def __init__(self, ref: Value) -> None:
        _check_ref(self.opname, ref)
        super().__init__([ref])

    @property
    def ref(self) -> Value:
        return self.operands[0]


class TouchOp(Operation):
    """Stream ``length`` bytes starting at byte ``start`` (coarse access)."""

    opname = "memref.touch"

    def __init__(
        self, ref: Value, start: Value, length: int, is_write: bool = False
    ) -> None:
        _check_ref(self.opname, ref)
        _check_index(self.opname, start)
        if length <= 0:
            raise IRError(f"memref.touch: length must be positive, got {length}")
        super().__init__([ref, start], (), {"length": length, "is_write": is_write})

    @property
    def ref(self) -> Value:
        return self.operands[0]

    @property
    def start(self) -> Value:
        return self.operands[1]

    @property
    def length(self) -> int:
        return self.attrs["length"]

    @property
    def is_write(self) -> bool:
        return self.attrs["is_write"]
