"""Textual IR parser: the inverse of :mod:`repro.ir.printer`.

Round-tripping (print -> parse -> print gives identical text) lets
compiled programs be saved, inspected, edited, and reloaded -- the
equivalent of MLIR's textual format in the paper's toolchain.

Grammar (line-oriented, as the printer emits):

    module @name {
      func @f(%arg: type, ...) -> (types) attributes {k = v} {
        %r = dialect.op(%a, %b) {attr = value} : result-type
        scf.for %i = %lb to %ub step %st iter_args(%x = %init) { ... }
        scf.if %c { ... } else { ... }
        scf.while (%a) { ... } do { ... }
        scf.parallel %i = %lb to %ub step %st threads(4) { ... }
      }
    }
"""

from __future__ import annotations

import ast
import re

from repro.errors import IRError
from repro.ir.core import Block, Function, Module, Operation, Region, Value
from repro.ir.dialects import arith, compute, func as func_d, memref, prof, remotable, rmem, scf
from repro.ir.types import (
    BoolType,
    FloatType,
    IndexType,
    IntType,
    IRType,
    MemRefType,
    StructType,
)

_TYPE_RE = re.compile(r"^(r?memref)<(.+)>$")
_STRUCT_RE = re.compile(r"^!(\w+)<(.*)>$")
_FUNC_RE = re.compile(
    r"^func @(\w+)\((.*?)\)(?:\s*->\s*\((.*?)\))?"
    r"(?:\s*attributes\s*\{(.*)\})?\s*\{$"
)
_FOR_RE = re.compile(
    r"^(?:(.+?)\s*=\s*)?scf\.for %(\S+) = %(\S+) to %(\S+) step %(\S+)"
    r"(?:\s+iter_args\((.*?)\))?\s*\{$"
)
_PARALLEL_RE = re.compile(
    r"^scf\.parallel %(\S+) = %(\S+) to %(\S+) step %(\S+) threads\((\d+)\)\s*\{$"
)
_IF_RE = re.compile(r"^(?:(.+?)\s*=\s*)?scf\.if %(\S+)\s*\{$")
_WHILE_RE = re.compile(r"^(?:(.+?)\s*=\s*)?scf\.while \((.*?)\)\s*\{$")
_GENERIC_RE = re.compile(
    r"^(?:(.+?)\s*=\s*)?([\w.]+)\((.*?)\)(?:\s*\{(.*)\})?(?:\s*:\s*(.+))?$"
)

#: opname -> op class, for generic reconstruction
_OP_CLASSES: dict[str, type[Operation]] = {}
for _mod in (arith, memref, scf, func_d, compute, remotable, rmem, prof):
    for _name in dir(_mod):
        _obj = getattr(_mod, _name)
        if isinstance(_obj, type) and issubclass(_obj, Operation):
            if getattr(_obj, "opname", None):
                _OP_CLASSES[_obj.opname] = _obj


def parse_type(text: str) -> IRType:
    text = text.strip()
    if text == "index":
        return IndexType()
    if re.fullmatch(r"i\d+", text):
        return IntType(int(text[1:]))
    if re.fullmatch(r"f\d+", text):
        return FloatType(int(text[1:]))
    m = _TYPE_RE.match(text)
    if m:
        return MemRefType(parse_type(m.group(2)), remote=m.group(1) == "rmemref")
    m = _STRUCT_RE.match(text)
    if m:
        fields = []
        for part in _split_top(m.group(2), ","):
            fname, _, ftype = part.partition(":")
            fields.append((fname.strip(), parse_type(ftype.strip())))
        return StructType(m.group(1), tuple(fields))
    raise IRError(f"cannot parse type {text!r}")


def _split_top(text: str, sep: str) -> list[str]:
    """Split at top level (not inside <>, (), {})."""
    parts, depth, cur = [], 0, []
    for ch in text:
        if ch in "<({":
            depth += 1
        elif ch in ">)}":
            depth -= 1
        if ch == sep and depth == 0:
            parts.append("".join(cur))
            cur = []
        else:
            cur.append(ch)
    if cur:
        parts.append("".join(cur))
    return [p.strip() for p in parts if p.strip()]


class _Parser:
    def __init__(self, text: str) -> None:
        self.lines = [ln.strip() for ln in text.splitlines() if ln.strip()]
        self.pos = 0
        self.values: dict[str, Value] = {}

    def peek(self) -> str:
        if self.pos >= len(self.lines):
            raise IRError("unexpected end of IR text")
        return self.lines[self.pos]

    def next(self) -> str:
        line = self.peek()
        self.pos += 1
        return line

    # -- top level --------------------------------------------------------

    def parse_module(self) -> Module:
        line = self.next()
        m = re.match(r"^module @(\w+)\s*\{$", line)
        if not m:
            raise IRError(f"expected 'module @name {{', got {line!r}")
        module = Module(m.group(1))
        while self.peek() != "}":
            module.add(self.parse_function())
        self.next()
        return module

    def parse_function(self) -> Function:
        line = self.next()
        m = _FUNC_RE.match(line)
        if not m:
            raise IRError(f"expected function header, got {line!r}")
        name, args_text, results_text, attrs_text = m.groups()
        arg_names, arg_types = [], []
        for part in _split_top(args_text or "", ","):
            aname, _, atype = part.partition(":")
            arg_names.append(aname.strip().lstrip("%"))
            arg_types.append(parse_type(atype.strip()))
        result_types = [
            parse_type(t) for t in _split_top(results_text or "", ",")
        ]
        fn = Function(name, arg_types, result_types, arg_names)
        if attrs_text:
            fn.attrs.update(_parse_attrs(attrs_text))
        self.values = {}
        for n, v in zip(arg_names, fn.args):
            self.values[n] = v
        self._parse_block_body(fn.body)
        return fn

    # -- blocks and ops -----------------------------------------------------

    def _parse_block_body(self, block: Block) -> None:
        """Parse ops until the matching '}' (consumed)."""
        while True:
            line = self.peek()
            if line in ("}", "} else {", "} do {"):
                self.next()
                return
            self._parse_op(block)

    def _parse_op(self, block: Block) -> None:
        line = self.next()
        m = _FOR_RE.match(line)
        if m:
            self._parse_for(m, block)
            return
        m = _PARALLEL_RE.match(line)
        if m:
            self._parse_parallel(m, block)
            return
        m = _IF_RE.match(line)
        if m:
            self._parse_if(m, block)
            return
        m = _WHILE_RE.match(line)
        if m:
            self._parse_while(m, block)
            return
        m = _GENERIC_RE.match(line)
        if not m:
            raise IRError(f"cannot parse op line {line!r}")
        results_text, opname, operands_text, attrs_text, types_text = m.groups()
        operands = [self._value(v) for v in _split_top(operands_text or "", ",")]
        attrs = _parse_attrs(attrs_text or "")
        result_types = [parse_type(t) for t in _split_top(types_text or "", ",")]
        op = self._rebuild(opname, operands, result_types, attrs)
        block.append(op)
        self._bind_results(results_text, op)

    def _rebuild(self, opname, operands, result_types, attrs) -> Operation:
        cls = _OP_CLASSES.get(opname)
        if cls is None:
            raise IRError(f"unknown op {opname!r}")
        op: Operation = object.__new__(cls)
        Operation.__init__(op, operands, result_types, attrs)
        return op

    def _parse_for(self, m, block: Block) -> None:
        results_text, iv_name, lb, ub, step, iters_text = m.groups()
        inits, arg_names = [], []
        for part in _split_top(iters_text or "", ","):
            barg, _, init = part.partition("=")
            arg_names.append(barg.strip().lstrip("%"))
            inits.append(self._value(init.strip()))
        op = scf.ForOp(self._value(f"%{lb}"), self._value(f"%{ub}"),
                       self._value(f"%{step}"), inits)
        block.append(op)
        self.values[iv_name] = op.induction_var
        op.induction_var.name_hint = iv_name
        for n, v in zip(arg_names, op.body_iter_args):
            self.values[n] = v
            v.name_hint = n
        self._parse_block_body(op.body)
        self._bind_results(results_text, op)

    def _parse_parallel(self, m, block: Block) -> None:
        iv_name, lb, ub, step, threads = m.groups()
        op = scf.ParallelOp(
            self._value(f"%{lb}"), self._value(f"%{ub}"),
            self._value(f"%{step}"), int(threads),
        )
        block.append(op)
        self.values[iv_name] = op.induction_var
        op.induction_var.name_hint = iv_name
        self._parse_block_body(op.body)

    def _parse_if(self, m, block: Block) -> None:
        results_text, cond = m.groups()
        # result types are unknown until the arms are parsed; parse the
        # then-arm into a temporary block first
        op_cond = self._value(f"%{cond}")
        then_block = Block()
        closer = self._parse_into(then_block)
        else_block = Block()
        if closer == "} else {":
            self._parse_block_body(else_block)
        term = then_block.terminator
        result_types = [v.type for v in term.operands] if term else []
        op = scf.IfOp(op_cond, result_types)
        op.regions[0].blocks[0] = then_block
        then_block.parent_region = op.regions[0]
        op.regions[1].blocks[0] = else_block
        else_block.parent_region = op.regions[1]
        block.append(op)
        self._bind_results(results_text, op)

    def _parse_into(self, block: Block) -> str:
        """Like _parse_block_body but reports which closer ended it."""
        while True:
            line = self.peek()
            if line in ("}", "} else {", "} do {"):
                self.next()
                return line
            self._parse_op(block)

    def _parse_while(self, m, block: Block) -> None:
        results_text, inits_text = m.groups()
        inits = [self._value(v) for v in _split_top(inits_text or "", ",")]
        op = scf.WhileOp(inits)
        block.append(op)
        for v, init in zip(op.before.args, inits):
            pass  # before args bound by position below
        # printer does not name while block args; rebind by position when
        # the body references them is unsupported -- while round-trip
        # requires named args, which the printer provides via name hints
        self._parse_block_body(op.before)
        self._parse_block_body(op.after)
        self._bind_results(results_text, op)

    def _bind_results(self, results_text: str | None, op: Operation) -> None:
        if not results_text:
            return
        names = [n.strip().lstrip("%") for n in results_text.split(",")]
        if len(names) != len(op.results):
            raise IRError(
                f"{op.opname}: {len(names)} result names for "
                f"{len(op.results)} results"
            )
        for n, v in zip(names, op.results):
            self.values[n] = v
            v.name_hint = n

    def _value(self, token: str) -> Value:
        token = token.strip()
        if not token.startswith("%"):
            raise IRError(f"expected %value, got {token!r}")
        name = token[1:]
        try:
            return self.values[name]
        except KeyError:
            raise IRError(f"use of undefined value %{name}") from None


def _parse_attrs(text: str) -> dict:
    attrs: dict = {}
    for part in _split_top(text, ","):
        key, _, val = part.partition("=")
        attrs[key.strip()] = ast.literal_eval(val.strip())
    return attrs


def parse_module(text: str) -> Module:
    """Parse printed IR text back into a module."""
    return _Parser(text).parse_module()
