"""Core IR structures: values, operations, blocks, regions, functions,
modules.

Structured control flow only (as in MLIR's ``scf``): every region has a
single block and loops/branches are ops with nested regions, which keeps
analyses simple and sound.  SSA: each :class:`Value` is defined once, by an
operation result or a block argument.
"""

from __future__ import annotations

import itertools
from typing import Iterator

from repro.errors import IRError
from repro.ir.types import FuncType, IRType

_value_ids = itertools.count()


class Value:
    """An SSA value: the result of an op or a block argument."""

    __slots__ = ("type", "name_hint", "uid", "producer", "owner_block")

    def __init__(self, type: IRType, name_hint: str = "") -> None:
        self.type = type
        self.name_hint = name_hint
        self.uid = next(_value_ids)
        self.producer: "Operation | None" = None
        self.owner_block: "Block | None" = None

    @property
    def is_block_arg(self) -> bool:
        return self.owner_block is not None

    def __repr__(self) -> str:
        tag = self.name_hint or f"v{self.uid}"
        return f"%{tag}: {self.type}"


class Operation:
    """Base operation: operands, typed results, attributes, nested regions.

    Subclasses (the dialects) define ``opname`` and typed constructors.
    Attributes are plain Python values; passes communicate through them
    (e.g. ``native``, ``prefetch_distance``).
    """

    opname = "generic.op"
    #: does this op terminate its block? (return / yield / condition)
    is_terminator = False

    def __init__(
        self,
        operands: list[Value] | tuple = (),
        result_types: list[IRType] | tuple = (),
        attrs: dict | None = None,
        regions: "list[Region] | tuple" = (),
    ) -> None:
        self.operands: list[Value] = list(operands)
        for v in self.operands:
            if not isinstance(v, Value):
                raise IRError(
                    f"{self.opname}: operand {v!r} is not an SSA Value "
                    f"(did you pass a raw Python number?)"
                )
        self.results: list[Value] = []
        for t in result_types:
            val = Value(t)
            val.producer = self
            self.results.append(val)
        self.attrs: dict = dict(attrs or {})
        self.regions: list[Region] = list(regions)
        for r in self.regions:
            r.parent_op = self
        self.parent_block: "Block | None" = None

    @property
    def result(self) -> Value:
        if len(self.results) != 1:
            raise IRError(f"{self.opname} has {len(self.results)} results, not 1")
        return self.results[0]

    def region(self, i: int = 0) -> "Region":
        return self.regions[i]

    def walk(self) -> Iterator["Operation"]:
        """This op, then every op nested in its regions, pre-order."""
        yield self
        for region in self.regions:
            for block in region.blocks:
                for op in block.ops:
                    yield from op.walk()

    def replace_uses_of(self, old: Value, new: Value) -> None:
        self.operands = [new if v is old else v for v in self.operands]

    def __repr__(self) -> str:
        return f"<{self.opname} @{id(self):x}>"


class Block:
    """A straight-line op sequence with typed arguments."""

    def __init__(self, arg_types: list[IRType] | tuple = (), arg_names=()) -> None:
        names = list(arg_names) + [""] * (len(arg_types) - len(arg_names))
        self.args: list[Value] = []
        for t, n in zip(arg_types, names):
            v = Value(t, n)
            v.owner_block = self
            self.args.append(v)
        self.ops: list[Operation] = []
        self.parent_region: "Region | None" = None

    def append(self, op: Operation) -> Operation:
        if self.ops and self.ops[-1].is_terminator:
            raise IRError(
                f"cannot append {op.opname} after terminator "
                f"{self.ops[-1].opname}"
            )
        op.parent_block = self
        self.ops.append(op)
        return op

    def insert(self, index: int, op: Operation) -> Operation:
        op.parent_block = self
        self.ops.insert(index, op)
        return op

    def remove(self, op: Operation) -> None:
        self.ops.remove(op)
        op.parent_block = None

    @property
    def terminator(self) -> Operation | None:
        if self.ops and self.ops[-1].is_terminator:
            return self.ops[-1]
        return None


class Region:
    """A container of blocks; we only use single-block regions."""

    def __init__(self, blocks: list[Block] | None = None) -> None:
        self.blocks: list[Block] = blocks or []
        for b in self.blocks:
            b.parent_region = self
        self.parent_op: Operation | None = None

    def add_block(self, block: Block) -> Block:
        block.parent_region = self
        self.blocks.append(block)
        return block

    @property
    def block(self) -> Block:
        if len(self.blocks) != 1:
            raise IRError(f"region has {len(self.blocks)} blocks, expected 1")
        return self.blocks[0]


class Function:
    """A named function: one body block whose args are the parameters."""

    def __init__(
        self,
        name: str,
        arg_types: list[IRType] | tuple = (),
        result_types: list[IRType] | tuple = (),
        arg_names=(),
    ) -> None:
        self.name = name
        self.type = FuncType(tuple(arg_types), tuple(result_types))
        self.body = Block(arg_types, arg_names)
        self.attrs: dict = {}

    @property
    def args(self) -> list[Value]:
        return self.body.args

    @property
    def is_remotable(self) -> bool:
        return bool(self.attrs.get("remotable"))

    @property
    def is_offloaded(self) -> bool:
        return bool(self.attrs.get("offloaded"))

    def walk(self) -> Iterator[Operation]:
        for op in self.body.ops:
            yield from op.walk()

    def __repr__(self) -> str:
        return f"<func @{self.name} {self.type}>"


class Module:
    """A compilation unit: functions plus module-level attributes
    (section configs, plan provenance, profiling flags)."""

    def __init__(self, name: str = "module") -> None:
        self.name = name
        self.functions: dict[str, Function] = {}
        self.attrs: dict = {}

    def add(self, fn: Function) -> Function:
        if fn.name in self.functions:
            raise IRError(f"duplicate function @{fn.name}")
        self.functions[fn.name] = fn
        return fn

    def get(self, name: str) -> Function:
        try:
            return self.functions[name]
        except KeyError:
            raise IRError(f"no function @{name} in module {self.name}") from None

    def walk(self) -> Iterator[Operation]:
        for fn in self.functions.values():
            yield from fn.walk()

    def clone(self) -> "Module":
        """Deep-copy the module (compilation iterations mutate copies)."""
        from repro.ir.cloning import clone_module

        return clone_module(self)
