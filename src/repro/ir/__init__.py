"""A small multi-dialect SSA IR, in the spirit of MLIR.

The paper implements Mira's static parts as MLIR dialects (``remotable``
and ``rmem``, section 5.1) plus analyses and rewrites over standard
dialects.  This package provides the equivalent substrate:

* :mod:`repro.ir.types` -- index/int/float/struct/memref/function types;
* :mod:`repro.ir.core` -- values, operations, blocks, regions, functions,
  modules;
* :mod:`repro.ir.dialects` -- ``arith``, ``memref``, ``scf``, ``func``,
  ``compute``, ``remotable``, ``rmem``, ``prof``;
* :mod:`repro.ir.builder` -- an ergonomic construction API;
* :mod:`repro.ir.printer` -- the textual form used for Figs. 13/14;
* :mod:`repro.ir.verifier` -- structural/SSA verification.
"""

from repro.ir.builder import IRBuilder
from repro.ir.core import Block, Function, Module, Operation, Region, Value
from repro.ir.printer import print_module
from repro.ir.types import (
    BoolType,
    FloatType,
    FuncType,
    IndexType,
    IntType,
    MemRefType,
    StructType,
)
from repro.ir.verifier import verify

__all__ = [
    "IRBuilder",
    "Block",
    "Function",
    "Module",
    "Operation",
    "Region",
    "Value",
    "print_module",
    "BoolType",
    "FloatType",
    "FuncType",
    "IndexType",
    "IntType",
    "MemRefType",
    "StructType",
    "verify",
]
