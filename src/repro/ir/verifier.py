"""IR structural and SSA verification.

``verify`` raises :class:`VerificationError` with a precise message on the
first violation.  The analyses and passes assume verified IR, matching the
paper's soundness stance (section 5.2: "our analysis is sound, as we trade
completeness for correctness").
"""

from __future__ import annotations

from repro.errors import VerificationError
from repro.ir.core import Block, Function, Module, Operation, Value
from repro.ir.dialects import func as func_d
from repro.ir.dialects import scf


def verify(module: Module) -> None:
    for fn in module.functions.values():
        _verify_function(module, fn)


def _verify_function(module: Module, fn: Function) -> None:
    term = fn.body.terminator
    if term is None or not isinstance(term, func_d.ReturnOp):
        raise VerificationError(f"@{fn.name}: body must end with func.return")
    ret_types = tuple(v.type for v in term.operands)
    if ret_types != fn.type.results:
        raise VerificationError(
            f"@{fn.name}: returns {ret_types}, declared {fn.type.results}"
        )
    visible: set[int] = {a.uid for a in fn.args}
    _verify_block(module, fn, fn.body, visible)


def _verify_block(
    module: Module, fn: Function, block: Block, visible: set[int]
) -> None:
    for pos, op in enumerate(block.ops):
        for v in op.operands:
            if v.uid not in visible:
                raise VerificationError(
                    f"@{fn.name}: {op.opname} uses {v!r} before its definition"
                )
        if op.is_terminator and pos != len(block.ops) - 1:
            raise VerificationError(
                f"@{fn.name}: terminator {op.opname} not at end of block"
            )
        _verify_op(module, fn, op)
        for region in op.regions:
            for inner in region.blocks:
                inner_visible = visible | {a.uid for a in inner.args}
                _verify_block(module, fn, inner, inner_visible)
        for r in op.results:
            visible.add(r.uid)


def _verify_op(module: Module, fn: Function, op: Operation) -> None:
    if isinstance(op, scf.ForOp):
        term = op.body.terminator
        if term is None or not isinstance(term, scf.YieldOp):
            raise VerificationError(f"@{fn.name}: scf.for body must end with scf.yield")
        got = tuple(v.type for v in term.operands)
        want = tuple(v.type for v in op.iter_args)
        if got != want:
            raise VerificationError(
                f"@{fn.name}: scf.for yields {got}, iter_args are {want}"
            )
    elif isinstance(op, scf.IfOp):
        want = tuple(r.type for r in op.results)
        for arm_name, arm in (("then", op.then_block), ("else", op.else_block)):
            term = arm.terminator
            if want and (term is None or not isinstance(term, scf.YieldOp)):
                raise VerificationError(
                    f"@{fn.name}: scf.if {arm_name} arm must yield {want}"
                )
            if term is not None:
                got = tuple(v.type for v in term.operands)
                if got != want:
                    raise VerificationError(
                        f"@{fn.name}: scf.if {arm_name} arm yields {got}, "
                        f"results are {want}"
                    )
    elif isinstance(op, scf.WhileOp):
        before_term = op.before.terminator
        if before_term is None or not isinstance(before_term, scf.ConditionOp):
            raise VerificationError(
                f"@{fn.name}: scf.while 'before' must end with scf.condition"
            )
        fwd = tuple(v.type for v in before_term.forwarded)
        want = tuple(v.type for v in op.init_args)
        if fwd != want:
            raise VerificationError(
                f"@{fn.name}: scf.while forwards {fwd}, carried types are {want}"
            )
        after_term = op.after.terminator
        if after_term is None or not isinstance(after_term, scf.YieldOp):
            raise VerificationError(
                f"@{fn.name}: scf.while body must end with scf.yield"
            )
        got = tuple(v.type for v in after_term.operands)
        if got != want:
            raise VerificationError(
                f"@{fn.name}: scf.while body yields {got}, carried types are {want}"
            )
    elif isinstance(op, scf.ParallelOp):
        term = op.body.terminator
        if term is None or not isinstance(term, scf.YieldOp) or term.operands:
            raise VerificationError(
                f"@{fn.name}: scf.parallel body must end with empty scf.yield"
            )
    elif isinstance(op, func_d.CallOp):
        callee = module.functions.get(op.callee)
        if callee is None:
            raise VerificationError(f"@{fn.name}: call to unknown @{op.callee}")
        got = tuple(v.type for v in op.operands)
        if got != callee.type.inputs:
            raise VerificationError(
                f"@{fn.name}: call @{op.callee} with {got}, "
                f"expects {callee.type.inputs}"
            )
        res = tuple(r.type for r in op.results)
        if res != callee.type.results:
            raise VerificationError(
                f"@{fn.name}: call @{op.callee} binds {res}, "
                f"returns {callee.type.results}"
            )
