"""IR type system.

Types are immutable and compared structurally.  ``StructType`` carries the
field layout the selective-transmission analysis needs (which byte ranges
of an element a scope actually touches, section 4.5).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import IRError


class IRType:
    """Base class; all concrete types are frozen dataclasses."""

    @property
    def byte_size(self) -> int:
        raise IRError(f"{self!r} has no byte size")


@dataclass(frozen=True)
class IndexType(IRType):
    """Loop-index / address arithmetic type (8 bytes)."""

    @property
    def byte_size(self) -> int:
        return 8

    def __str__(self) -> str:
        return "index"


@dataclass(frozen=True)
class IntType(IRType):
    width: int = 64

    def __post_init__(self) -> None:
        if self.width not in (1, 8, 16, 32, 64):
            raise IRError(f"unsupported integer width {self.width}")

    @property
    def byte_size(self) -> int:
        return max(1, self.width // 8)

    def __str__(self) -> str:
        return f"i{self.width}"


@dataclass(frozen=True)
class FloatType(IRType):
    width: int = 64

    def __post_init__(self) -> None:
        if self.width not in (32, 64):
            raise IRError(f"unsupported float width {self.width}")

    @property
    def byte_size(self) -> int:
        return self.width // 8

    def __str__(self) -> str:
        return f"f{self.width}"


#: i1, used by comparisons and scf.if / scf.while conditions
BoolType = IntType(1)


@dataclass(frozen=True)
class StructType(IRType):
    """A named record with fixed field layout (packed, no padding)."""

    name: str
    fields: tuple[tuple[str, IRType], ...]

    def __post_init__(self) -> None:
        seen = set()
        for fname, _ in self.fields:
            if fname in seen:
                raise IRError(f"duplicate field {fname!r} in struct {self.name}")
            seen.add(fname)

    @property
    def byte_size(self) -> int:
        return sum(t.byte_size for _, t in self.fields)

    def field_type(self, fname: str) -> IRType:
        for name, t in self.fields:
            if name == fname:
                return t
        raise IRError(f"struct {self.name} has no field {fname!r}")

    def field_offset(self, fname: str) -> int:
        off = 0
        for name, t in self.fields:
            if name == fname:
                return off
            off += t.byte_size
        raise IRError(f"struct {self.name} has no field {fname!r}")

    def field_names(self) -> list[str]:
        return [name for name, _ in self.fields]

    def __str__(self) -> str:
        inner = ", ".join(f"{n}: {t}" for n, t in self.fields)
        return f"!{self.name}<{inner}>"


@dataclass(frozen=True)
class MemRefType(IRType):
    """A reference to a linear buffer of elements.

    ``remote=True`` marks the *remotable* variant produced by the
    convert-to-remote pass (the paper's ``remotable`` dialect objects).
    """

    elem: IRType
    remote: bool = False

    @property
    def elem_size(self) -> int:
        return self.elem.byte_size

    @property
    def byte_size(self) -> int:
        return 8  # the reference itself

    def as_remote(self) -> "MemRefType":
        return MemRefType(self.elem, remote=True)

    def __str__(self) -> str:
        prefix = "rmemref" if self.remote else "memref"
        return f"{prefix}<{self.elem}>"


@dataclass(frozen=True)
class FuncType(IRType):
    inputs: tuple[IRType, ...] = field(default=())
    results: tuple[IRType, ...] = field(default=())

    def __str__(self) -> str:
        ins = ", ".join(str(t) for t in self.inputs)
        outs = ", ".join(str(t) for t in self.results)
        return f"({ins}) -> ({outs})"


#: convenience singletons
INDEX = IndexType()
I64 = IntType(64)
I32 = IntType(32)
F64 = FloatType(64)
F32 = FloatType(32)
