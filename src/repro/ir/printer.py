"""Textual IR printing (MLIR-flavored).

This is what reproduces the paper's Figs. 13 and 14: the graph-traversal
example after conversion to ``remotable``/``rmem`` and after prefetch
optimization.
"""

from __future__ import annotations

import io

from repro.ir.core import Block, Function, Module, Operation, Value
from repro.ir.dialects import scf


class _Namer:
    def __init__(self) -> None:
        self._names: dict[int, str] = {}
        self._counter = 0
        self._used: set[str] = set()

    def name(self, v: Value) -> str:
        if v.uid in self._names:
            return self._names[v.uid]
        base = v.name_hint
        if base and base not in self._used:
            name = base
        else:
            name = str(self._counter)
            self._counter += 1
        self._used.add(name)
        self._names[v.uid] = name
        return name

    def ref(self, v: Value) -> str:
        return "%" + self.name(v)


def print_module(module: Module) -> str:
    out = io.StringIO()
    out.write(f"module @{module.name} {{\n")
    for fn in module.functions.values():
        _print_function(fn, out, indent=1)
    out.write("}\n")
    return out.getvalue()


def print_function(fn: Function) -> str:
    out = io.StringIO()
    _print_function(fn, out, indent=0)
    return out.getvalue()


def _print_function(fn: Function, out: io.StringIO, indent: int) -> None:
    namer = _Namer()
    pad = "  " * indent
    args = ", ".join(f"{namer.ref(a)}: {a.type}" for a in fn.args)
    results = ", ".join(str(t) for t in fn.type.results)
    attrs = _fmt_attrs(fn.attrs)
    head = f"{pad}func @{fn.name}({args})"
    if results:
        head += f" -> ({results})"
    if attrs:
        head += f" attributes {attrs}"
    out.write(head + " {\n")
    _print_block_ops(fn.body, out, indent + 1, namer)
    out.write(pad + "}\n")


def _print_block_ops(block: Block, out: io.StringIO, indent: int, namer: _Namer) -> None:
    for op in block.ops:
        _print_op(op, out, indent, namer)


def _print_op(op: Operation, out: io.StringIO, indent: int, namer: _Namer) -> None:
    pad = "  " * indent
    lhs = ""
    if op.results:
        lhs = ", ".join(namer.ref(r) for r in op.results) + " = "

    if isinstance(op, scf.ForOp):
        iters = ""
        if op.iter_args:
            pairs = ", ".join(
                f"{namer.ref(ba)} = {namer.ref(init)}"
                for ba, init in zip(op.body_iter_args, op.iter_args)
            )
            iters = f" iter_args({pairs})"
        out.write(
            f"{pad}{lhs}scf.for {namer.ref(op.induction_var)} = "
            f"{namer.ref(op.lb)} to {namer.ref(op.ub)} "
            f"step {namer.ref(op.step)}{iters} {{\n"
        )
        _print_block_ops(op.body, out, indent + 1, namer)
        out.write(pad + "}\n")
        return

    if isinstance(op, scf.ParallelOp):
        out.write(
            f"{pad}scf.parallel {namer.ref(op.induction_var)} = "
            f"{namer.ref(op.lb)} to {namer.ref(op.ub)} step {namer.ref(op.step)} "
            f"threads({op.num_threads}) {{\n"
        )
        _print_block_ops(op.body, out, indent + 1, namer)
        out.write(pad + "}\n")
        return

    if isinstance(op, scf.IfOp):
        out.write(f"{pad}{lhs}scf.if {namer.ref(op.cond)} {{\n")
        _print_block_ops(op.then_block, out, indent + 1, namer)
        if op.else_block.ops:
            out.write(pad + "} else {\n")
            _print_block_ops(op.else_block, out, indent + 1, namer)
        out.write(pad + "}\n")
        return

    if isinstance(op, scf.WhileOp):
        inits = ", ".join(namer.ref(v) for v in op.init_args)
        out.write(f"{pad}{lhs}scf.while ({inits}) {{\n")
        _print_block_ops(op.before, out, indent + 1, namer)
        out.write(pad + "} do {\n")
        _print_block_ops(op.after, out, indent + 1, namer)
        out.write(pad + "}\n")
        return

    # generic form: opname(%operands) {attrs} : result types
    operands = ", ".join(namer.ref(v) for v in op.operands)
    attrs = _fmt_attrs(op.attrs)
    line = f"{pad}{lhs}{op.opname}({operands})"
    if attrs:
        line += f" {attrs}"
    if op.results:
        line += " : " + ", ".join(str(r.type) for r in op.results)
    out.write(line + "\n")
    for region in op.regions:
        for block in region.blocks:
            out.write(pad + "{\n")
            _print_block_ops(block, out, indent + 1, namer)
            out.write(pad + "}\n")


def _fmt_attrs(attrs: dict) -> str:
    shown = {
        k: v for k, v in attrs.items() if not (v is None or v is False or v == "")
    }
    if not shown:
        return ""
    inner = ", ".join(f"{k} = {v!r}" for k, v in sorted(shown.items()))
    return "{" + inner + "}"
