"""Ergonomic IR construction.

Workloads build programs through this API::

    b = IRBuilder()
    with b.func("main") as fn:
        edges = b.alloc(edge_t, n_edges, "edges")
        with b.for_(0, n_edges) as loop:
            src = b.load(edges, loop.iv, field="src")
            ...

Python ints/floats auto-promote to constants where a Value is expected;
``load``/``store``/``touch`` dispatch to the local (``memref``) or remote
(``rmem``) dialect based on the reference's type, so the same builder code
serves hand-written remote programs and pass-converted ones.
"""

from __future__ import annotations

from contextlib import contextmanager

from repro.errors import IRError
from repro.ir.core import Block, Function, Module, Operation, Value
from repro.ir.dialects import arith, compute, func, memref, prof, remotable, rmem, scf
from repro.ir.types import BoolType, FloatType, INDEX, IndexType, IntType, IRType


class ForHandle:
    """Yielded by ``for_``/``parallel``: exposes the induction variable,
    body-carried values, and (after the with-block) the loop results."""

    def __init__(self, op) -> None:
        self.op = op

    @property
    def iv(self) -> Value:
        return self.op.induction_var

    @property
    def args(self) -> list[Value]:
        return self.op.body_iter_args

    @property
    def results(self) -> list[Value]:
        return self.op.results


class IfHandle:
    def __init__(self, op: scf.IfOp, builder: "IRBuilder") -> None:
        self.op = op
        self._builder = builder

    @property
    def results(self) -> list[Value]:
        return self.op.results

    @contextmanager
    def then(self):
        self._builder._push(self.op.then_block)
        try:
            yield
        finally:
            self._builder._ensure_yield(self.op.then_block)
            self._builder._pop()

    @contextmanager
    def else_(self):
        self._builder._push(self.op.else_block)
        try:
            yield
        finally:
            self._builder._ensure_yield(self.op.else_block)
            self._builder._pop()


class WhileHandle:
    def __init__(self, op: scf.WhileOp, builder: "IRBuilder") -> None:
        self.op = op
        self._builder = builder

    @property
    def results(self) -> list[Value]:
        return self.op.results

    @contextmanager
    def before(self):
        """Condition region; yield its carried values; finish with
        ``b.condition(pred, forwarded)``."""
        self._builder._push(self.op.before)
        try:
            yield self.op.before.args
        finally:
            self._builder._pop()

    @contextmanager
    def body(self):
        """Body region; yield the forwarded values; finish with
        ``b.yield_(next_values)``."""
        self._builder._push(self.op.after)
        try:
            yield self.op.after.args
        finally:
            self._builder._pop()


class IRBuilder:
    """Builds IR into a module, tracking an insertion-block stack."""

    def __init__(self, module: Module | None = None) -> None:
        self.module = module or Module()
        self._blocks: list[Block] = []

    # -- insertion machinery ---------------------------------------------

    def _push(self, block: Block) -> None:
        self._blocks.append(block)

    def _pop(self) -> None:
        self._blocks.pop()

    @property
    def block(self) -> Block:
        if not self._blocks:
            raise IRError("no insertion point: use 'with builder.func(...)'")
        return self._blocks[-1]

    def insert(self, op: Operation) -> Operation:
        return self.block.append(op)

    def _ensure_yield(self, block: Block) -> None:
        if block.terminator is None:
            block.append(scf.YieldOp([]))

    # -- functions ----------------------------------------------------------

    @contextmanager
    def func(self, name: str, arg_types=(), result_types=(), arg_names=()):
        fn = Function(name, list(arg_types), list(result_types), list(arg_names))
        self.module.add(fn)
        self._push(fn.body)
        try:
            yield fn
        finally:
            if fn.body.terminator is None:
                fn.body.append(func.ReturnOp([]))
            self._pop()

    # -- constants and coercion ----------------------------------------------

    def index(self, value: int) -> Value:
        return self.insert(arith.ConstantOp(int(value), INDEX)).result

    def i64(self, value: int) -> Value:
        return self.insert(arith.ConstantOp(int(value), IntType(64))).result

    def f64(self, value: float) -> Value:
        return self.insert(arith.ConstantOp(float(value), FloatType(64))).result

    def true(self) -> Value:
        return self.insert(arith.ConstantOp(1, BoolType)).result

    def false(self) -> Value:
        return self.insert(arith.ConstantOp(0, BoolType)).result

    def _coerce(self, v, like: Value | None = None, type: IRType | None = None) -> Value:
        """Promote a Python literal to a constant of the right type."""
        if isinstance(v, Value):
            return v
        t = type or (like.type if like is not None else None)
        if t is None:
            t = INDEX if isinstance(v, int) else FloatType(64)
        if isinstance(t, FloatType):
            v = float(v)
        elif isinstance(t, (IntType, IndexType)):
            v = int(v)
        return self.insert(arith.ConstantOp(v, t)).result

    # -- arithmetic -----------------------------------------------------------

    def _binary(self, kind: str, a, b_) -> Value:
        a_v = a if isinstance(a, Value) else None
        b_v = b_ if isinstance(b_, Value) else None
        if a_v is None and b_v is None:
            raise IRError(f"arith.{kind}: at least one operand must be a Value")
        a = self._coerce(a, like=b_v)
        b_ = self._coerce(b_, like=a)
        return self.insert(arith.BinaryOp(kind, a, b_)).result

    def add(self, a, b) -> Value:
        return self._binary("add", a, b)

    def sub(self, a, b) -> Value:
        return self._binary("sub", a, b)

    def mul(self, a, b) -> Value:
        return self._binary("mul", a, b)

    def div(self, a, b) -> Value:
        return self._binary("div", a, b)

    def rem(self, a, b) -> Value:
        return self._binary("rem", a, b)

    def min(self, a, b) -> Value:
        return self._binary("min", a, b)

    def max(self, a, b) -> Value:
        return self._binary("max", a, b)

    def cmp(self, pred: str, a, b) -> Value:
        a_v = a if isinstance(a, Value) else None
        b_v = b if isinstance(b, Value) else None
        a = self._coerce(a, like=b_v)
        b = self._coerce(b, like=a)
        return self.insert(arith.CmpOp(pred, a, b)).result

    def select(self, cond: Value, a: Value, b: Value) -> Value:
        return self.insert(arith.SelectOp(cond, a, b)).result

    def cast(self, v: Value, to_type: IRType) -> Value:
        if v.type == to_type:
            return v
        return self.insert(arith.CastOp(v, to_type)).result

    # -- memory ---------------------------------------------------------------

    def alloc(
        self,
        elem_type: IRType,
        num_elems: int,
        name: str = "",
        obj_attrs: dict | None = None,
    ) -> Value:
        return self.insert(
            memref.AllocOp(elem_type, num_elems, name, obj_attrs)
        ).result

    def ralloc(
        self,
        elem_type: IRType,
        num_elems: int,
        name: str = "",
        obj_attrs: dict | None = None,
    ) -> Value:
        return self.insert(
            remotable.RAllocOp(elem_type, num_elems, name, obj_attrs)
        ).result

    def load(self, ref: Value, index, field: str | None = None) -> Value:
        index = self._coerce(index, type=INDEX)
        if ref.type.remote:
            return self.insert(rmem.RLoadOp(ref, index, field)).result
        return self.insert(memref.LoadOp(ref, index, field)).result

    def store(self, value, ref: Value, index, field: str | None = None) -> None:
        index = self._coerce(index, type=INDEX)
        elem = ref.type.elem
        slot_t = elem.field_type(field) if field is not None else elem
        value = self._coerce(value, type=slot_t)
        if ref.type.remote:
            self.insert(rmem.RStoreOp(value, ref, index, field))
        else:
            self.insert(memref.StoreOp(value, ref, index, field))

    def touch(self, ref: Value, start, length: int, is_write: bool = False) -> None:
        start = self._coerce(start, type=INDEX)
        if ref.type.remote:
            self.insert(rmem.RTouchOp(ref, start, length, is_write))
        else:
            self.insert(memref.TouchOp(ref, start, length, is_write))

    def dealloc(self, ref: Value) -> None:
        self.insert(memref.DeallocOp(ref))

    # -- rmem hints ------------------------------------------------------------

    def prefetch(self, ref: Value, index, count: int = 1) -> None:
        self.insert(rmem.PrefetchOp(ref, self._coerce(index, type=INDEX), count))

    def flush(self, ref: Value, index, count: int = 1) -> None:
        self.insert(rmem.FlushOp(ref, self._coerce(index, type=INDEX), count))

    def evict_hint(self, ref: Value, index, count: int = 1, mode: str = "exact") -> None:
        self.insert(
            rmem.EvictHintOp(ref, self._coerce(index, type=INDEX), count, mode)
        )

    def discard(self, ref: Value) -> None:
        self.insert(rmem.DiscardOp(ref))

    def section_open(self, name: str, refs: list[Value]) -> None:
        self.insert(rmem.SectionOpenOp(name, refs))

    def section_close(self, name: str) -> None:
        self.insert(rmem.SectionCloseOp(name))

    # -- control flow -----------------------------------------------------------

    @contextmanager
    def for_(self, lb, ub, step=1, iter_args=()):
        op = scf.ForOp(
            self._coerce(lb, type=INDEX),
            self._coerce(ub, type=INDEX),
            self._coerce(step, type=INDEX),
            list(iter_args),
        )
        self.insert(op)
        self._push(op.body)
        try:
            yield ForHandle(op)
        finally:
            self._ensure_yield(op.body)
            self._pop()

    @contextmanager
    def parallel(self, lb, ub, step=1, num_threads: int = 1):
        op = scf.ParallelOp(
            self._coerce(lb, type=INDEX),
            self._coerce(ub, type=INDEX),
            self._coerce(step, type=INDEX),
            num_threads,
        )
        self.insert(op)
        self._push(op.body)
        try:
            yield ForHandle(op)
        finally:
            self._ensure_yield(op.body)
            self._pop()

    def if_(self, cond: Value, result_types=()) -> IfHandle:
        op = scf.IfOp(cond, list(result_types))
        self.insert(op)
        return IfHandle(op, self)

    def while_(self, init_args: list[Value]) -> WhileHandle:
        op = scf.WhileOp(list(init_args))
        self.insert(op)
        return WhileHandle(op, self)

    def yield_(self, values=()) -> None:
        self.insert(scf.YieldOp(list(values)))

    def condition(self, cond: Value, forwarded=()) -> None:
        self.insert(scf.ConditionOp(cond, list(forwarded)))

    # -- calls, compute, profiling ---------------------------------------------

    def call(self, callee: str, args=(), result_types=()) -> Operation:
        return self.insert(func.CallOp(callee, list(args), list(result_types)))

    def ret(self, values=()) -> None:
        self.insert(func.ReturnOp(list(values)))

    def work(self, units: float, label: str = "") -> None:
        self.insert(compute.WorkOp(units, label))

    def prof_begin(self, label: str) -> None:
        self.insert(prof.RegionBeginOp(label))

    def prof_end(self, label: str) -> None:
        self.insert(prof.RegionEndOp(label))
