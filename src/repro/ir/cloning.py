"""Deep-cloning of IR.

The controller compiles a fresh copy of the program each iteration (and
rolls back to the previous one when a new configuration regresses,
section 4.1), so cloning must preserve SSA structure exactly.

Cloning is generic over op classes: every op's state lives in the base
``Operation`` fields, so we can rebuild instances without calling the
typed constructors.
"""

from __future__ import annotations

import copy

from repro.errors import IRError
from repro.ir.core import Block, Function, Module, Operation, Region, Value


def clone_module(module: Module) -> Module:
    out = Module(module.name)
    out.attrs = copy.deepcopy(module.attrs)
    for fn in module.functions.values():
        out.add(clone_function(fn))
    return out


def clone_function(fn: Function) -> Function:
    value_map: dict[Value, Value] = {}
    out = Function(
        fn.name,
        list(fn.type.inputs),
        list(fn.type.results),
        [a.name_hint for a in fn.args],
    )
    out.attrs = copy.deepcopy(fn.attrs)
    for old_arg, new_arg in zip(fn.args, out.args):
        value_map[old_arg] = new_arg
    _clone_into(fn.body, out.body, value_map)
    return out


def _clone_into(src: Block, dst: Block, value_map: dict[Value, Value]) -> None:
    for op in src.ops:
        dst.ops.append(_clone_op(op, value_map, dst))


def _clone_op(op: Operation, value_map: dict[Value, Value], parent: Block) -> Operation:
    new_op: Operation = object.__new__(type(op))
    try:
        new_op.operands = [value_map[v] for v in op.operands]
    except KeyError as e:
        raise IRError(
            f"clone of {op.opname}: operand {e.args[0]!r} not dominated by "
            f"its definition"
        ) from None
    new_op.attrs = copy.deepcopy(op.attrs)
    new_op.results = []
    for res in op.results:
        nv = Value(res.type, res.name_hint)
        nv.producer = new_op
        new_op.results.append(nv)
        value_map[res] = nv
    new_op.regions = []
    for region in op.regions:
        new_region = Region()
        new_region.parent_op = new_op
        for block in region.blocks:
            new_block = Block(
                [a.type for a in block.args], [a.name_hint for a in block.args]
            )
            new_region.add_block(new_block)
            for old_arg, new_arg in zip(block.args, new_block.args):
                value_map[old_arg] = new_arg
            _clone_into(block, new_block, value_map)
        new_op.regions.append(new_region)
    new_op.parent_block = parent
    return new_op
