"""Pluggable prefetch policies (Mira §6 / 3PO / Leap).

Prefetching is a *strategy*: the memory systems (``FastSwap``, ``Leap``,
``CacheManager``) own the mechanism -- issuing asynchronous page reads --
while a :class:`PrefetchPolicy` owns the decision of *what* to fetch.
Policies observe the page-access stream (``record``), propose future
pages on a demand miss (``plan``), and learn from the fate of their
prefetches (``feedback``: used-timely / used-late / wasted).

All policies are deterministic: integer-only state, insertion-ordered
tables, explicit tie-breaks.  Two runs of the same workload under the
same policy produce bit-identical virtual time and byte-identical
traces on every engine.
"""

from repro.prefetch.policy import (
    POLICY_ENV,
    POLICY_NAMES,
    PrefetchPolicy,
    make_policy,
    policy_from_env,
)

__all__ = [
    "POLICY_ENV",
    "POLICY_NAMES",
    "PrefetchPolicy",
    "make_policy",
    "policy_from_env",
]
