"""Leap's majority-trend stride prefetcher as a pluggable policy.

The algorithm (Al Maruf & Chowdhury, ATC'20) lived inside
``repro.baselines.leap`` until PR 7; it now lives here so all policies
share one package, and ``baselines.leap`` re-exports it for
compatibility.  The behaviour is byte-for-byte identical to the embedded
version: ``MajorityPolicy`` keeps ``traced = False`` so runs under the
default policy reproduce the committed golden trace digests.
"""

from __future__ import annotations

from collections import deque

from repro.prefetch.policy import PrefetchPolicy

#: page-access history length
HISTORY_LEN = 32
#: Boyer-Moore detection windows tried smallest-first (Leap grows the
#: window until a majority appears)
DETECT_WINDOWS = (8, 16, 32)
#: prefetch window bounds
MIN_PREFETCH = 1
MAX_PREFETCH = 32


class MajorityTrendPrefetcher:
    """Boyer-Moore majority-stride detector with an adaptive window."""

    def __init__(self) -> None:
        self._history: deque[int] = deque(maxlen=HISTORY_LEN)
        #: inter-access strides, maintained incrementally alongside the
        #: history (always == pairwise deltas of ``_history``); rebuilding
        #: both lists per fault dominated Leap's wall-clock cost
        self._deltas: deque[int] = deque(maxlen=HISTORY_LEN - 1)
        self._window = MIN_PREFETCH
        self._outstanding: set[int] = set()
        self._useful = 0
        self._issued = 0
        self._last_page: int | None = None

    def record(self, page: int) -> None:
        # Leap observes the fault/access stream at page granularity:
        # repeated accesses within one page are a single history event
        if page == self._last_page:
            return
        history = self._history
        if history:
            self._deltas.append(page - history[-1])
        self._last_page = page
        history.append(page)
        if page in self._outstanding:
            self._outstanding.discard(page)
            self._useful += 1

    def majority_stride(self) -> int | None:
        """The majority inter-access page stride, or None."""
        if not self._deltas:
            return None
        deltas = list(self._deltas)
        for w in DETECT_WINDOWS:
            window = deltas[-w:]
            if len(window) < 2:
                continue
            candidate = _boyer_moore(window)
            if candidate is None or candidate == 0:
                continue
            if window.count(candidate) * 2 > len(window):
                return candidate
        return None

    def plan(self, page: int) -> list[int]:
        """Pages to prefetch after a miss on ``page``."""
        self._adapt()
        stride = self.majority_stride()
        if stride is None:
            return []
        plan = [page + stride * i for i in range(1, self._window + 1)]
        self._outstanding.update(plan)
        self._issued += len(plan)
        return plan

    def _adapt(self) -> None:
        if self._issued == 0:
            return
        if self._useful * 2 >= self._issued:
            self._window = min(self._window * 2, MAX_PREFETCH)
        else:
            self._window = max(self._window // 2, MIN_PREFETCH)
        self._useful = 0
        self._issued = 0
        self._outstanding.clear()


def _boyer_moore(items: list[int]) -> int | None:
    """Boyer-Moore majority-vote candidate (unverified)."""
    count = 0
    candidate: int | None = None
    for x in items:
        if count == 0:
            candidate = x
            count = 1
        elif x == candidate:
            count += 1
        else:
            count -= 1
    return candidate


class MajorityPolicy(PrefetchPolicy):
    """Strategy wrapper over :class:`MajorityTrendPrefetcher`.

    ``traced`` stays False: this is the default/compat policy, and its
    runs must keep emitting exactly the pre-PR-7 event stream.
    """

    name = "leap"
    traced = False

    def __init__(self, seed: int = 0) -> None:
        super().__init__(seed)
        self.prefetcher = MajorityTrendPrefetcher()

    def record(self, page: int) -> None:
        self.prefetcher.record(page)

    def _plan(self, page: int) -> list[int]:
        return self.prefetcher.plan(page)
