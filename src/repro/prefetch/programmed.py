"""3PO-style *programmed* prefetch policy.

3PO's observation: for oblivious access patterns the compiler knows the
exact future address stream, so prefetching needs no prediction at all.
We already compute that information -- scalar evolution resolves every
affine index to ``base + coeff * i``, and literal loop bounds give the
trip count -- so :func:`lower_prefetch_program` walks the IR from the
entry function and lowers every SCEV-resolved affine access with literal
bounds into a *page program*: an ordered list of per-allocation page
segments (start/stop/step, relative to the object base).

The planner injects this program into the Mira plan notes at plan time
(``core.section_planner.attach_prefetch_program``); baseline runs lower
it directly in ``prepare``.  At runtime the policy resolves allocation
names to live objects through the address space (objects are
page-aligned with a guard page, so a page has a unique owner), keeps a
per-object cursor into the materialized page stream, advances it as
``record`` observes touches, and answers ``plan`` with the next pages of
the faulting object's stream -- exact future pages, no history needed.

Indirect and non-literal accesses are skipped (sound: the policy simply
stays silent for them), which is exactly the regime where the history
policies still apply.
"""

from __future__ import annotations

from repro.analysis.access import analyze_scope
from repro.analysis.alias import AliasAnalysis
from repro.analysis.scev import Affine
from repro.ir.dialects import arith, func as func_d, memref, rmem, scf
from repro.memsim.address import PAGE_SIZE
from repro.prefetch.policy import PrefetchPolicy
from repro.transforms.utils import enclosing_loop

#: pages proposed per miss
WINDOW = 16
#: how far past the cursor record/plan searches for the touched page
LOOKAHEAD = 64
#: times a literal outer loop re-plays its inner segments
REPEAT_CAP = 4
#: total segments per program / pages per materialized stream
MAX_SEGMENTS = 256
MAX_STREAM = 8192
#: call-graph depth the lowering follows
MAX_CALL_DEPTH = 4

_LOOP_OPS = (scf.ForOp, scf.ParallelOp)
_TOUCH_OPS = (memref.TouchOp, rmem.RTouchOp)


def _literal(value) -> int | None:
    prod = value.producer
    if not isinstance(prod, arith.ConstantOp):
        return None
    return int(prod.value)


def _trip_count(loop) -> int | None:
    vals = []
    for v in (loop.lb, loop.ub, loop.step):
        lit = _literal(v)
        if lit is None:
            return None
        vals.append(lit)
    lb, ub, step = vals
    if step <= 0:
        return None
    return max(0, (ub - lb + step - 1) // step)


def _segment_of(rec, site, trips) -> dict | None:
    """Relative page segment covered by one affine record over a loop."""
    scev = rec.scev
    if not isinstance(scev, Affine) or scev.coeff == 0 or scev.base_const is None:
        return None
    if trips is None or trips <= 0:
        return None
    if not site.name:
        return None  # anonymous site: cannot resolve to a live object
    # touch indices are byte offsets; load/store indices are elements
    unit = 1 if isinstance(rec.op, _TOUCH_OPS) else site.elem_type.byte_size
    span = max(rec.granularity, 1)
    first = scev.base_const * unit
    last = (scev.base_const + scev.coeff * (trips - 1)) * unit
    lo, hi = min(first, last), max(first, last) + span - 1
    limit = site.num_elems * site.elem_type.byte_size - 1
    lo, hi = max(lo, 0), min(hi, limit)
    if lo > hi:
        return None
    p0, p1 = lo // PAGE_SIZE, hi // PAGE_SIZE
    if scev.coeff < 0:
        return {"site": site.name, "start": p1, "stop": p0, "step": -1}
    return {"site": site.name, "start": p0, "stop": p1, "step": 1}


def _lower_loop(loop, alias, module, segments, depth) -> None:
    trips = _trip_count(loop)
    summaries = analyze_scope(loop, alias)
    for site, summary in summaries.items():
        for rec in summary.records:
            if enclosing_loop(rec.op) is not loop:
                continue  # lowered when its own loop is visited
            seg = _segment_of(rec, site, trips)
            if seg is not None and len(segments) < MAX_SEGMENTS:
                segments.append(seg)
    # re-play nested control flow once per (capped) outer iteration so a
    # literal repeat loop re-announces its inner scans
    inner = [
        op
        for op in loop.body.ops
        if isinstance(op, _LOOP_OPS + (func_d.CallOp,))
    ]
    if not inner:
        return
    repeats = min(trips if trips else 1, REPEAT_CAP)
    for _ in range(max(repeats, 1)):
        for op in inner:
            _lower_op(op, alias, module, segments, depth)


def _lower_op(op, alias, module, segments, depth) -> None:
    if len(segments) >= MAX_SEGMENTS:
        return
    if isinstance(op, _LOOP_OPS):
        _lower_loop(op, alias, module, segments, depth)
    elif isinstance(op, func_d.CallOp) and depth < MAX_CALL_DEPTH:
        callee = module.functions.get(op.callee)
        if callee is not None:
            _lower_body(callee, alias, module, segments, depth + 1)


def _lower_body(fn, alias, module, segments, depth) -> None:
    for op in fn.body.ops:
        _lower_op(op, alias, module, segments, depth)


def lower_prefetch_program(module, entry: str = "main") -> dict:
    """Lower the module's affine accesses into a page program."""
    fn = module.functions.get(entry)
    if fn is None:
        return {"entry": entry, "segments": []}
    alias = AliasAnalysis(module)
    segments: list[dict] = []
    _lower_body(fn, alias, module, segments, depth=0)
    return {"entry": entry, "segments": segments}


class ProgrammedPolicy(PrefetchPolicy):
    name = "programmed"
    #: set by the runner so ``prepare`` can self-lower on baselines
    wants_program = True

    def __init__(self, seed: int = 0) -> None:
        super().__init__(seed)
        self._program: dict = {"entry": "main", "segments": []}
        #: site name -> ordered relative page list (consecutive-deduped)
        self._rel_streams: dict[str, list[int]] = {}
        #: page -> obj_id owning it, or -1 for pages outside any stream
        self._page_owner: dict[int, int] = {}
        #: obj_id -> (absolute page stream, cursor)
        self._streams: dict[int, list[int]] = {}
        self._cursor: dict[int, int] = {}
        self._known_objects: set[int] = set()

    # -- program loading -------------------------------------------------------

    def prepare(self, module, plan=None, entry: str = "main") -> None:
        notes = getattr(plan, "notes", None) or {}
        program = notes.get("prefetch_program")
        if program is None and module is not None:
            program = lower_prefetch_program(module, entry)
        if program is not None:
            self.load_program(program)

    def load_program(self, program: dict) -> None:
        self._program = program
        streams: dict[str, list[int]] = {}
        for seg in program.get("segments", []):
            pages = streams.setdefault(seg["site"], [])
            if len(pages) >= MAX_STREAM:
                continue
            for p in range(seg["start"], seg["stop"] + seg["step"], seg["step"]):
                if pages and pages[-1] == p:
                    continue
                pages.append(p)
                if len(pages) >= MAX_STREAM:
                    break
        self._rel_streams = streams
        self._page_owner.clear()
        self._streams.clear()
        self._cursor.clear()
        self._known_objects.clear()

    # -- runtime ---------------------------------------------------------------

    def _discover(self) -> None:
        """Map pages of newly allocated objects to their streams."""
        space = getattr(self.memsys, "address_space", None)
        if space is None:
            return
        for obj in space.objects():
            oid = obj.obj_id
            if oid in self._known_objects:
                continue
            self._known_objects.add(oid)
            base_page = obj.base_va // PAGE_SIZE
            npages = max(obj.size, 1) // PAGE_SIZE + 1
            rel = self._rel_streams.get(obj.name)
            owner = oid if rel else -1
            for p in range(base_page, base_page + npages):
                self._page_owner[p] = owner
            if rel:
                self._streams[oid] = [base_page + r for r in rel]
                self._cursor[oid] = 0

    def _owner(self, page: int) -> int:
        owner = self._page_owner.get(page)
        if owner is None:
            self._discover()
            owner = self._page_owner.get(page, -1)
            self._page_owner[page] = owner
        return owner

    def record(self, page: int) -> None:
        oid = self._owner(page)
        if oid < 0:
            return
        stream = self._streams[oid]
        cur = self._cursor[oid]
        stop = min(cur + LOOKAHEAD, len(stream))
        for i in range(cur, stop):
            if stream[i] == page:
                self._cursor[oid] = i + 1
                return

    def _plan(self, page: int) -> list[int]:
        oid = self._owner(page)
        if oid < 0:
            return []
        stream = self._streams[oid]
        cur = self._cursor[oid]
        # locate the faulting page at/after the cursor (record already
        # advanced past it when it was in the lookahead window)
        start = cur
        for i in range(max(cur - 1, 0), min(cur + LOOKAHEAD, len(stream))):
            if stream[i] == page:
                start = i + 1
                break
        out: list[int] = []
        for p in stream[start : start + WINDOW * 2]:
            if p != page and p not in out:
                out.append(p)
                if len(out) >= WINDOW:
                    break
        return out
