"""Online-learned prefetch policy (integer feature-table perceptron).

Predicts the next page *delta* from the recent delta history using three
feature tables keyed by the last 1, 2, and 3 deltas (longer context ->
larger vote weight, a standard perceptron-style context mixture).  On
every observed transition the realised delta's weight is rewarded and,
if the tables would have predicted something else, the mispredicted
delta is penalised -- so the policy converges on streams with phase
changes (stride flips, alternating columns) faster than a pure counter.

Everything is integer arithmetic over insertion-ordered dicts with
explicit tie-breaks, so runs are bit-reproducible; ``seed`` is accepted
for interface symmetry but unused (no stochastic exploration).
"""

from __future__ import annotations

from repro.prefetch.policy import PrefetchPolicy

#: context lengths and their vote weights (longest context dominates)
CONTEXTS = ((3, 4), (2, 2), (1, 1))
#: prefetch chain length proposed per miss
WINDOW = 8
#: deltas remembered per context key
MAX_DELTAS = 6
#: per-order table capacity
MAX_KEYS = 1 << 14
#: reward / penalty magnitudes and weight clamp
REWARD = 2
PENALTY = 1
MAX_WEIGHT = 64


class LearnedPolicy(PrefetchPolicy):
    name = "learned"

    def __init__(self, seed: int = 0) -> None:
        super().__init__(seed)
        #: order -> {delta-history tuple -> {delta -> weight}}
        self._tables: dict[int, dict[tuple, dict[int, int]]] = {
            order: {} for order, _ in CONTEXTS
        }
        self._hist: list[int] = []
        self._last: int | None = None

    # -- learning --------------------------------------------------------------

    def record(self, page: int) -> None:
        last = self._last
        if page == last:
            return
        self._last = page
        if last is None:
            return
        delta = page - last
        predicted = self._predict(self._hist)
        if predicted is not None and predicted != delta:
            self._bump(self._hist, predicted, -PENALTY)
        self._bump(self._hist, delta, REWARD)
        self._hist.append(delta)
        if len(self._hist) > 3:
            del self._hist[0]

    def _bump(self, hist: list[int], delta: int, amount: int) -> None:
        for order, _weight in CONTEXTS:
            if len(hist) < order:
                continue
            key = tuple(hist[-order:])
            table = self._tables[order]
            row = table.get(key)
            if row is None:
                if amount <= 0 or len(table) >= MAX_KEYS:
                    continue
                row = table[key] = {}
            w = row.get(delta, 0) + amount
            if w <= 0:
                row.pop(delta, None)
                continue
            row[delta] = min(w, MAX_WEIGHT)
            if len(row) > MAX_DELTAS:
                # evict the weakest delta; ties drop the widest jump
                victim = min(
                    row.items(), key=lambda kv: (kv[1], -abs(kv[0]), -kv[0])
                )[0]
                del row[victim]

    # -- prediction ------------------------------------------------------------

    def _predict(self, hist: list[int]) -> int | None:
        votes: dict[int, int] = {}
        for order, weight in CONTEXTS:
            if len(hist) < order:
                continue
            row = self._tables[order].get(tuple(hist[-order:]))
            if not row:
                continue
            for delta, w in row.items():
                votes[delta] = votes.get(delta, 0) + w * weight
        if not votes:
            return None
        # strongest vote; ties prefer the shortest forward jump
        delta, score = max(votes.items(), key=lambda kv: (kv[1], -abs(kv[0]), kv[0]))
        return delta if score > 0 and delta != 0 else None

    def _plan(self, page: int) -> list[int]:
        hist = list(self._hist)
        out: list[int] = []
        cur = page
        for _ in range(WINDOW):
            delta = self._predict(hist)
            if delta is None:
                break
            cur += delta
            out.append(cur)
            hist.append(delta)
            if len(hist) > 3:
                del hist[0]
        return out
