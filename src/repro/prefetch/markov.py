"""Markov (history-table) prefetch policy.

A first-order transition table over the page-access stream: for each
page we keep the most frequent successor pages (capped, deterministic
eviction).  On a miss we walk the argmax chain from the faulting page to
build the prefetch window -- this captures repeated non-affine but
*stable* orders (pointer chases that revisit the same route, grouped
column scans) that defeat a single global stride.

Determinism: counts are plain ints; tables are insertion-ordered dicts;
argmax and eviction tie-break on (count, page number).
"""

from __future__ import annotations

from repro.prefetch.policy import PrefetchPolicy

#: prefetch chain length proposed per miss
WINDOW = 8
#: successors remembered per page
MAX_SUCCESSORS = 4
#: total pages tracked before the table stops growing
MAX_PAGES = 1 << 15


class MarkovPolicy(PrefetchPolicy):
    name = "markov"

    def __init__(self, seed: int = 0) -> None:
        super().__init__(seed)
        #: page -> {successor page -> transition count}
        self._table: dict[int, dict[int, int]] = {}
        self._last: int | None = None

    def record(self, page: int) -> None:
        last = self._last
        if page == last:
            return
        self._last = page
        if last is None:
            return
        succ = self._table.get(last)
        if succ is None:
            if len(self._table) >= MAX_PAGES:
                return
            succ = self._table[last] = {}
        succ[page] = succ.get(page, 0) + 1
        if len(succ) > MAX_SUCCESSORS:
            # evict the weakest edge; ties drop the largest page number
            victim = min(succ.items(), key=lambda kv: (kv[1], -kv[0]))[0]
            del succ[victim]

    def _plan(self, page: int) -> list[int]:
        out: list[int] = []
        seen = {page}
        cur = page
        table = self._table
        for _ in range(WINDOW):
            succ = table.get(cur)
            if not succ:
                break
            # strongest edge; ties prefer the smaller page number
            nxt = max(succ.items(), key=lambda kv: (kv[1], -kv[0]))[0]
            if nxt in seen:
                break
            out.append(nxt)
            seen.add(nxt)
            cur = nxt
        return out
