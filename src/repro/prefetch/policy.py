"""The ``PrefetchPolicy`` strategy interface and the policy factory.

Contract between a policy and its host memory system:

* ``bind(memsys)`` -- called once at system construction; gives the
  policy access to the address space (for page -> object resolution).
* ``prepare(module, plan=None)`` -- called once per run before
  execution; the programmed policy lowers its page streams here (or
  adopts a program already injected into the Mira plan's notes).
* ``record(page)`` -- called for every page touched by an access, hits
  included, in access order.
* ``plan(page)`` -- called on a demand miss (true fault or a stall on an
  in-flight prefetch); returns the pages to prefetch, nearest first.
  The host filters out negative and already-resident pages.
* ``feedback(page, useful, timely)`` -- the fate of a prefetched page:
  used before any stall (timely), used after stalling on it (late), or
  discarded untouched (wasted).

Determinism rules: integer-only state, no wall-clock or RNG reads at
decision time.  ``seed`` is part of the constructor signature so future
stochastic policies stay reproducible; the built-in policies are pure
online learners and ignore it.
"""

from __future__ import annotations

import os

#: environment knob read by ``Leap`` (and ``policy_from_env``)
POLICY_ENV = "REPRO_PREFETCH"

#: policy names accepted by :func:`make_policy`
POLICY_NAMES = ("leap", "markov", "programmed", "learned", "none")


class PrefetchPolicy:
    """Base strategy: bookkeeping + no-op decisions.

    Subclasses implement ``_plan`` (and usually ``record``); the public
    ``plan`` wrapper keeps the accuracy/coverage counters consistent
    across all policies.
    """

    name = "abstract"
    #: whether planning/feedback decisions appear as trace events
    #: (``prefetch.plan`` / ``prefetch.feedback``).  The Leap-compat
    #: policy keeps this False so committed golden digests are stable.
    traced = True

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self.memsys = None
        #: plan() invocations == demand misses seen (faults + late hits)
        self.plans = 0
        #: pages proposed by plan()
        self.planned = 0
        #: pages actually injected by the host (post residency filter)
        self.issued = 0
        self.useful_timely = 0
        self.useful_late = 0
        self.wasted = 0

    # -- host wiring -----------------------------------------------------------

    def bind(self, memsys) -> None:
        """Attach to a memory system (address space, clock, swap)."""
        self.memsys = memsys

    def prepare(self, module, plan=None, entry: str = "main") -> None:
        """Per-run hook before execution (IR + optional Mira plan)."""

    # -- decision hooks --------------------------------------------------------

    def record(self, page: int) -> None:
        """Observe one touched page (hits included)."""

    def plan(self, page: int) -> list[int]:
        out = self._plan(page)
        self.plans += 1
        self.planned += len(out)
        return out

    def _plan(self, page: int) -> list[int]:
        return []

    def feedback(self, page: int, useful: bool, timely: bool = False) -> None:
        if not useful:
            self.wasted += 1
        elif timely:
            self.useful_timely += 1
        else:
            self.useful_late += 1

    # -- metrics ---------------------------------------------------------------

    def snapshot(self) -> dict:
        """Raw counters plus derived accuracy/coverage/timeliness.

        * accuracy  = used prefetches / issued prefetches
        * coverage  = first touches served by a prefetch / first touches
          that would otherwise fault (timely hits never reach ``plan``,
          late hits do -- hence ``timely + plans`` in the denominator)
        * timeliness = timely / used
        * waste_ratio = wasted / issued
        """
        used = self.useful_timely + self.useful_late
        demand = self.useful_timely + self.plans
        return {
            "policy": self.name,
            "plans": self.plans,
            "planned": self.planned,
            "issued": self.issued,
            "useful_timely": self.useful_timely,
            "useful_late": self.useful_late,
            "wasted": self.wasted,
            "accuracy": used / self.issued if self.issued else 0.0,
            "coverage": used / demand if demand else 0.0,
            "timeliness": self.useful_timely / used if used else 0.0,
            "waste_ratio": self.wasted / self.issued if self.issued else 0.0,
        }


def make_policy(name: str | None, seed: int = 0) -> PrefetchPolicy | None:
    """Instantiate a policy by name (``None``/"none"/"off" -> no policy)."""
    key = name.strip().lower() if name is not None else "leap"
    if key in ("none", "off", ""):
        return None
    if key in ("leap", "majority"):
        from repro.prefetch.majority import MajorityPolicy

        return MajorityPolicy(seed)
    if key == "markov":
        from repro.prefetch.markov import MarkovPolicy

        return MarkovPolicy(seed)
    if key == "programmed":
        from repro.prefetch.programmed import ProgrammedPolicy

        return ProgrammedPolicy(seed)
    if key == "learned":
        from repro.prefetch.learned import LearnedPolicy

        return LearnedPolicy(seed)
    raise ValueError(
        f"unknown prefetch policy {name!r}; expected one of {POLICY_NAMES}"
    )


def policy_from_env(default: str = "leap", seed: int = 0):
    """Resolve the policy selected by ``$REPRO_PREFETCH`` (Leap's knob)."""
    return make_policy(os.environ.get(POLICY_ENV, default), seed)
