"""Fully-associative cache section.

Best space utilization (no conflict misses) at the highest lookup cost.
Eviction approximates LRU with active/inactive lists (paper section 5.3);
compiler-hinted evictable lines go first.
"""

from __future__ import annotations

from collections import OrderedDict

from repro.cache.section import CacheSection, Line, LineKey


class FullyAssociativeSection(CacheSection):
    """remote-address -> line map with an LRU order and an evictable set."""

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._num_lines = self.config.num_lines
        self._lines: OrderedDict[LineKey, Line] = OrderedDict()
        self._evictable: OrderedDict[LineKey, None] = OrderedDict()

    def lookup(self, key: LineKey) -> Line | None:
        line = self._lines.get(key)
        if line is not None:
            self._lines.move_to_end(key)
            # touching a line cancels its evictable mark
            if key in self._evictable:
                del self._evictable[key]
                line.evictable = False
        return line

    def peek(self, key: LineKey) -> Line | None:
        return self._lines.get(key)

    def choose_victim(self, key: LineKey) -> Line | None:
        if len(self._lines) < self._num_lines:
            return None
        if self._evictable:
            victim_key = next(iter(self._evictable))
            return self._lines[victim_key]
        return next(iter(self._lines.values()))

    def install(self, line: Line) -> None:
        self._lines[line.key] = line
        if line.evictable:
            self._evictable[line.key] = None

    def remove(self, key: LineKey) -> Line | None:
        self._evictable.pop(key, None)
        return self._lines.pop(key, None)

    def resident_lines(self) -> list[Line]:
        return list(self._lines.values())

    def resident_count(self) -> int:
        return len(self._lines)

    def evict_hint_line(self, key: LineKey) -> None:
        super().evict_hint_line(key)
        line = self._lines.get(key)
        if line is not None and line.evictable:
            self._evictable[key] = None
