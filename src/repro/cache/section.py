"""Cache-section machinery shared by all three structures.

A section caches fixed-size *lines* keyed by ``(obj_id, line_index)``.
Subclasses provide the placement policy (where a line may live and which
line to evict); this base class provides the timed data path: lookup
overhead, miss fetch over the network, prefetch overlap, eviction hints,
write-back, and statistics.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field

from repro.cache.config import SectionConfig, Structure
from repro.cache.stats import SectionStats
from repro.errors import ConfigError
from repro.memsim.clock import VirtualClock
from repro.memsim.cost_model import CostModel
from repro.memsim.network import Network

#: a cache line's key: (object id, line index within the object)
LineKey = tuple[int, int]


@dataclass(slots=True)
class Line:
    """State of one resident cache line."""

    key: LineKey
    dirty: bool = False
    evictable: bool = False
    #: virtual time the line's data arrives (async prefetch); 0 = resident
    ready_at: float = 0.0
    #: metadata-free lines are compiler-managed (section 4.4)
    metadata_free: bool = False
    last_use: int = field(default=0)


class CacheSection(abc.ABC):
    """One configured cache section (abstract over placement policy)."""

    def __init__(
        self,
        config: SectionConfig,
        cost: CostModel,
        clock: VirtualClock,
        network: Network,
    ) -> None:
        self.config = config
        self.cost = cost
        self.clock = clock
        self.network = network
        self.stats = SectionStats()
        #: attached :class:`repro.obs.Tracer`, or None (tracing disabled)
        self.tracer = None
        #: attached telemetry collector (miss-wait observations), or None
        self.telemetry = None
        #: pre-bound per-kind emitters for the per-access emission sites
        #: (None when detached); cold sites go through ``tracer.emit``
        self._emit_hit = None
        self._emit_miss = None
        self._emit_prefetch_hit = None
        self._name = config.name
        self._use_counter = 0
        # hot-path constants, resolved once (the access path runs per
        # program memory access)
        self._hit_overhead = cost.hit_overhead_ns(config.structure.value)
        self._insert_overhead = cost.insert_overhead_ns
        self._evict_overhead = cost.evict_overhead_ns
        self._line_size = config.line_size
        self._write_no_fetch = config.write_no_fetch
        self._transfer_bytes = config.transfer_bytes
        self._one_sided = config.one_sided
        self._metadata_free = config.metadata_free
        #: prefetch window the manager caps a single hint at (half the
        #: capacity so in-flight lines cannot evict each other)
        self._prefetch_window = max(1, config.num_lines // 2)

    # -- placement policy (subclass responsibility) --------------------------

    @abc.abstractmethod
    def lookup(self, key: LineKey) -> Line | None:
        """Find a resident line, updating recency."""

    @abc.abstractmethod
    def peek(self, key: LineKey) -> Line | None:
        """Find a resident line without updating recency."""

    @abc.abstractmethod
    def choose_victim(self, key: LineKey) -> Line | None:
        """Line to evict to make room for ``key`` (None if free space)."""

    @abc.abstractmethod
    def install(self, line: Line) -> None:
        """Place a line (caller has already evicted the victim)."""

    @abc.abstractmethod
    def remove(self, key: LineKey) -> Line | None:
        """Drop a line without write-back bookkeeping (caller handles it)."""

    @abc.abstractmethod
    def resident_lines(self) -> list[Line]:
        """All resident lines (order unspecified)."""

    @abc.abstractmethod
    def resident_count(self) -> int:
        """Number of resident lines (O(1); hot path)."""

    # -- tracing --------------------------------------------------------------

    def set_tracer(self, tracer) -> None:
        """Attach/detach a tracer, pre-binding the per-access emitters
        (hit/miss/prefetch-hit fire once per program access; a
        pre-validated closure skips the schema check on every event)."""
        self.tracer = tracer
        if tracer is None:
            self._emit_hit = None
            self._emit_miss = None
            self._emit_prefetch_hit = None
        else:
            self._emit_hit = tracer.emitter("cache.hit")
            self._emit_miss = tracer.emitter("cache.miss")
            self._emit_prefetch_hit = tracer.emitter("cache.prefetch_hit")

    # -- geometry ------------------------------------------------------------

    def line_index(self, offset: int) -> int:
        return offset // self._line_size

    def line_keys(self, obj_id: int, offset: int, size: int) -> list[LineKey]:
        """Keys of every line a ``[offset, offset+size)`` access touches."""
        if size <= 0:
            size = 1
        ls = self._line_size
        first = offset // ls
        last = (offset + size - 1) // ls
        if first == last:
            return [(obj_id, first)]
        return [(obj_id, i) for i in range(first, last + 1)]

    # -- timed data path ------------------------------------------------------

    def access(
        self, obj_id: int, offset: int, size: int, is_write: bool, native: bool = False
    ) -> bool:
        """One program access; returns True iff every touched line hit.

        ``native=True`` means the compiler proved line residency and elided
        the dereference: no lookup overhead is charged on hits (section
        4.4), though a genuinely absent line still faults and fetches.
        """
        if size <= 0:
            size = 1
        ls = self._line_size
        first = offset // ls
        last = (offset + size - 1) // ls
        if first == last:  # element accesses touch a single line
            return self._access_line((obj_id, first), is_write, native)
        all_hit = True
        for i in range(first, last + 1):
            hit = self._access_line((obj_id, i), is_write, native)
            all_hit = all_hit and hit
        return all_hit

    def _access_line(self, key: LineKey, is_write: bool, native: bool) -> bool:
        stats = self.stats
        stats.accesses += 1
        self._use_counter += 1
        line = self.lookup(key)
        if line is not None:
            line.last_use = self._use_counter
            line.evictable = False
            if is_write:
                line.dirty = True
            ready_at = line.ready_at
            if ready_at:
                clock = self.clock
                if ready_at > clock.now:
                    # prefetched but still in flight: wait the remainder
                    wait = ready_at - clock.now
                    clock.wait_until(ready_at, "miss_wait")
                    stats.miss_wait_ns += wait
                    tel = self.telemetry
                    if tel is not None:
                        tel.observe_miss_wait(wait)
                    stats.prefetch_hits += 1
                    stats.misses += 1
                    line.ready_at = 0.0
                    em = self._emit_prefetch_hit
                    if em is not None:
                        em(
                            clock.now,
                            sec=self._name,
                            obj=key[0],
                            line=key[1],
                            wait=wait,
                        )
                    return False
            if native:
                stats.native_accesses += 1
            else:
                overhead = self._hit_overhead
                self.clock.advance(overhead, "hit_overhead")
                stats.overhead_ns += overhead
            stats.hits += 1
            em = self._emit_hit
            if em is not None:
                if native:
                    # flagged so trace analysis knows no lookup overhead
                    # was charged for this hit (compiler-elided deref)
                    em(
                        self.clock.now,
                        sec=self._name,
                        obj=key[0],
                        line=key[1],
                        nat=True,
                    )
                else:
                    em(
                        self.clock.now,
                        sec=self._name,
                        obj=key[0],
                        line=key[1],
                    )
            return True
        # miss: synchronous fetch (skipped for whole-line writes in
        # write-no-fetch sections, section 4.5)
        stats.misses += 1
        self._make_room(key)
        if is_write and self._write_no_fetch:
            fetch_ns = 0.0
        else:
            fetch_ns = self._fetch_sync()
        stats.miss_wait_ns += fetch_ns
        tel = self.telemetry
        if tel is not None:
            tel.observe_miss_wait(fetch_ns)
        new = Line(key=key, dirty=is_write, last_use=self._use_counter)
        new.metadata_free = self._metadata_free
        self.install(new)
        ins = self._insert_overhead
        self.clock.advance(ins, "insert_overhead")
        stats.overhead_ns += ins
        em = self._emit_miss
        if em is not None:
            em(
                self.clock.now,
                sec=self._name,
                obj=key[0],
                line=key[1],
                wait=fetch_ns,
                write=is_write,
            )
        return False

    def _bulk_hits(self, key: LineKey, n: int, is_write: bool, native: bool) -> None:
        """Account ``n`` consecutive known-hits on one resident line.

        Only the bulk path (:meth:`CacheManager.bulk_load`) calls this,
        immediately after a real ``_access_line`` on the same key left the
        line resident with any in-flight prefetch settled: hits never
        evict and never touch the network, so ``n`` repeats of the hit
        path collapse to one recency update plus aggregated counters and
        one aggregated overhead advance (exact for the integer-valued
        overhead constants the caller checked).  Tracing must be off --
        the per-element path is the one that emits per-hit events.
        """
        stats = self.stats
        stats.accesses += n
        self._use_counter += n
        line = self.lookup(key)
        line.last_use = self._use_counter
        line.evictable = False
        if is_write:
            line.dirty = True
        # a stale ready_at is deliberately left in place: the per-element
        # hit path does not clear it either
        if native:
            stats.native_accesses += n
        else:
            overhead = self._hit_overhead
            self.clock.advance(n * overhead, "hit_overhead")
            stats.overhead_ns += n * overhead
        stats.hits += n

    def prefetch_line(self, key: LineKey) -> None:
        """Issue an asynchronous fetch of one line if absent."""
        if self.peek(key) is None:
            self._prefetch_absent(key)

    def prefetch_range(self, obj_id: int, first: int, last: int) -> None:
        """Prefetch line indices ``first..last`` inclusive (hot path: most
        hinted lines are already resident, so peek-and-skip dominates)."""
        peek = self.peek
        for i in range(first, last + 1):
            key = (obj_id, i)
            if peek(key) is None:
                self._prefetch_absent(key)

    def _prefetch_absent(self, key: LineKey) -> None:
        self._make_room(key)
        ready = self.network.read_async(self._transfer_bytes, one_sided=self._one_sided)
        line = Line(key=key, ready_at=ready, last_use=self._use_counter)
        line.metadata_free = self._metadata_free
        self.install(line)
        self.stats.prefetches_issued += 1
        tr = self.tracer
        if tr is not None:
            tr.emit(
                "cache.prefetch",
                self.clock.now,
                sec=self._name,
                obj=key[0],
                line=key[1],
                ready=ready,
            )

    def missing_keys(self, keys: list[LineKey]) -> list[LineKey]:
        """Subset of ``keys`` not resident (for batched prefetch)."""
        return [k for k in keys if self.peek(k) is None]

    def install_prefetched(self, key: LineKey, ready_at: float) -> None:
        """Install a line arriving as part of a batched prefetch message
        (the caller already issued the combined network read)."""
        if self.peek(key) is not None:
            return
        self._make_room(key)
        line = Line(key=key, ready_at=ready_at, last_use=self._use_counter)
        line.metadata_free = self._metadata_free
        self.install(line)
        self.stats.prefetches_issued += 1
        tr = self.tracer
        if tr is not None:
            tr.emit(
                "cache.prefetch",
                self.clock.now,
                sec=self._name,
                obj=key[0],
                line=key[1],
                ready=ready_at,
                batch=True,
            )

    def flush_line(self, key: LineKey) -> None:
        """Asynchronously write back a dirty line (keeps it resident)."""
        line = self.peek(key)
        if line is not None and line.dirty:
            self.network.write_async(self._transfer_bytes, one_sided=self._one_sided)
            line.dirty = False
            self.stats.writebacks += 1
            tr = self.tracer
            if tr is not None:
                tr.emit(
                    "cache.writeback",
                    self.clock.now,
                    sec=self._name,
                    obj=key[0],
                    line=key[1],
                    flush=True,
                )

    def evict_hint_line(self, key: LineKey) -> None:
        """Mark a line evictable (last access passed)."""
        if self.config.shared:
            # shared sections ignore hints (section 4.6)
            return
        line = self.peek(key)
        if line is not None:
            line.evictable = True

    def drop_clean(self, key: LineKey) -> None:
        """Discard a line without write-back (read-only loop epilogue)."""
        line = self.remove(key)
        if line is not None and line.dirty:
            # unexpected dirty data must still reach far memory
            self._writeback(line)

    def close(self) -> None:
        """Flush everything; used when a section's lifetime ends."""
        now = self.clock.now
        for line in self.resident_lines():
            if line.dirty:
                self._writeback(line)
            if line.ready_at and line.ready_at > now:
                # the section died before its in-flight prefetch landed
                self.stats.prefetch_wasted += 1
        for line in list(self.resident_lines()):
            self.remove(line.key)

    # -- helpers ----------------------------------------------------------

    def _make_room(self, key: LineKey) -> None:
        victim = self.choose_victim(key)
        if victim is None:
            return
        self.remove(victim.key)
        self.stats.evictions += 1
        if victim.evictable:
            self.stats.hinted_evictions += 1
        if victim.ready_at and victim.ready_at > self.clock.now:
            # evicted before the prefetched data ever arrived: wasted
            # (mirrors SwapSection's accounting, so the waste-ratio gauge
            # means the same thing on both paths)
            self.stats.prefetch_wasted += 1
        ev = self._evict_overhead
        self.clock.advance(ev, "evict_overhead")
        self.stats.overhead_ns += ev
        tr = self.tracer
        if tr is not None:
            tr.emit(
                "cache.evict",
                self.clock.now,
                sec=self._name,
                obj=victim.key[0],
                line=victim.key[1],
                dirty=victim.dirty,
                hinted=victim.evictable,
            )
        if victim.dirty:
            self._writeback(victim)

    def _writeback(self, line: Line) -> None:
        self.network.write_async(self._transfer_bytes, one_sided=self._one_sided)
        self.stats.writebacks += 1
        tr = self.tracer
        if tr is not None:
            tr.emit(
                "cache.writeback",
                self.clock.now,
                sec=self._name,
                obj=line.key[0],
                line=line.key[1],
            )

    def _fetch_sync(self) -> float:
        return self.network.read(self._transfer_bytes, one_sided=self._one_sided)

    # -- reporting -----------------------------------------------------------

    def metadata_bytes(self) -> int:
        if self.config.metadata_free:
            return 0
        return self.resident_count() * self.config.metadata_per_line

    def occupancy(self) -> int:
        return self.resident_count() * self.config.line_size


def make_section(
    config: SectionConfig,
    cost: CostModel,
    clock: VirtualClock,
    network: Network,
) -> CacheSection:
    """Factory: build the right section subclass for a config."""
    from repro.cache.direct_mapped import DirectMappedSection
    from repro.cache.fully_associative import FullyAssociativeSection
    from repro.cache.set_associative import SetAssociativeSection

    if config.structure is Structure.DIRECT:
        return DirectMappedSection(config, cost, clock, network)
    if config.structure is Structure.SET_ASSOCIATIVE:
        return SetAssociativeSection(config, cost, clock, network)
    if config.structure is Structure.FULLY_ASSOCIATIVE:
        return FullyAssociativeSection(config, cost, clock, network)
    raise ConfigError(f"unknown structure {config.structure!r}")
