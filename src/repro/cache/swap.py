"""Page-granularity swap cache section.

This is Mira's *universal swap section* (paper section 5.3): a user-space
swap system (userfaultfd in the paper) that transparently runs unmodified
code.  Lines are 4 KB OS pages; hits cost nothing extra (the MMU resolves
them), misses pay the kernel fault path plus a one-sided page fetch, and
eviction follows an approximate global LRU with optional compiler hints.

The FastSwap and Leap baselines reuse this machinery -- they are exactly
"a swap section covering the whole heap", with Leap adding a
majority-stride prefetcher.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

from repro.cache.stats import SectionStats
from repro.errors import ConfigError
from repro.memsim.address import PAGE_SIZE
from repro.memsim.clock import VirtualClock
from repro.memsim.cost_model import CostModel
from repro.memsim.network import Network


@dataclass(slots=True)
class PageEntry:
    page: int
    obj_id: int
    dirty: bool = False
    evictable: bool = False
    ready_at: float = 0.0


class SwapSection:
    """A pool of physical pages fronting far memory, keyed by page number."""

    def __init__(
        self,
        size_bytes: int,
        cost: CostModel,
        clock: VirtualClock,
        network: Network,
        extra_fault_ns: float = 0.0,
        fault_lock=None,
    ) -> None:
        if size_bytes < PAGE_SIZE:
            raise ConfigError("swap section needs at least one page")
        self.cost = cost
        self.clock = clock
        self.network = network
        self.extra_fault_ns = extra_fault_ns
        #: optional SerialResource modelling the kernel swap lock that
        #: serializes concurrent faults (multi-threading, Fig. 24/25)
        self.fault_lock = fault_lock
        self.capacity_pages = size_bytes // PAGE_SIZE
        self._pages: OrderedDict[int, PageEntry] = OrderedDict()
        self._evictable: OrderedDict[int, None] = OrderedDict()
        self.stats = SectionStats()
        #: attached :class:`repro.obs.Tracer`, or None (tracing disabled)
        self.tracer = None
        #: attached telemetry collector (miss-wait observations), or None
        self.telemetry = None
        #: pre-bound per-kind emitters for the per-access emission sites
        #: (None when detached); cold sites go through ``tracer.emit``
        self._emit_hit = None
        self._emit_fault = None
        self._emit_prefetch_hit = None
        #: attached :class:`repro.prefetch.PrefetchPolicy` receiving
        #: used/wasted feedback for its prefetches (None: no policy)
        self.feedback_policy = None
        #: fault-path constant, resolved once (per-miss path)
        self._fault_ns = cost.page_fault_ns + extra_fault_ns

    def set_tracer(self, tracer) -> None:
        """Attach/detach a tracer, pre-binding the per-access emitters
        (the hit and fault sites fire once per program access)."""
        self.tracer = tracer
        if tracer is None:
            self._emit_hit = None
            self._emit_fault = None
            self._emit_prefetch_hit = None
        else:
            self._emit_hit = tracer.emitter("cache.hit")
            self._emit_fault = tracer.emitter("swap.fault")
            self._emit_prefetch_hit = tracer.emitter("cache.prefetch_hit")

    # -- geometry ------------------------------------------------------------

    @staticmethod
    def pages_of(va: int, size: int) -> range:
        if size <= 0:
            size = 1
        return range(va // PAGE_SIZE, (va + size - 1) // PAGE_SIZE + 1)

    # -- data path ----------------------------------------------------------

    def access(self, va: int, size: int, is_write: bool, obj_id: int = 0) -> bool:
        """Touch ``[va, va+size)``; returns True iff all pages were hits."""
        if size <= 0:
            size = 1
        first = va // PAGE_SIZE
        last = (va + size - 1) // PAGE_SIZE
        if first == last:  # fine-grained accesses touch a single page
            return self._access_page(first, is_write, obj_id)
        all_hit = True
        for page in range(first, last + 1):
            hit = self._access_page(page, is_write, obj_id)
            all_hit = all_hit and hit
        return all_hit

    def _access_page(self, page: int, is_write: bool, obj_id: int) -> bool:
        stats = self.stats
        stats.accesses += 1
        pages = self._pages
        entry = pages.get(page)
        if entry is not None:
            pages.move_to_end(page)
            if is_write:
                entry.dirty = True
            if entry.evictable:
                entry.evictable = False
                self._evictable.pop(page, None)
            ready_at = entry.ready_at
            timely = False
            if ready_at:
                clock = self.clock
                if ready_at > clock.now:
                    wait = ready_at - clock.now
                    clock.wait_until(ready_at, "miss_wait")
                    stats.miss_wait_ns += wait
                    tel = self.telemetry
                    if tel is not None:
                        tel.observe_miss_wait(wait)
                    stats.prefetch_hits += 1
                    stats.misses += 1
                    entry.ready_at = 0.0
                    em = self._emit_prefetch_hit
                    if em is not None:
                        em(
                            clock.now,
                            sec="swap",
                            obj=obj_id,
                            line=page,
                            wait=wait,
                        )
                    self._feedback(page, True, False)
                    return False
                # prefetch settled: clear the marker so eviction sees a
                # plain resident page, not a stale in-flight one
                entry.ready_at = 0.0
                timely = True
            stats.hits += 1
            em = self._emit_hit
            if em is not None:
                em(self.clock.now, sec="swap", obj=obj_id, line=page)
            if timely:
                self._feedback(page, True, True)
            return True
        # page fault: kernel path, then a one-sided page read (recorded
        # on the network so traffic accounting sees the amplification)
        stats.misses += 1
        self._fault_serialize()
        self._make_room()
        fault_ns = self._fault_ns
        self.clock.advance(fault_ns, "page_fault")
        wire_ns = self.network.read(PAGE_SIZE, one_sided=True)
        stats.miss_wait_ns += fault_ns + wire_ns
        tel = self.telemetry
        if tel is not None:
            tel.observe_miss_wait(fault_ns + wire_ns)
        pages[page] = PageEntry(page=page, obj_id=obj_id, dirty=is_write)
        em = self._emit_fault
        if em is not None:
            em(
                self.clock.now,
                obj=obj_id,
                line=page,
                wait=fault_ns + wire_ns,
                write=is_write,
                kern=fault_ns,
            )
        return False

    def _bulk_hits(self, page: int, n: int, is_write: bool) -> None:
        """Account ``n`` consecutive known-hits on one resident page.

        Only the bulk path calls this, immediately after a real
        ``_access_page`` on the same page left it resident with
        ``ready_at`` settled; swap hits cost no virtual time, so the
        repeats collapse to counters plus one recency move.  Tracing must
        be off (the per-element path emits the per-hit events).
        """
        stats = self.stats
        stats.accesses += n
        entry = self._pages[page]
        self._pages.move_to_end(page)
        if is_write:
            entry.dirty = True
        if entry.evictable:
            entry.evictable = False
            self._evictable.pop(page, None)
        stats.hits += n

    def prefetch(self, page: int, obj_id: int = 0) -> None:
        """Asynchronously map a page ahead of demand."""
        if page in self._pages:
            return
        self._make_room()
        ready = self.network.read_async(PAGE_SIZE, one_sided=True)
        self._pages[page] = PageEntry(page=page, obj_id=obj_id, ready_at=ready)
        self.stats.prefetches_issued += 1
        tr = self.tracer
        if tr is not None:
            tr.emit(
                "cache.prefetch",
                self.clock.now,
                sec="swap",
                obj=obj_id,
                line=page,
                ready=ready,
            )

    def contains(self, page: int) -> bool:
        return page in self._pages

    def evict_hint(self, va: int, size: int) -> None:
        for page in self.pages_of(va, size):
            entry = self._pages.get(page)
            if entry is not None:
                entry.evictable = True
                self._evictable[page] = None

    def flush(self, va: int, size: int) -> None:
        for page in self.pages_of(va, size):
            entry = self._pages.get(page)
            if entry is not None and entry.dirty:
                self.network.write_async(PAGE_SIZE, one_sided=True)
                entry.dirty = False
                self.stats.writebacks += 1
                tr = self.tracer
                if tr is not None:
                    tr.emit(
                        "cache.writeback",
                        self.clock.now,
                        sec="swap",
                        obj=entry.obj_id,
                        line=page,
                        flush=True,
                    )

    def drop_object(self, obj_id: int) -> None:
        """Unmap every page of an object (it moved to its own section or
        its lifetime ended); dirty pages are written back asynchronously."""
        doomed = [p for p, e in self._pages.items() if e.obj_id == obj_id]
        for page in doomed:
            entry = self._pages.pop(page)
            self._evictable.pop(page, None)
            if entry.ready_at and entry.ready_at > self.clock.now:
                # an in-flight prefetch discarded with the object: wasted
                # (the eviction path counts its own; this is close/migrate)
                self.stats.prefetch_wasted += 1
                self._feedback(page, False)
            if entry.dirty:
                self.network.write_async(PAGE_SIZE, one_sided=True)
                self.stats.writebacks += 1
                tr = self.tracer
                if tr is not None:
                    tr.emit(
                        "cache.writeback",
                        self.clock.now,
                        sec="swap",
                        obj=entry.obj_id,
                        line=page,
                    )

    def resize(self, size_bytes: int) -> None:
        """Grow or shrink the page pool; shrinking evicts LRU pages."""
        if size_bytes < PAGE_SIZE:
            raise ConfigError("swap section needs at least one page")
        self.capacity_pages = size_bytes // PAGE_SIZE
        while len(self._pages) > self.capacity_pages:
            self._evict_one()

    # -- internals ----------------------------------------------------------

    def _fault_serialize(self) -> None:
        if self.fault_lock is not None:
            self.fault_lock.acquire(self.clock, self.cost.page_fault_ns * 0.5)

    def _make_room(self) -> None:
        if len(self._pages) >= self.capacity_pages:
            self._evict_one()

    def _evict_one(self) -> None:
        pages = self._pages
        wasted = False
        if self._evictable:
            page = next(iter(self._evictable))
            del self._evictable[page]
            entry = pages.pop(page)
            self.stats.hinted_evictions += 1
            hinted = True
            if entry.ready_at and entry.ready_at > self.clock.now:
                wasted = True
        else:
            page = next(iter(pages))
            entry = pages[page]
            if entry.ready_at and entry.ready_at > self.clock.now:
                # the LRU head's prefetch is still in flight: prefer a
                # settled victim so the fetch is not thrown away unread
                now = self.clock.now
                victim = None
                for p, e in pages.items():
                    if not e.ready_at or e.ready_at <= now:
                        victim = p
                        break
                if victim is not None:
                    page = victim
                    entry = pages[page]
                else:
                    wasted = True  # every page is in flight: one must go
            del pages[page]
            self._evictable.pop(page, None)
            hinted = False
        if wasted:
            self.stats.prefetch_wasted += 1
        self.stats.evictions += 1
        tr = self.tracer
        if tr is not None:
            tr.emit(
                "cache.evict",
                self.clock.now,
                sec="swap",
                obj=entry.obj_id,
                line=page,
                dirty=entry.dirty,
                hinted=hinted,
                wb=self.cost.page_writeback_ns if entry.dirty else 0.0,
            )
        if entry.dirty:
            self.clock.advance(self.cost.page_writeback_ns, "eviction")
            self.network.write_async(PAGE_SIZE, one_sided=True)
            self.stats.writebacks += 1
        if wasted:
            self._feedback(page, False)

    def _feedback(self, page: int, useful: bool, timely: bool = False) -> None:
        """Report a prefetched page's fate to the attached policy."""
        fp = self.feedback_policy
        if fp is None:
            return
        fp.feedback(page, useful, timely)
        if fp.traced and self.tracer is not None:
            self.tracer.emit(
                "prefetch.feedback",
                self.clock.now,
                pol=fp.name,
                line=page,
                useful=useful,
                timely=timely,
            )

    # -- reporting -----------------------------------------------------------

    def metadata_bytes(self) -> int:
        """Page-table-like bookkeeping: 8 bytes per resident page."""
        return len(self._pages) * 8

    def resident_pages(self) -> int:
        return len(self._pages)
