"""Software-configurable local DRAM cache for far memory.

The paper's core mechanism (section 3): local memory is split into *cache
sections*, each with its own size, structure (directly mapped /
set-associative / fully associative), cache-line size, prefetch and
eviction behaviour, and communication method.  A generic 4 KB page *swap
section* backs everything not claimed by a specialized section.
"""

from repro.cache.config import SectionConfig, Structure
from repro.cache.hybrid import HybridConfig, HybridManager
from repro.cache.interface import MemorySystem
from repro.cache.manager import CacheManager
from repro.cache.section import CacheSection, Line
from repro.cache.stats import SectionStats
from repro.cache.swap import SwapSection

__all__ = [
    "SectionConfig",
    "Structure",
    "MemorySystem",
    "CacheManager",
    "CacheSection",
    "HybridConfig",
    "HybridManager",
    "Line",
    "SectionStats",
    "SwapSection",
]
