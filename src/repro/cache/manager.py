"""Mira's run-time memory system: a set of cache sections plus the swap
section, with dynamic section lifetimes.

The controller opens a section for a group of objects with similar access
patterns, assigns them, and closes the section when lifetime analysis says
the scope ended -- immediately returning its budget (this is what lets
GPT-2 run at 4.5% local memory: each layer's section dies as the layer
finishes).
"""

from __future__ import annotations

from repro.cache.config import SectionConfig
from repro.cache.interface import MemorySystem
from repro.cache.section import CacheSection, make_section
from repro.cache.swap import SwapSection
from repro.errors import ConfigError, MemoryError_
from repro.memsim.address import PAGE_SIZE, ObjectInfo
from repro.memsim.clock import VirtualClock


class CacheManager(MemorySystem):
    """Routes each object's accesses to its section (or the swap section)."""

    name = "mira"

    def __init__(
        self, cost, local_mem_bytes, clock=None, fault_lock=None, policy=None
    ) -> None:
        super().__init__(cost, local_mem_bytes, clock)
        self._sections: dict[str, CacheSection] = {}
        self._assignment: dict[int, str] = {}
        self._native_objs: set[int] = set()
        self.fault_lock = fault_lock
        self.swap = SwapSection(
            local_mem_bytes, cost, self.clock, self.network, fault_lock=fault_lock
        )
        if isinstance(policy, str):
            from repro.prefetch import make_policy

            policy = make_policy(policy)
        #: optional prefetch policy driving the swap path (objects inside
        #: cache sections are prefetched by the compiler's explicit
        #: prefetch ops; the policy covers what stays on the swap path)
        self.policy = policy
        if policy is not None:
            policy.bind(self)
            self.swap.feedback_policy = policy
        #: peak metadata observed, for Fig. 20
        self.peak_metadata_bytes = 0
        #: current virtual thread id (set by the interpreter inside
        #: scf.parallel); selects per-thread private sections
        self.current_thread = 0
        #: allocation-name -> section-name assignments to apply when the
        #: object is allocated (plans are made before the program runs)
        self.pending_assignment: dict[str, str] = {}
        self._access_counter = 0
        #: breaker trips observed but not yet acted on; the callback fires
        #: mid network op, so degradation is deferred to the next access
        self._degrade_pending = 0
        #: record of applied degradation actions, for reporting
        self.degrade_log: list[dict] = []
        #: memoized (obj_id, thread) -> (ObjectInfo, section, ObjectStats,
        #: native?) for the per-access path: object lookup, the f-string
        #: per-thread section probe, and the native-promise set test are
        #: all costly per access.  Invalidated whenever sections,
        #: assignments, native promises, or object lifetimes change.
        self._resolved: dict[tuple[int, int], tuple] = {}
        #: optional per-access callback ``(obj_id, size, hit)`` observed
        #: after every ``access``; the hybrid manager uses it to window
        #: miss/amplification signals.  None here, so plain Mira runs pay
        #: one attribute load + None test per access and nothing else.
        self._path_hook = None

    # -- clock plumbing (thread simulation swaps the active clock) -----------

    def set_clock(self, clock: VirtualClock) -> None:
        self.clock = clock
        self.network.clock = clock
        self.far_node.clock = clock
        self.swap.clock = clock
        for sec in self._sections.values():
            sec.clock = clock

    def set_tracer(self, tracer) -> None:
        self.tracer = tracer
        self.network.tracer = tracer
        self._bind_access_log(tracer)
        self.swap.set_tracer(tracer)
        for sec in self._sections.values():
            sec.set_tracer(tracer)

    def set_telemetry(self, telemetry) -> None:
        self.telemetry = telemetry
        self.swap.telemetry = telemetry
        for sec in self._sections.values():
            sec.telemetry = telemetry

    # -- fault handling / graceful degradation --------------------------------

    def enable_faults(self, plan) -> None:
        super().enable_faults(plan)
        self.network.on_persistent_failure = (
            None if plan is None else self._note_persistent_failure
        )

    def _note_persistent_failure(self, op: str) -> None:
        """Circuit breaker tripped: queue one degradation step.  The
        callback fires inside a network op, possibly mid-way through a
        section's miss path, so the response is deferred until the next
        ``access`` call rather than reconfiguring sections re-entrantly."""
        self._degrade_pending += 1

    def _apply_degradation(self) -> None:
        pending, self._degrade_pending = self._degrade_pending, 0
        for _ in range(pending):
            self._degrade_step()

    def _degrade_step(self) -> None:
        """One graceful-degradation action, mildest first.

        A persistent network failure indicts the message path (far-node
        CPU involvement), so first demote a two-sided section to one-sided
        communication; once every section is one-sided, remap the worst
        section's objects onto the swap path and return its budget --
        switching data paths instead of failing, per A Tale of Two Paths.
        """
        tr = self.tracer
        flt = self.network.faults
        for name in sorted(self._sections):
            sec = self._sections[name]
            if not sec._one_sided:
                # runtime-only demotion: the shared SectionConfig (which
                # plans reuse across runs) stays untouched.  One-sided
                # transfers cannot do selective transmission, so the whole
                # line travels from now on.
                sec._one_sided = True
                sec._transfer_bytes = sec._line_size
                if flt is not None:
                    flt.stats.degrades += 1
                self.degrade_log.append({"action": "demote_comm", "sec": name})
                if tr is not None:
                    tr.emit(
                        "degrade.section",
                        self.clock.now,
                        sec=name,
                        action="demote_comm",
                    )
                return
        if not self._sections:
            return  # already fully on the swap path; nothing left to shed
        # victim choice is explicitly tie-broken: highest miss count first,
        # then lexicographically-first name, so the degradation order is
        # deterministic (and documented) when two sections score equal
        worst = min(
            self._sections, key=lambda n: (-self._sections[n].stats.misses, n)
        )
        base = worst.split("@t")[0]
        for alloc_name in [
            a for a, s in self.pending_assignment.items() if s == base
        ]:
            del self.pending_assignment[alloc_name]
        self.close_section(base)
        if flt is not None:
            flt.stats.degrades += 1
        self.degrade_log.append({"action": "remap_swap", "sec": base})
        if tr is not None:
            tr.emit("degrade.section", self.clock.now, sec=base, action="remap_swap")

    # -- section lifecycle ----------------------------------------------------

    def open_section(
        self, config: SectionConfig, obj_ids: list[int], per_thread: int = 0
    ) -> CacheSection:
        """Create a section and move the given objects into it.

        ``per_thread=T`` creates T private clones named ``name@t0..`` each
        with 1/T of the budget (read-only multi-threading, section 4.6);
        accesses route to the clone of the interpreter's current thread.
        """
        alog = self._alog
        if alog is not None:
            alog.emit(
                "mem.open",
                self.clock.now,
                sec=config.name,
                cfg=config.to_fields(),
                ids=list(obj_ids),
                pt=per_thread,
            )
        return self._open_section_impl(config, obj_ids, per_thread)

    def _open_section_impl(
        self, config: SectionConfig, obj_ids: list[int], per_thread: int = 0
    ) -> CacheSection:
        """``open_section`` minus the op-log entry: internal reconfiguration
        (hybrid path switches) opens sections here, so a replayed trace
        never re-issues them as top-level ops."""
        if per_thread > 1:
            from dataclasses import replace as _replace

            share = max(config.line_size, config.size_bytes // per_thread)
            for t in range(per_thread):
                clone = _replace(config, name=f"{config.name}@t{t}", size_bytes=share)
                self._open_one(clone)
            self._register(config.name, obj_ids)
            self._resize_swap()
            return self._sections[f"{config.name}@t0"]
        section = self._open_one(config)
        self._register(config.name, obj_ids)
        self._resize_swap()
        return section

    def _open_one(self, config: SectionConfig) -> CacheSection:
        self._resolved.clear()
        if config.name in self._sections:
            raise ConfigError(f"section {config.name!r} already open")
        committed = sum(s.config.size_bytes for s in self._sections.values())
        if committed + config.size_bytes > self.local_mem_bytes:
            raise ConfigError(
                f"section {config.name!r} ({config.size_bytes} B) does not fit: "
                f"{committed} B already committed of {self.local_mem_bytes} B"
            )
        section = make_section(config, self.cost, self.clock, self.network)
        section.set_tracer(self.tracer)
        section.telemetry = self.telemetry
        self._sections[config.name] = section
        tr = self.tracer
        if tr is not None:
            tr.emit(
                "sec.open",
                self.clock.now,
                sec=config.name,
                size=config.size_bytes,
                line=config.line_size,
                structure=config.structure.value,
                ways=config.ways,
                # per-access overhead constants, carried so trace analysis
                # (repro.obs.analyze) can attribute hit/insert/evict time
                # without reaching back into the cost model
                hit_ov=section._hit_overhead,
                ins_ov=section._insert_overhead,
                ev_ov=section._evict_overhead,
            )
        return section

    def _register(self, base_name: str, obj_ids: list[int]) -> None:
        for obj_id in obj_ids:
            self.assign(obj_id, base_name)

    def close_section(self, name: str) -> None:
        """End a section's lifetime: flush dirty lines, free its budget.

        ``name`` may be a base name covering per-thread clones; all clones
        are closed together.
        """
        alog = self._alog
        if alog is not None:
            alog.emit("mem.close", self.clock.now, sec=name)
        self._close_section_impl(name)

    def _close_section_impl(self, name: str) -> None:
        """``close_section`` minus the op-log entry (see
        ``_open_section_impl``)."""
        self._resolved.clear()
        names = self._resolve_group(name)
        if not names:
            raise ConfigError(f"no open section named {name!r}")
        tr = self.tracer
        tel = self.telemetry
        for n in names:
            sec = self._sections.pop(n)
            sec.close()
            if tel is not None:
                # the section vanishes from collect_section_stats(); fold
                # its totals into the collector so cumulative series
                # counters stay monotone across section lifetimes
                tel.retire(sec.stats)
            if tr is not None:
                tr.emit(
                    "sec.close",
                    self.clock.now,
                    sec=n,
                    accesses=sec.stats.accesses,
                    misses=sec.stats.misses,
                )
        for obj_id in [o for o, s in self._assignment.items() if s == name]:
            del self._assignment[obj_id]
            self._native_objs.discard(obj_id)
        self._resize_swap()

    def _resolve_group(self, base: str) -> list[str]:
        if base in self._sections:
            return [base]
        return [n for n in self._sections if n.startswith(base + "@t")]

    def assign(self, obj_id: int, section_name: str) -> None:
        """Move an object into a section (out of swap or another section).

        ``section_name`` may be the base name of a per-thread group.
        """
        if not self._resolve_group(section_name):
            raise ConfigError(f"no open section named {section_name!r}")
        old = self._assignment.get(obj_id)
        if old == section_name:
            return
        self._resolved.clear()
        obj = self.address_space.get(obj_id)
        self.swap.drop_object(obj_id)
        if old is not None:
            for n in self._resolve_group(old):
                sec = self._sections[n]
                for key in sec.line_keys(obj_id, 0, obj.size):
                    sec.drop_clean(key)
        self._assignment[obj_id] = section_name
        tr = self.tracer
        if tr is not None:
            tr.emit(
                "sec.assign",
                self.clock.now,
                sec=section_name,
                obj=obj_id,
                prev=old if old is not None else "",
            )

    def section_of(self, obj_id: int) -> CacheSection | None:
        entry = self._resolved.get((obj_id, self.current_thread))
        if entry is None:
            entry = self._resolve(obj_id)
        return entry[1]

    def _resolve(self, obj_id: int) -> tuple:
        entry = (
            self.address_space.get(obj_id),
            self._resolve_section(obj_id),
            self.stats.object(obj_id),
            obj_id in self._native_objs,
        )
        self._resolved[(obj_id, self.current_thread)] = entry
        return entry

    def _resolve_section(self, obj_id: int) -> CacheSection | None:
        name = self._assignment.get(obj_id)
        if name is None:
            return None
        per_thread = f"{name}@t{self.current_thread}"
        if per_thread in self._sections:
            return self._sections[per_thread]
        if name in self._sections:
            return self._sections[name]
        # per-thread group accessed outside a parallel region: use clone 0
        return self._sections[f"{name}@t0"]

    def sections(self) -> dict[str, CacheSection]:
        return dict(self._sections)

    def _resize_swap(self) -> None:
        committed = sum(s.config.size_bytes for s in self._sections.values())
        self.swap.resize(max(PAGE_SIZE, self.local_mem_bytes - committed))

    # -- MemorySystem data path ----------------------------------------------

    def access(
        self,
        obj_id: int,
        offset: int,
        size: int,
        is_write: bool,
        native: bool = False,
    ) -> None:
        rec = self._rec_access
        if rec is not None:
            rec(
                self.clock.now,
                obj=obj_id,
                off=offset,
                size=size,
                w=is_write,
                **({"nat": True} if native else {}),
            )
        if self._degrade_pending:
            self._apply_degradation()
        entry = self._resolved.get((obj_id, self.current_thread))
        if entry is None:
            entry = self._resolve(obj_id)
        obj, section, ostats, obj_native = entry
        if offset < 0 or offset + (size if size > 0 else 1) > obj.size:
            raise MemoryError_(
                f"access [{offset}, {offset + size}) out of bounds for "
                f"object {obj.name or obj_id} ({obj.size} B)"
            )
        ostats.accesses += 1
        sz = size if size > 0 else 1
        if section is None:
            va = obj.va_of(offset)
            first = va // PAGE_SIZE
            if (va + sz - 1) // PAGE_SIZE == first:
                # single-page fast path (fine-grained accesses dominate)
                hit = self.swap._access_page(first, is_write, obj_id)
            else:
                hit = self.swap.access(va, size, is_write, obj_id)
            if self.policy is not None:
                self._drive_policy(obj, va, sz, hit)
        else:
            ls = section._line_size
            first = offset // ls
            if (offset + sz - 1) // ls == first:
                hit = section._access_line(
                    (obj_id, first), is_write, native or obj_native
                )
            else:
                hit = section.access(
                    obj_id, offset, size, is_write, native=native or obj_native
                )
        if not hit:
            ostats.misses += 1
        # peak-metadata tracking is O(sections); sample it
        self._access_counter += 1
        if not self._access_counter % 256:
            self._track_metadata()
        hook = self._path_hook
        if hook is not None:
            hook(obj_id, sz, hit)

    def _drive_policy(self, obj, va: int, size: int, hit: bool) -> None:
        """Feed one swap-path access to the prefetch policy (same contract
        as ``FastSwap._after_access``)."""
        policy = self.policy
        swap = self.swap
        for page in swap.pages_of(va, size):
            policy.record(page)
        if hit:
            return
        plan = policy.plan(va // PAGE_SIZE)
        if not plan:
            return
        tracer = self.tracer
        if tracer is not None and policy.traced:
            tracer.emit(
                "prefetch.plan",
                self.clock.now,
                pol=policy.name,
                line=va // PAGE_SIZE,
                n=len(plan),
            )
        # same thrash guard as FastSwap._after_access: never issue more
        # than fits alongside the page just faulted in
        budget = swap.capacity_pages - 1
        for p in plan:
            if budget <= 0:
                break
            if p >= 0 and not swap.contains(p):
                swap.prefetch(p, obj.obj_id)
                policy.issued += 1
                budget -= 1

    def bulk_load(
        self, obj_id, offset0, stride, size, count, native, dram_ns, cpu_ns
    ) -> bool:
        return self._bulk_stream(
            obj_id, offset0, stride, size, count, native, dram_ns, cpu_ns, False
        )

    def bulk_store(
        self, obj_id, offset0, stride, size, count, native, dram_ns, cpu_ns
    ) -> bool:
        return self._bulk_stream(
            obj_id, offset0, stride, size, count, native, dram_ns, cpu_ns, True
        )

    def _bulk_stream(
        self,
        obj_id: int,
        offset0: int,
        stride: int,
        size: int,
        count: int,
        native: bool,
        dram_ns: float,
        cpu_ns: float,
        is_write: bool,
    ) -> bool:
        """Walk a strided access run one line/page at a time.

        Each chunk (the elements sharing one cache line or page) runs its
        FIRST element through the real per-element path -- mandatory,
        because a miss books network time against ``clock.now`` and must
        see the exact per-element clock -- and aggregates the rest as
        known-hits: after that first access the line is resident with any
        in-flight prefetch settled, hits never evict and never touch the
        network, so within-chunk ordering is unobservable and the
        category sums are exact for integer-valued cost constants.

        Any state where that argument does not hold returns False and the
        caller falls back to its exact per-element loop: tracing or
        windowed telemetry on (the per-element path emits the per-hit
        events, and a window boundary crossed mid-aggregation would
        snapshot stats no per-element engine ever sees), a fault plan or
        pending degradation (either can reconfigure sections mid-run),
        non-integer constants, or geometry where an element could straddle
        a line/page boundary (the 8-byte alignment gates below make that
        impossible: every element then lives inside one aligned 8-byte
        slot, and line/page sizes are multiples of 8).
        """
        if count <= 0:
            return True
        if (
            self.tracer is not None
            or self.telemetry is not None
            or self.policy is not None
            or self._path_hook is not None
            or self._degrade_pending
            or self.network.faults is not None
            or stride % 8
            or offset0 % 8
            or size <= 0
            or size > 8
            or not float(dram_ns).is_integer()
            or not float(cpu_ns).is_integer()
        ):
            return False
        entry = self._resolved.get((obj_id, self.current_thread))
        if entry is None:
            entry = self._resolve(obj_id)
        obj, section, ostats, obj_native = entry
        if offset0 < 0 or offset0 + (count - 1) * stride + size > obj.size:
            return False  # the per-element path raises the canonical error
        if section is None:
            gran = PAGE_SIZE
            base = obj.va_of(offset0)
            if base % 8:
                return False
            nat = False  # the swap path has no native-promise concept
        else:
            gran = section._line_size
            base = offset0
            if gran % 8:
                return False
            nat = native or obj_native
            if not nat and not float(section._hit_overhead).is_integer():
                return False
        clock = self.clock
        swap = self.swap
        j = 0
        while j < count:
            g = (base + j * stride) // gran
            last = min(count - 1, ((g + 1) * gran - size - base) // stride)
            n = last - j
            # chunk-first element: the exact per-element sequence
            clock.advance(dram_ns, "dram")
            if section is None:
                hit = swap._access_page(g, is_write, obj_id)
            else:
                hit = section._access_line((obj_id, g), is_write, nat)
            if not hit:
                ostats.misses += 1
            before = self._access_counter + 1
            self._access_counter = before
            if not before % 256:
                self._track_metadata()
            if n:
                clock.advance(n * dram_ns, "dram")
                if section is None:
                    swap._bulk_hits(g, n, is_write)
                else:
                    section._bulk_hits((obj_id, g), n, is_write, nat)
                # metadata is constant during a hit run, so sampling once
                # at a 256-crossing observes the same value the skipped
                # per-access samples would (peak tracking takes the max)
                ctr = before + n
                self._access_counter = ctr
                if ctr // 256 != before // 256:
                    self._track_metadata()
            ostats.accesses += n + 1
            clock.charge((n + 1) * cpu_ns)
            j = last + 1
        return True

    def _prefetch(self, obj_id: int, offset: int, size: int) -> None:
        entry = self._resolved.get((obj_id, self.current_thread))
        if entry is None:
            entry = self._resolve(obj_id)
        obj, section = entry[0], entry[1]
        if section is None:
            for page in self.swap.pages_of(obj.va_of(offset), size):
                self.swap.prefetch(page, obj_id)
            return
        # never let one prefetch call flood the section: cap the window at
        # half its capacity so in-flight lines cannot evict each other
        if size <= 0:
            size = 1
        ls = section._line_size
        first = offset // ls
        last = (offset + size - 1) // ls
        window = section._prefetch_window
        if last - first >= window:
            last = first + window - 1
        section.prefetch_range(obj_id, first, last)

    def _flush(self, obj_id: int, offset: int, size: int) -> None:
        obj = self.address_space.get(obj_id)
        section = self.section_of(obj_id)
        if section is None:
            self.swap.flush(obj.va_of(offset), size)
            return
        for key in section.line_keys(obj_id, offset, size):
            section.flush_line(key)

    def _evict_hint(self, obj_id: int, offset: int, size: int) -> None:
        obj = self.address_space.get(obj_id)
        section = self.section_of(obj_id)
        if section is None:
            self.swap.evict_hint(obj.va_of(offset), size)
            return
        for key in section.line_keys(obj_id, offset, size):
            section.evict_hint_line(key)

    def _evict_hint_trailing(self, obj_id: int, offset: int) -> None:
        """Streaming hint: the line before ``offset`` will not be touched
        again; mark it evictable."""
        entry = self._resolved.get((obj_id, self.current_thread))
        if entry is None:
            entry = self._resolve(obj_id)
        obj, section = entry[0], entry[1]
        if section is None:
            va = obj.va_of(offset)
            prev = va - PAGE_SIZE
            if prev >= obj.base_va:
                self.swap.evict_hint(prev, 1)
            return
        ls = section._line_size
        prev = offset - ls
        if prev >= 0:
            key = (obj_id, prev // ls)
            # flush first so the hinted line is clean when eviction
            # picks it (write-back leaves the critical path)
            section.flush_line(key)
            section.evict_hint_line(key)

    def _discard(self, obj_id: int) -> None:
        obj = self.address_space.get(obj_id)
        section = self.section_of(obj_id)
        if section is None:
            self.swap.drop_object(obj_id)
            return
        for key in section.line_keys(obj_id, 0, obj.size):
            section.drop_clean(key)

    def _prefetch_batch(self, items: list[tuple[int, int, int]]) -> None:
        """Combine several prefetch ranges into one scatter-gather network
        message: one RTT, summed wire time (section 4.5, batching)."""
        missing: list[tuple[CacheSection, tuple[int, int]]] = []
        total_bytes = 0
        for obj_id, offset, size in items:
            section = self.section_of(obj_id)
            if section is None:
                # swap pages cannot join a scatter-gather rmem message
                self._prefetch(obj_id, offset, size)
                continue
            keys = section.line_keys(obj_id, offset, size)
            for key in section.missing_keys(keys):
                missing.append((section, key))
                total_bytes += section.config.transfer_bytes
        if not missing:
            return
        ready = self.network.read_async(total_bytes, one_sided=True)
        tr = self.tracer
        if tr is not None:
            tr.emit(
                "net.batch",
                self.clock.now,
                lines=len(missing),
                bytes=total_bytes,
                ready=ready,
            )
        for section, key in missing:
            section.install_prefetched(key, ready)

    def _set_native(self, obj_id: int, native: bool) -> None:
        self._resolved.clear()
        if native:
            self._native_objs.add(obj_id)
        else:
            self._native_objs.discard(obj_id)

    def _on_allocate(self, obj: ObjectInfo) -> None:
        section = self.pending_assignment.get(obj.name)
        if section is not None:
            self.assign(obj.obj_id, section)

    def _on_free(self, obj: ObjectInfo) -> None:
        self.swap.drop_object(obj.obj_id)
        self._resolved.clear()
        name = self._assignment.get(obj.obj_id)
        if name is not None:
            for n in self._resolve_group(name):
                sec = self._sections[n]
                for key in sec.line_keys(obj.obj_id, 0, obj.size):
                    sec.drop_clean(key)
            del self._assignment[obj.obj_id]

    # -- reporting -----------------------------------------------------------

    def metadata_bytes(self) -> int:
        return self.swap.metadata_bytes() + sum(
            s.metadata_bytes() for s in self._sections.values()
        )

    def _track_metadata(self) -> None:
        md = self.metadata_bytes()
        if md > self.peak_metadata_bytes:
            self.peak_metadata_bytes = md

    def collect_section_stats(self) -> dict[str, dict]:
        """Snapshot per-section stats (including swap) for the profiler."""
        out = {"swap": vars(self.swap.stats).copy()}
        for name, sec in self._sections.items():
            out[name] = vars(sec.stats).copy()
        return out
