"""Cache-section configuration (what Mira's controller tunes)."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.errors import ConfigError


class Structure(enum.Enum):
    """Cache-section structure (paper section 4.2, 'determining cache
    section structure')."""

    DIRECT = "direct"
    SET_ASSOCIATIVE = "set_associative"
    FULLY_ASSOCIATIVE = "fully_associative"


@dataclass
class SectionConfig:
    """Everything that defines one cache section.

    The controller (``repro.core``) chooses these values from program
    analysis plus profiling; the cache layer just executes them.
    """

    name: str
    size_bytes: int
    line_size: int
    structure: Structure = Structure.FULLY_ASSOCIATIVE
    #: associativity; used only by SET_ASSOCIATIVE
    ways: int = 8
    #: use one-sided RDMA (whole-structure access) or two-sided messages
    #: (partial-structure / selective transmission), section 4.7
    one_sided: bool = True
    #: bytes actually transferred per line fetch; < line_size models
    #: selective transmission of only the accessed fields (section 4.5)
    fetch_bytes: int | None = None
    #: lines whose lifetime the compiler fully controls keep no per-line
    #: metadata (section 4.4, 'native-instruction' optimization)
    metadata_free: bool = False
    #: per-line metadata bytes when not metadata_free (tag + state + links)
    metadata_per_line: int = 16
    #: write-only scopes covering whole lines need no fetch on a write
    #: miss (section 4.5, read/write optimization)
    write_no_fetch: bool = False
    #: shared writable section (section 4.6): conservative config, no
    #: eviction hints honoured
    shared: bool = False
    #: free-form provenance notes from the planner
    notes: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.line_size <= 0:
            raise ConfigError(f"line size must be positive, got {self.line_size}")
        if self.size_bytes < self.line_size:
            raise ConfigError(
                f"section {self.name!r}: size {self.size_bytes} smaller than "
                f"one line ({self.line_size})"
            )
        if self.ways <= 0:
            raise ConfigError(f"ways must be positive, got {self.ways}")
        if self.fetch_bytes is not None and not 0 < self.fetch_bytes <= self.line_size:
            raise ConfigError(
                f"fetch_bytes {self.fetch_bytes} must be in (0, line_size]"
            )

    @property
    def num_lines(self) -> int:
        return max(1, self.size_bytes // self.line_size)

    @property
    def transfer_bytes(self) -> int:
        """Bytes moved over the network per line fetch."""
        return self.fetch_bytes if self.fetch_bytes is not None else self.line_size

    def metadata_bytes(self) -> int:
        """Total per-line metadata this section needs."""
        if self.metadata_free:
            return 0
        return self.num_lines * self.metadata_per_line
