"""Cache-section configuration (what Mira's controller tunes)."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.errors import ConfigError


class Structure(enum.Enum):
    """Cache-section structure (paper section 4.2, 'determining cache
    section structure')."""

    DIRECT = "direct"
    SET_ASSOCIATIVE = "set_associative"
    FULLY_ASSOCIATIVE = "fully_associative"


@dataclass
class SectionConfig:
    """Everything that defines one cache section.

    The controller (``repro.core``) chooses these values from program
    analysis plus profiling; the cache layer just executes them.
    """

    name: str
    size_bytes: int
    line_size: int
    structure: Structure = Structure.FULLY_ASSOCIATIVE
    #: associativity; used only by SET_ASSOCIATIVE
    ways: int = 8
    #: use one-sided RDMA (whole-structure access) or two-sided messages
    #: (partial-structure / selective transmission), section 4.7
    one_sided: bool = True
    #: bytes actually transferred per line fetch; < line_size models
    #: selective transmission of only the accessed fields (section 4.5)
    fetch_bytes: int | None = None
    #: lines whose lifetime the compiler fully controls keep no per-line
    #: metadata (section 4.4, 'native-instruction' optimization)
    metadata_free: bool = False
    #: per-line metadata bytes when not metadata_free (tag + state + links)
    metadata_per_line: int = 16
    #: write-only scopes covering whole lines need no fetch on a write
    #: miss (section 4.5, read/write optimization)
    write_no_fetch: bool = False
    #: shared writable section (section 4.6): conservative config, no
    #: eviction hints honoured
    shared: bool = False
    #: free-form provenance notes from the planner
    notes: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.line_size <= 0:
            raise ConfigError(f"line size must be positive, got {self.line_size}")
        if self.size_bytes < self.line_size:
            raise ConfigError(
                f"section {self.name!r}: size {self.size_bytes} smaller than "
                f"one line ({self.line_size})"
            )
        if self.ways <= 0:
            raise ConfigError(f"ways must be positive, got {self.ways}")
        if self.fetch_bytes is not None and not 0 < self.fetch_bytes <= self.line_size:
            raise ConfigError(
                f"fetch_bytes {self.fetch_bytes} must be in (0, line_size]"
            )

    @property
    def num_lines(self) -> int:
        return max(1, self.size_bytes // self.line_size)

    @property
    def transfer_bytes(self) -> int:
        """Bytes moved over the network per line fetch."""
        return self.fetch_bytes if self.fetch_bytes is not None else self.line_size

    def metadata_bytes(self) -> int:
        """Total per-line metadata this section needs."""
        if self.metadata_free:
            return 0
        return self.num_lines * self.metadata_per_line

    # -- trace round-trip (repro.workloads.trace self-replay) ---------------

    def to_fields(self) -> dict:
        """JSON-serializable form carried in ``mem.open`` trace events.

        Covers every field the cache layer executes; ``notes`` is
        planner-side provenance (``per_thread`` travels separately in the
        event) and is intentionally dropped.
        """
        return {
            "name": self.name,
            "size": self.size_bytes,
            "line": self.line_size,
            "structure": self.structure.value,
            "ways": self.ways,
            "one_sided": self.one_sided,
            "fetch": self.fetch_bytes,
            "md_free": self.metadata_free,
            "md_line": self.metadata_per_line,
            "wnf": self.write_no_fetch,
            "shared": self.shared,
        }

    @classmethod
    def from_fields(cls, fields: dict) -> "SectionConfig":
        """Inverse of :meth:`to_fields` (replay reconstructs sections)."""
        return cls(
            name=fields["name"],
            size_bytes=fields["size"],
            line_size=fields["line"],
            structure=Structure(fields["structure"]),
            ways=fields["ways"],
            one_sided=fields["one_sided"],
            fetch_bytes=fields["fetch"],
            metadata_free=fields["md_free"],
            metadata_per_line=fields["md_line"],
            write_no_fetch=fields["wnf"],
            shared=fields["shared"],
        )
