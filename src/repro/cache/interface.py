"""The memory-system interface every simulated system implements.

``MemorySystem`` is what the IR interpreter talks to.  Implementations:

* :class:`repro.baselines.native.NativeMemory` -- all-local, the
  normalization baseline,
* :class:`repro.cache.manager.CacheManager` -- Mira's section-based cache,
* :class:`repro.baselines.fastswap.FastSwap`,
  :class:`repro.baselines.leap.Leap` -- page-swap systems,
* :class:`repro.baselines.aifm.AIFM` -- object-granularity library runtime.

Semantics: ``access`` charges virtual time for the *placement* consequences
of one program access (lookup, miss, eviction, network); the interpreter
separately charges CPU/DRAM time for the access itself.  Data values never
live here -- correctness is handled by the interpreter's object store.
"""

from __future__ import annotations

import abc

from repro.cache.stats import MemoryStats
from repro.memsim.address import AddressSpace, ObjectInfo
from repro.memsim.clock import VirtualClock
from repro.memsim.cost_model import CostModel
from repro.memsim.farnode import FarMemoryNode
from repro.memsim.network import Network


class MemorySystem(abc.ABC):
    """Base class wiring a system to the shared machine simulator."""

    name: str = "abstract"

    def __init__(
        self,
        cost: CostModel,
        local_mem_bytes: int,
        clock: VirtualClock | None = None,
    ) -> None:
        self.cost = cost
        self.local_mem_bytes = local_mem_bytes
        self.clock = clock or VirtualClock()
        self.network = Network(cost, self.clock)
        self.far_node = FarMemoryNode(cost)
        self.address_space = AddressSpace()
        self.stats = MemoryStats()
        #: attached :class:`repro.obs.Tracer`, or None (tracing disabled)
        self.tracer = None
        #: attached :class:`repro.obs.timeseries.TelemetryCollector`, or
        #: None (telemetry disabled; miss-path observe hooks are then a
        #: single ``is not None`` test, the same deal as the tracer)
        self.telemetry = None
        #: the tracer again iff it was built with ``access_log=True``:
        #: every public call then records a ``mem.*`` op-log event at its
        #: entry (time + arguments), making the trace self-replayable.
        #: None for default tracers, so pre-existing digests are untouched.
        self._alog = None
        #: pre-bound ``mem.access`` emitter for the hot path (or None)
        self._rec_access = None

    # -- allocation --------------------------------------------------------

    def allocate(
        self,
        size: int,
        elem_size: int = 8,
        name: str = "",
        alloc_site: str = "",
        attrs: dict | None = None,
    ) -> ObjectInfo:
        """Allocate an object; far-memory backing is created eagerly."""
        alog = self._alog
        if alog is not None:
            alog.emit(
                "mem.alloc",
                self.clock.now,
                size=size,
                elem=elem_size,
                name=name,
                **({"attrs": attrs} if attrs else {}),
            )
        obj = self.address_space.allocate(size, elem_size, name, alloc_site, attrs)
        self.far_node.allocate(size)
        self._on_allocate(obj)
        tr = self.tracer
        if tr is not None:
            tr.emit(
                "obj.alloc",
                self.clock.now,
                obj=obj.obj_id,
                size=size,
                name=name,
                far_rt=self.far_node.local_allocator.round_trips,
            )
        return obj

    def free(self, obj_id: int) -> None:
        alog = self._alog
        if alog is not None:
            alog.emit("mem.free", self.clock.now, obj=obj_id)
        obj = self.address_space.get(obj_id)
        tr = self.tracer
        if tr is not None:
            tr.emit("obj.free", self.clock.now, obj=obj_id, size=obj.size)
        self._on_free(obj)
        self.address_space.free(obj_id)

    # -- clock plumbing (thread simulation swaps the active clock) -----------

    def set_clock(self, clock: VirtualClock) -> None:
        self.clock = clock
        self.network.clock = clock
        self.far_node.clock = clock

    # -- tracing (no-op unless a tracer is attached) -------------------------

    def set_tracer(self, tracer) -> None:
        """Attach a :class:`repro.obs.Tracer` (or None to detach).  Must be
        called before the interpreter is built so runtime-side emission
        points pick it up.  Subclasses propagate to their sections."""
        self.tracer = tracer
        self.network.tracer = tracer
        self._bind_access_log(tracer)

    def set_telemetry(self, telemetry) -> None:
        """Attach a :class:`~repro.obs.timeseries.TelemetryCollector`
        (or None to detach).  Subclasses propagate to their sections so
        miss-wait observations reach the collector's per-window
        histogram."""
        self.telemetry = telemetry

    def _bind_access_log(self, tracer) -> None:
        """Enable the ``mem.*`` op log iff the tracer asked for it."""
        if tracer is not None and getattr(tracer, "access_log", False):
            self._alog = tracer
            self._rec_access = tracer.emitter("mem.access")
        else:
            self._alog = None
            self._rec_access = None

    # -- fault injection (disabled unless a plan is installed) ---------------

    def enable_faults(self, plan) -> None:
        """Install a :class:`repro.faults.FaultPlan` for this run.

        Builds a fresh seeded :class:`~repro.faults.FaultInjector` (so
        every run under the same plan draws the same fault sequence) and
        wires it into the shared machine: the network gains the
        timeout/retry/backoff/breaker reliability layer, the far node's
        offload compute honors slowdown windows.  Pass None to disable.
        """
        if plan is None:
            self.network.install_faults(None)
            self.far_node.faults = None
            return
        from repro.faults import FaultInjector

        injector = FaultInjector(plan)
        self.network.install_faults(injector)
        self.far_node.faults = injector
        self.far_node.clock = self.clock

    # -- the data path -------------------------------------------------------

    @abc.abstractmethod
    def access(
        self,
        obj_id: int,
        offset: int,
        size: int,
        is_write: bool,
        native: bool = False,
    ) -> None:
        """One program access of ``size`` bytes at ``offset`` into the
        object.  Advances the clock by whatever the system's data path
        costs (zero extra for all-local native memory).  ``native=True``
        is the compiler's dereference-elision promise (section 4.4);
        systems without the concept ignore it."""

    # -- optional hints (no-ops for systems that cannot use them) -----------
    #
    # Each public hint is a thin wrapper that records the call in the
    # op log (when enabled) and delegates to an ``_impl`` hook, which is
    # what subclasses override.  Internal re-issues (e.g. a batch falling
    # back to single prefetches) go through the hooks directly, so every
    # program-level call is logged exactly once -- no nesting -- and the
    # self-replayer can re-issue the public surface verbatim.

    def prefetch(self, obj_id: int, offset: int, size: int) -> None:
        """Asynchronous fetch hint (Mira compiler-inserted prefetch)."""
        alog = self._alog
        if alog is not None:
            alog.emit(
                "mem.prefetch", self.clock.now, obj=obj_id, off=offset, size=size
            )
        self._prefetch(obj_id, offset, size)

    def _prefetch(self, obj_id: int, offset: int, size: int) -> None:
        pass

    def flush(self, obj_id: int, offset: int, size: int) -> None:
        """Asynchronously write back a range (pre-eviction flush)."""
        alog = self._alog
        if alog is not None:
            alog.emit(
                "mem.flush", self.clock.now, obj=obj_id, off=offset, size=size
            )
        self._flush(obj_id, offset, size)

    def _flush(self, obj_id: int, offset: int, size: int) -> None:
        pass

    def evict_hint(self, obj_id: int, offset: int, size: int) -> None:
        """Mark a range evictable (compiler-inserted last-access hint)."""
        alog = self._alog
        if alog is not None:
            alog.emit(
                "mem.evict", self.clock.now, obj=obj_id, off=offset, size=size
            )
        self._evict_hint(obj_id, offset, size)

    def _evict_hint(self, obj_id: int, offset: int, size: int) -> None:
        pass

    def evict_hint_trailing(self, obj_id: int, offset: int) -> None:
        """Mark the line *behind* ``offset`` evictable (streaming hint:
        the previous line's last access has passed)."""
        alog = self._alog
        if alog is not None:
            alog.emit("mem.evict_trail", self.clock.now, obj=obj_id, off=offset)
        self._evict_hint_trailing(obj_id, offset)

    def _evict_hint_trailing(self, obj_id: int, offset: int) -> None:
        pass

    def discard(self, obj_id: int) -> None:
        """Drop an object's clean cached data without write-back
        (read-only scope ended)."""
        alog = self._alog
        if alog is not None:
            alog.emit("mem.discard", self.clock.now, obj=obj_id)
        self._discard(obj_id)

    def _discard(self, obj_id: int) -> None:
        pass

    def prefetch_batch(self, items: list[tuple[int, int, int]]) -> None:
        """Prefetch several ``(obj_id, offset, size)`` ranges; systems that
        can batch combine them into one network message (section 4.5)."""
        alog = self._alog
        if alog is not None:
            alog.emit(
                "mem.batch",
                self.clock.now,
                items=[[o, off, sz] for o, off, sz in items],
            )
        self._prefetch_batch(items)

    def _prefetch_batch(self, items: list[tuple[int, int, int]]) -> None:
        for obj_id, offset, size in items:
            self._prefetch(obj_id, offset, size)

    def set_native(self, obj_id: int, native: bool) -> None:
        """Compiler promise that subsequent accesses to this object are
        dereference-elided (section 4.4); systems without the concept
        ignore it."""
        alog = self._alog
        if alog is not None:
            alog.emit("mem.native", self.clock.now, obj=obj_id, on=native)
        self._set_native(obj_id, native)

    def _set_native(self, obj_id: int, native: bool) -> None:
        pass

    # -- bulk access (codegen engine's vectorized memref path) ---------------

    def bulk_load(
        self,
        obj_id: int,
        offset0: int,
        stride: int,
        size: int,
        count: int,
        native: bool,
        dram_ns: float,
        cpu_ns: float,
    ) -> bool:
        """Try to execute ``count`` strided reads of ``size`` bytes starting
        at ``offset0`` as one batched operation, charging ``dram_ns`` DRAM
        time plus ``cpu_ns`` compute per element in aggregated steps that
        are bit-identical in total to ``count`` per-element accesses.

        Returns True on success; False means the caller must fall back to
        its exact per-element loop (the default: systems without a batch
        path, or any state where aggregation cannot be proven exact)."""
        return False

    def bulk_store(
        self,
        obj_id: int,
        offset0: int,
        stride: int,
        size: int,
        count: int,
        native: bool,
        dram_ns: float,
        cpu_ns: float,
    ) -> bool:
        """Write-side twin of :meth:`bulk_load`."""
        return False

    # -- bookkeeping hooks ---------------------------------------------------

    def _on_allocate(self, obj: ObjectInfo) -> None:
        pass

    def _on_free(self, obj: ObjectInfo) -> None:
        pass

    # -- reporting ---------------------------------------------------------

    def metadata_bytes(self) -> int:
        """Local-memory bytes spent on the system's own metadata."""
        return 0

    def local_bytes_available(self) -> int:
        """Local memory usable for data after metadata."""
        return max(0, self.local_mem_bytes - self.metadata_bytes())

    def describe(self) -> str:
        return f"{self.name}(local={self.local_mem_bytes} B)"
