"""Hybrid data plane: per-section-group online path selection.

Neither the kernel page path (FastSwap-style swap) nor the runtime
object path (AIFM/Mira-style cache sections) wins everywhere, and the
right choice can change mid-run as the access pattern shifts ("A Tale of
Two Paths").  The :class:`HybridManager` generalizes the degradation
remap of :meth:`CacheManager._degrade_step` into a first-class system:

* **Plan time** -- each *path group* (a section config plus the
  allocation names it covers) starts on the path the planner chose from
  profiler/locality signals (:func:`repro.analysis.locality.choose_path`),
  or on the swap path when nothing is known yet (trace frontend).

* **Run time** -- every access lands in a fixed-size observation window
  per group.  At each window boundary the manager compares the windowed
  miss rate and read amplification (bytes fetched / bytes accessed)
  against the :class:`HybridConfig` thresholds and switches the group:
  swap->object ("promote") when locality appears -- high miss rate *and*
  page-level amplification, i.e. whole pages travel for a few useful
  bytes; object->swap ("demote") when the section thrashes -- near-total
  miss rate or line-level amplification beyond the demote threshold.

* **Hysteresis** -- decisions happen only at window boundaries, the
  promote and demote thresholds do not overlap, and every switch starts
  a cooldown of ``cooldown_windows`` windows, so a group oscillating
  around a threshold switches at most once per window and never flaps
  back immediately.

* **State migration** -- a promote opens the section and re-assigns the
  live objects, which drops their swap pages (dirty ones are written
  back asynchronously) and settles or wastes in-flight swap prefetches;
  a demote closes the section, which flushes dirty lines and counts
  still-in-flight section prefetches as wasted.  All of that rides the
  existing section/swap machinery, so the migration traffic is priced
  and traced exactly like any other eviction.  The control-plane cost of
  the flip itself is ``CostModel.path_switch_ns``, charged to the
  ``path_switch`` clock category and emitted as a ``path.switch`` event.

* **Degradation wins** -- while a fault plan is active (or a degradation
  is pending) voluntary switching is disabled entirely: the breaker's
  remap policy owns the configuration, its overhead is never compounded
  by switch overhead, and a group whose section was shed by degradation
  is locked on the swap path for the rest of the run.

Switches are a deterministic consequence of the access stream, so hybrid
runs keep the full parity contract: byte-identical traces across the
three engines and bit-exact self-replay (``path.switch`` is deliberately
*not* a forbidden replay kind; the replayed manager re-derives every
switch from the replayed accesses).  Replay rebuilds groups from the
``mem.plan`` op-log events this manager records; thresholds are not in
the trace, so a replaying system must be built with the same
:class:`HybridConfig` (the default, for every named system).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cache.config import SectionConfig
from repro.cache.manager import CacheManager
from repro.errors import ConfigError
from repro.memsim.address import PAGE_SIZE, ObjectInfo


@dataclass(frozen=True)
class HybridConfig:
    """Switchover thresholds, calibrated against ``BENCH_trace.json``.

    With 8-byte accesses a swap miss fetches a 4096-byte page (worst-case
    amplification 512x) and an object miss a 256-byte line (32x).  The
    promote gate requires both a real miss rate and page-level waste, so
    dense scans (amplification ~1) stay on swap; the demote gate fires
    only when the object path is nearly always missing, far above any
    post-promote steady state, so the two gates cannot chase each other.
    """

    #: accesses per observation window (per group)
    window: int = 2048
    #: promote (swap->object) when the windowed miss rate reaches this...
    promote_miss_rate: float = 0.02
    #: ...and bytes-fetched/bytes-accessed reaches this
    promote_amplification: float = 32.0
    #: demote (object->swap) when the windowed miss rate reaches this...
    demote_miss_rate: float = 0.9
    #: ...or line amplification reaches this (miss rate ~0.75 at 8B/256B)
    demote_amplification: float = 24.0
    #: windows to sit out after any switch (hysteresis)
    cooldown_windows: int = 2

    def __post_init__(self) -> None:
        if self.window <= 0:
            raise ConfigError("hybrid window must be positive")
        if not 0.0 < self.promote_miss_rate <= self.demote_miss_rate <= 1.0:
            raise ConfigError(
                "need 0 < promote_miss_rate <= demote_miss_rate <= 1"
            )
        if self.cooldown_windows < 0:
            raise ConfigError("cooldown_windows must be >= 0")


@dataclass
class PathGroup:
    """One planned section group and its current path + window state."""

    config: SectionConfig
    per_thread: int = 0
    #: "object" (CacheSection) or "swap" (kernel page path)
    path: str = "swap"
    #: allocation names covered; "*" matches any object
    names: tuple = ()
    #: live member objects, in allocation order
    obj_ids: list[int] = field(default_factory=list)
    # current-window counters
    win_acc: int = 0
    win_miss: int = 0
    win_bytes: int = 0
    #: windows left before the group may switch again
    cooldown: int = 0
    #: set when degradation shed the group's section: never promote again
    locked: bool = False
    #: whether the group's ``mem.plan`` op-log entry has been emitted
    logged: bool = False


class HybridManager(CacheManager):
    """A :class:`CacheManager` whose sections can switch paths online."""

    name = "hybrid"

    def __init__(
        self,
        cost,
        local_mem_bytes,
        clock=None,
        fault_lock=None,
        policy=None,
        hybrid_config: HybridConfig | None = None,
    ) -> None:
        super().__init__(
            cost, local_mem_bytes, clock=clock, fault_lock=fault_lock,
            policy=policy,
        )
        self.hybrid_config = hybrid_config or HybridConfig()
        self._groups: dict[str, PathGroup] = {}
        self._obj_group: dict[int, PathGroup] = {}
        #: applied switches, oldest first (mirrors ``degrade_log``)
        self.switch_log: list[dict] = []
        self._path_hook = self._path_account

    # -- planning -----------------------------------------------------------

    def plan_group(
        self,
        config: SectionConfig,
        names: list[str],
        per_thread: int = 0,
        path: str = "object",
    ) -> PathGroup:
        """Register a section group with an initial path.

        Must precede the member allocations (plans are made before the
        program runs); objects whose allocation name matches ``names``
        (or ``"*"``) join the group as they are allocated.  Re-planning
        an existing group is a no-op returning it, so replaying a
        recorded ``mem.plan`` onto a pre-planned system is safe.
        """
        existing = self._groups.get(config.name)
        if existing is not None:
            return existing
        if path not in ("object", "swap"):
            raise ConfigError(
                f"unknown path {path!r}; expected 'object' or 'swap'"
            )
        group = PathGroup(
            config=config, per_thread=per_thread, path=path,
            names=tuple(names),
        )
        self._groups[config.name] = group
        self._log_plan(group)
        if path == "object":
            self._open_section_impl(config, [], per_thread=per_thread)
        return group

    def _log_plan(self, group: PathGroup) -> None:
        alog = self._alog
        if alog is None or group.logged:
            return
        group.logged = True
        alog.emit(
            "mem.plan",
            self.clock.now,
            sec=group.config.name,
            cfg=group.config.to_fields(),
            names=list(group.names),
            pt=group.per_thread,
            path=group.path,
        )

    def set_tracer(self, tracer) -> None:
        super().set_tracer(tracer)
        # groups planned before the tracer attached (make_system) log
        # their plan now, so the trace is self-describing from event 0
        for group in self._groups.values():
            self._log_plan(group)

    def groups(self) -> dict[str, PathGroup]:
        return dict(self._groups)

    # -- membership ---------------------------------------------------------

    def _match_group(self, name: str) -> PathGroup | None:
        wildcard = None
        for group in self._groups.values():
            if name and name in group.names:
                return group
            if wildcard is None and "*" in group.names:
                wildcard = group
        return wildcard

    def _on_allocate(self, obj: ObjectInfo) -> None:
        group = self._match_group(obj.name)
        if group is None:
            super()._on_allocate(obj)
            return
        group.obj_ids.append(obj.obj_id)
        self._obj_group[obj.obj_id] = group
        if group.path == "object":
            self.assign(obj.obj_id, group.config.name)

    def _on_free(self, obj: ObjectInfo) -> None:
        group = self._obj_group.pop(obj.obj_id, None)
        if group is not None:
            group.obj_ids.remove(obj.obj_id)
        super()._on_free(obj)

    # -- windowed switchover ------------------------------------------------

    def _path_account(self, obj_id: int, size: int, hit: bool) -> None:
        group = self._obj_group.get(obj_id)
        if group is None:
            return
        group.win_acc += 1
        group.win_bytes += size
        if not hit:
            group.win_miss += 1
        if group.win_acc >= self.hybrid_config.window:
            self._evaluate(group)

    def _evaluate(self, group: PathGroup) -> None:
        acc, miss, touched = group.win_acc, group.win_miss, group.win_bytes
        group.win_acc = group.win_miss = group.win_bytes = 0
        if group.cooldown:
            group.cooldown -= 1
            return
        if group.locked:
            return
        if self.network.faults is not None or self._degrade_pending:
            # degradation owns the configuration under fault injection;
            # never compound breaker recovery with voluntary switches
            return
        if self.fault_lock is not None:
            # threaded runs fork per-thread clocks; windowed signals are
            # not globally ordered there, so switching stays plan-time
            return
        hc = self.hybrid_config
        miss_rate = miss / acc
        if group.path == "swap":
            amplification = miss * PAGE_SIZE / touched
            if (
                miss_rate >= hc.promote_miss_rate
                and amplification >= hc.promote_amplification
            ):
                self._promote(group, miss_rate, amplification)
        else:
            amplification = miss * group.config.transfer_bytes / touched
            if (
                miss_rate >= hc.demote_miss_rate
                or amplification >= hc.demote_amplification
            ):
                self._demote(group, miss_rate, amplification)

    def _promote(
        self, group: PathGroup, miss_rate: float, amplification: float
    ) -> None:
        try:
            self._open_section_impl(
                group.config, [], per_thread=group.per_thread
            )
        except ConfigError:
            # budget currently committed elsewhere: back off and retry
            # after the cooldown instead of failing the run
            group.cooldown = self.hybrid_config.cooldown_windows
            return
        for obj_id in list(group.obj_ids):
            self.assign(obj_id, group.config.name)
        group.path = "object"
        self._finish_switch(group, "promote", miss_rate, amplification)

    def _demote(
        self, group: PathGroup, miss_rate: float, amplification: float
    ) -> None:
        self._close_section_impl(group.config.name)
        group.path = "swap"
        self._finish_switch(group, "demote", miss_rate, amplification)

    def _finish_switch(
        self, group: PathGroup, direction: str, miss_rate: float,
        amplification: float,
    ) -> None:
        group.cooldown = self.hybrid_config.cooldown_windows
        overhead = self.cost.path_switch_ns
        tr = self.tracer
        if tr is not None:
            tr.emit(
                "path.switch",
                self.clock.now,
                sec=group.config.name,
                dir=direction,
                path=group.path,
                miss=round(miss_rate, 6),
                amp=round(amplification, 6),
                ov=overhead,
            )
        self.clock.advance(overhead, "path_switch")
        self.switch_log.append(
            {
                "sec": group.config.name,
                "dir": direction,
                "t": self.clock.now,
                "miss_rate": miss_rate,
                "amplification": amplification,
            }
        )

    # -- degradation interplay ---------------------------------------------

    def _degrade_step(self) -> None:
        super()._degrade_step()
        # reconcile: a group whose section degradation just shed is now on
        # the swap path, permanently -- no path.switch event (the
        # degrade.section event already records the remap, and degraded
        # traces are not replayable anyway)
        for group in self._groups.values():
            if group.path == "object" and not self._resolve_group(
                group.config.name
            ):
                group.path = "swap"
                group.locked = True
