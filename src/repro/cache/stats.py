"""Per-section and per-object cache statistics."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class SectionStats:
    """Counters a section accumulates; read by the profiler and figures."""

    accesses: int = 0
    hits: int = 0
    misses: int = 0
    #: misses satisfied by an in-flight prefetch (partially hidden latency)
    prefetch_hits: int = 0
    prefetches_issued: int = 0
    #: evictions that threw away a prefetch still in flight (the fetched
    #: bytes crossed the wire but were never read)
    prefetch_wasted: int = 0
    evictions: int = 0
    #: evictions that picked a compiler-hinted evictable line
    hinted_evictions: int = 0
    writebacks: int = 0
    #: accesses compiled to native loads (no lookup overhead charged)
    native_accesses: int = 0
    #: virtual ns spent waiting on fetches (sync misses + early arrivals)
    miss_wait_ns: float = 0.0
    #: virtual ns of lookup/insert/evict overhead
    overhead_ns: float = 0.0

    @property
    def miss_rate(self) -> float:
        if self.accesses == 0:
            return 0.0
        return self.misses / self.accesses

    @property
    def prefetch_waste_ratio(self) -> float:
        """Share of issued prefetches discarded before their data was
        read (evicted in flight, or dropped at section close/resize)."""
        if self.prefetches_issued == 0:
            return 0.0
        return self.prefetch_wasted / self.prefetches_issued

    def merge(self, other: "SectionStats") -> None:
        for f in (
            "accesses",
            "hits",
            "misses",
            "prefetch_hits",
            "prefetches_issued",
            "prefetch_wasted",
            "evictions",
            "hinted_evictions",
            "writebacks",
            "native_accesses",
        ):
            setattr(self, f, getattr(self, f) + getattr(other, f))
        self.miss_wait_ns += other.miss_wait_ns
        self.overhead_ns += other.overhead_ns

    def publish(self, registry, prefix: str) -> None:
        """Publish every counter into a :class:`repro.obs.MetricsRegistry`
        under ``{prefix}.{field}`` (e.g. ``cache.main.hits``)."""
        for fname, value in vars(self).items():
            registry.gauge(f"{prefix}.{fname}").set(value)
        registry.gauge(f"{prefix}.miss_rate").set(self.miss_rate)
        registry.gauge(f"{prefix}.prefetch_waste_ratio").set(
            self.prefetch_waste_ratio
        )


@dataclass
class ObjectStats:
    """Per-object access/miss counters (Fig. 8 reports per-array miss
    rates even when arrays share a cache)."""

    accesses: int = 0
    misses: int = 0

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0


@dataclass
class MemoryStats:
    """System-wide rollup for a whole run."""

    per_section: dict[str, SectionStats] = field(default_factory=dict)
    per_object: dict[int, ObjectStats] = field(default_factory=dict)
    metadata_bytes: int = 0

    def section(self, name: str) -> SectionStats:
        # .get + conditional insert: setdefault would construct a throwaway
        # SectionStats on every call of this per-access path
        s = self.per_section.get(name)
        if s is None:
            s = self.per_section[name] = SectionStats()
        return s

    def object(self, obj_id: int) -> ObjectStats:
        s = self.per_object.get(obj_id)
        if s is None:
            s = self.per_object[obj_id] = ObjectStats()
        return s

    def total(self) -> SectionStats:
        out = SectionStats()
        for s in self.per_section.values():
            out.merge(s)
        return out
