"""K-way set-associative cache section.

Middle ground between direct mapping's cheap lookup and full
associativity's conflict-freedom; the planner sizes K from the estimated
conflicts in the analyzed locality sets (section 4.2).
"""

from __future__ import annotations

from collections import OrderedDict

from repro.cache.section import CacheSection, Line, LineKey


class SetAssociativeSection(CacheSection):
    """Sets are OrderedDicts in LRU order (oldest first)."""

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._num_sets = max(1, self.config.num_lines // self.config.ways)
        self._ways = self.config.ways
        self._sets: dict[int, OrderedDict[LineKey, Line]] = {}
        self._count = 0

    def _set_of(self, key: LineKey) -> OrderedDict[LineKey, Line]:
        set_idx = (key[1] + key[0] * 0x9E3779B1) % self._num_sets
        bucket = self._sets.get(set_idx)
        if bucket is None:
            # .get + insert: setdefault would build a throwaway OrderedDict
            # on every probe of this per-access path
            bucket = self._sets[set_idx] = OrderedDict()
        return bucket

    def lookup(self, key: LineKey) -> Line | None:
        bucket = self._set_of(key)
        line = bucket.get(key)
        if line is not None:
            bucket.move_to_end(key)
        return line

    def peek(self, key: LineKey) -> Line | None:
        return self._set_of(key).get(key)

    def choose_victim(self, key: LineKey) -> Line | None:
        bucket = self._set_of(key)
        if len(bucket) < self._ways:
            return None
        # evictable-first, then LRU (section 4.5, eviction hints)
        for line in bucket.values():
            if line.evictable:
                return line
        return next(iter(bucket.values()))

    def install(self, line: Line) -> None:
        bucket = self._set_of(line.key)
        if line.key not in bucket:
            self._count += 1
        bucket[line.key] = line

    def remove(self, key: LineKey) -> Line | None:
        line = self._set_of(key).pop(key, None)
        if line is not None:
            self._count -= 1
        return line

    def resident_lines(self) -> list[Line]:
        return [ln for bucket in self._sets.values() for ln in bucket.values()]

    def resident_count(self) -> int:
        return self._count
