"""Directly-mapped cache section.

Cheapest lookup (one slot to check) and zero conflict cost for sequential
or strided patterns, which is why the planner picks it for those
(section 4.2).
"""

from __future__ import annotations

from repro.cache.section import CacheSection, Line, LineKey


class DirectMappedSection(CacheSection):
    """Each line key maps to exactly one slot."""

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._num_lines = self.config.num_lines
        self._slots: dict[int, Line] = {}

    def _slot(self, key: LineKey) -> int:
        # mix the object id in so two objects sharing a section do not
        # collide on low indices systematically
        return (key[1] + key[0] * 0x9E3779B1) % self._num_lines

    def lookup(self, key: LineKey) -> Line | None:
        line = self._slots.get(self._slot(key))
        if line is not None and line.key == key:
            return line
        return None

    def peek(self, key: LineKey) -> Line | None:
        return self.lookup(key)

    def choose_victim(self, key: LineKey) -> Line | None:
        occupant = self._slots.get(self._slot(key))
        if occupant is not None and occupant.key != key:
            return occupant
        return None

    def install(self, line: Line) -> None:
        self._slots[self._slot(line.key)] = line

    def remove(self, key: LineKey) -> Line | None:
        slot = self._slot(key)
        line = self._slots.get(slot)
        if line is not None and line.key == key:
            del self._slots[slot]
            return line
        return None

    def resident_lines(self) -> list[Line]:
        return list(self._slots.values())

    def resident_count(self) -> int:
        return len(self._slots)
