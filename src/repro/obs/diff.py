"""Differential trace comparison.

Pinpoints *where* two runs diverge, not just *that* they diverge.  Given
two canonical JSONL traces (:mod:`repro.obs.trace`), :func:`diff_traces`
reports:

* whether the traces are behaviorally identical (event-digest compare,
  same stability rules as golden-trace digests);
* the **first divergence**: the sequence index of the first event pair
  that differs, with both events, their kinds, and the exact field names
  whose values differ (or which side is missing the event when one
  trace is a strict prefix of the other);
* per-kind event-count deltas (what got more hits, fewer evictions...);
* attribution-bucket deltas via :mod:`repro.obs.analyze` -- how the
  divergence shows up as virtual time.

The first divergence is the debugging entry point: everything before it
is byte-identical, so the cause of a regression lives at (or immediately
before) that event.

CLI::

    python -m repro.obs.diff A.jsonl B.jsonl

exits 0 when identical, 1 when divergent, 2 when a trace is unreadable.
"""

from __future__ import annotations

import json
import sys

from repro.obs.analyze import analyze_events
from repro.obs.trace import digest_of_events, load_trace


def _event_key(rec: dict) -> dict:
    """An event minus its sequence index (the index is positional)."""
    return {k: v for k, v in rec.items() if k != "i"}


def first_divergence(a: list[dict], b: list[dict]) -> dict | None:
    """First index where the streams disagree, or ``None`` if one is a
    (possibly equal) prefix of the other and the common prefix matches."""
    for i, (ra, rb) in enumerate(zip(a, b)):
        ka, kb = _event_key(ra), _event_key(rb)
        if ka != kb:
            fields = sorted(
                k
                for k in set(ka) | set(kb)
                if ka.get(k, _MISSING) != kb.get(k, _MISSING)
            )
            return {
                "seq": i,
                "kind_a": ra.get("k"),
                "kind_b": rb.get("k"),
                "fields": fields,
                "event_a": ra,
                "event_b": rb,
            }
    if len(a) != len(b):
        i = min(len(a), len(b))
        longer, side = (a, "a") if len(a) > len(b) else (b, "b")
        return {
            "seq": i,
            "kind_a": a[i].get("k") if i < len(a) else None,
            "kind_b": b[i].get("k") if i < len(b) else None,
            "fields": ["<missing event>"],
            "event_a": a[i] if i < len(a) else None,
            "event_b": b[i] if i < len(b) else None,
            "tail_events": len(longer) - i,
            "tail_side": side,
        }
    return None


_MISSING = object()


def _kind_counts(events: list[dict]) -> dict[str, int]:
    counts: dict[str, int] = {}
    for rec in events:
        k = rec.get("k", "<unknown>")
        counts[k] = counts.get(k, 0) + 1
    return counts


def diff_traces(events_a: list[dict], events_b: list[dict]) -> dict:
    """Full structural diff of two decoded event streams."""
    dig_a = digest_of_events(events_a)
    dig_b = digest_of_events(events_b)
    identical = dig_a == dig_b
    counts_a = _kind_counts(events_a)
    counts_b = _kind_counts(events_b)
    kind_deltas = {
        k: counts_b.get(k, 0) - counts_a.get(k, 0)
        for k in sorted(set(counts_a) | set(counts_b))
        if counts_b.get(k, 0) != counts_a.get(k, 0)
    }
    att_a = analyze_events(events_a)
    att_b = analyze_events(events_b)
    bucket_deltas = {
        k: att_b.by_bucket.get(k, 0.0) - att_a.by_bucket.get(k, 0.0)
        for k in sorted(set(att_a.by_bucket) | set(att_b.by_bucket))
        if att_b.by_bucket.get(k, 0.0) != att_a.by_bucket.get(k, 0.0)
    }
    return {
        "identical": identical,
        "digest_a": dig_a,
        "digest_b": dig_b,
        "events_a": len(events_a),
        "events_b": len(events_b),
        "first_divergence": None if identical else first_divergence(
            events_a, events_b
        ),
        "kind_deltas": kind_deltas,
        "total_ns_a": att_a.total_ns,
        "total_ns_b": att_b.total_ns,
        "bucket_deltas": bucket_deltas,
    }


def render_diff(diff: dict, name_a: str = "A", name_b: str = "B") -> str:
    """Plain-text diff report."""
    lines = [f"trace diff: {name_a} vs {name_b}"]
    if diff["identical"]:
        lines.append(
            f"  identical: {diff['events_a']} events, "
            f"digest {diff['digest_a'][:16]}..."
        )
        return "\n".join(lines)
    lines.append(
        f"  DIVERGENT: {diff['events_a']} vs {diff['events_b']} events"
    )
    fd = diff["first_divergence"]
    if fd is not None:
        if fd["fields"] == ["<missing event>"]:
            lines.append(
                f"  first divergence at seq {fd['seq']}: common prefix "
                f"identical, {fd['tail_events']} extra event(s) in "
                f"{name_a if fd['tail_side'] == 'a' else name_b}"
            )
        else:
            lines.append(
                f"  first divergence at seq {fd['seq']}: "
                f"kind {fd['kind_a']} vs {fd['kind_b']}, "
                f"differing fields: {', '.join(fd['fields'])}"
            )
        if fd["event_a"] is not None:
            lines.append(f"    {name_a}: {json.dumps(fd['event_a'], sort_keys=True)}")
        if fd["event_b"] is not None:
            lines.append(f"    {name_b}: {json.dumps(fd['event_b'], sort_keys=True)}")
    if diff["kind_deltas"]:
        lines.append("  event-count deltas (B - A):")
        for k, d in diff["kind_deltas"].items():
            lines.append(f"    {k:24s} {d:+d}")
    d_total = diff["total_ns_b"] - diff["total_ns_a"]
    lines.append(
        f"  virtual time: {diff['total_ns_a']:.0f} ns vs "
        f"{diff['total_ns_b']:.0f} ns ({d_total:+.0f} ns)"
    )
    if diff["bucket_deltas"]:
        lines.append("  attribution-bucket deltas (B - A, ns):")
        for k, d in diff["bucket_deltas"].items():
            lines.append(f"    {k:24s} {d:+.1f}")
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    import argparse

    p = argparse.ArgumentParser(
        prog="python -m repro.obs.diff",
        description="Differential comparison of two trace JSONL files.",
    )
    p.add_argument("trace_a")
    p.add_argument("trace_b")
    p.add_argument(
        "--json", action="store_true", help="emit the diff object as JSON"
    )
    args = p.parse_args(argv)
    try:
        _, events_a, warn_a = load_trace(args.trace_a)
        _, events_b, warn_b = load_trace(args.trace_b)
    except OSError as exc:
        print(f"error: cannot read trace: {exc}", file=sys.stderr)
        return 2
    for w in warn_a:
        print(f"warning [{args.trace_a}]: {w}", file=sys.stderr)
    for w in warn_b:
        print(f"warning [{args.trace_b}]: {w}", file=sys.stderr)
    diff = diff_traces(events_a, events_b)
    if args.json:
        print(json.dumps(diff, sort_keys=True, indent=2))
    else:
        print(render_diff(diff, args.trace_a, args.trace_b))
    return 0 if diff["identical"] else 1


if __name__ == "__main__":
    raise SystemExit(main())
