"""Trace analysis + report CLI.

Turns a JSONL trace (written by :class:`repro.obs.Tracer`) into the views
the controller's story needs: a per-phase timeline (one row per
``prof.region`` span, with the cache activity that happened inside it),
a per-section summary (one row per cache section, swap included), the
exclusive virtual-time attribution with its critical path
(:mod:`repro.obs.analyze`), and a collapsed-stack flamegraph export.
Rendering lives in :mod:`repro.bench.reporting` next to the figure
tables, so trace reports and paper tables share one look.

Usage::

    python -m repro.obs.report trace.jsonl                  # timeline + sections
    python -m repro.obs.report trace.jsonl --phases         # timeline only
    python -m repro.obs.report trace.jsonl --sections       # summary only
    python -m repro.obs.report trace.jsonl --attribution    # exclusive buckets
    python -m repro.obs.report trace.jsonl --critical-path  # dominant chain
    python -m repro.obs.report trace.jsonl --flame          # collapsed stacks
    python -m repro.obs.report trace.jsonl --timeseries     # windowed series JSONL
    python -m repro.obs.report trace.jsonl --slo            # SLO verdict
    python -m repro.obs.report trace.jsonl --openmetrics    # Prometheus text
    python -m repro.obs.report --check                      # perf-regression gate

``--flame`` output pipes straight into ``flamegraph.pl`` or loads in
speedscope.  ``--timeseries`` folds the events into the canonical
windowed series (:mod:`repro.obs.timeseries`, window set by
``--window-ns``); ``--slo`` evaluates an :class:`repro.obs.slo.SloSpec`
(from ``--slo-spec FILE.json``, or a permissive built-in default) over
that series; ``--openmetrics`` exports the series totals in OpenMetrics
text format.  ``--check`` needs no trace: it delegates to
:mod:`repro.obs.regress` against the committed BENCH baselines.
Malformed trailing lines (truncated traces) are skipped with a warning;
an unreadable input file exits 2, as does a trace whose header is
missing or declares an unsupported schema version.
"""

from __future__ import annotations

import argparse
import sys

from repro.obs.trace import SCHEMA, digest_of_events, load_trace

#: event kinds counted as cache activity inside a phase
_MISS_KINDS = frozenset({"cache.miss", "swap.fault"})


def phase_timeline(events: list[dict]) -> list[dict]:
    """One row per completed ``prof.region`` span, in begin order.

    Rows carry start/end virtual time and the hit/miss/network activity
    observed while the phase was open (nested phases both count shared
    events: the timeline is inclusive, like the profiler).  Spans are
    tracked with a per-label stack, so re-entered and same-label nested
    regions each close their own row.
    """
    rows: list[dict] = []
    open_stacks: dict[str, list[dict]] = {}
    open_count = 0
    for ev in events:
        kind = ev["k"]
        if kind == "prof.region":
            label = ev["label"]
            if ev["ev"] == "begin":
                span = {
                    "phase": label,
                    "start_ns": ev["t"],
                    "end_ns": None,
                    "duration_ns": None,
                    "hits": 0,
                    "misses": 0,
                    "net_bytes": 0,
                }
                rows.append(span)
                open_stacks.setdefault(label, []).append(span)
                open_count += 1
            else:
                stack = open_stacks.get(label)
                if stack:
                    span = stack.pop()
                    span["end_ns"] = ev["t"]
                    span["duration_ns"] = ev["t"] - span["start_ns"]
                    open_count -= 1
            continue
        if not open_count:
            continue
        if kind == "cache.hit":
            for stack in open_stacks.values():
                for span in stack:
                    span["hits"] += 1
        elif kind in _MISS_KINDS:
            for stack in open_stacks.values():
                for span in stack:
                    span["misses"] += 1
        elif kind in ("net.send", "net.recv"):
            b = ev.get("bytes", 0)
            for stack in open_stacks.values():
                for span in stack:
                    span["net_bytes"] += b
    return [r for r in rows if r["end_ns"] is not None]


def section_summary(events: list[dict]) -> dict[str, dict]:
    """Aggregate cache events per section (``swap`` included)."""
    out: dict[str, dict] = {}

    def row(sec: str) -> dict:
        r = out.get(sec)
        if r is None:
            r = out[sec] = {
                "hits": 0,
                "misses": 0,
                "prefetch_hits": 0,
                "prefetches": 0,
                "evictions": 0,
                "hinted_evictions": 0,
                "writebacks": 0,
                "miss_wait_ns": 0.0,
            }
        return r

    for ev in events:
        kind = ev["k"]
        if not (kind.startswith("cache.") or kind == "swap.fault"):
            continue
        sec = ev.get("sec", "swap")
        r = row(sec)
        if kind == "cache.hit":
            r["hits"] += 1
        elif kind in ("cache.miss", "swap.fault"):
            r["misses"] += 1
            r["miss_wait_ns"] += ev.get("wait", 0.0)
        elif kind == "cache.prefetch_hit":
            r["misses"] += 1
            r["prefetch_hits"] += 1
            r["miss_wait_ns"] += ev.get("wait", 0.0)
        elif kind == "cache.prefetch":
            r["prefetches"] += 1
        elif kind == "cache.evict":
            r["evictions"] += 1
            r["hinted_evictions"] += ev.get("hinted", 0)
        elif kind == "cache.writeback":
            r["writebacks"] += 1
    for r in out.values():
        total = r["hits"] + r["misses"]
        r["accesses"] = total
        r["miss_rate"] = r["misses"] / total if total else 0.0
    return out


def miss_wait_histogram(events: list[dict]):
    """Exact percentiles of the per-miss wait, over every miss/fault/
    prefetch-stall in the trace."""
    from repro.obs.metrics import Histogram

    h = Histogram()
    for ev in events:
        if ev["k"] in ("cache.miss", "swap.fault", "cache.prefetch_hit"):
            h.observe(ev.get("wait", 0.0))
    return h


def fault_summary(events: list[dict]) -> dict:
    """Aggregate the fault/retry/degradation story of a trace.

    Returns zeros when the run was healthy; the renderer shows the block
    only when something actually went wrong.
    """
    out = {
        "injected": 0,
        "losses": 0,
        "timeouts": 0,
        "retries": 0,
        "backoff_ns": 0.0,
        "giveups": 0,
        "breaker_trips": 0,
        "degradations": [],
    }
    for ev in events:
        kind = ev["k"]
        if kind == "fault.inject":
            out["injected"] += 1
            if ev.get("fault") == "loss":
                out["losses"] += 1
            else:
                out["timeouts"] += 1
        elif kind == "retry.attempt":
            out["retries"] += 1
            out["backoff_ns"] += ev.get("backoff", 0.0)
        elif kind == "fault.giveup":
            out["giveups"] += 1
        elif kind == "fault.breaker":
            out["breaker_trips"] += 1
        elif kind == "degrade.section":
            out["degradations"].append(
                {"t": ev["t"], "sec": ev.get("sec", "?"), "action": ev.get("action", "?")}
            )
    return out


def event_counts(events: list[dict]) -> dict[str, int]:
    counts: dict[str, int] = {}
    for ev in events:
        counts[ev["k"]] = counts.get(ev["k"], 0) + 1
    return dict(sorted(counts.items()))


def render_report(
    header: dict,
    events: list[dict],
    phases: bool = True,
    sections: bool = True,
    attribution: bool = False,
    critical: bool = False,
) -> str:
    """The CLI's full plain-text report."""
    from repro.bench.reporting import (
        format_attribution,
        format_critical_path,
        format_percentiles,
        format_phase_timeline,
        format_section_summary,
    )

    lines = [
        f"trace: {header.get('schema', '?')} | {len(events)} events | "
        f"digest {digest_of_events(events)[:16]}"
    ]
    counts = event_counts(events)
    lines.append(
        "kinds: " + ", ".join(f"{k}={n}" for k, n in counts.items())
    )
    faults = fault_summary(events)
    if faults["injected"] or faults["degradations"] or faults["breaker_trips"]:
        lines.append("")
        lines.append(
            "fault summary: "
            f"{faults['injected']} injected "
            f"({faults['losses']} loss / {faults['timeouts']} timeout), "
            f"{faults['retries']} retries "
            f"({faults['backoff_ns']:.0f} ns backoff), "
            f"{faults['giveups']} giveups, "
            f"{faults['breaker_trips']} breaker trips"
        )
        for d in faults["degradations"]:
            lines.append(
                f"  degraded: {d['action']} sec={d['sec']} at t={d['t']:.0f}"
            )
    if phases:
        lines.append("")
        lines.append(format_phase_timeline(phase_timeline(events)))
    if sections:
        lines.append("")
        lines.append(format_section_summary(section_summary(events)))
        lines.append(
            format_percentiles("miss wait", miss_wait_histogram(events).snapshot())
        )
    if attribution or critical:
        from repro.obs.analyze import analyze_events, critical_path

        att = analyze_events(events)
        if attribution:
            lines.append("")
            lines.append(format_attribution(att))
        if critical:
            lines.append("")
            lines.append(format_critical_path(critical_path(att)))
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(
        prog="python -m repro.obs.report", description=__doc__
    )
    ap.add_argument(
        "trace",
        nargs="?",
        help="JSONL trace file written by Tracer.write_jsonl "
        "(optional with --check)",
    )
    ap.add_argument("--phases", action="store_true", help="timeline only")
    ap.add_argument("--sections", action="store_true", help="section summary only")
    ap.add_argument(
        "--attribution",
        action="store_true",
        help="exclusive virtual-time buckets (sum exactly to the total)",
    )
    ap.add_argument(
        "--critical-path",
        action="store_true",
        dest="critical",
        help="dominant run/phase/bucket chain",
    )
    ap.add_argument(
        "--flame",
        action="store_true",
        help="collapsed-stack output (flamegraph.pl / speedscope)",
    )
    ap.add_argument(
        "--out",
        default=None,
        help="write --flame/--timeseries/--openmetrics output to a file",
    )
    ap.add_argument(
        "--timeseries",
        action="store_true",
        help="fold events into the canonical windowed series (JSONL + digest)",
    )
    ap.add_argument(
        "--slo",
        action="store_true",
        help="evaluate an SLO spec over the windowed series",
    )
    ap.add_argument(
        "--slo-spec",
        default=None,
        dest="slo_spec",
        help="JSON file holding SloSpec fields (default: a permissive "
        "built-in spec: miss_rate<=0.5, stall_fraction<=0.95)",
    )
    ap.add_argument(
        "--openmetrics",
        action="store_true",
        help="export the series totals in OpenMetrics/Prometheus text format",
    )
    ap.add_argument(
        "--window-ns",
        type=float,
        default=1_000_000.0,
        dest="window_ns",
        help="window width in virtual ns for --timeseries/--slo/--openmetrics "
        "(default 1e6)",
    )
    ap.add_argument(
        "--check",
        action="store_true",
        help="run the perf-regression gate (repro.obs.regress)",
    )
    ap.add_argument(
        "--current",
        default=None,
        help="with --check: canned {metric: value} JSON instead of measuring",
    )
    ap.add_argument(
        "--baseline-dir",
        default=None,
        help="with --check: directory holding the BENCH_*.json baselines",
    )
    args = ap.parse_args(argv)

    if args.check:
        import os

        from repro.obs import regress

        rargv: list[str] = []
        if args.baseline_dir:
            rargv += [
                "--engine", os.path.join(args.baseline_dir, "BENCH_engine.json"),
                "--chaos", os.path.join(args.baseline_dir, "BENCH_chaos.json"),
            ]
        if args.current:
            rargv += ["--current", args.current]
        return regress.main(rargv)

    if not args.trace:
        print("report: a trace file is required unless --check is given",
              file=sys.stderr)
        return 2
    try:
        header, events, warnings = load_trace(args.trace)
    except OSError as e:
        print(f"report: cannot read {args.trace}: {e}", file=sys.stderr)
        return 2
    for w in warnings:
        print(f"report: warning: {w}", file=sys.stderr)

    # schema gate: refuse traces from another schema version (or with no
    # header at all) instead of misreading them.  A completely empty file
    # still reports cleanly (nothing to misinterpret).
    if header:
        if header.get("schema") != SCHEMA:
            print(
                f"report: {args.trace}: unsupported trace schema "
                f"{header.get('schema')!r}; this tool reads {SCHEMA!r}",
                file=sys.stderr,
            )
            return 2
    elif events:
        print(
            f"report: {args.trace}: missing schema header; expected a first "
            f"line declaring {SCHEMA!r}",
            file=sys.stderr,
        )
        return 2

    if args.timeseries or args.slo or args.openmetrics:
        from repro.obs.timeseries import series_from_events

        try:
            series = series_from_events(events, args.window_ns)
        except Exception as e:
            print(f"report: cannot build series: {e}", file=sys.stderr)
            return 2
        out_text = None
        if args.timeseries:
            from repro.obs.export import series_digest, series_jsonl

            out_text = series_jsonl(series)
            print(f"series digest: {series_digest(series)}", file=sys.stderr)
        elif args.openmetrics:
            from repro.obs.export import registry_from_series, to_openmetrics

            out_text = to_openmetrics(registry_from_series(series))
        if out_text is not None:
            if args.out:
                with open(args.out, "w", encoding="utf-8") as f:
                    f.write(out_text)
                print(f"wrote {args.out} ({len(series)} windows)")
            else:
                sys.stdout.write(out_text)
        if args.slo:
            import json

            from repro.obs.slo import SloSpec, evaluate, render_verdict

            from repro.errors import ObsError

            if args.slo_spec:
                try:
                    with open(args.slo_spec, "r", encoding="utf-8") as f:
                        spec = SloSpec.from_dict(json.load(f))
                except (OSError, ValueError, TypeError, ObsError) as e:
                    print(
                        f"report: cannot load SLO spec {args.slo_spec}: {e}",
                        file=sys.stderr,
                    )
                    return 2
            else:
                spec = SloSpec(miss_rate=0.5, stall_fraction=0.95)
            verdict = evaluate(series, spec)
            print(render_verdict(verdict))
            print(f"verdict digest: {verdict.digest()}")
            return 0 if verdict.ok else 1
        return 0

    if args.flame:
        from repro.obs.analyze import analyze_events, collapsed_stacks

        stacks = collapsed_stacks(analyze_events(events))
        text = "\n".join(stacks) + ("\n" if stacks else "")
        if args.out:
            with open(args.out, "w", encoding="utf-8") as f:
                f.write(text)
            print(f"wrote {args.out} ({len(stacks)} stacks)")
        else:
            sys.stdout.write(text)
        return 0

    explicit = args.phases or args.sections or args.attribution or args.critical
    print(
        render_report(
            header,
            events,
            phases=not explicit or args.phases,
            sections=not explicit or args.sections,
            attribution=args.attribution,
            critical=args.critical,
        )
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
