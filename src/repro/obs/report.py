"""Trace analysis + report CLI.

Turns a JSONL trace (written by :class:`repro.obs.Tracer`) into the two
views the controller's story needs: a per-phase timeline (one row per
``prof.region`` span, with the cache activity that happened inside it)
and a per-section summary (one row per cache section, swap included).
Rendering lives in :mod:`repro.bench.reporting` next to the figure
tables, so trace reports and paper tables share one look.

Usage::

    python -m repro.obs.report trace.jsonl            # both views
    python -m repro.obs.report trace.jsonl --phases   # timeline only
    python -m repro.obs.report trace.jsonl --sections # summary only
"""

from __future__ import annotations

import argparse

from repro.obs.trace import digest_of_events, read_jsonl

#: event kinds counted as cache activity inside a phase
_MISS_KINDS = frozenset({"cache.miss", "swap.fault"})


def phase_timeline(events: list[dict]) -> list[dict]:
    """One row per completed ``prof.region`` span, in begin order.

    Rows carry start/end virtual time and the hit/miss/network activity
    observed while the phase was open (nested phases both count shared
    events: the timeline is inclusive, like the profiler).
    """
    rows: list[dict] = []
    open_spans: dict[str, dict] = {}
    for ev in events:
        kind = ev["k"]
        if kind == "prof.region":
            label = ev["label"]
            if ev["ev"] == "begin":
                span = {
                    "phase": label,
                    "start_ns": ev["t"],
                    "end_ns": None,
                    "duration_ns": None,
                    "hits": 0,
                    "misses": 0,
                    "net_bytes": 0,
                }
                rows.append(span)
                open_spans[label] = span
            else:
                span = open_spans.pop(label, None)
                if span is not None:
                    span["end_ns"] = ev["t"]
                    span["duration_ns"] = ev["t"] - span["start_ns"]
            continue
        if not open_spans:
            continue
        if kind == "cache.hit":
            for span in open_spans.values():
                span["hits"] += 1
        elif kind in _MISS_KINDS:
            for span in open_spans.values():
                span["misses"] += 1
        elif kind in ("net.send", "net.recv"):
            b = ev.get("bytes", 0)
            for span in open_spans.values():
                span["net_bytes"] += b
    return [r for r in rows if r["end_ns"] is not None]


def section_summary(events: list[dict]) -> dict[str, dict]:
    """Aggregate cache events per section (``swap`` included)."""
    out: dict[str, dict] = {}

    def row(sec: str) -> dict:
        r = out.get(sec)
        if r is None:
            r = out[sec] = {
                "hits": 0,
                "misses": 0,
                "prefetch_hits": 0,
                "prefetches": 0,
                "evictions": 0,
                "hinted_evictions": 0,
                "writebacks": 0,
                "miss_wait_ns": 0.0,
            }
        return r

    for ev in events:
        kind = ev["k"]
        if not (kind.startswith("cache.") or kind == "swap.fault"):
            continue
        sec = ev.get("sec", "swap")
        r = row(sec)
        if kind == "cache.hit":
            r["hits"] += 1
        elif kind in ("cache.miss", "swap.fault"):
            r["misses"] += 1
            r["miss_wait_ns"] += ev.get("wait", 0.0)
        elif kind == "cache.prefetch_hit":
            r["misses"] += 1
            r["prefetch_hits"] += 1
            r["miss_wait_ns"] += ev.get("wait", 0.0)
        elif kind == "cache.prefetch":
            r["prefetches"] += 1
        elif kind == "cache.evict":
            r["evictions"] += 1
            r["hinted_evictions"] += ev.get("hinted", 0)
        elif kind == "cache.writeback":
            r["writebacks"] += 1
    for r in out.values():
        total = r["hits"] + r["misses"]
        r["accesses"] = total
        r["miss_rate"] = r["misses"] / total if total else 0.0
    return out


def fault_summary(events: list[dict]) -> dict:
    """Aggregate the fault/retry/degradation story of a trace.

    Returns zeros when the run was healthy; the renderer shows the block
    only when something actually went wrong.
    """
    out = {
        "injected": 0,
        "losses": 0,
        "timeouts": 0,
        "retries": 0,
        "backoff_ns": 0.0,
        "giveups": 0,
        "breaker_trips": 0,
        "degradations": [],
    }
    for ev in events:
        kind = ev["k"]
        if kind == "fault.inject":
            out["injected"] += 1
            if ev.get("fault") == "loss":
                out["losses"] += 1
            else:
                out["timeouts"] += 1
        elif kind == "retry.attempt":
            out["retries"] += 1
            out["backoff_ns"] += ev.get("backoff", 0.0)
        elif kind == "fault.giveup":
            out["giveups"] += 1
        elif kind == "fault.breaker":
            out["breaker_trips"] += 1
        elif kind == "degrade.section":
            out["degradations"].append(
                {"t": ev["t"], "sec": ev.get("sec", "?"), "action": ev.get("action", "?")}
            )
    return out


def event_counts(events: list[dict]) -> dict[str, int]:
    counts: dict[str, int] = {}
    for ev in events:
        counts[ev["k"]] = counts.get(ev["k"], 0) + 1
    return dict(sorted(counts.items()))


def render_report(
    header: dict, events: list[dict], phases: bool = True, sections: bool = True
) -> str:
    """The CLI's full plain-text report."""
    from repro.bench.reporting import format_phase_timeline, format_section_summary

    lines = [
        f"trace: {header.get('schema', '?')} | {len(events)} events | "
        f"digest {digest_of_events(events)[:16]}"
    ]
    counts = event_counts(events)
    lines.append(
        "kinds: " + ", ".join(f"{k}={n}" for k, n in counts.items())
    )
    faults = fault_summary(events)
    if faults["injected"] or faults["degradations"] or faults["breaker_trips"]:
        lines.append("")
        lines.append(
            "fault summary: "
            f"{faults['injected']} injected "
            f"({faults['losses']} loss / {faults['timeouts']} timeout), "
            f"{faults['retries']} retries "
            f"({faults['backoff_ns']:.0f} ns backoff), "
            f"{faults['giveups']} giveups, "
            f"{faults['breaker_trips']} breaker trips"
        )
        for d in faults["degradations"]:
            lines.append(
                f"  degraded: {d['action']} sec={d['sec']} at t={d['t']:.0f}"
            )
    if phases:
        lines.append("")
        lines.append(format_phase_timeline(phase_timeline(events)))
    if sections:
        lines.append("")
        lines.append(format_section_summary(section_summary(events)))
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(
        prog="python -m repro.obs.report", description=__doc__
    )
    ap.add_argument("trace", help="JSONL trace file written by Tracer.write_jsonl")
    ap.add_argument("--phases", action="store_true", help="timeline only")
    ap.add_argument("--sections", action="store_true", help="section summary only")
    args = ap.parse_args(argv)
    header, events = read_jsonl(args.trace)
    both = not (args.phases or args.sections)
    print(
        render_report(
            header,
            events,
            phases=both or args.phases,
            sections=both or args.sections,
        )
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
