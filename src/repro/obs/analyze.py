"""Virtual-time attribution, critical path, and flamegraph export.

Folds the flat JSONL event stream (:mod:`repro.obs.trace`) into a
hierarchy — run → segment (one per ``prof.snapshot``, labelled by the
``ctrl.iter`` that follows it) → ``prof.region`` phase → exclusive
bucket — and attributes **every nanosecond** of virtual time to exactly
one bucket.  The attribution is *exclusive and exact*: the buckets of a
trace sum (``math.fsum``) to precisely the total virtual time of its
runs, because whatever the event stream cannot explain lands in the
``compute`` residual.

How each bucket is derived from events (the per-access cost constants
ride on the events themselves — ``sec.open`` carries the section's
hit/insert/evict overheads, ``swap.fault`` its kernel time, sync
``fault.inject`` its detection timeout — so analysis never needs the
cost model):

* ``cache_hit`` — per-hit lookup overhead (``sec.open.hit_ov``); native
  (compiler-elided, ``nat=True``) and swap hits are free.
* ``miss_service`` — insert overhead plus the synchronous wire time of
  the fetch (the paired ``net.recv``/``net.send`` ``ns``).
* ``swap_fault`` — the kernel fault path (``swap.fault.kern``).
* ``prefetch_wait`` — stall on an in-flight prefetch
  (``cache.prefetch_hit.wait``).
* ``eviction`` — evict overhead, plus the swap dirty-page write-back.
* ``net_issue`` — async issue cost of prefetches and write-backs.
* ``net_wait`` — link-queue drain: the part of a miss's ``wait`` that
  neither the wire time, the kernel, nor fault penalties explain.
* ``fault_timeout`` / ``fault_retry`` — detection timeouts and backoff
  of the reliability loop (sync ops only; async faults fold into
  ``ready`` and surface as ``prefetch_wait``).
* ``offload_rpc`` — two-sided RPC round trips.
* ``aifm_runtime`` — AIFM's per-dereference and per-miss library time.
* ``path_switch`` — the hybrid manager's control-plane cost of flipping
  a section group between the swap and object paths (``path.switch.ov``).
* ``compute`` — the residual: CPU, DRAM, profiling, lock time.

The per-category totals are cross-validated against the clock breakdown
that ``prof.snapshot`` carries (``bd``); material mismatches become
warnings, not crashes, so the analyzer stays useful on legacy traces
that predate the attribution fields.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

#: attributed clock category -> reporting bucket
BUCKET_OF = {
    "hit_overhead": "cache_hit",
    "insert_overhead": "miss_service",
    "net_read": "miss_service",
    "net_write": "miss_service",
    "page_fault": "swap_fault",
    "miss_wait": "prefetch_wait",
    "evict_overhead": "eviction",
    "eviction": "eviction",
    "net_issue": "net_issue",
    "net_wait": "net_wait",
    "net_timeout": "fault_timeout",
    "net_backoff": "fault_retry",
    "rpc": "offload_rpc",
    "aifm_deref": "aifm_runtime",
    "aifm_miss": "aifm_runtime",
    "path_switch": "path_switch",
    "compute": "compute",
}

#: tolerance (virtual ns) below which a cross-check mismatch is noise
_TOL_NS = 0.5


@dataclass
class PhaseNode:
    """One ``prof.region`` span (or a segment's implicit root)."""

    label: str
    start: float
    end: float | None = None
    children: list["PhaseNode"] = field(default_factory=list)
    #: exclusive contributions attributed while this was the innermost
    #: open phase: category -> list of ns values (fsum'd at finalize)
    attr: dict[str, list[float]] = field(default_factory=dict)
    #: duration (end - start), set at finalize
    dur: float = 0.0
    #: time not covered by child phases (self time), set at finalize
    self_ns: float = 0.0
    #: self time not explained by attributed events (compute residual)
    residual: float = 0.0

    def add(self, cat: str, ns: float) -> None:
        self.attr.setdefault(cat, []).append(ns)

    def attr_totals(self) -> dict[str, float]:
        return {c: math.fsum(v) for c, v in self.attr.items()}


@dataclass
class Segment:
    """One run of the program: everything up to a ``prof.snapshot``."""

    index: int
    label: str = ""
    total: float = 0.0
    runtime: float = 0.0
    #: clock breakdown carried by the snapshot (empty on legacy traces)
    bd: dict = field(default_factory=dict)
    #: category -> list of attributed ns (fsum'd into by_category)
    cat: dict[str, list[float]] = field(default_factory=dict)
    #: section -> category -> list of attributed ns
    sec_cat: dict[str, dict[str, list[float]]] = field(default_factory=dict)
    root: PhaseNode = field(default_factory=lambda: PhaseNode("run", 0.0))
    #: per-section wasted prefetches: evicted while still in flight
    wasted_prefetch: dict[str, dict] = field(default_factory=dict)
    degradations: list[dict] = field(default_factory=list)
    truncated: bool = False

    def by_category(self) -> dict[str, float]:
        return {c: math.fsum(v) for c, v in self.cat.items()}


@dataclass
class Attribution:
    """Whole-trace result: exclusive, exact attribution plus checks."""

    segments: list[Segment]
    total_ns: float
    by_category: dict[str, float]
    by_bucket: dict[str, float]
    #: section -> bucket -> ns ("program" holds the compute residual)
    by_section: dict[str, dict[str, float]]
    wasted_prefetch: dict[str, dict]
    degradations: list[dict]
    warnings: list[str]


def _exact_close(totals: dict[str, float], target: float, key: str) -> None:
    """Adjust ``totals[key]`` so ``fsum(totals.values()) == target``.

    The residual is defined as target-minus-everything-else, but per-key
    ``fsum`` rounding can leave a sub-ulp gap; fold it into the residual
    (physically meaningless at that scale) so the exactness contract —
    buckets sum to *exactly* the run's virtual time — holds bit-for-bit.
    """
    totals.setdefault(key, 0.0)
    for _ in range(4):
        delta = target - math.fsum(totals.values())
        if delta == 0.0:
            return
        totals[key] += delta
    # the fold can oscillate one ulp around the target (the correctly
    # rounded sum straddles it): walk the residual a single ulp at a time
    for _ in range(256):
        delta = target - math.fsum(totals.values())
        if delta == 0.0:
            return
        totals[key] = math.nextafter(
            totals[key], math.inf if delta > 0.0 else -math.inf
        )


class _Analyzer:
    """Single forward pass over the event stream."""

    def __init__(self) -> None:
        self.segments: list[Segment] = []
        self.warnings: list[str] = []
        #: sec -> (hit_ov, ins_ov, ev_ov) from sec.open
        self.sec_consts: dict[str, tuple[float, float, float]] = {}
        self._legacy_warned = False
        self._reset_segment()

    def _reset_segment(self) -> None:
        self.seg = Segment(index=len(self.segments))
        #: innermost-first stack of open prof.region spans
        self.open_phases: list[PhaseNode] = []
        #: per-label stacks (same-label nesting pops the innermost)
        self.label_stacks: dict[str, list[PhaseNode]] = {}
        # deferred sync-op costs, consumed by the next miss/fault/rpc
        self.pend_read = 0.0
        self.pend_write = 0.0
        self.pend_timeout = 0.0
        self.pend_backoff = 0.0
        self.pend_issue = 0.0
        #: (sec, obj, line) -> in-flight prefetch info for waste detection
        self.inflight: dict[tuple, dict] = {}
        self._last_async_bytes = 0
        self._open_window: dict | None = None
        self._max_t = 0.0

    # -- attribution sink ----------------------------------------------------

    def _add(self, cat: str, ns: float, sec: str) -> None:
        if ns == 0.0:
            return
        seg = self.seg
        seg.cat.setdefault(cat, []).append(ns)
        seg.sec_cat.setdefault(sec, {}).setdefault(cat, []).append(ns)
        node = self.open_phases[-1] if self.open_phases else seg.root
        node.add(cat, ns)
        w = self._open_window
        if w is not None:
            w["attr_ns"] += ns

    def _consts(self, sec: str) -> tuple[float, float, float]:
        c = self.sec_consts.get(sec)
        if c is None:
            if not self._legacy_warned:
                self._legacy_warned = True
                self.warnings.append(
                    f"sec.open for {sec!r} lacks overhead constants "
                    "(legacy trace?): overhead buckets will undercount"
                )
            c = (0.0, 0.0, 0.0)
        return c

    def _flush_pending(self, sec: str) -> None:
        """Attribute deferred sync costs that found no consumer."""
        if self.pend_read:
            self._add("net_read", self.pend_read, sec)
            self.pend_read = 0.0
        if self.pend_write:
            self._add("net_write", self.pend_write, sec)
            self.pend_write = 0.0
        if self.pend_timeout:
            self._add("net_timeout", self.pend_timeout, sec)
            self.pend_timeout = 0.0
        if self.pend_backoff:
            self._add("net_backoff", self.pend_backoff, sec)
            self.pend_backoff = 0.0
        if self.pend_issue:
            self._add("net_issue", self.pend_issue, sec)
            self.pend_issue = 0.0

    # -- event handlers ------------------------------------------------------

    def feed(self, ev: dict) -> None:
        kind = ev["k"]
        t = ev.get("t", 0.0)
        if t > self._max_t:
            self._max_t = t
        handler = getattr(self, "_on_" + kind.replace(".", "_"), None)
        if handler is not None:
            handler(ev)

    def _on_sec_open(self, ev: dict) -> None:
        if "hit_ov" in ev:
            self.sec_consts[ev["sec"]] = (
                ev.get("hit_ov", 0.0),
                ev.get("ins_ov", 0.0),
                ev.get("ev_ov", 0.0),
            )

    def _on_cache_hit(self, ev: dict) -> None:
        sec = ev.get("sec", "swap")
        key = (sec, ev.get("obj"), ev.get("line"))
        self.inflight.pop(key, None)
        if sec == "aifm":
            self._add("aifm_deref", ev.get("ov", 0.0), sec)
        elif sec != "swap" and not ev.get("nat"):
            self._add("hit_overhead", self._consts(sec)[0], sec)
        # native and swap hits are free (elided deref / MMU-resolved)

    def _on_cache_prefetch_hit(self, ev: dict) -> None:
        sec = ev.get("sec", "swap")
        self.inflight.pop((sec, ev.get("obj"), ev.get("line")), None)
        self._add("miss_wait", ev.get("wait", 0.0), sec)

    def _on_cache_miss(self, ev: dict) -> None:
        sec = ev.get("sec", "swap")
        self.inflight.pop((sec, ev.get("obj"), ev.get("line")), None)
        wait = ev.get("wait", 0.0)
        explained = (
            self.pend_read + self.pend_write + self.pend_timeout + self.pend_backoff
        )
        self._add("net_read", self.pend_read, sec)
        self._add("net_write", self.pend_write, sec)
        self._add("net_timeout", self.pend_timeout, sec)
        self._add("net_backoff", self.pend_backoff, sec)
        self.pend_read = self.pend_write = 0.0
        self.pend_timeout = self.pend_backoff = 0.0
        remainder = wait - explained
        if remainder < -_TOL_NS:
            self.warnings.append(
                f"cache.miss at t={ev.get('t', 0):.0f} (sec={sec}): wait "
                f"{wait:.0f} < paired sync costs {explained:.0f}"
            )
            remainder = 0.0
        elif remainder < 0.0:
            remainder = 0.0
        if sec == "aifm":
            self._add("aifm_deref", ev.get("ov", 0.0), sec)
            # remainder = miss_extra plus any link drain (inseparable)
            self._add("aifm_miss", remainder, sec)
        else:
            self._add("insert_overhead", self._consts(sec)[1], sec)
            self._add("net_wait", remainder, sec)

    def _on_swap_fault(self, ev: dict) -> None:
        wait = ev.get("wait", 0.0)
        kern = ev.get("kern", 0.0)
        explained = (
            kern
            + self.pend_read
            + self.pend_write
            + self.pend_timeout
            + self.pend_backoff
        )
        self._add("page_fault", kern, "swap")
        self._add("net_read", self.pend_read, "swap")
        self._add("net_write", self.pend_write, "swap")
        self._add("net_timeout", self.pend_timeout, "swap")
        self._add("net_backoff", self.pend_backoff, "swap")
        self.pend_read = self.pend_write = 0.0
        self.pend_timeout = self.pend_backoff = 0.0
        remainder = wait - explained
        if remainder < -_TOL_NS:
            self.warnings.append(
                f"swap.fault at t={ev.get('t', 0):.0f}: wait {wait:.0f} < "
                f"paired sync costs {explained:.0f}"
            )
            remainder = 0.0
        elif remainder < 0.0:
            remainder = 0.0
        self._add("net_wait", remainder, "swap")

    def _on_cache_evict(self, ev: dict) -> None:
        sec = ev.get("sec", "swap")
        key = (sec, ev.get("obj"), ev.get("line"))
        entry = self.inflight.pop(key, None)
        if entry is not None:
            w = self.seg.wasted_prefetch.setdefault(
                sec, {"in_flight": 0, "unused": 0, "bytes": 0}
            )
            if ev.get("t", 0.0) < entry["ready"]:
                w["in_flight"] += 1  # evicted before the data even arrived
            else:
                w["unused"] += 1  # arrived, never touched, evicted
            w["bytes"] += entry["bytes"]
        if sec == "swap":
            self._add("eviction", ev.get("wb", 0.0), sec)
        elif sec == "aifm":
            self._add("eviction", ev.get("ov", 0.0), sec)
        else:
            self._add("evict_overhead", self._consts(sec)[2], sec)

    def _on_cache_prefetch(self, ev: dict) -> None:
        sec = ev.get("sec", "swap")
        if self.pend_issue:
            self._add("net_issue", self.pend_issue, sec)
            self.pend_issue = 0.0
        self.inflight[(sec, ev.get("obj"), ev.get("line"))] = {
            "ready": ev.get("ready", 0.0),
            # single prefetches pair with the async net.recv just before
            # them; batched ones with net.batch's per-line share
            "bytes": self._last_async_bytes,
        }

    def _on_cache_writeback(self, ev: dict) -> None:
        if self.pend_issue:
            self._add("net_issue", self.pend_issue, ev.get("sec", "swap"))
            self.pend_issue = 0.0

    def _on_net_recv(self, ev: dict) -> None:
        if "ready" in ev:  # async issue
            self.pend_issue += ev.get("issue", 0.0)
            self._last_async_bytes = ev.get("bytes", 0)
        else:  # sync wire time, consumed by the next miss/fault
            self.pend_read += ev.get("ns", 0.0)

    def _on_net_send(self, ev: dict) -> None:
        if "ready" in ev:
            self.pend_issue += ev.get("issue", 0.0)
            self._last_async_bytes = ev.get("bytes", 0)
        else:
            self.pend_write += ev.get("ns", 0.0)

    def _on_net_batch(self, ev: dict) -> None:
        if self.pend_issue:
            self._add("net_issue", self.pend_issue, "net")
            self.pend_issue = 0.0
        lines = ev.get("lines", 0) or 1
        self._last_async_bytes = ev.get("bytes", 0) // lines

    def _on_net_rpc(self, ev: dict) -> None:
        self._add("rpc", ev.get("ns", 0.0), "offload")
        self._add("net_timeout", self.pend_timeout, "offload")
        self._add("net_backoff", self.pend_backoff, "offload")
        self.pend_timeout = self.pend_backoff = 0.0

    def _on_fault_inject(self, ev: dict) -> None:
        # async faults fold into the transfer's ready time: not clock-charged
        if not str(ev.get("op", "")).endswith("_async"):
            self.pend_timeout += ev.get("timeout", 0.0)

    def _on_retry_attempt(self, ev: dict) -> None:
        if not str(ev.get("op", "")).endswith("_async"):
            self.pend_backoff += ev.get("backoff", 0.0)

    def _on_prof_region(self, ev: dict) -> None:
        label = ev.get("label", "?")
        if ev.get("ev") == "begin":
            node = PhaseNode(label, ev.get("t", 0.0))
            parent = self.open_phases[-1] if self.open_phases else self.seg.root
            parent.children.append(node)
            self.open_phases.append(node)
            self.label_stacks.setdefault(label, []).append(node)
        else:
            stack = self.label_stacks.get(label)
            if not stack:
                self.warnings.append(f"prof.region end without begin: {label!r}")
                return
            node = stack.pop()
            node.end = ev.get("t", 0.0)
            if self.open_phases and self.open_phases[-1] is node:
                self.open_phases.pop()
            else:
                # overlapping (non-nested) regions: drop from wherever
                self.warnings.append(f"prof.region {label!r} ends out of order")
                if node in self.open_phases:
                    self.open_phases.remove(node)

    def _on_ctrl_iter(self, ev: dict) -> None:
        if self.segments and not self.segments[-1].label:
            self.segments[-1].label = f"iter{ev.get('it', len(self.segments) - 1)}"

    def _on_degrade_section(self, ev: dict) -> None:
        t = ev.get("t", 0.0)
        if self._open_window is not None:
            self._open_window["end"] = t
        self._open_window = {
            "sec": ev.get("sec", "?"),
            "action": ev.get("action", "?"),
            "start": t,
            "end": None,
            "attr_ns": 0.0,
        }
        self.seg.degradations.append(self._open_window)

    def _on_path_switch(self, ev: dict) -> None:
        # hybrid data plane: the switch's control-plane overhead is its
        # own exclusive bucket; the migration traffic (write-backs,
        # refills) is already attributed by the cache/swap events
        self._add("path_switch", ev.get("ov", 0.0), ev.get("sec", "?"))

    def _on_prof_snapshot(self, ev: dict) -> None:
        self._finalize_segment(ev.get("elapsed", ev.get("t", 0.0)), ev)

    # -- segment finalization ------------------------------------------------

    def _finalize_segment(self, total: float, snapshot: dict | None) -> None:
        seg = self.seg
        self._flush_pending("net")
        for label, stack in self.label_stacks.items():
            for node in stack:
                if node.end is None:
                    node.end = total
                    self.warnings.append(f"prof.region {label!r} never ended")
        if self.inflight:
            for (sec, _obj, _line), entry in self.inflight.items():
                w = seg.wasted_prefetch.setdefault(
                    sec, {"in_flight": 0, "unused": 0, "bytes": 0}
                )
                w["unused"] += 1
                w["bytes"] += entry["bytes"]
        if self._open_window is not None:
            self._open_window["end"] = total
        seg.total = total
        if snapshot is not None:
            seg.runtime = snapshot.get("runtime", 0.0)
            seg.bd = snapshot.get("bd", {}) or {}
        else:
            seg.truncated = True
            self.warnings.append(
                f"segment {seg.index} has no prof.snapshot (truncated trace); "
                "using the last event time as its span"
            )
        self._finalize_phases(seg)
        self._cross_check(seg)
        self.segments.append(seg)
        self._reset_segment()

    def _finalize_phases(self, seg: Segment) -> None:
        root = seg.root
        root.end = seg.total

        def walk(node: PhaseNode) -> None:
            node.dur = max(0.0, (node.end or node.start) - node.start)
            child_ns = 0.0
            for c in node.children:
                walk(c)
                child_ns += c.dur
            node.self_ns = node.dur - child_ns
            attributed = math.fsum(math.fsum(v) for v in node.attr.values())
            node.residual = node.self_ns - attributed
            if node.residual < -_TOL_NS:
                self.warnings.append(
                    f"phase {node.label!r}: attributed {attributed:.0f} ns "
                    f"exceeds its self time {node.self_ns:.0f} ns"
                )
            if node.residual < 0.0:
                node.residual = 0.0

        walk(root)

    def _cross_check(self, seg: Segment) -> None:
        """Compare event-derived category totals with the snapshot's
        clock breakdown (when present)."""
        if not seg.bd:
            return
        derived = seg.by_category()
        for cat, ns in derived.items():
            want = seg.bd.get(cat)
            if want is None:
                continue
            if abs(ns - want) > max(_TOL_NS, 1e-9 * seg.total):
                self.warnings.append(
                    f"segment {seg.index} ({seg.label or 'final'}): derived "
                    f"{cat}={ns:.1f} ns vs clock breakdown {want:.1f} ns"
                )

    # -- final assembly ------------------------------------------------------

    def finish(self) -> Attribution:
        # a trailing segment only counts when it attributed real work --
        # stray post-snapshot events (ctrl.iter, sec.close) are not a run
        if self.seg.cat or self.seg.root.children:
            self._finalize_segment(self._max_t, None)
        # label leftovers: final run is "final", earlier unlabeled "runN"
        for seg in self.segments[:-1]:
            if not seg.label:
                seg.label = f"run{seg.index}"
        if self.segments and not self.segments[-1].label:
            self.segments[-1].label = "final"

        total = math.fsum(s.total for s in self.segments)
        by_category: dict[str, float] = {}
        all_vals: list[float] = []
        for seg in self.segments:
            for cat, vals in seg.cat.items():
                by_category.setdefault(cat, 0.0)
                all_vals.extend(vals)
        for cat in by_category:
            by_category[cat] = math.fsum(
                v for s in self.segments for v in s.cat.get(cat, ())
            )
        by_category["compute"] = total - math.fsum(all_vals)
        _exact_close(by_category, total, "compute")

        by_bucket: dict[str, float] = {}
        for cat, ns in by_category.items():
            b = BUCKET_OF.get(cat, "compute")
            by_bucket[b] = by_bucket.get(b, 0.0) + ns
        _exact_close(by_bucket, total, "compute")

        by_section: dict[str, dict[str, float]] = {}
        for seg in self.segments:
            for sec, cats in seg.sec_cat.items():
                dst = by_section.setdefault(sec, {})
                for cat, vals in cats.items():
                    b = BUCKET_OF.get(cat, "compute")
                    dst[b] = dst.get(b, 0.0) + math.fsum(vals)
        attributed = math.fsum(
            ns for cats in by_section.values() for ns in cats.values()
        )
        by_section["program"] = {"compute": total - attributed}

        wasted: dict[str, dict] = {}
        degradations: list[dict] = []
        for seg in self.segments:
            for sec, w in seg.wasted_prefetch.items():
                dst = wasted.setdefault(sec, {"in_flight": 0, "unused": 0, "bytes": 0})
                for k in dst:
                    dst[k] += w[k]
            for d in seg.degradations:
                degradations.append({**d, "segment": seg.label})
        return Attribution(
            segments=self.segments,
            total_ns=total,
            by_category=by_category,
            by_bucket=by_bucket,
            by_section=by_section,
            wasted_prefetch=wasted,
            degradations=degradations,
            warnings=self.warnings,
        )


def analyze_events(events: list[dict]) -> Attribution:
    """Attribute a trace's virtual time; see the module docstring."""
    a = _Analyzer()
    for ev in events:
        a.feed(ev)
    return a.finish()


def critical_path(att: Attribution) -> list[dict]:
    """Drill down the hierarchy, at each level following the heaviest
    child, until a node's own (self) time dominates; finish on the
    dominant exclusive bucket.  Each step reports inclusive ns and its
    share of the parent."""
    steps: list[dict] = [
        {
            "level": "run",
            "name": "run",
            "inclusive_ns": att.total_ns,
            "share": 1.0,
        }
    ]
    if not att.segments or att.total_ns <= 0.0:
        return steps
    seg = max(att.segments, key=lambda s: s.total)
    if len(att.segments) > 1:
        steps.append(
            {
                "level": "segment",
                "name": seg.label,
                "inclusive_ns": seg.total,
                "share": seg.total / att.total_ns if att.total_ns else 0.0,
            }
        )
    node = seg.root
    while node.children:
        best = max(node.children, key=lambda c: c.dur)
        if best.dur <= node.self_ns:
            break
        steps.append(
            {
                "level": "phase",
                "name": best.label,
                "inclusive_ns": best.dur,
                "share": best.dur / node.dur if node.dur else 0.0,
            }
        )
        node = best
    buckets: dict[str, float] = {}
    for cat, total in node.attr_totals().items():
        b = BUCKET_OF.get(cat, "compute")
        buckets[b] = buckets.get(b, 0.0) + total
    buckets["compute"] = buckets.get("compute", 0.0) + node.residual
    if buckets:
        name, ns = max(buckets.items(), key=lambda kv: kv[1])
        base = node.self_ns if node.self_ns > 0.0 else node.dur
        steps.append(
            {
                "level": "bucket",
                "name": name,
                "inclusive_ns": ns,
                "share": ns / base if base else 0.0,
            }
        )
    return steps


def collapsed_stacks(att: Attribution) -> list[str]:
    """Collapsed-stack lines (``frame;frame;... <ns>``) compatible with
    flamegraph.pl / speedscope.  Frames: run → segment (when the trace
    holds several runs) → phase chain → exclusive bucket; values are the
    bucket's exclusive virtual ns (rounded to integers)."""
    agg: dict[str, int] = {}
    multi = len(att.segments) > 1

    def emit(path: str, ns: float) -> None:
        v = int(round(ns))
        if v > 0:
            agg[path] = agg.get(path, 0) + v

    def walk(node: PhaseNode, prefix: str) -> None:
        path = prefix if node.label == "run" else f"{prefix};{node.label}"
        for cat, total in node.attr_totals().items():
            emit(f"{path};{BUCKET_OF.get(cat, 'compute')}", total)
        emit(f"{path};compute", node.residual)
        for c in node.children:
            walk(c, path)

    for seg in att.segments:
        base = f"run;{seg.label}" if multi else "run"
        walk(seg.root, base)
    return [f"{path} {v}" for path, v in sorted(agg.items())]
