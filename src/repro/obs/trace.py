"""Structured event tracing (the observability substrate).

A :class:`Tracer` collects typed event records from every layer of the
simulator: cache hits/misses/evictions/prefetches, network transfers,
swap faults, section lifecycle, offload dispatches, thread fork/join,
profiling regions, and controller decisions.  Events are emitted in
deterministic simulation order and carry the virtual time of the clock
that produced them, so a trace is a complete, replayable account of *when*
a run's behavior happened -- not just the end-of-run aggregates.

Design constraints:

* **Zero overhead when disabled.**  Subsystems hold a ``tracer``
  attribute that defaults to ``None``; every emission point is guarded by
  a single ``is not None`` test on a local, and the hottest paths
  (section/swap hit paths, compiled-engine steps) share the guard with
  work they already do.  Nothing is allocated, formatted, or hashed
  unless a tracer is attached.

* **Engine parity.**  The compiled engine and the reference interpreter
  must emit byte-identical traces (``tests/test_engine_parity.py`` and
  ``tests/test_obs_trace.py`` enforce it).  Emission points therefore
  live either in shared subsystems (cache, network, swap) or at mirrored
  positions in both execution paths (offload dispatch, thread fork/join).

* **Stable schema.**  The JSONL export is canonical: one header line
  (``schema`` plus any user metadata), then one line per event with
  sorted keys and minimal separators.  The digest is a SHA-256 over the
  event lines only (the header, which may carry free-form metadata, is
  excluded), so two runs are behaviorally identical iff their digests
  match.  Renaming or removing an event kind or field is a schema break
  and must bump :data:`SCHEMA`.
"""

from __future__ import annotations

import hashlib
import json
from typing import Iterable, Iterator

#: schema identifier written in the JSONL header; bump on breaking change
SCHEMA = "repro.obs/v1"

#: every event kind the schema defines; ``Tracer.emit`` rejects others so
#: a typo'd kind fails loudly instead of silently forking the schema
KINDS = frozenset(
    {
        # cache data path (sections and the swap section, sec="swap")
        "cache.hit",
        "cache.miss",
        "cache.prefetch_hit",
        "cache.evict",
        "cache.prefetch",
        "cache.writeback",
        # swap kernel fault path
        "swap.fault",
        # network transfers
        "net.send",
        "net.recv",
        "net.batch",
        "net.rpc",
        # section lifecycle / reconfiguration
        "sec.open",
        "sec.close",
        "sec.assign",
        # object lifetime (with far-allocator round-trip count)
        "obj.alloc",
        "obj.free",
        # runtime events
        "offload.dispatch",
        "thread.fork",
        "thread.join",
        # profiling
        "prof.region",
        "prof.snapshot",
        # controller decisions
        "ctrl.iter",
        # fault injection / reliability layer (repro.faults): an injected
        # fault detected via timeout, a retry after backoff, the circuit
        # breaker tripping open, an op exhausting its retry budget
        "fault.inject",
        "retry.attempt",
        "fault.breaker",
        "fault.giveup",
        # graceful degradation applied by the cache manager
        "degrade.section",
        # hybrid data plane (repro.cache.hybrid): one online switch of a
        # section group between the swap path and the object path, with
        # the windowed signals that triggered it.  Unlike degradation,
        # switches are a deterministic consequence of the access stream,
        # so traces containing them stay self-replayable.
        "path.switch",
        # pluggable prefetch policies (repro.prefetch): a policy's plan on
        # a demand miss, and the fate of one of its prefetches (used
        # timely/late, or discarded unread).  Only policies with
        # ``traced = True`` emit these; the default Leap-compat policy
        # stays silent so pre-PR-7 golden digests hold.
        "prefetch.plan",
        "prefetch.feedback",
        # memory-system op log (repro.workloads.trace): the *entry* of
        # every public MemorySystem call, with its arguments and entry
        # virtual time.  Emitted only by tracers constructed with
        # ``access_log=True`` -- default tracers never record these, so
        # pre-PR-8 golden digests hold.  A trace containing them is a
        # self-replayable scenario: wait_until(entry time) + re-issuing
        # the call reproduces the run exactly (see DESIGN.md section 4h).
        "mem.access",
        "mem.alloc",
        "mem.plan",
        "mem.free",
        "mem.open",
        "mem.close",
        "mem.prefetch",
        "mem.batch",
        "mem.flush",
        "mem.evict",
        "mem.evict_trail",
        "mem.discard",
        "mem.native",
    }
)

#: the op-log kinds, as a set (the self-replayer dispatches on these)
MEM_OP_KINDS = frozenset(k for k in KINDS if k.startswith("mem."))

#: field names the canonical JSONL encoding claims for index/kind/time;
#: a colliding event field would silently overwrite them on export
_RESERVED = frozenset({"i", "k", "t"})


class Tracer:
    """Collects (kind, virtual-time, fields) event records.

    One tracer per logical run (or per controller optimization, which
    traces all its internal runs).  Attach with
    ``memsys.set_tracer(tracer)`` *before* building the interpreter, or
    pass ``tracer=`` to ``run_plan`` / ``run_on_baseline``.
    """

    __slots__ = ("events", "meta", "access_log")

    def __init__(self, meta: dict | None = None, access_log: bool = False) -> None:
        #: raw event tuples, append-only, in emission order
        self.events: list[tuple[str, float, dict]] = []
        #: free-form run metadata for the JSONL header (never digested)
        self.meta: dict = dict(meta or {})
        #: when True, memory systems additionally record the ``mem.*``
        #: op log (every public call's entry time + arguments), making
        #: the trace self-replayable via ``repro.workloads.trace``
        self.access_log: bool = access_log

    # -- emission (the only hot-ish method) --------------------------------

    def emit(self, kind: str, t: float, **fields) -> None:
        """Record one event at virtual time ``t`` (nanoseconds)."""
        if kind not in KINDS:
            raise ValueError(f"unknown trace event kind {kind!r}")
        if not _RESERVED.isdisjoint(fields):
            raise ValueError(f"{kind}: field names 'i'/'k'/'t' are reserved")
        self.events.append((kind, t, fields))

    def emitter(self, kind: str):
        """A pre-validated emit for one kind, for the hottest sites.

        The kind is checked against the schema once, here; the returned
        closure binds the kind and the append method, so each event costs
        one reserved-name check and one list append.  Emits through it
        are indistinguishable from :meth:`emit` calls -- same tuples,
        same JSONL, same digest.
        """
        if kind not in KINDS:
            raise ValueError(f"unknown trace event kind {kind!r}")
        append = self.events.append

        def emit_bound(t: float, **fields) -> None:
            if not _RESERVED.isdisjoint(fields):
                raise ValueError(
                    f"{kind}: field names 'i'/'k'/'t' are reserved"
                )
            append((kind, t, fields))

        return emit_bound

    def clear(self) -> None:
        self.events.clear()

    def __len__(self) -> int:
        return len(self.events)

    # -- canonical export --------------------------------------------------

    def lines(self) -> Iterator[str]:
        """Canonical JSONL event lines (no header), one per event."""
        for i, (kind, t, fields) in enumerate(self.events):
            yield json.dumps(
                {"i": i, "k": kind, "t": t, **fields},
                sort_keys=True,
                separators=(",", ":"),
            )

    def header(self) -> str:
        extra = {"access_log": True} if self.access_log else {}
        return json.dumps(
            {"schema": SCHEMA, "events": len(self.events), **extra, **self.meta},
            sort_keys=True,
            separators=(",", ":"),
        )

    def to_jsonl(self) -> str:
        """Header line plus one canonical line per event."""
        body = "\n".join(self.lines())
        return self.header() + ("\n" + body if body else "") + "\n"

    def write_jsonl(self, path) -> None:
        with open(path, "w", encoding="utf-8") as f:
            f.write(self.to_jsonl())

    def digest(self) -> str:
        """SHA-256 over the canonical event lines (header excluded).

        Stability rules: the digest covers event order, kinds, virtual
        times, and every field value; it does NOT cover ``meta``.  Floats
        serialize via ``repr`` (shortest round-trip form, stable across
        CPython versions), so bit-identical simulations produce identical
        digests on any platform.
        """
        h = hashlib.sha256()
        for line in self.lines():
            h.update(line.encode("utf-8"))
            h.update(b"\n")
        return h.hexdigest()


def read_jsonl(path) -> tuple[dict, list[dict]]:
    """Load a trace file; returns ``(header, events)``.

    Accepts headerless streams too (every line an event) for robustness.
    """
    header: dict = {}
    events: list[dict] = []
    with open(path, "r", encoding="utf-8") as f:
        for raw in f:
            raw = raw.strip()
            if not raw:
                continue
            rec = json.loads(raw)
            if "schema" in rec and "k" not in rec:
                header = rec
            else:
                events.append(rec)
    return header, events


def load_trace(path) -> tuple[dict, list[dict], list[str]]:
    """Tolerant loader: ``(header, events, warnings)``.

    Unlike :func:`read_jsonl` (which raises on any malformed line), this
    skips lines that do not parse -- typically a truncated tail from a
    run that died mid-write -- and reports each skip as a warning string,
    so the report CLI can still analyze the healthy prefix.
    """
    header: dict = {}
    events: list[dict] = []
    warnings: list[str] = []
    with open(path, "r", encoding="utf-8") as f:
        for lineno, raw in enumerate(f, 1):
            raw = raw.strip()
            if not raw:
                continue
            try:
                rec = json.loads(raw)
            except ValueError:
                warnings.append(f"line {lineno}: malformed JSON skipped")
                continue
            if not isinstance(rec, dict):
                warnings.append(f"line {lineno}: not an event object, skipped")
                continue
            if "schema" in rec and "k" not in rec:
                header = rec
            else:
                events.append(rec)
    return header, events, warnings


def digest_of_events(events: Iterable[dict]) -> str:
    """Digest of already-decoded event dicts (mirrors ``Tracer.digest``)."""
    h = hashlib.sha256()
    for rec in events:
        h.update(
            json.dumps(rec, sort_keys=True, separators=(",", ":")).encode("utf-8")
        )
        h.update(b"\n")
    return h.hexdigest()
