"""Perf-regression gate over the committed BENCH baselines.

Compares fresh measurements against ``BENCH_chaos.json`` (virtual-time
chaos cells), ``BENCH_engine.json`` (interpreter throughput plus the
virtual time of the Fig. 5 single points), ``BENCH_prefetch.json``
(prefetch-policy sweep stall/elapsed, when committed), and
``BENCH_trace.json`` (trace-replay scenario sweep, when committed), and
``BENCH_hybrid.json`` (hybrid path-switch benchmark, when committed):

* **virtual-time metrics are hard-gated**: the simulator is
  deterministic, so ``healthy_ns``/``faulty_ns``/``virtual_ns`` must
  match the baseline within a tight relative tolerance (default 1%).
  Slower fails the gate; markedly faster is reported as an improvement
  and a prompt to regenerate the baselines (the gate stays green).
* **wall-clock throughput is advisory** by default: CI machines are too
  noisy for hard wall gates, so ``ops_per_sec`` only warns unless
  ``--strict-wall`` is given, and even then only a collapse below
  ``--wall-ratio`` of the baseline fails.

Usage::

    python -m repro.obs.regress                    # measure + compare
    python -m repro.obs.regress --current cur.json # compare canned numbers
    python -m repro.obs.regress --save-current cur.json --json report.json

Exit codes: 0 = within tolerance, 1 = regression, 2 = unreadable
baseline/current file.  Also reachable as
``python -m repro.obs.report --check``.
"""

from __future__ import annotations

import argparse
import contextlib
import json
import os
import pathlib
import time
from dataclasses import dataclass

#: default relative tolerance for deterministic virtual-time metrics
VIRT_REL_TOL = 0.01
#: throughput may sink to this fraction of baseline before --strict-wall fails
WALL_RATIO = 0.35

DEFAULT_WORKLOADS = ("array_sum", "graph_traversal")
DEFAULT_SYSTEMS = ("fastswap", "mira")
DEFAULT_SEEDS = (1,)
DEFAULT_INTENSITIES = ("medium",)
#: prefetch cells re-measured live by default: the two workloads where the
#: policy ranking is most load-bearing (sequential + oblivious headliner)
DEFAULT_PREFETCH_WORKLOADS = ("array_sum", "dataframe")
#: trace scenarios re-measured live by default: one skew-dominated and one
#: structure-dominated access pattern (the ends of the corpus spectrum)
DEFAULT_TRACE_SCENARIOS = ("zipf_hot", "chase_small")
#: trace systems re-measured live by default: a page-swap baseline, its
#: prefetching variant, and the strongest Mira cache geometry
DEFAULT_TRACE_SYSTEMS = ("fastswap", "leap", "mira-set")
#: hybrid cells re-measured live by default: one steady promote (zipf_hot)
#: and the mid-run phase-change switch demo (mixed_rw)
DEFAULT_HYBRID_SCENARIOS = ("zipf_hot", "mixed_rw")


@dataclass
class Check:
    """One metric comparison."""

    metric: str
    baseline: float
    current: float
    rel: float  # (current - baseline) / baseline
    tol: float
    hard: bool
    ok: bool
    note: str = ""

    def row(self) -> dict:
        return dict(vars(self))


# -- baseline I/O -----------------------------------------------------------


def load_json(path) -> dict:
    with open(path, "r", encoding="utf-8") as f:
        return json.load(f)


def flatten_chaos(doc: dict) -> dict[str, float]:
    """``BENCH_chaos.json`` cells -> flat {metric: virtual ns}."""
    out: dict[str, float] = {}
    for cell in doc.get("cells", []):
        if not cell.get("completed"):
            continue
        key = (
            f"chaos.{cell['workload']}.{cell['system']}"
            f".s{cell['seed']}.{cell['intensity']}"
        )
        out[key + ".healthy_ns"] = float(cell["healthy_ns"])
        out[key + ".faulty_ns"] = float(cell["faulty_ns"])
    return out


def flatten_engine(doc: dict) -> dict[str, float]:
    """``BENCH_engine.json`` -> flat metrics (throughput + virtual ns)."""
    out: dict[str, float] = {}
    for engine, e in doc.get("interpreter_throughput", {}).items():
        if isinstance(e, dict) and "ops_per_sec" in e:
            out[f"engine.{engine}.ops_per_sec"] = float(e["ops_per_sec"])
    for name, ns in (doc.get("single_point", {}).get("virtual_ns") or {}).items():
        out[f"engine.virtual_ns.{name}"] = float(ns)
    return out


def flatten_prefetch(doc: dict) -> dict[str, float]:
    """``BENCH_prefetch.json`` cells -> flat {metric: virtual ns}.

    Both ``stall_ns`` (the profiler's prefetch-relevant attribution) and
    ``elapsed_ns`` are hard-gated: the sweep is virtual-time
    deterministic, so any drift is a behavior change, not noise.
    """
    out: dict[str, float] = {}
    for cell in doc.get("cells", []):
        key = f"prefetch.{cell['workload']}.{cell['policy']}"
        out[key + ".stall_ns"] = float(cell["stall_ns"])
        out[key + ".elapsed_ns"] = float(cell["elapsed_ns"])
    return out


def flatten_trace(doc: dict) -> dict[str, float]:
    """``BENCH_trace.json`` cells -> flat {metric: virtual ns}.

    ``elapsed_ns`` is hard-gated: the trace sweep replays seeded
    generators through deterministic simulators, so any drift is a
    behavior change, not noise.
    """
    out: dict[str, float] = {}
    for cell in doc.get("cells", []):
        key = f"trace.{cell['scenario']}.{cell['system']}"
        out[key + ".elapsed_ns"] = float(cell["elapsed_ns"])
    return out


def flatten_hybrid(doc: dict) -> dict[str, float]:
    """``BENCH_hybrid.json`` cells -> flat {metric: virtual ns}.

    Both halves of the hybrid benchmark are hard-gated: the IR cells
    (``run_plan(hybrid=True)`` vs the baselines) and the trace-corpus
    cells (the ``"hybrid"`` trace system) are virtual-time deterministic.
    """
    out: dict[str, float] = {}
    for cell in doc.get("ir_cells", []):
        key = f"hybrid.ir.{cell['workload']}.{cell['system']}"
        out[key + ".elapsed_ns"] = float(cell["elapsed_ns"])
    for cell in doc.get("trace_cells", []):
        key = f"hybrid.trace.{cell['scenario']}.{cell['system']}"
        out[key + ".elapsed_ns"] = float(cell["elapsed_ns"])
    return out


def load_baselines(
    engine_path, chaos_path, prefetch_path=None, trace_path=None,
    hybrid_path=None,
) -> dict[str, float]:
    metrics: dict[str, float] = {}
    metrics.update(flatten_engine(load_json(engine_path)))
    metrics.update(flatten_chaos(load_json(chaos_path)))
    if prefetch_path is not None:
        metrics.update(flatten_prefetch(load_json(prefetch_path)))
    if trace_path is not None:
        metrics.update(flatten_trace(load_json(trace_path)))
    if hybrid_path is not None:
        metrics.update(flatten_hybrid(load_json(hybrid_path)))
    return metrics


# -- fresh measurement ------------------------------------------------------

#: environment knobs that change what a measurement runs (engine choice,
#: ambient prefetch policy); pinned off for the whole of
#: :func:`measure_current` so comparisons against the committed baselines
#: are not contaminated by the caller's shell
_MEASURE_ENV = ("REPRO_ENGINE", "REPRO_PREFETCH")


@contextlib.contextmanager
def _pinned_env(*names: str):
    """Remove ``names`` from ``os.environ`` for the duration, restoring
    the exact prior values on exit -- including when the body raises, so
    a crashing measurement can never leak a mutated environment into the
    caller's process (the same discipline ``_measure_throughput`` applies
    to its own internal engine switching)."""
    saved = {name: os.environ.pop(name, None) for name in names}
    try:
        yield
    finally:
        for name, value in saved.items():
            if value is None:
                os.environ.pop(name, None)
            else:
                os.environ[name] = value


def _measure_throughput() -> dict[str, float]:
    """Wall-clock ops/sec of all three engines on the Fig. 5 graph
    workload (mirrors ``benchmarks/perf_smoke.py``'s throughput section)."""
    from repro.baselines import NativeMemory
    from repro.bench.harness import ModuleMemo
    from repro.core import run_on_baseline
    from repro.memsim.cost_model import CostModel
    from repro.workloads import make_graph_workload

    cost = CostModel()
    wl = make_graph_workload()
    out: dict[str, float] = {}
    saved = os.environ.get("REPRO_ENGINE")
    try:
        for engine in ("reference", "compiled", "codegen"):
            os.environ["REPRO_ENGINE"] = engine
            memo = ModuleMemo(wl)
            # best of two runs on a shared memo, like perf_smoke: the
            # first run pays one-time costs (codegen source compile),
            # which are amortized noise, not throughput
            wall = float("inf")
            for _ in range(2):
                t0 = time.perf_counter()
                result = run_on_baseline(
                    memo.module,
                    NativeMemory(cost, 2 * memo.footprint_bytes + (1 << 20)),
                    wl.data_init,
                    entry=wl.entry,
                )
                wall = min(wall, time.perf_counter() - t0)
            bd = result.breakdown
            ops = bd.get("compute", 0.0) / cost.cpu_op_ns
            ops += bd.get("dram", 0.0) / cost.dram_access_ns
            out[f"engine.{engine}.ops_per_sec"] = round(ops / wall)
    finally:
        if saved is None:
            os.environ.pop("REPRO_ENGINE", None)
        else:
            os.environ["REPRO_ENGINE"] = saved
    return out


def _measure_virtual_points() -> dict[str, float]:
    """Deterministic virtual time of the Fig. 5 single points -- the same
    numbers ``benchmarks/perf_smoke.py`` stores as
    ``single_point.virtual_ns`` (graph workload, ratio 0.2)."""
    from repro.bench.harness import (
        ModuleMemo,
        mira_point,
        native_time_ns,
        system_point,
    )
    from repro.memsim.cost_model import CostModel
    from repro.workloads import make_graph_workload

    cost = CostModel()
    wl = make_graph_workload()
    memo = ModuleMemo(wl)
    native_ns = native_time_ns(wl, cost, memo=memo)
    fast = system_point(wl, "fastswap", cost, 0.2, native_ns, memo=memo)
    mira = mira_point(wl, cost, 0.2, native_ns, memo=memo)[0]
    return {
        "engine.virtual_ns.native": native_ns,
        "engine.virtual_ns.fastswap@0.2": fast.elapsed_ns,
        "engine.virtual_ns.mira@0.2": mira.elapsed_ns,
    }


def _measure_prefetch(workloads=DEFAULT_PREFETCH_WORKLOADS) -> dict[str, float]:
    """Deterministic stall/elapsed of the prefetch-policy sweep on a
    subset of workloads (same cells ``benchmarks/prefetch_smoke.py``
    stores in ``BENCH_prefetch.json``)."""
    from repro.bench.prefetch import POLICIES, measure_cell

    metrics: dict[str, float] = {}
    for workload in workloads:
        for policy in POLICIES:
            cell = measure_cell(workload, policy)
            key = f"prefetch.{workload}.{policy}"
            metrics[key + ".stall_ns"] = float(cell["stall_ns"])
            metrics[key + ".elapsed_ns"] = float(cell["elapsed_ns"])
    return metrics


def _measure_trace(
    scenarios=DEFAULT_TRACE_SCENARIOS, systems=DEFAULT_TRACE_SYSTEMS
) -> dict[str, float]:
    """Deterministic virtual time of the trace-replay sweep on a subset
    of scenarios (same cells ``benchmarks/trace_smoke.py`` stores in
    ``BENCH_trace.json``)."""
    from repro.bench.tracebench import measure_cell

    metrics: dict[str, float] = {}
    for scenario in scenarios:
        for system in systems:
            cell = measure_cell(scenario, system)
            key = f"trace.{scenario}.{system}"
            metrics[key + ".elapsed_ns"] = float(cell["elapsed_ns"])
    return metrics


def _measure_hybrid(scenarios=DEFAULT_HYBRID_SCENARIOS) -> dict[str, float]:
    """Deterministic virtual time of the ``"hybrid"`` trace system on a
    subset of scenarios (same cells ``benchmarks/hybrid_smoke.py`` stores
    in ``BENCH_hybrid.json``'s ``trace_cells``)."""
    from repro.bench.tracebench import measure_cell

    metrics: dict[str, float] = {}
    for scenario in scenarios:
        cell = measure_cell(scenario, "hybrid")
        key = f"hybrid.trace.{scenario}.hybrid"
        metrics[key + ".elapsed_ns"] = float(cell["elapsed_ns"])
    return metrics


def measure_current(
    workloads=DEFAULT_WORKLOADS,
    systems=DEFAULT_SYSTEMS,
    seeds=DEFAULT_SEEDS,
    intensities=DEFAULT_INTENSITIES,
    throughput: bool = True,
    single_points: bool = True,
    prefetch: bool = True,
    prefetch_workloads=DEFAULT_PREFETCH_WORKLOADS,
    trace: bool = True,
    trace_scenarios=DEFAULT_TRACE_SCENARIOS,
    trace_systems=DEFAULT_TRACE_SYSTEMS,
    hybrid: bool = True,
    hybrid_scenarios=DEFAULT_HYBRID_SCENARIOS,
) -> dict[str, float]:
    """Re-measure a subset of the baseline metrics, live.

    Chaos cells are recomputed with the exact parameters the baseline
    harness used (``run_chaos_point`` defaults: ratio 0.25, default cost
    model, 2e7 ns fault horizon), so their virtual times are directly
    comparable.  The whole measurement runs under :func:`_pinned_env`:
    ambient ``REPRO_ENGINE``/``REPRO_PREFETCH`` are pinned off and
    restored afterwards even if a measurement raises.
    """
    from repro.faults.chaos import default_matrix, run_chaos_point

    with _pinned_env(*_MEASURE_ENV):
        metrics: dict[str, float] = {}
        plans = default_matrix(
            seeds=tuple(seeds), intensities=tuple(intensities)
        )
        for name in workloads:
            for system in systems:
                for plan in plans:
                    p = run_chaos_point(name, system, plan)
                    key = (
                        f"chaos.{p.workload}.{p.system}.s{p.seed}.{p.intensity}"
                    )
                    metrics[key + ".healthy_ns"] = p.healthy_ns
                    metrics[key + ".faulty_ns"] = p.faulty_ns
        if single_points:
            metrics.update(_measure_virtual_points())
        if throughput:
            metrics.update(_measure_throughput())
        if prefetch:
            metrics.update(_measure_prefetch(prefetch_workloads))
        if trace:
            metrics.update(_measure_trace(trace_scenarios, trace_systems))
        if hybrid:
            metrics.update(_measure_hybrid(hybrid_scenarios))
        return metrics


# -- comparison -------------------------------------------------------------


def compare(
    baseline: dict[str, float],
    current: dict[str, float],
    virt_tol: float = VIRT_REL_TOL,
    wall_ratio: float = WALL_RATIO,
    strict_wall: bool = False,
) -> list[Check]:
    """Compare metrics present on both sides; see the module docstring
    for the hard/advisory split."""
    checks: list[Check] = []
    for metric in sorted(set(baseline) & set(current)):
        base, cur = baseline[metric], current[metric]
        rel = (cur - base) / base if base else 0.0
        wall = metric.endswith(".ops_per_sec")
        if wall:
            # higher is better; only a collapse matters, and only when
            # the caller asked for a hard wall gate
            ok = cur >= base * wall_ratio
            note = "" if ok else f"throughput fell to {cur / base:.0%} of baseline"
            checks.append(
                Check(metric, base, cur, rel, wall_ratio, strict_wall, ok or not strict_wall, note)
            )
            continue
        # virtual time: lower is better, determinism expected
        if rel > virt_tol:
            checks.append(
                Check(metric, base, cur, rel, virt_tol, True, False,
                      f"virtual time regressed {rel:+.1%}")
            )
        elif rel < -virt_tol:
            checks.append(
                Check(metric, base, cur, rel, virt_tol, True, True,
                      f"improved {rel:+.1%}; regenerate the BENCH baselines")
            )
        else:
            checks.append(Check(metric, base, cur, rel, virt_tol, True, True))
    return checks


def gate(checks: list[Check]) -> bool:
    """True iff no hard check failed."""
    return all(c.ok for c in checks)


# -- CLI --------------------------------------------------------------------


def _repo_default(name: str) -> pathlib.Path:
    """Look for a baseline next to cwd, walking up (CI runs at the root)."""
    here = pathlib.Path.cwd()
    for d in (here, *here.parents):
        p = d / name
        if p.exists():
            return p
    return here / name


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(
        prog="python -m repro.obs.regress", description=__doc__
    )
    ap.add_argument("--engine", default=None, help="BENCH_engine.json path")
    ap.add_argument("--chaos", default=None, help="BENCH_chaos.json path")
    ap.add_argument("--prefetch", default=None, help="BENCH_prefetch.json path")
    ap.add_argument(
        "--current",
        default=None,
        help="flat {metric: value} JSON to compare instead of measuring",
    )
    ap.add_argument("--save-current", default=None, help="write measured metrics")
    ap.add_argument("--json", dest="json_out", default=None, help="write full report")
    ap.add_argument("--workloads", nargs="+", default=list(DEFAULT_WORKLOADS))
    ap.add_argument("--systems", nargs="+", default=list(DEFAULT_SYSTEMS))
    ap.add_argument("--seeds", nargs="+", type=int, default=list(DEFAULT_SEEDS))
    ap.add_argument("--intensities", nargs="+", default=list(DEFAULT_INTENSITIES))
    ap.add_argument("--virt-tol", type=float, default=VIRT_REL_TOL)
    ap.add_argument("--wall-ratio", type=float, default=WALL_RATIO)
    ap.add_argument("--strict-wall", action="store_true")
    ap.add_argument("--no-throughput", action="store_true")
    ap.add_argument("--no-points", action="store_true",
                    help="skip the Fig. 5 single-point virtual-time metrics")
    ap.add_argument("--no-prefetch", action="store_true",
                    help="skip the prefetch-policy sweep metrics")
    ap.add_argument(
        "--prefetch-workloads",
        nargs="+",
        default=list(DEFAULT_PREFETCH_WORKLOADS),
        help="workloads to re-measure in the prefetch sweep",
    )
    ap.add_argument("--trace", default=None, help="BENCH_trace.json path")
    ap.add_argument("--no-trace", action="store_true",
                    help="skip the trace-replay sweep metrics")
    ap.add_argument(
        "--trace-scenarios",
        nargs="+",
        default=list(DEFAULT_TRACE_SCENARIOS),
        help="scenarios to re-measure in the trace-replay sweep",
    )
    ap.add_argument(
        "--trace-systems",
        nargs="+",
        default=list(DEFAULT_TRACE_SYSTEMS),
        help="systems to re-measure in the trace-replay sweep",
    )
    ap.add_argument("--hybrid", default=None, help="BENCH_hybrid.json path")
    ap.add_argument("--no-hybrid", action="store_true",
                    help="skip the hybrid path-switch metrics")
    ap.add_argument(
        "--hybrid-scenarios",
        nargs="+",
        default=list(DEFAULT_HYBRID_SCENARIOS),
        help="trace scenarios to re-measure on the hybrid system",
    )
    args = ap.parse_args(argv)

    engine_path = args.engine or _repo_default("BENCH_engine.json")
    chaos_path = args.chaos or _repo_default("BENCH_chaos.json")
    prefetch_path = args.prefetch or _repo_default("BENCH_prefetch.json")
    if args.no_prefetch or not pathlib.Path(prefetch_path).exists():
        prefetch_path = None
    trace_path = args.trace or _repo_default("BENCH_trace.json")
    if args.no_trace or not pathlib.Path(trace_path).exists():
        trace_path = None
    hybrid_path = args.hybrid or _repo_default("BENCH_hybrid.json")
    if args.no_hybrid or not pathlib.Path(hybrid_path).exists():
        hybrid_path = None
    try:
        baseline = load_baselines(
            engine_path, chaos_path, prefetch_path, trace_path, hybrid_path
        )
    except (OSError, ValueError, KeyError) as e:
        print(f"regress: cannot load baselines: {e}")
        return 2

    if args.current is not None:
        try:
            doc = load_json(args.current)
        except (OSError, ValueError) as e:
            print(f"regress: cannot load --current: {e}")
            return 2
        current = {
            k: float(v)
            for k, v in (doc.get("metrics", doc)).items()
            if isinstance(v, (int, float))
        }
    else:
        current = measure_current(
            args.workloads,
            args.systems,
            args.seeds,
            args.intensities,
            throughput=not args.no_throughput,
            single_points=not args.no_points,
            prefetch=not args.no_prefetch and prefetch_path is not None,
            prefetch_workloads=args.prefetch_workloads,
            trace=not args.no_trace and trace_path is not None,
            trace_scenarios=args.trace_scenarios,
            trace_systems=args.trace_systems,
            hybrid=not args.no_hybrid and hybrid_path is not None,
            hybrid_scenarios=args.hybrid_scenarios,
        )
    if args.save_current:
        with open(args.save_current, "w", encoding="utf-8") as f:
            json.dump({"metrics": current}, f, indent=2, sort_keys=True)
            f.write("\n")

    checks = compare(
        baseline,
        current,
        virt_tol=args.virt_tol,
        wall_ratio=args.wall_ratio,
        strict_wall=args.strict_wall,
    )
    from repro.bench.reporting import format_regression

    print(format_regression(checks))
    uncovered = sorted(set(current) - set(baseline))
    if uncovered:
        print(f"(no baseline for: {', '.join(uncovered)})")
    if args.json_out:
        with open(args.json_out, "w", encoding="utf-8") as f:
            json.dump(
                {"ok": gate(checks), "checks": [c.row() for c in checks]},
                f,
                indent=2,
                sort_keys=True,
            )
            f.write("\n")
    if not gate(checks):
        print("regress: FAIL")
        return 1
    print("regress: OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
