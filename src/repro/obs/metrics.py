"""Metrics registry: counters, gauges, and histograms.

The registry is the pull-side companion to :mod:`repro.obs.trace`: where
a trace records *every* event, metrics hold cheap aggregates that existing
statistics objects (:class:`~repro.cache.stats.SectionStats`, the
profiler, network counters, the clock breakdown) publish into under
stable dotted names.  ``collect_run_metrics`` gathers everything a
finished :class:`~repro.runtime.interpreter.RunResult` exposes.
"""

from __future__ import annotations

import json

from repro.errors import ObsError


class Counter:
    """Monotonically increasing value."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, n: int | float = 1) -> None:
        self.value += n


class Gauge:
    """A value that can go up or down (sizes, ratios, timestamps)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, v: float) -> None:
        self.value = v


class Histogram:
    """Summary stats over stored observations, with exact percentiles.

    Samples are kept (metrics histograms here observe per-function or
    per-event aggregates, thousands at most, not per-access values), so
    ``percentile`` is exact nearest-rank over the data, not an estimate.
    """

    __slots__ = ("count", "total", "min", "max", "_samples", "_dirty")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")
        self._samples: list[float] = []
        self._dirty = False

    def observe(self, v: float) -> None:
        self.count += 1
        self.total += v
        if v < self.min:
            self.min = v
        if v > self.max:
            self.max = v
        self._samples.append(v)
        self._dirty = True

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, p: float) -> float | None:
        """Exact nearest-rank percentile (``p`` in [0, 100])."""
        if not self.count:
            return None
        if self._dirty:
            self._samples.sort()
            self._dirty = False
        rank = max(1, -(-self.count * p // 100))  # ceil without floats
        return self._samples[int(rank) - 1]

    def snapshot(self) -> dict:
        if not self.count:
            # explicit zeros, not None/inf: an empty histogram must export
            # (OpenMetrics, series JSONL) without per-field null handling
            return {
                "count": 0,
                "sum": 0.0,
                "min": 0.0,
                "max": 0.0,
                "mean": 0.0,
                "p50": 0.0,
                "p95": 0.0,
                "p99": 0.0,
            }
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
            "p50": self.percentile(50),
            "p95": self.percentile(95),
            "p99": self.percentile(99),
        }


class MetricsRegistry:
    """Named metrics with get-or-create accessors.

    Names are dotted paths (``cache.main.hits``, ``net.bytes_read``);
    a name is bound to one metric type for the registry's lifetime --
    requesting it again under a different type raises :class:`ObsError`
    (silent aliasing would let two publishers race on one name).
    """

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}
        self._types: dict[str, str] = {}

    def _claim(self, name: str, kind: str) -> None:
        bound = self._types.get(name)
        if bound is None:
            self._types[name] = kind
        elif bound != kind:
            raise ObsError(
                f"metric {name!r} already registered as a {bound}; "
                f"cannot re-register it as a {kind}"
            )

    def counter(self, name: str) -> Counter:
        c = self._counters.get(name)
        if c is None:
            self._claim(name, "counter")
            c = self._counters[name] = Counter()
        return c

    def gauge(self, name: str) -> Gauge:
        g = self._gauges.get(name)
        if g is None:
            self._claim(name, "gauge")
            g = self._gauges[name] = Gauge()
        return g

    def histogram(self, name: str) -> Histogram:
        h = self._histograms.get(name)
        if h is None:
            self._claim(name, "histogram")
            h = self._histograms[name] = Histogram()
        return h

    def snapshot(self) -> dict:
        """Sorted, JSON-ready view of every metric."""
        return {
            "counters": {k: self._counters[k].value for k in sorted(self._counters)},
            "gauges": {k: self._gauges[k].value for k in sorted(self._gauges)},
            "histograms": {
                k: self._histograms[k].snapshot() for k in sorted(self._histograms)
            },
        }

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.snapshot(), indent=indent, sort_keys=True)


def collect_run_metrics(result, registry: MetricsRegistry | None = None) -> MetricsRegistry:
    """Publish everything a finished run exposes into one registry.

    Pulls the clock breakdown, the memory system's network counters and
    per-section statistics, and the profiler's per-function aggregates.
    """
    reg = registry or MetricsRegistry()
    reg.gauge("run.elapsed_ns").set(result.elapsed_ns)
    reg.gauge("run.runtime_ns").set(result.runtime_ns)
    for cat, ns in result.breakdown.items():
        reg.gauge(f"clock.{cat}_ns").set(ns)
    memsys = result.memsys
    memsys.network.stats.publish(reg)
    memsys.far_node.publish_metrics(reg)
    faults = getattr(memsys.network, "faults", None)
    if faults is not None:
        faults.stats.publish(reg)
    reg.gauge("mem.metadata_bytes").set(memsys.metadata_bytes())
    collect = getattr(memsys, "collect_section_stats", None)
    if collect is not None:
        miss_wait = reg.histogram("cache.section_miss_wait_ns")
        for sec_name, fields in collect().items():
            for fname, value in fields.items():
                reg.gauge(f"cache.{sec_name}.{fname}").set(value)
            accesses = fields.get("accesses")
            if accesses:
                reg.gauge(f"cache.{sec_name}.miss_rate").set(
                    fields.get("misses", 0) / accesses
                )
            issued = fields.get("prefetches_issued", 0)
            reg.gauge(f"cache.{sec_name}.prefetch_waste_ratio").set(
                fields.get("prefetch_wasted", 0) / issued if issued else 0.0
            )
            if fields.get("misses"):
                miss_wait.observe(fields.get("miss_wait_ns", 0.0))
    policy = getattr(memsys, "policy", None)
    if policy is not None:
        # per-policy accuracy/coverage/timeliness (repro.prefetch)
        for k, v in policy.snapshot().items():
            if k != "policy":
                reg.gauge(f"prefetch.{policy.name}.{k}").set(v)
    func_ns = reg.histogram("func.exclusive_ns")
    for prof in result.profiler.functions.values():
        func_ns.observe(prof.exclusive_ns)
    result.profiler.publish(reg)
    return reg
