"""``repro.obs``: structured tracing, metrics, telemetry, and analysis.

* :mod:`repro.obs.trace` -- :class:`Tracer` and the stable JSONL event
  schema (deterministic digests; engine-parity enforced);
* :mod:`repro.obs.metrics` -- :class:`MetricsRegistry`
  (counters/gauges/histograms with exact percentiles) that existing
  stats publish into;
* :mod:`repro.obs.timeseries` -- :class:`TelemetryCollector`, the
  deterministic windowed series collector (clock-hooked at virtual-time
  window boundaries, ring-buffered, zero overhead when detached), plus
  :func:`series_from_events` to fold an existing trace into the same
  series shape;
* :mod:`repro.obs.slo` -- declarative :class:`SloSpec` objectives with
  error-budget / burn-rate evaluation into :class:`SloVerdict`;
* :mod:`repro.obs.export` -- canonical series JSONL (+ SHA-256 digests)
  and OpenMetrics/Prometheus text exposition;
* :mod:`repro.obs.analyze` -- exclusive virtual-time attribution
  (buckets fsum exactly to the total), critical path, collapsed-stack
  flamegraph export;
* :mod:`repro.obs.diff` -- differential trace comparison: first
  divergent event (kind, seq, field), per-kind count deltas,
  attribution-bucket deltas (``python -m repro.obs.diff A B``);
* :mod:`repro.obs.regress` -- perf-regression gate over the committed
  ``BENCH_*.json`` baselines (``python -m repro.obs.regress``);
* :mod:`repro.obs.report` -- ``python -m repro.obs.report trace.jsonl``:
  timelines, summaries, ``--attribution``/``--critical-path``/``--flame``
  views, ``--timeseries``/``--slo``/``--openmetrics`` telemetry views,
  and ``--check`` (the gate).

Attach a tracer with ``run_plan(..., tracer=t)`` /
``run_on_baseline(..., tracer=t)`` (or ``memsys.set_tracer(t)`` before
building the interpreter); attach a telemetry collector the same way
(``telemetry=TelemetryCollector(window_ns)``).  With neither attached
every emission/observation point is a single ``None`` test: observability
costs nothing when off.
"""

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    collect_run_metrics,
)
from repro.obs.slo import SloSpec, SloVerdict, evaluate, render_verdict
from repro.obs.timeseries import (
    SERIES_SCHEMA,
    TelemetryCollector,
    series_from_events,
)
from repro.obs.trace import (
    KINDS,
    MEM_OP_KINDS,
    SCHEMA,
    Tracer,
    digest_of_events,
    load_trace,
    read_jsonl,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "KINDS",
    "MEM_OP_KINDS",
    "MetricsRegistry",
    "SCHEMA",
    "SERIES_SCHEMA",
    "SloSpec",
    "SloVerdict",
    "TelemetryCollector",
    "Tracer",
    "collect_run_metrics",
    "digest_of_events",
    "evaluate",
    "load_trace",
    "read_jsonl",
    "render_verdict",
    "series_from_events",
]
