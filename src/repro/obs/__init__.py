"""``repro.obs``: structured tracing, metrics, and trace analysis.

* :mod:`repro.obs.trace` -- :class:`Tracer` and the stable JSONL event
  schema (deterministic digests; engine-parity enforced);
* :mod:`repro.obs.metrics` -- :class:`MetricsRegistry`
  (counters/gauges/histograms with exact percentiles) that existing
  stats publish into;
* :mod:`repro.obs.analyze` -- exclusive virtual-time attribution
  (buckets fsum exactly to the total), critical path, collapsed-stack
  flamegraph export;
* :mod:`repro.obs.regress` -- perf-regression gate over the committed
  ``BENCH_*.json`` baselines (``python -m repro.obs.regress``);
* :mod:`repro.obs.report` -- ``python -m repro.obs.report trace.jsonl``:
  timelines, summaries, ``--attribution``/``--critical-path``/``--flame``
  views, and ``--check`` (the gate).

Attach a tracer with ``run_plan(..., tracer=t)`` /
``run_on_baseline(..., tracer=t)`` (or ``memsys.set_tracer(t)`` before
building the interpreter).  With no tracer attached every emission point
is a single ``None`` test: tracing costs nothing when off.
"""

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    collect_run_metrics,
)
from repro.obs.trace import (
    KINDS,
    MEM_OP_KINDS,
    SCHEMA,
    Tracer,
    digest_of_events,
    load_trace,
    read_jsonl,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "KINDS",
    "MEM_OP_KINDS",
    "MetricsRegistry",
    "SCHEMA",
    "Tracer",
    "collect_run_metrics",
    "digest_of_events",
    "load_trace",
    "read_jsonl",
]
