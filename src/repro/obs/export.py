"""Exporters for telemetry series and metrics.

Two formats:

* **Canonical series JSONL** -- one header line (``schema`` +
  metadata), then one line per window record with sorted keys and
  minimal separators.  The SHA-256 digest covers the record lines only
  (header excluded) with floats via ``repr`` -- exactly the stability
  rules of trace digests -- so byte-identical series across engines is a
  digest comparison.

* **OpenMetrics / Prometheus text exposition** -- a point-in-time dump
  of a :class:`~repro.obs.metrics.MetricsRegistry` (counters as
  ``counter``, gauges as ``gauge``, histograms as ``summary`` with
  quantile labels), terminated by ``# EOF``.  Metric names sanitize
  dotted paths to underscores.
"""

from __future__ import annotations

import hashlib
import json
from typing import Iterable, Iterator

from repro.errors import ObsError
from repro.obs.timeseries import SERIES_SCHEMA


# -- canonical series JSONL ----------------------------------------------------


def series_lines(windows: Iterable[dict]) -> Iterator[str]:
    """Canonical JSON line per window record (no header)."""
    for rec in windows:
        yield json.dumps(rec, sort_keys=True, separators=(",", ":"))


def series_header(windows: list[dict], meta: dict | None = None) -> str:
    return json.dumps(
        {"schema": SERIES_SCHEMA, "windows": len(windows), **(meta or {})},
        sort_keys=True,
        separators=(",", ":"),
    )


def series_jsonl(windows: list[dict], meta: dict | None = None) -> str:
    """Header line plus one canonical line per window."""
    body = "\n".join(series_lines(windows))
    return series_header(windows, meta) + ("\n" + body if body else "") + "\n"


def series_digest(windows: Iterable[dict]) -> str:
    """SHA-256 over the canonical record lines (header excluded)."""
    h = hashlib.sha256()
    for line in series_lines(windows):
        h.update(line.encode("utf-8"))
        h.update(b"\n")
    return h.hexdigest()


def write_series(path, windows: list[dict], meta: dict | None = None) -> None:
    with open(path, "w", encoding="utf-8") as f:
        f.write(series_jsonl(windows, meta))


def read_series(path) -> tuple[dict, list[dict]]:
    """Load a series file; returns ``(header, windows)``.  Rejects files
    whose header declares a different schema."""
    header: dict = {}
    windows: list[dict] = []
    with open(path, "r", encoding="utf-8") as f:
        for raw in f:
            raw = raw.strip()
            if not raw:
                continue
            rec = json.loads(raw)
            if "schema" in rec and "w" not in rec:
                header = rec
                if rec["schema"] != SERIES_SCHEMA:
                    raise ObsError(
                        f"unsupported series schema {rec['schema']!r}; "
                        f"expected {SERIES_SCHEMA!r}"
                    )
            else:
                windows.append(rec)
    return header, windows


# -- OpenMetrics text exposition -----------------------------------------------


def _om_name(name: str) -> str:
    """Sanitize a dotted metric path to an OpenMetrics name."""
    out = []
    for ch in name:
        out.append(ch if ch.isalnum() or ch == "_" else "_")
    s = "".join(out)
    if not s or s[0].isdigit():
        s = "_" + s
    return s


def to_openmetrics(registry, prefix: str = "repro") -> str:
    """Render a :class:`~repro.obs.metrics.MetricsRegistry` snapshot as
    OpenMetrics text (Prometheus exposition format)."""
    snap = registry.snapshot()
    lines: list[str] = []
    for name, value in snap["counters"].items():
        om = f"{prefix}_{_om_name(name)}"
        lines.append(f"# TYPE {om} counter")
        lines.append(f"{om}_total {value}")
    for name, value in snap["gauges"].items():
        om = f"{prefix}_{_om_name(name)}"
        lines.append(f"# TYPE {om} gauge")
        lines.append(f"{om} {value}")
    for name, h in snap["histograms"].items():
        om = f"{prefix}_{_om_name(name)}"
        lines.append(f"# TYPE {om} summary")
        for q, key in (("0.5", "p50"), ("0.95", "p95"), ("0.99", "p99")):
            lines.append(f'{om}{{quantile="{q}"}} {h[key]}')
        lines.append(f"{om}_sum {h['sum']}")
        lines.append(f"{om}_count {h['count']}")
    lines.append("# EOF")
    return "\n".join(lines) + "\n"


def registry_from_series(windows: list[dict]):
    """Fold a window series into a :class:`MetricsRegistry` (the final
    cumulative counters as counters, per-window miss-wait percentiles as
    one histogram over the whole series) for OpenMetrics export."""
    from repro.obs.metrics import MetricsRegistry

    reg = MetricsRegistry()
    if not windows:
        return reg
    last = windows[-1]
    for key, value in last.items():
        if key in ("w", "t", "partial") or key.startswith("mw_"):
            continue
        reg.counter(f"series.{key}").inc(value)
    reg.gauge("series.windows").set(len(windows))
    reg.gauge("series.end_t_ns").set(last["t"])
    mw = reg.histogram("series.window_miss_wait_p95_ns")
    for rec in windows:
        if rec["mw_count"]:
            mw.observe(rec["mw_p95"])
    return reg
