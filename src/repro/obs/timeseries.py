"""Windowed telemetry: deterministic virtual-time series of run counters.

Everything else in ``repro.obs`` is end-of-run (one trace, one metrics
snapshot, one attribution tree).  The :class:`TelemetryCollector` adds the
time axis: it snapshots cumulative counters at *virtual-time window
boundaries*, producing one record per window -- the substrate the SLO
engine (:mod:`repro.obs.slo`) evaluates and the exporters
(:mod:`repro.obs.export`) serialize.

Design constraints (mirroring :mod:`repro.obs.trace`):

* **Zero overhead when disabled.**  Boundary detection lives inside the
  :class:`~repro.memsim.clock.VirtualClock`: with no hook armed every
  clock fold pays one float compare against ``+inf``, and the
  miss-wait observe sites are a single ``is not None`` test on an
  attribute that defaults to None.  Virtual time, golden trace digests,
  and BENCH baselines are bit-for-bit unchanged.

* **Engine determinism.**  A window record contains the *exact* boundary
  time ``(w+1) * window_ns`` -- never the live clock value at detection
  -- plus cumulative memory-system counters.  The reference interpreter
  folds compute charges immediately while the compiled/codegen engines
  buffer them (:meth:`VirtualClock.charge`), so the three engines detect
  a crossing at different fold points; but a buffered run contains no
  memory-system activity by construction (any access folds the buffer),
  so the counters are identical wherever inside it the boundary is
  detected.  The codegen bulk paths bail out to their exact per-element
  loops while a collector is attached, for the same reason the tracer
  makes them bail.  Result: byte-identical exported series across all
  three engines.

* **Bounded memory.**  Records live in a ring buffer of ``max_windows``;
  overflow evicts the oldest record and counts it in :attr:`dropped`
  (reported, never silent).

* **Threads.**  Forked per-thread clocks carry no hook; boundaries
  crossed inside a parallel region all surface when the parent clock
  joins, with the counters as of the join -- windows are coalesced, not
  interleaved, keeping the series deterministic.

Alignment with the hybrid plane: :class:`~repro.cache.hybrid.HybridConfig`
windows are *access-count* based while telemetry windows are virtual-time
based, so the two grids do not coincide; instead every record carries the
cumulative ``path_switches`` (and ``degrades``) counters, which makes each
hybrid switch decision visible as a step in the series.
"""

from __future__ import annotations

from collections import deque

from repro.cache.stats import SectionStats
from repro.errors import ObsError

#: schema identifier for exported series files; bump on breaking change
SERIES_SCHEMA = "repro.obs.series/v1"

#: SectionStats fields summed across sections (swap included) per record
_STAT_FIELDS = (
    "accesses",
    "hits",
    "misses",
    "prefetch_hits",
    "prefetches_issued",
    "prefetch_wasted",
    "evictions",
    "hinted_evictions",
    "writebacks",
    "native_accesses",
    "miss_wait_ns",
    "overhead_ns",
)

#: every key a window record carries, in schema order (documentation and
#: the OpenMetrics exporter iterate this; records themselves are plain
#: dicts serialized with sorted keys)
RECORD_FIELDS = (
    ("w", "window index (0-based)"),
    ("t", "window-end virtual time, ns (exact boundary, or clock.now for "
          "the final partial window)"),
    ("partial", "True only for the final, shorter-than-window record"),
    *((f, f"cumulative {f} summed over all sections + swap") for f in _STAT_FIELDS),
    ("net_bytes_read", "cumulative network bytes read"),
    ("net_bytes_written", "cumulative network bytes written"),
    ("net_messages", "cumulative network messages"),
    ("retries", "cumulative fault-layer retries (0 when healthy)"),
    ("breaker_trips", "cumulative circuit-breaker trips"),
    ("giveups", "cumulative retry-budget exhaustions"),
    ("backoff_ns", "cumulative retry backoff time"),
    ("degrades", "cumulative graceful-degradation actions applied"),
    ("path_switches", "cumulative hybrid path switches applied"),
    ("mw_count", "miss-wait observations inside this window"),
    ("mw_sum", "sum of those waits, ns"),
    ("mw_p50", "per-window miss-wait p50, ns (0 when mw_count=0)"),
    ("mw_p95", "per-window miss-wait p95, ns"),
    ("mw_p99", "per-window miss-wait p99, ns"),
)

_MW_ZERO = {
    "mw_count": 0, "mw_sum": 0.0, "mw_p50": 0.0, "mw_p95": 0.0, "mw_p99": 0.0,
}


def _mw_fields(samples: list[float]) -> dict:
    """Per-window miss-wait distribution, exact nearest-rank percentiles.

    Open-coded rather than going through :class:`~repro.obs.metrics.Histogram`
    (a per-sample ``observe`` loop per window is the collector's single
    hottest path); the sum runs in observation order and the ranks match
    ``Histogram.percentile`` exactly, so the produced records are
    byte-identical to the Histogram-backed ones."""
    if not samples:
        return dict(_MW_ZERO)
    n = len(samples)
    total = sum(samples)  # before sorting: same addition order as observe()
    samples.sort()
    return {
        "mw_count": n,
        "mw_sum": total,
        "mw_p50": samples[int(max(1, -(-n * 50 // 100))) - 1],
        "mw_p95": samples[int(max(1, -(-n * 95 // 100))) - 1],
        "mw_p99": samples[int(max(1, -(-n * 99 // 100))) - 1],
    }


class TelemetryCollector:
    """Collects one record of cumulative counters per virtual-time window.

    Usage::

        tel = TelemetryCollector(window_ns=1_000_000)
        run_plan(compiled, cost, mem, telemetry=tel)   # attaches + finishes
        series = tel.windows()

    or manually: ``tel.attach(memsys)`` before the run, ``tel.finish()``
    after.  A collector is single-use: it keeps the series after
    ``finish`` and cannot be re-attached.
    """

    def __init__(
        self,
        window_ns: float,
        max_windows: int = 4096,
        meta: dict | None = None,
    ) -> None:
        if window_ns <= 0:
            raise ObsError(f"telemetry window must be positive, got {window_ns}")
        if max_windows < 1:
            raise ObsError("telemetry ring buffer needs at least one window")
        self.window_ns = float(window_ns)
        self.max_windows = max_windows
        #: free-form metadata for the series file header (never digested)
        self.meta: dict = dict(meta or {})
        self._records: deque[dict] = deque(maxlen=max_windows)
        #: windows evicted from the ring buffer (0 = complete series)
        self.dropped = 0
        self.memsys = None
        self._clock = None
        self._next_w = 0
        self._mw_samples: list[float] = []
        # the per-miss hot hook: bound straight to the sample list's
        # append so each observation is one C-level call, no Python frame
        # (the list object survives clear(), so the binding stays valid;
        # see the observe_miss_wait method below for the semantics)
        self.observe_miss_wait = self._mw_samples.append
        #: totals of sections whose lifetime ended (see :meth:`retire`)
        self._retired = SectionStats()
        self.finished = False

    # -- lifecycle ----------------------------------------------------------

    def attach(self, memsys) -> None:
        """Hook the collector into a memory system and its clock.  Must be
        called before the run so the first window starts at the current
        virtual time's window."""
        if self.memsys is not None or self.finished:
            raise ObsError("telemetry collector is single-use; already attached")
        self.memsys = memsys
        clock = memsys.clock
        self._clock = clock
        memsys.set_telemetry(self)
        self._next_w = int(clock.now // self.window_ns)
        clock.set_tick_hook(self._on_tick, (self._next_w + 1) * self.window_ns)

    def finish(self) -> list[dict]:
        """Close the final partial window, detach, and return the series."""
        if self.memsys is None:
            return self.windows()
        clock = self._clock
        now = clock.now  # flushes; fires _on_tick for any pending boundary
        last_boundary = self._next_w * self.window_ns
        if now > last_boundary or not self._records:
            self._append(self._next_w, now, partial=True)
        clock.set_tick_hook(None)
        self.memsys.set_telemetry(None)
        self.memsys = None
        self._clock = None
        self.finished = True
        return self.windows()

    # -- hooks (called by the clock / cache layers) -------------------------

    def _on_tick(self, now: float) -> float:
        """Clock callback: record every boundary the fold crossed; returns
        the next boundary to arm."""
        w = self._next_w
        boundary = (w + 1) * self.window_ns
        first = True
        while boundary <= now:
            self._append(w, boundary, partial=False, empty_mw=not first)
            first = False
            w += 1
            boundary = (w + 1) * self.window_ns
        self._next_w = w
        return boundary

    def observe_miss_wait(self, wait_ns: float) -> None:
        """Push one miss/stall wait into the current window's histogram
        (called from the swap/section/AIFM miss paths).

        Shadowed by an instance attribute bound to ``list.append`` in
        ``__init__`` -- the class method documents the contract and keeps
        subclass overrides possible (re-assign the instance attribute)."""
        self._mw_samples.append(wait_ns)

    def retire(self, stats: SectionStats) -> None:
        """Fold a closing section's stats into the retained totals, so
        cumulative counters stay monotone after the section vanishes from
        ``collect_section_stats()`` (called by the cache manager)."""
        self._retired.merge(stats)

    # -- snapshotting -------------------------------------------------------

    def _append(
        self, w: int, t: float, partial: bool, empty_mw: bool = False
    ) -> None:
        rec = {"w": w, "t": t, "partial": partial}
        rec.update(self._counters())
        if empty_mw:
            rec.update(_MW_ZERO)
        else:
            rec.update(_mw_fields(self._mw_samples))
            self._mw_samples.clear()
        if len(self._records) == self.max_windows:
            self.dropped += 1
        self._records.append(rec)

    def _counters(self) -> dict:
        m = self.memsys
        retired = self._retired
        agg = {f: getattr(retired, f) for f in _STAT_FIELDS}
        collect = getattr(m, "collect_section_stats", None)
        if collect is not None:
            for fields in collect().values():
                for f in _STAT_FIELDS:
                    agg[f] += fields.get(f, 0)
        # int/float stability: these are floats even when everything is 0
        agg["miss_wait_ns"] = float(agg["miss_wait_ns"])
        agg["overhead_ns"] = float(agg["overhead_ns"])
        net = m.network.stats
        agg["net_bytes_read"] = net.bytes_read
        agg["net_bytes_written"] = net.bytes_written
        agg["net_messages"] = net.messages
        faults = m.network.faults
        if faults is not None:
            fs = faults.stats
            agg["retries"] = fs.retries
            agg["breaker_trips"] = fs.breaker_trips
            agg["giveups"] = fs.giveups
            agg["backoff_ns"] = fs.backoff_ns
        else:
            agg["retries"] = agg["breaker_trips"] = agg["giveups"] = 0
            agg["backoff_ns"] = 0.0
        agg["degrades"] = len(getattr(m, "degrade_log", ()))
        agg["path_switches"] = len(getattr(m, "switch_log", ()))
        return agg

    # -- results ------------------------------------------------------------

    def windows(self) -> list[dict]:
        """The recorded series, oldest first (ring-buffer survivors)."""
        return list(self._records)

    def __len__(self) -> int:
        return len(self._records)


def series_from_events(events: list[dict], window_ns: float) -> list[dict]:
    """Derive a windowed series from an already-recorded trace.

    Bins events by their emitted virtual time into the same record schema
    the live collector produces.  This is *event-time* binning: a miss
    whose wait straddles a boundary is emitted (and therefore counted)
    after the wait, whereas the live collector snapshots mid-miss state
    counters -- so a trace-derived series is deterministic and
    self-consistent but not byte-equal to a live series of the same run.
    """
    if window_ns <= 0:
        raise ObsError(f"telemetry window must be positive, got {window_ns}")
    agg = dict.fromkeys(_STAT_FIELDS, 0)
    agg["miss_wait_ns"] = agg["overhead_ns"] = 0.0
    agg.update(
        net_bytes_read=0, net_bytes_written=0, net_messages=0,
        retries=0, breaker_trips=0, giveups=0, backoff_ns=0.0,
        degrades=0, path_switches=0,
    )
    records: list[dict] = []
    mw: list[float] = []
    w = 0
    last_t = 0.0

    def flush_to(t: float) -> None:
        # close every window whose boundary precedes t (events at exactly
        # the boundary time belong to the closing window)
        nonlocal w
        boundary = (w + 1) * window_ns
        while boundary < t:
            rec = {"w": w, "t": boundary, "partial": False, **agg}
            rec.update(_mw_fields(mw))
            mw.clear()
            records.append(rec)
            w += 1
            boundary = (w + 1) * window_ns

    for ev in events:
        t = ev.get("t", last_t)
        if t > last_t:
            flush_to(t)
            last_t = t
        kind = ev["k"]
        if kind == "cache.hit":
            agg["accesses"] += 1
            agg["hits"] += 1
            if ev.get("nat"):
                agg["native_accesses"] += 1
            agg["overhead_ns"] += ev.get("ov", 0.0)
        elif kind in ("cache.miss", "swap.fault"):
            agg["accesses"] += 1
            agg["misses"] += 1
            wait = ev.get("wait", 0.0)
            agg["miss_wait_ns"] += wait
            mw.append(wait)
        elif kind == "cache.prefetch_hit":
            agg["accesses"] += 1
            agg["misses"] += 1
            agg["prefetch_hits"] += 1
            wait = ev.get("wait", 0.0)
            agg["miss_wait_ns"] += wait
            mw.append(wait)
        elif kind == "cache.prefetch":
            agg["prefetches_issued"] += 1
        elif kind == "cache.evict":
            agg["evictions"] += 1
            if ev.get("hinted"):
                agg["hinted_evictions"] += 1
        elif kind == "cache.writeback":
            agg["writebacks"] += 1
        elif kind == "net.recv":
            agg["net_bytes_read"] += ev.get("bytes", 0)
            agg["net_messages"] += 1
        elif kind == "net.send":
            agg["net_bytes_written"] += ev.get("bytes", 0)
            agg["net_messages"] += 1
        elif kind in ("net.batch", "net.rpc"):
            agg["net_bytes_read"] += ev.get("bytes", 0)
            agg["net_messages"] += 1
        elif kind == "retry.attempt":
            agg["retries"] += 1
            agg["backoff_ns"] += ev.get("backoff", 0.0)
        elif kind == "fault.breaker":
            agg["breaker_trips"] += 1
        elif kind == "fault.giveup":
            agg["giveups"] += 1
        elif kind == "degrade.section":
            agg["degrades"] += 1
        elif kind == "path.switch":
            agg["path_switches"] += 1
    # final partial window at the last event time
    rec = {"w": w, "t": last_t, "partial": True, **agg}
    rec.update(_mw_fields(mw))
    records.append(rec)
    return records
