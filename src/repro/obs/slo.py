"""SLO engine: declarative objectives evaluated over a telemetry series.

An :class:`SloSpec` declares per-window objectives -- miss-wait
percentile targets, a miss-rate budget, a stall-fraction budget -- plus
an *error budget*: the fraction of windows allowed to violate at least
one objective.  :func:`evaluate` walks a series (live
:class:`~repro.obs.timeseries.TelemetryCollector` output or
:func:`~repro.obs.timeseries.series_from_events`) and produces an
:class:`SloVerdict`:

* a window is **bad** iff it violates any declared objective;
* ``bad_fraction`` = bad windows / evaluated windows;
* ``burn_rate`` = ``bad_fraction / error_budget`` (SRE convention: a burn
  rate above 1.0 spends the budget faster than allowed, so the run
  **fails** its SLO; exactly 1.0 passes on the boundary).

Rate objectives (miss rate, stall fraction) are computed from per-window
*deltas* of the cumulative record counters, so a bad early phase cannot
hide inside a good average.  Percentile objectives use the per-window
``mw_p50/p95/p99`` fields, which the collector computes from the waits
observed inside that window only.

Verdicts serialize canonically (sorted keys, minimal separators) and
carry a SHA-256 digest with the same stability rules as trace digests,
so "same workload, same seed, same spec => same verdict bytes" is
testable across engines.  This is the per-tenant evaluation substrate
the multi-tenant far-memory pool (ROADMAP) will reuse.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field

from repro.errors import ObsError

#: objective keys, in evaluation (and rendering) order
OBJECTIVES = ("p50_ns", "p95_ns", "p99_ns", "miss_rate", "stall_fraction")


@dataclass(frozen=True)
class SloSpec:
    """Per-window objectives plus the error budget.  ``None`` disables an
    objective; a spec with every objective disabled is rejected."""

    name: str = "default"
    #: per-window miss-wait percentile ceilings (virtual ns)
    p50_ns: float | None = None
    p95_ns: float | None = None
    p99_ns: float | None = None
    #: ceiling on (delta misses / delta accesses); windows with no
    #: accesses trivially satisfy it
    miss_rate: float | None = None
    #: ceiling on (delta miss_wait_ns / window span)
    stall_fraction: float | None = None
    #: allowed fraction of violating windows
    error_budget: float = 0.1

    def __post_init__(self) -> None:
        if not 0.0 < self.error_budget <= 1.0:
            raise ObsError(
                f"error_budget must be in (0, 1], got {self.error_budget}"
            )
        if all(getattr(self, k) is None for k in OBJECTIVES):
            raise ObsError("SloSpec declares no objectives")
        for k in OBJECTIVES:
            v = getattr(self, k)
            if v is not None and v < 0:
                raise ObsError(f"objective {k} must be >= 0, got {v}")

    @classmethod
    def from_dict(cls, d: dict) -> "SloSpec":
        """Build a spec from JSON-ish input, rejecting unknown keys."""
        allowed = {"name", "error_budget", *OBJECTIVES}
        unknown = set(d) - allowed
        if unknown:
            raise ObsError(f"unknown SloSpec keys: {sorted(unknown)}")
        return cls(**d)


@dataclass
class SloVerdict:
    """The outcome of evaluating one spec over one series."""

    spec: SloSpec
    windows: int
    bad_windows: int
    bad_fraction: float
    burn_rate: float
    ok: bool
    #: one entry per (window, objective) violation, evaluation order
    violations: list[dict] = field(default_factory=list)

    def to_dict(self) -> dict:
        return {
            "spec": {
                "name": self.spec.name,
                "error_budget": self.spec.error_budget,
                **{
                    k: getattr(self.spec, k)
                    for k in OBJECTIVES
                    if getattr(self.spec, k) is not None
                },
            },
            "windows": self.windows,
            "bad_windows": self.bad_windows,
            "bad_fraction": self.bad_fraction,
            "burn_rate": self.burn_rate,
            "ok": self.ok,
            "violations": self.violations,
        }

    def to_json(self) -> str:
        """Canonical JSON (sorted keys, minimal separators)."""
        return json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))

    def digest(self) -> str:
        """SHA-256 over the canonical JSON (same stability rules as trace
        digests: floats via ``repr``, platform-independent)."""
        return hashlib.sha256(self.to_json().encode("utf-8")).hexdigest()


def evaluate(series: list[dict], spec: SloSpec) -> SloVerdict:
    """Evaluate a spec over a window series (oldest record first)."""
    bad = 0
    violations: list[dict] = []
    prev_t = None
    prev_acc = prev_miss = 0
    prev_wait = 0.0
    for rec in series:
        t = rec["t"]
        if prev_t is None:
            # first surviving record: a full window's span is exactly
            # t/(w+1); a lone partial record spans from 0; a partial
            # record after ring-buffer loss has an unknown span, so its
            # stall objective is skipped (span 0)
            if rec["w"] == 0:
                span = t
            elif not rec.get("partial"):
                span = t / (rec["w"] + 1)
            else:
                span = 0.0
        else:
            span = t - prev_t
        window_bad = False

        def check(objective: str, value: float, target: float) -> None:
            nonlocal window_bad
            if value > target:
                window_bad = True
                violations.append(
                    {
                        "w": rec["w"],
                        "t": t,
                        "objective": objective,
                        "value": value,
                        "target": target,
                    }
                )

        for pkey in ("p50_ns", "p95_ns", "p99_ns"):
            target = getattr(spec, pkey)
            if target is not None and rec["mw_count"]:
                check(pkey, rec[f"mw_{pkey[:3]}"], target)
        d_acc = rec["accesses"] - prev_acc
        d_miss = rec["misses"] - prev_miss
        d_wait = rec["miss_wait_ns"] - prev_wait
        if spec.miss_rate is not None and d_acc > 0:
            check("miss_rate", d_miss / d_acc, spec.miss_rate)
        if spec.stall_fraction is not None and span > 0:
            check("stall_fraction", d_wait / span, spec.stall_fraction)
        if window_bad:
            bad += 1
        prev_t = t
        prev_acc, prev_miss, prev_wait = (
            rec["accesses"], rec["misses"], rec["miss_wait_ns"],
        )
    n = len(series)
    bad_fraction = bad / n if n else 0.0
    burn_rate = bad_fraction / spec.error_budget
    return SloVerdict(
        spec=spec,
        windows=n,
        bad_windows=bad,
        bad_fraction=bad_fraction,
        burn_rate=burn_rate,
        ok=burn_rate <= 1.0,
        violations=violations,
    )


def render_verdict(verdict: SloVerdict) -> str:
    """Plain-text verdict block for the report CLI."""
    s = verdict.spec
    targets = ", ".join(
        f"{k}<={getattr(s, k)}" for k in OBJECTIVES if getattr(s, k) is not None
    )
    lines = [
        f"SLO {s.name!r}: {'PASS' if verdict.ok else 'FAIL'} "
        f"({verdict.bad_windows}/{verdict.windows} bad windows, "
        f"budget {s.error_budget:.1%}, burn rate {verdict.burn_rate:.2f})",
        f"  objectives: {targets}",
    ]
    for v in verdict.violations[:20]:
        lines.append(
            f"  violated w={v['w']} t={v['t']:.0f}: {v['objective']} "
            f"{v['value']:.4g} > {v['target']:.4g}"
        )
    if len(verdict.violations) > 20:
        lines.append(f"  ... and {len(verdict.violations) - 20} more")
    return "\n".join(lines)
