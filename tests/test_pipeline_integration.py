"""End-to-end pipeline integration tests: compile + run with every
optimization combination, checking correctness and expected interactions."""

import itertools

import pytest

from repro.baselines import NativeMemory
from repro.core import MiraPlan, compile_program, run_on_baseline, run_plan
from repro.core.pipeline import ALL_OPTIONS, footprint_bytes
from repro.core.section_planner import plan_sections
from repro.ir.verifier import verify
from repro.memsim.cost_model import CostModel
from repro.workloads import make_graph_workload

COST = CostModel()


@pytest.fixture(scope="module")
def setup():
    wl = make_graph_workload(num_edges=1500, num_nodes=400)
    local = wl.footprint_bytes() // 3
    src = wl.build_module()
    compiled = compile_program(src, MiraPlan.swap_only(), COST, instrument=True)
    swap = run_plan(compiled, COST, local, wl.data_init)
    plan = plan_sections(src, COST, local, swap.profiler, fraction=0.1)
    return wl, local, src, plan, swap


#: all subsets of the option set that include conversion (the others
#: require it); a representative, not exhaustive, sample
OPTION_SETS = [
    frozenset({"convert"}),
    frozenset({"convert", "prefetch"}),
    frozenset({"convert", "evict"}),
    frozenset({"convert", "prefetch", "evict"}),
    frozenset({"convert", "prefetch", "native"}),
    frozenset({"convert", "batching", "prefetch"}),
    frozenset({"convert", "readwrite"}),
    ALL_OPTIONS,
]


@pytest.mark.parametrize("options", OPTION_SETS, ids=lambda s: "+".join(sorted(s)))
def test_every_option_combination_is_correct(setup, options):
    wl, local, src, plan, _ = setup
    variant = plan.without_options(*(ALL_OPTIONS - options))
    compiled = compile_program(src, variant, COST)
    verify(compiled)
    result = run_plan(compiled, COST, local, wl.data_init)
    wl.verify_results(result.results)


def test_full_stack_never_slower_than_conversion_alone(setup):
    wl, local, src, plan, _ = setup
    bare = compile_program(
        src, plan.without_options(*(ALL_OPTIONS - {"convert"})), COST
    )
    full = compile_program(src, plan, COST)
    bare_ns = run_plan(bare, COST, local, wl.data_init).elapsed_ns
    full_ns = run_plan(full, COST, local, wl.data_init).elapsed_ns
    assert full_ns < bare_ns


def test_compiled_module_is_independent_of_source(setup):
    wl, local, src, plan, _ = setup
    before = sum(1 for _ in src.walk())
    compile_program(src, plan, COST)
    after = sum(1 for _ in src.walk())
    assert before == after  # compilation clones; the source is untouched


def test_plan_embedded_in_module_attrs(setup):
    wl, local, src, plan, _ = setup
    compiled = compile_program(src, plan, COST)
    assert compiled.attrs["plan"] is plan
    assert set(compiled.attrs["section_configs"]) == {
        sp.config.name for sp in plan.sections
    }


def test_footprint_bytes_counts_allocs(setup):
    wl, *_ = setup
    assert footprint_bytes(wl.build_module()) == wl.footprint_bytes()


def test_run_plan_opens_planned_sections(setup):
    wl, local, src, plan, _ = setup
    compiled = compile_program(src, plan, COST)
    result = run_plan(compiled, COST, local, wl.data_init)
    stats = result.memsys.collect_section_stats()
    for sp in plan.sections:
        assert any(name.startswith(sp.config.name) for name in stats)
    # planned sections actually served traffic
    assert sum(
        s["accesses"] for n, s in stats.items() if n != "swap"
    ) > 0


def test_same_plan_same_virtual_time(setup):
    """Determinism: identical compilation and data give identical time."""
    wl, local, src, plan, _ = setup
    a = run_plan(compile_program(src, plan, COST), COST, local, wl.data_init)
    b = run_plan(compile_program(src, plan, COST), COST, local, wl.data_init)
    assert a.elapsed_ns == b.elapsed_ns
    assert a.results == b.results
