"""Integration tests pinning the paper's central claims on small inputs
(the benchmarks assert them at full scale; these run in the unit suite)."""

import pytest

from repro.baselines import AIFM, FastSwap, Leap, NativeMemory
from repro.core import MiraController, run_on_baseline, run_plan
from repro.errors import AllocationError
from repro.memsim.cost_model import CostModel
from repro.workloads import make_graph_workload, make_gpt2_workload, make_mcf_workload

COST = CostModel()


@pytest.fixture(scope="module")
def graph_setup():
    wl = make_graph_workload(num_edges=2000, num_nodes=700)
    native = run_on_baseline(
        wl.build_module(), NativeMemory(COST, 4 * wl.footprint_bytes()), wl.data_init
    )
    return wl, native.elapsed_ns


def test_claim_mira_beats_swap_systems_at_small_memory(graph_setup):
    """Abstract: 'Mira outperforms prior swap-based and programming-
    model-based systems by up to 18 times.'"""
    wl, native_ns = graph_setup
    local = wl.footprint_bytes() // 5
    fast = run_on_baseline(wl.build_module(), FastSwap(COST, local), wl.data_init)
    leap = run_on_baseline(wl.build_module(), Leap(COST, local), wl.data_init)
    program = MiraController(
        wl.build_module, COST, local, data_init=wl.data_init, max_iterations=2
    ).optimize()
    assert fast.elapsed_ns / program.best_ns > 4
    assert leap.elapsed_ns / program.best_ns > 4


def test_claim_leap_interleaved_prefetch_fails(graph_setup):
    """Section 4.5: Leap 'cannot properly prefetch for an interleaved
    access pattern like this example'."""
    wl, _ = graph_setup
    local = wl.footprint_bytes() // 5
    leap = Leap(COST, local)
    run_on_baseline(wl.build_module(), leap, wl.data_init)
    stats = leap.swap.stats
    prefetch_useful = stats.prefetch_hits
    demand = stats.misses
    # history-based prefetching barely dents the demand-miss count
    assert prefetch_useful < 0.3 * demand


def test_claim_aifm_pays_dereference_overhead_at_full_memory(graph_setup):
    """Section 6.1: 'even at 100% local memory, AIFM is still a lot
    slower than other systems.'"""
    wl, native_ns = graph_setup
    local = wl.footprint_bytes()
    aifm = run_on_baseline(wl.build_module(), AIFM(COST, local), wl.data_init)
    fast = run_on_baseline(wl.build_module(), FastSwap(COST, local), wl.data_init)
    assert aifm.elapsed_ns > 2 * fast.elapsed_ns


def test_claim_mcf_aifm_metadata_collapse():
    """Section 6.1/Fig. 18: AIFM 'fails to execute when local memory is
    smaller than full size' on MCF."""
    wl = make_mcf_workload(num_nodes=2048, num_arcs=4096, chases=16)
    local = wl.footprint_bytes() // 3
    with pytest.raises(AllocationError):
        run_on_baseline(wl.build_module(), AIFM(COST, local), wl.data_init)


def test_claim_gpt2_layer_lifetime_keeps_perf_flat():
    """Section 6.1/Fig. 17: per-layer sections + prefetch keep inference
    nearly flat at a small fraction of the footprint."""
    wl = make_gpt2_workload(layers=12, passes=2, d_model=128, seq_len=64)
    native = run_on_baseline(
        wl.build_module(), NativeMemory(COST, 2 * wl.footprint_bytes()), wl.data_init
    )
    native_ns = native.profiler.regions["measured"]
    local = int(wl.footprint_bytes() * 0.25)
    fast = run_on_baseline(wl.build_module(), FastSwap(COST, local), wl.data_init)
    program = MiraController(
        wl.build_module, COST, local, data_init=wl.data_init, max_iterations=2
    ).optimize()
    final = run_plan(program.module, COST, local, wl.data_init)
    mira_ns = final.profiler.regions["measured"]
    fast_ns = fast.profiler.regions["measured"]
    assert native_ns / mira_ns > 0.6  # near-flat
    assert mira_ns < fast_ns  # and well ahead of demand paging


def test_claim_mira_rolls_back_when_swap_is_best(graph_setup):
    """Section 4.1: 'separating a cache section may worsen performance
    ... we roll back to the previous iteration's configuration.'"""
    wl, _ = graph_setup
    local = 2 * wl.footprint_bytes()  # plentiful memory: swap is fine
    program = MiraController(
        wl.build_module, COST, local, data_init=wl.data_init, max_iterations=2
    ).optimize()
    best = min(h.elapsed_ns for h in program.history if h.elapsed_ns != float("inf"))
    assert program.best_ns == pytest.approx(best)
