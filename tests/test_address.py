"""Address space / object info tests."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import MemoryError_
from repro.memsim.address import PAGE_SIZE, AddressSpace


def test_allocate_assigns_unique_ids():
    aspace = AddressSpace()
    a = aspace.allocate(100)
    b = aspace.allocate(200)
    assert a.obj_id != b.obj_id


def test_objects_page_aligned_and_disjoint():
    aspace = AddressSpace()
    a = aspace.allocate(5000)
    b = aspace.allocate(100)
    assert a.base_va % PAGE_SIZE == 0
    assert b.base_va % PAGE_SIZE == 0
    # guard page: no page contains bytes of two objects
    assert b.base_va // PAGE_SIZE > (a.end_va - 1) // PAGE_SIZE


def test_va_of_bounds():
    aspace = AddressSpace()
    obj = aspace.allocate(64)
    assert obj.va_of(0) == obj.base_va
    assert obj.va_of(63) == obj.base_va + 63
    with pytest.raises(MemoryError_):
        obj.va_of(64)
    with pytest.raises(MemoryError_):
        obj.va_of(-1)


def test_invalid_sizes_rejected():
    aspace = AddressSpace()
    with pytest.raises(MemoryError_):
        aspace.allocate(0)
    with pytest.raises(MemoryError_):
        aspace.allocate(10, elem_size=0)


def test_free_and_double_free():
    aspace = AddressSpace()
    obj = aspace.allocate(100)
    aspace.free(obj.obj_id)
    assert obj.freed
    with pytest.raises(MemoryError_):
        aspace.free(obj.obj_id)


def test_unknown_object():
    with pytest.raises(MemoryError_):
        AddressSpace().get(42)


def test_live_bytes_tracking():
    aspace = AddressSpace()
    a = aspace.allocate(100)
    aspace.allocate(200)
    assert aspace.total_live_bytes() == 300
    aspace.free(a.obj_id)
    assert aspace.total_live_bytes() == 200


def test_find_by_name():
    aspace = AddressSpace()
    aspace.allocate(100, name="edges")
    assert aspace.find_by_name("edges").size == 100
    with pytest.raises(MemoryError_):
        aspace.find_by_name("nope")


def test_num_elems():
    aspace = AddressSpace()
    obj = aspace.allocate(96, elem_size=24)
    assert obj.num_elems == 4


@given(st.lists(st.integers(min_value=1, max_value=1 << 20), max_size=30))
def test_allocations_never_overlap(sizes):
    aspace = AddressSpace()
    objs = [aspace.allocate(s) for s in sizes]
    spans = sorted((o.base_va, o.end_va) for o in objs)
    for (_, end1), (start2, _) in zip(spans, spans[1:]):
        assert end1 <= start2


# -- VA -> object resolution edge cases (the raw-trace frontend's path) ------


def test_object_at_finds_interior_and_boundary_bytes():
    aspace = AddressSpace()
    a = aspace.allocate(100)
    b = aspace.allocate(PAGE_SIZE + 1)
    assert aspace.object_at(a.base_va) is a
    assert aspace.object_at(a.base_va + 99) is a
    assert aspace.object_at(b.end_va - 1) is b


def test_object_at_unmapped_is_typed_error():
    aspace = AddressSpace()
    obj = aspace.allocate(100)
    for va in (0, obj.base_va - 1, obj.end_va, obj.end_va + PAGE_SIZE * 99):
        with pytest.raises(MemoryError_):
            aspace.object_at(va)


def test_object_at_guard_page_between_objects():
    aspace = AddressSpace()
    a = aspace.allocate(PAGE_SIZE)
    b = aspace.allocate(PAGE_SIZE)
    # every byte strictly between the two allocations is unmapped
    with pytest.raises(MemoryError_):
        aspace.object_at(a.end_va)
    with pytest.raises(MemoryError_):
        aspace.object_at(b.base_va - 1)


def test_object_at_freed_object_is_typed_error():
    aspace = AddressSpace()
    obj = aspace.allocate(100)
    aspace.free(obj.obj_id)
    with pytest.raises(MemoryError_, match="freed"):
        aspace.object_at(obj.base_va)


def test_object_at_empty_space_never_raises_keyerror():
    try:
        AddressSpace().object_at(0x1234)
    except MemoryError_:
        pass  # the contract: typed error, not KeyError/IndexError


def test_resolve_in_bounds():
    aspace = AddressSpace()
    obj = aspace.allocate(64)
    assert aspace.resolve(obj.base_va, 8) == (obj, 0)
    assert aspace.resolve(obj.base_va + 56, 8) == (obj, 56)


def test_resolve_straddling_end_of_object():
    aspace = AddressSpace()
    obj = aspace.allocate(64)
    with pytest.raises(MemoryError_, match="straddles"):
        aspace.resolve(obj.base_va + 60, 8)
    with pytest.raises(MemoryError_, match="straddles"):
        aspace.resolve(obj.base_va, 65)


def test_resolve_page_boundary_straddle():
    aspace = AddressSpace()
    obj = aspace.allocate(2 * PAGE_SIZE)
    # crossing an interior page boundary inside one object is fine...
    _, off = aspace.resolve(obj.base_va + PAGE_SIZE - 4, 8)
    assert off == PAGE_SIZE - 4
    # ...but running past the final page of the object is not, even
    # though the guard page's addresses "exist"
    with pytest.raises(MemoryError_, match="straddles"):
        aspace.resolve(obj.end_va - 4, 8)


def test_resolve_zero_and_negative_length():
    aspace = AddressSpace()
    obj = aspace.allocate(64)
    with pytest.raises(MemoryError_, match="positive"):
        aspace.resolve(obj.base_va, 0)
    with pytest.raises(MemoryError_, match="positive"):
        aspace.resolve(obj.base_va, -8)


@given(st.integers(min_value=0, max_value=1 << 40))
def test_resolve_never_raises_untyped(va):
    aspace = AddressSpace()
    aspace.allocate(100)
    aspace.allocate(PAGE_SIZE * 3)
    try:
        obj, off = aspace.resolve(va, 8)
    except MemoryError_:
        return  # typed rejection is the only acceptable failure mode
    assert 0 <= off and off + 8 <= obj.size
