"""Address space / object info tests."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import MemoryError_
from repro.memsim.address import PAGE_SIZE, AddressSpace


def test_allocate_assigns_unique_ids():
    aspace = AddressSpace()
    a = aspace.allocate(100)
    b = aspace.allocate(200)
    assert a.obj_id != b.obj_id


def test_objects_page_aligned_and_disjoint():
    aspace = AddressSpace()
    a = aspace.allocate(5000)
    b = aspace.allocate(100)
    assert a.base_va % PAGE_SIZE == 0
    assert b.base_va % PAGE_SIZE == 0
    # guard page: no page contains bytes of two objects
    assert b.base_va // PAGE_SIZE > (a.end_va - 1) // PAGE_SIZE


def test_va_of_bounds():
    aspace = AddressSpace()
    obj = aspace.allocate(64)
    assert obj.va_of(0) == obj.base_va
    assert obj.va_of(63) == obj.base_va + 63
    with pytest.raises(MemoryError_):
        obj.va_of(64)
    with pytest.raises(MemoryError_):
        obj.va_of(-1)


def test_invalid_sizes_rejected():
    aspace = AddressSpace()
    with pytest.raises(MemoryError_):
        aspace.allocate(0)
    with pytest.raises(MemoryError_):
        aspace.allocate(10, elem_size=0)


def test_free_and_double_free():
    aspace = AddressSpace()
    obj = aspace.allocate(100)
    aspace.free(obj.obj_id)
    assert obj.freed
    with pytest.raises(MemoryError_):
        aspace.free(obj.obj_id)


def test_unknown_object():
    with pytest.raises(MemoryError_):
        AddressSpace().get(42)


def test_live_bytes_tracking():
    aspace = AddressSpace()
    a = aspace.allocate(100)
    aspace.allocate(200)
    assert aspace.total_live_bytes() == 300
    aspace.free(a.obj_id)
    assert aspace.total_live_bytes() == 200


def test_find_by_name():
    aspace = AddressSpace()
    aspace.allocate(100, name="edges")
    assert aspace.find_by_name("edges").size == 100
    with pytest.raises(MemoryError_):
        aspace.find_by_name("nope")


def test_num_elems():
    aspace = AddressSpace()
    obj = aspace.allocate(96, elem_size=24)
    assert obj.num_elems == 4


@given(st.lists(st.integers(min_value=1, max_value=1 << 20), max_size=30))
def test_allocations_never_overlap(sizes):
    aspace = AddressSpace()
    objs = [aspace.allocate(s) for s in sizes]
    spans = sorted((o.base_va, o.end_va) for o in objs)
    for (_, end1), (start2, _) in zip(spans, spans[1:]):
        assert end1 <= start2
