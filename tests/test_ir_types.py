"""IR type-system tests."""

import pytest

from repro.errors import IRError
from repro.ir.types import (
    BoolType,
    F64,
    FloatType,
    FuncType,
    I64,
    INDEX,
    IntType,
    MemRefType,
    StructType,
)


def test_scalar_sizes():
    assert INDEX.byte_size == 8
    assert I64.byte_size == 8
    assert IntType(16).byte_size == 2
    assert F64.byte_size == 8
    assert FloatType(32).byte_size == 4
    assert BoolType.byte_size == 1


def test_invalid_widths():
    with pytest.raises(IRError):
        IntType(7)
    with pytest.raises(IRError):
        FloatType(16)


def test_struct_layout():
    s = StructType("edge", (("src", I64), ("dst", I64), ("w", F64)))
    assert s.byte_size == 24
    assert s.field_offset("src") == 0
    assert s.field_offset("dst") == 8
    assert s.field_offset("w") == 16
    assert s.field_type("w") == F64
    assert s.field_names() == ["src", "dst", "w"]


def test_struct_unknown_field():
    s = StructType("p", (("x", F64),))
    with pytest.raises(IRError):
        s.field_type("y")
    with pytest.raises(IRError):
        s.field_offset("y")


def test_struct_duplicate_field_rejected():
    with pytest.raises(IRError):
        StructType("p", (("x", F64), ("x", I64)))


def test_memref_remote_variant():
    t = MemRefType(F64)
    assert not t.remote
    r = t.as_remote()
    assert r.remote
    assert r.elem == F64
    assert str(t) == "memref<f64>"
    assert str(r) == "rmemref<f64>"
    assert t != r


def test_types_compare_structurally():
    assert MemRefType(F64) == MemRefType(F64)
    assert StructType("a", (("x", I64),)) == StructType("a", (("x", I64),))
    assert FuncType((I64,), (F64,)) == FuncType((I64,), (F64,))
