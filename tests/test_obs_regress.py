"""Tests for :mod:`repro.obs.regress`: baseline flattening, the
hard-virtual / advisory-wall comparison split, exit codes, and one live
deterministic cell re-measured against the committed baseline."""

import json
import os
import pathlib

import pytest

from repro.obs import regress
from repro.obs.regress import (
    Check,
    compare,
    flatten_chaos,
    flatten_engine,
    flatten_hybrid,
    flatten_prefetch,
    flatten_trace,
    gate,
    load_baselines,
    measure_current,
)

REPO = pathlib.Path(__file__).resolve().parent.parent
ENGINE = REPO / "BENCH_engine.json"
CHAOS = REPO / "BENCH_chaos.json"
PREFETCH = REPO / "BENCH_prefetch.json"
TRACE = REPO / "BENCH_trace.json"
HYBRID = REPO / "BENCH_hybrid.json"


# -- flattening ----------------------------------------------------------------


def test_flatten_committed_baselines():
    metrics = load_baselines(ENGINE, CHAOS)
    # throughput for all three engines
    assert "engine.reference.ops_per_sec" in metrics
    assert "engine.compiled.ops_per_sec" in metrics
    assert "engine.codegen.ops_per_sec" in metrics
    # the Fig. 5 single-point virtual times
    assert metrics["engine.virtual_ns.native"] > 0
    assert metrics["engine.virtual_ns.fastswap@0.2"] > 0
    assert metrics["engine.virtual_ns.mira@0.2"] > 0
    # chaos cells flattened with the full coordinate in the key
    chaos_keys = [k for k in metrics if k.startswith("chaos.")]
    assert chaos_keys
    assert all(
        k.endswith(".healthy_ns") or k.endswith(".faulty_ns")
        for k in chaos_keys
    )


def test_flatten_skips_incomplete_cells():
    doc = {
        "cells": [
            {"workload": "w", "system": "s", "seed": 1, "intensity": "light",
             "completed": False, "healthy_ns": 1.0, "faulty_ns": 2.0},
            {"workload": "w", "system": "s", "seed": 2, "intensity": "light",
             "completed": True, "healthy_ns": 3.0, "faulty_ns": 4.0},
        ]
    }
    flat = flatten_chaos(doc)
    assert flat == {
        "chaos.w.s.s2.light.healthy_ns": 3.0,
        "chaos.w.s.s2.light.faulty_ns": 4.0,
    }


def test_flatten_engine_tolerates_missing_sections():
    assert flatten_engine({}) == {}
    assert flatten_engine({"single_point": {}}) == {}


def test_flatten_prefetch_cells():
    doc = {
        "cells": [
            {"workload": "w", "policy": "p", "stall_ns": 5.0,
             "elapsed_ns": 9.0, "buckets": {}},
        ]
    }
    assert flatten_prefetch(doc) == {
        "prefetch.w.p.stall_ns": 5.0,
        "prefetch.w.p.elapsed_ns": 9.0,
    }
    assert flatten_prefetch({}) == {}


def test_flatten_committed_prefetch_baseline():
    metrics = load_baselines(ENGINE, CHAOS, PREFETCH)
    cells = [k for k in metrics if k.startswith("prefetch.")]
    assert cells
    # every policy appears for the headline oblivious workload
    for policy in ("none", "leap", "markov", "programmed", "learned"):
        assert f"prefetch.dataframe.{policy}.stall_ns" in metrics
    # the acceptance comparison is visible straight from the baseline
    assert (
        metrics["prefetch.dataframe.programmed.stall_ns"]
        < 0.75 * metrics["prefetch.dataframe.leap.stall_ns"]
    )


def test_flatten_trace_cells():
    doc = {
        "cells": [
            {"scenario": "s", "system": "y", "elapsed_ns": 7.0,
             "miss_rate": 0.5},
        ]
    }
    assert flatten_trace(doc) == {"trace.s.y.elapsed_ns": 7.0}
    assert flatten_trace({}) == {}


def test_flatten_hybrid_cells():
    doc = {
        "ir_cells": [
            {"workload": "w", "system": "hybrid", "elapsed_ns": 3.0},
        ],
        "trace_cells": [
            {"scenario": "s", "system": "hybrid", "elapsed_ns": 7.0},
        ],
    }
    assert flatten_hybrid(doc) == {
        "hybrid.ir.w.hybrid.elapsed_ns": 3.0,
        "hybrid.trace.s.hybrid.elapsed_ns": 7.0,
    }
    assert flatten_hybrid({}) == {}


def test_flatten_committed_hybrid_baseline():
    metrics = load_baselines(ENGINE, CHAOS, hybrid_path=HYBRID)
    ir = [k for k in metrics if k.startswith("hybrid.ir.")]
    tr = [k for k in metrics if k.startswith("hybrid.trace.")]
    # 5 workloads x 4 systems; 8 scenarios x 4 systems
    assert len(ir) >= 20 and len(tr) >= 32
    for system in ("fastswap", "mira", "hybrid"):
        assert f"hybrid.ir.graph_traversal.{system}.elapsed_ns" in metrics
    # the acceptance criterion is visible straight from the baseline:
    # hybrid matches or beats the better of fastswap/aifm per workload
    doc = json.loads(HYBRID.read_text())
    for workload, acc in doc["acceptance"].items():
        assert acc["hybrid_wins"], workload
    # and at least one trace scenario demonstrates a mid-run switch
    assert doc["midrun_switches"]


def test_flatten_committed_trace_baseline():
    metrics = load_baselines(ENGINE, CHAOS, trace_path=TRACE)
    cells = [k for k in metrics if k.startswith("trace.")]
    # the full matrix: >= 8 scenarios x >= 3 systems, every cell gated
    assert len(cells) >= 24
    for system in ("fastswap", "leap", "aifm", "mira-set"):
        assert f"trace.zipf_hot.{system}.elapsed_ns" in metrics


# -- comparison semantics ------------------------------------------------------


def test_virtual_time_regression_fails():
    checks = compare({"x.healthy_ns": 100.0}, {"x.healthy_ns": 102.0})
    assert not gate(checks)
    assert "regressed" in checks[0].note


def test_virtual_time_within_tolerance_passes():
    checks = compare({"x.healthy_ns": 100.0}, {"x.healthy_ns": 100.5})
    assert gate(checks)
    assert checks[0].note == ""


def test_virtual_time_improvement_passes_with_note():
    checks = compare({"x.healthy_ns": 100.0}, {"x.healthy_ns": 50.0})
    assert gate(checks)
    assert "regenerate" in checks[0].note


def test_wall_clock_is_advisory_by_default():
    # a 90% throughput collapse still passes without --strict-wall
    checks = compare({"e.ops_per_sec": 1000.0}, {"e.ops_per_sec": 100.0})
    assert gate(checks)
    assert "fell" in checks[0].note


def test_wall_clock_strict_gate():
    base = {"e.ops_per_sec": 1000.0}
    assert not gate(compare(base, {"e.ops_per_sec": 100.0}, strict_wall=True))
    # above the collapse ratio: noisy-but-fine
    assert gate(compare(base, {"e.ops_per_sec": 500.0}, strict_wall=True))


def test_compare_only_overlapping_metrics():
    checks = compare({"a_ns": 1.0}, {"b_ns": 2.0})
    assert checks == []


def test_check_row_roundtrip():
    c = Check("m", 1.0, 2.0, 1.0, 0.01, True, False, "bad")
    assert c.row()["metric"] == "m" and c.row()["ok"] is False


# -- CLI / exit codes ----------------------------------------------------------


def _flat_current(tmp_path, scale=1.0):
    metrics = load_baselines(ENGINE, CHAOS)
    if scale != 1.0:
        metrics = {
            k: v * scale if k.endswith("_ns") else v
            for k, v in metrics.items()
        }
    p = tmp_path / "current.json"
    p.write_text(json.dumps({"metrics": metrics}))
    return p


def test_gate_passes_on_baseline_identical_current(tmp_path, capsys):
    cur = _flat_current(tmp_path)
    rc = regress.main(
        ["--engine", str(ENGINE), "--chaos", str(CHAOS), "--current", str(cur)]
    )
    out = capsys.readouterr().out
    assert rc == 0
    assert "regress: OK" in out


def test_gate_fails_on_slowed_virtual_time(tmp_path, capsys):
    cur = _flat_current(tmp_path, scale=1.5)
    rc = regress.main(
        ["--engine", str(ENGINE), "--chaos", str(CHAOS), "--current", str(cur)]
    )
    out = capsys.readouterr().out
    assert rc == 1
    assert "regress: FAIL" in out
    assert "FAIL" in out


def test_gate_exit_2_on_unreadable_baseline(tmp_path, capsys):
    rc = regress.main(
        ["--engine", str(tmp_path / "nope.json"), "--chaos", str(CHAOS)]
    )
    assert rc == 2
    assert "cannot load baselines" in capsys.readouterr().out


def test_gate_exit_2_on_unreadable_current(tmp_path, capsys):
    bad = tmp_path / "bad.json"
    bad.write_text("{not json")
    rc = regress.main(
        ["--engine", str(ENGINE), "--chaos", str(CHAOS), "--current", str(bad)]
    )
    assert rc == 2
    assert "cannot load --current" in capsys.readouterr().out


def test_gate_json_report_and_save_current(tmp_path):
    cur = _flat_current(tmp_path)
    out = tmp_path / "report.json"
    saved = tmp_path / "saved.json"
    rc = regress.main(
        ["--engine", str(ENGINE), "--chaos", str(CHAOS),
         "--current", str(cur), "--json", str(out), "--save-current",
         str(saved)]
    )
    assert rc == 0
    doc = json.loads(out.read_text())
    assert doc["ok"] is True
    assert doc["checks"]
    # --save-current with --current just echoes nothing measured; the
    # flag matters on live runs, but the file must not be written here
    assert not saved.exists() or "metrics" in json.loads(saved.read_text())


def test_report_check_delegates_to_regress(tmp_path, capsys):
    from repro.obs import report

    cur = _flat_current(tmp_path)
    rc = report.main(
        ["--check", "--baseline-dir", str(REPO), "--current", str(cur)]
    )
    out = capsys.readouterr().out
    assert rc == 0
    assert "perf-regression gate" in out


# -- engine selection hygiene --------------------------------------------------


class _FakeResult:
    breakdown = {"compute": 100.0, "dram": 200.0}


def test_measure_throughput_covers_all_engines_and_restores_env(monkeypatch):
    """``_measure_throughput`` sweeps reference/compiled/codegen via
    ``REPRO_ENGINE`` and must put the caller's value back afterwards."""
    import repro.core

    seen = []

    def fake_run(module, system, data_init=None, entry="main", **kw):
        seen.append(os.environ.get("REPRO_ENGINE"))
        return _FakeResult()

    monkeypatch.setattr(repro.core, "run_on_baseline", fake_run)
    monkeypatch.setenv("REPRO_ENGINE", "reference")
    out = regress._measure_throughput()
    # best-of-2 per engine, engines swept in order
    assert seen == ["reference"] * 2 + ["compiled"] * 2 + ["codegen"] * 2
    assert set(out) == {f"engine.{e}.ops_per_sec" for e in seen}
    assert os.environ["REPRO_ENGINE"] == "reference"


def test_measure_throughput_restores_env_on_error(monkeypatch):
    """The env override is undone in a ``finally``: even when a run blows
    up mid-sweep, the ambient engine selection must not leak."""
    import repro.core

    def boom(*args, **kw):
        raise RuntimeError("boom")

    monkeypatch.setattr(repro.core, "run_on_baseline", boom)
    monkeypatch.delenv("REPRO_ENGINE", raising=False)
    with pytest.raises(RuntimeError):
        regress._measure_throughput()
    assert "REPRO_ENGINE" not in os.environ


def test_pinned_env_restores_values_on_error(monkeypatch):
    """``_pinned_env`` pins knobs off for the body and restores the exact
    prior environment even when the body raises."""
    monkeypatch.setenv("REPRO_ENGINE", "codegen")
    monkeypatch.delenv("REPRO_PREFETCH", raising=False)
    with pytest.raises(RuntimeError):
        with regress._pinned_env("REPRO_ENGINE", "REPRO_PREFETCH"):
            assert "REPRO_ENGINE" not in os.environ
            assert "REPRO_PREFETCH" not in os.environ
            raise RuntimeError("boom")
    assert os.environ["REPRO_ENGINE"] == "codegen"
    assert "REPRO_PREFETCH" not in os.environ


def test_measure_current_restores_env_on_error(monkeypatch):
    """A measurement that blows up mid-``measure_current`` must leave
    ``os.environ`` exactly as the caller had it (the whole body runs
    under ``_pinned_env``)."""
    import repro.faults.chaos

    def boom(*args, **kw):
        raise RuntimeError("boom")

    monkeypatch.setattr(repro.faults.chaos, "run_chaos_point", boom)
    monkeypatch.setenv("REPRO_PREFETCH", "markov")
    monkeypatch.setenv("REPRO_ENGINE", "reference")
    before = dict(os.environ)
    with pytest.raises(RuntimeError):
        measure_current(workloads=("array_sum",), systems=("fastswap",))
    assert dict(os.environ) == before


def test_measure_current_pins_ambient_knobs(monkeypatch):
    """An ambient ``$REPRO_PREFETCH``/``$REPRO_ENGINE`` must not leak
    into the measured cells: baselines were measured with them unset."""
    import repro.faults.chaos

    seen = {}

    class _Point:
        workload, system, seed, intensity = "w", "s", 1, "light"
        healthy_ns = faulty_ns = 1.0

    def spy(*args, **kw):
        seen["engine"] = os.environ.get("REPRO_ENGINE")
        seen["prefetch"] = os.environ.get("REPRO_PREFETCH")
        return _Point()

    monkeypatch.setattr(repro.faults.chaos, "run_chaos_point", spy)
    monkeypatch.setenv("REPRO_PREFETCH", "markov")
    monkeypatch.setenv("REPRO_ENGINE", "codegen")
    measure_current(
        workloads=("array_sum",), systems=("fastswap",),
        throughput=False, single_points=False, prefetch=False,
        trace=False, hybrid=False,
    )
    assert seen == {"engine": None, "prefetch": None}
    assert os.environ["REPRO_PREFETCH"] == "markov"
    assert os.environ["REPRO_ENGINE"] == "codegen"


# -- one live deterministic cell ----------------------------------------------


def test_measured_chaos_cell_matches_committed_baseline():
    """The simulator is deterministic: re-measuring a baseline chaos cell
    (plus a prefetch-sweep column and a trace-replay cell) reproduces the
    committed virtual times exactly."""
    baseline = flatten_chaos(json.loads(CHAOS.read_text()))
    baseline.update(flatten_prefetch(json.loads(PREFETCH.read_text())))
    baseline.update(flatten_trace(json.loads(TRACE.read_text())))
    baseline.update(flatten_hybrid(json.loads(HYBRID.read_text())))
    current = measure_current(
        workloads=("array_sum",),
        systems=("fastswap",),
        seeds=(1,),
        intensities=("medium",),
        throughput=False,
        single_points=False,
        prefetch_workloads=("array_sum",),
        trace_scenarios=("zipf_hot",),
        trace_systems=("fastswap", "mira-set"),
        hybrid_scenarios=("zipf_hot",),
    )
    assert any(k.startswith("prefetch.") for k in current)
    assert any(k.startswith("trace.") for k in current)
    assert any(k.startswith("hybrid.") for k in current)
    for key, value in current.items():
        assert key in baseline, key
        assert value == pytest.approx(baseline[key], rel=1e-12)
