"""Property-style oracle tests for the three cache geometries.

Each placement policy (direct-mapped / set-associative / fully-associative)
is replayed against a naive dict reference model under random access
streams of accesses and eviction hints.  The oracle re-implements only the
*placement semantics* -- slot hashing, LRU order, evictable-first victim
choice -- with none of the timed data path, and the hit/miss/eviction/
writeback counters must match exactly.
"""

from __future__ import annotations

import random

import pytest

from repro.cache.config import SectionConfig, Structure
from repro.cache.section import make_section
from repro.memsim.clock import VirtualClock
from repro.memsim.cost_model import CostModel
from repro.memsim.network import Network

#: the hash-mixing constant the sections use to spread objects across slots
MIX = 0x9E3779B1

NUM_LINES = 16
LINE = 64
WAYS = 4


class _OracleBase:
    """Shared counter bookkeeping; subclasses provide placement."""

    def __init__(self) -> None:
        self.accesses = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.hinted_evictions = 0
        self.writebacks = 0

    def counters(self) -> dict:
        return {
            "accesses": self.accesses,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "hinted_evictions": self.hinted_evictions,
            "writebacks": self.writebacks,
        }

    def _evict(self, entry: dict) -> None:
        self.evictions += 1
        if entry["evictable"]:
            self.hinted_evictions += 1
        if entry["dirty"]:
            self.writebacks += 1


class DirectOracle(_OracleBase):
    """One slot per key: ``(line + obj * MIX) % num_lines``."""

    def __init__(self, num_lines: int) -> None:
        super().__init__()
        self.num_lines = num_lines
        self.slots: dict[int, dict] = {}

    def _slot(self, key) -> int:
        return (key[1] + key[0] * MIX) % self.num_lines

    def access(self, key, is_write: bool) -> None:
        self.accesses += 1
        slot = self._slot(key)
        entry = self.slots.get(slot)
        if entry is not None and entry["key"] == key:
            entry["evictable"] = False
            if is_write:
                entry["dirty"] = True
            self.hits += 1
            return
        self.misses += 1
        if entry is not None:
            self._evict(entry)
        self.slots[slot] = {"key": key, "dirty": is_write, "evictable": False}

    def hint(self, key) -> None:
        entry = self.slots.get(self._slot(key))
        if entry is not None and entry["key"] == key:
            entry["evictable"] = True


class SetAssocOracle(_OracleBase):
    """K-way sets in LRU order; victims are evictable-first, then LRU."""

    def __init__(self, num_lines: int, ways: int) -> None:
        super().__init__()
        self.num_sets = max(1, num_lines // ways)
        self.ways = ways
        # dict preserves insertion order == LRU order (oldest first)
        self.sets: dict[int, dict[tuple, dict]] = {}

    def _set(self, key) -> dict:
        idx = (key[1] + key[0] * MIX) % self.num_sets
        return self.sets.setdefault(idx, {})

    def access(self, key, is_write: bool) -> None:
        self.accesses += 1
        bucket = self._set(key)
        entry = bucket.get(key)
        if entry is not None:
            # move to MRU position
            del bucket[key]
            bucket[key] = entry
            entry["evictable"] = False
            if is_write:
                entry["dirty"] = True
            self.hits += 1
            return
        self.misses += 1
        if len(bucket) >= self.ways:
            victim_key = next(
                (k for k, e in bucket.items() if e["evictable"]),
                next(iter(bucket)),
            )
            self._evict(bucket.pop(victim_key))
        bucket[key] = {"dirty": is_write, "evictable": False}

    def hint(self, key) -> None:
        entry = self._set(key).get(key)
        if entry is not None:
            entry["evictable"] = True


class FullyAssocOracle(_OracleBase):
    """Global LRU dict plus an insertion-ordered evictable dict."""

    def __init__(self, num_lines: int) -> None:
        super().__init__()
        self.num_lines = num_lines
        self.lines: dict[tuple, dict] = {}
        self.evictable: dict[tuple, None] = {}

    def access(self, key, is_write: bool) -> None:
        self.accesses += 1
        entry = self.lines.get(key)
        if entry is not None:
            del self.lines[key]
            self.lines[key] = entry
            self.evictable.pop(key, None)
            entry["evictable"] = False
            if is_write:
                entry["dirty"] = True
            self.hits += 1
            return
        self.misses += 1
        if len(self.lines) >= self.num_lines:
            if self.evictable:
                victim_key = next(iter(self.evictable))
                del self.evictable[victim_key]
            else:
                victim_key = next(iter(self.lines))
                self.evictable.pop(victim_key, None)
            self._evict(self.lines.pop(victim_key))
        self.lines[key] = {"dirty": is_write, "evictable": False}

    def hint(self, key) -> None:
        entry = self.lines.get(key)
        if entry is not None:
            entry["evictable"] = True
            # assigning an existing dict key keeps its position, matching
            # the section's OrderedDict semantics
            self.evictable[key] = None


def _make_real(structure: Structure):
    cost = CostModel()
    clock = VirtualClock()
    config = SectionConfig(
        name="oracle",
        size_bytes=NUM_LINES * LINE,
        line_size=LINE,
        structure=structure,
        ways=WAYS,
    )
    return make_section(config, cost, clock, Network(cost, clock))


def _make_oracle(structure: Structure) -> _OracleBase:
    if structure is Structure.DIRECT:
        return DirectOracle(NUM_LINES)
    if structure is Structure.SET_ASSOCIATIVE:
        return SetAssocOracle(NUM_LINES, WAYS)
    return FullyAssocOracle(NUM_LINES)


def _random_stream(seed: int, length: int = 3000):
    """(op, key, is_write) tuples over a key space ~4x the capacity."""
    rng = random.Random(seed)
    objs = (1, 2, 3)
    for _ in range(length):
        key = (rng.choice(objs), rng.randrange(NUM_LINES * 4))
        r = rng.random()
        if r < 0.70:
            yield "access", key, False
        elif r < 0.85:
            yield "access", key, True
        else:
            yield "hint", key, False


@pytest.mark.parametrize("structure", list(Structure))
@pytest.mark.parametrize("seed", range(5))
def test_section_matches_oracle(structure, seed):
    real = _make_real(structure)
    oracle = _make_oracle(structure)
    for op, key, is_write in _random_stream(seed):
        if op == "access":
            real._access_line(key, is_write, native=False)
            oracle.access(key, is_write)
        else:
            real.evict_hint_line(key)
            oracle.hint(key)
    got = {k: getattr(real.stats, k) for k in oracle.counters()}
    assert got == oracle.counters(), f"{structure.value} diverges from oracle"


@pytest.mark.parametrize("structure", list(Structure))
def test_oracle_stream_exercises_evictions(structure):
    """Meta-check: the random streams actually produce hits, misses, and
    evictions for every geometry (a vacuous oracle test would be silent)."""
    real = _make_real(structure)
    for op, key, is_write in _random_stream(0):
        if op == "access":
            real._access_line(key, is_write, native=False)
        else:
            real.evict_hint_line(key)
    assert real.stats.hits > 0
    assert real.stats.misses > 0
    assert real.stats.evictions > 0
    assert real.stats.hinted_evictions > 0
