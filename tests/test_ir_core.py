"""IR core structure, builder, verifier, printer, and cloning tests."""

import pytest

from repro.errors import IRError, VerificationError
from repro.ir import IRBuilder, print_module, verify
from repro.ir.cloning import clone_module
from repro.ir.core import Block, Module
from repro.ir.dialects import arith, func as func_d, memref, rmem, scf
from repro.ir.types import F64, I64, INDEX, MemRefType, StructType


def test_builder_simple_function():
    b = IRBuilder()
    with b.func("f", [INDEX], [INDEX], ["x"]) as fn:
        y = b.add(fn.args[0], 1)
        b.ret([y])
    verify(b.module)
    assert b.module.get("f").type.inputs == (INDEX,)


def test_builder_auto_return():
    b = IRBuilder()
    with b.func("f"):
        b.index(1)
    term = b.module.get("f").body.terminator
    assert isinstance(term, func_d.ReturnOp)


def test_duplicate_function_rejected():
    b = IRBuilder()
    with b.func("f"):
        pass
    with pytest.raises(IRError):
        b.module.add(b.module.get("f").__class__("f"))


def test_operand_must_be_value():
    b = IRBuilder()
    with b.func("f"):
        with pytest.raises(IRError):
            arith.BinaryOp("add", 3, 4)  # raw Python ints


def test_type_mismatch_rejected():
    b = IRBuilder()
    with b.func("f"):
        x = b.index(1)
        y = b.f64(1.0)
        with pytest.raises(IRError):
            arith.BinaryOp("add", x, y)


def test_store_type_checked():
    b = IRBuilder()
    with b.func("f"):
        arr = b.alloc(F64, 10, "a")
        i = b.index(0)
        v = b.i64(3)
        with pytest.raises(IRError):
            memref.StoreOp(v, arr, i)


def test_loop_with_iter_args():
    b = IRBuilder()
    with b.func("f", result_types=[F64]):
        z = b.f64(0.0)
        with b.for_(0, 10, iter_args=[z]) as loop:
            b.yield_([b.add(loop.args[0], 1.0)])
        b.ret([loop.results[0]])
    verify(b.module)


def test_verifier_catches_bad_yield_arity():
    b = IRBuilder()
    with b.func("f", result_types=[F64]):
        z = b.f64(0.0)
        with b.for_(0, 10, iter_args=[z]) as loop:
            b.yield_([])  # wrong arity
        b.ret([loop.results[0]])
    with pytest.raises(VerificationError):
        verify(b.module)


def test_verifier_catches_wrong_return_type():
    b = IRBuilder()
    with b.func("f", result_types=[F64]):
        b.ret([b.i64(1)])
    with pytest.raises(VerificationError):
        verify(b.module)


def test_verifier_catches_unknown_callee():
    b = IRBuilder()
    with b.func("f"):
        b.call("ghost")
    with pytest.raises(VerificationError):
        verify(b.module)


def test_verifier_catches_call_arity():
    b = IRBuilder()
    with b.func("g", [INDEX], [], ["x"]):
        pass
    with b.func("f"):
        b.call("g", [])
    with pytest.raises(VerificationError):
        verify(b.module)


def test_verifier_if_arm_types():
    b = IRBuilder()
    with b.func("f", result_types=[INDEX]):
        c = b.true()
        h = b.if_(c, [INDEX])
        with h.then():
            b.yield_([b.index(1)])
        with h.else_():
            b.yield_([b.index(2)])
        b.ret([h.results[0]])
    verify(b.module)


def test_verifier_rejects_use_before_def():
    b = IRBuilder()
    with b.func("f"):
        with b.for_(0, 4) as loop:
            pass
        # use the loop IV outside its region
        b.insert(arith.BinaryOp("add", loop.op.induction_var, b.index(1)))
    with pytest.raises(VerificationError):
        verify(b.module)


def test_block_rejects_ops_after_terminator():
    block = Block()
    block.append(scf.YieldOp([]))
    with pytest.raises(IRError):
        block.append(scf.YieldOp([]))


def test_while_loop_builds_and_verifies():
    b = IRBuilder()
    with b.func("f", [INDEX], [INDEX], ["n"]) as fn:
        wh = b.while_([fn.args[0]])
        with wh.before() as (cur,):
            b.condition(b.cmp("gt", cur, 0), [cur])
        with wh.body() as (cur,):
            b.yield_([b.sub(cur, 1)])
        b.ret([wh.results[0]])
    verify(b.module)


def test_printer_includes_dialect_ops():
    b = IRBuilder()
    edge_t = StructType("edge", (("src", I64),))
    with b.func("main"):
        edges = b.ralloc(edge_t, 8, "edges")
        with b.for_(0, 8) as loop:
            b.load(edges, loop.iv, field="src")
            b.prefetch(edges, loop.iv, count=2)
    text = print_module(b.module)
    assert "remotable.alloc" in text
    assert "rmem.load" in text
    assert "rmem.prefetch" in text
    assert "scf.for %i" in text


def test_remote_builder_dispatch():
    b = IRBuilder()
    with b.func("main"):
        local = b.alloc(F64, 4, "l")
        remote = b.ralloc(F64, 4, "r")
        i = b.index(0)
        l1 = b.load(local, i)
        l2 = b.load(remote, i)
    assert isinstance(l1.producer, memref.LoadOp)
    assert isinstance(l2.producer, rmem.RLoadOp)


def test_clone_preserves_structure_and_independence():
    b = IRBuilder()
    with b.func("f", result_types=[F64]):
        arr = b.alloc(F64, 16, "a")
        z = b.f64(0.0)
        with b.for_(0, 16, iter_args=[z]) as loop:
            v = b.load(arr, loop.iv)
            b.yield_([b.add(loop.args[0], v)])
        b.ret([loop.results[0]])
    clone = clone_module(b.module)
    verify(clone)
    assert print_module(clone) == print_module(b.module)
    # mutation of the clone does not affect the original
    clone.get("f").attrs["offloaded"] = True
    assert not b.module.get("f").attrs.get("offloaded")


def test_clone_remaps_all_values():
    b = IRBuilder()
    with b.func("f", [MemRefType(F64)], [], ["a"]) as fn:
        with b.for_(0, 4) as loop:
            b.load(fn.args[0], loop.iv)
    clone = clone_module(b.module)
    orig_vals = {fn_arg.uid for fn_arg in b.module.get("f").args}
    for op in clone.get("f").walk():
        for v in op.operands:
            assert v.uid not in orig_vals
