"""Tests for :mod:`repro.obs.analyze`: the exactness contract (exclusive
buckets sum bit-for-bit to the total virtual time), the phase/segment
hierarchy, critical-path drill-down, collapsed-stack export, wasted
prefetch detection, and degradation-window attribution."""

import json
import math

import pytest

from repro.baselines import NativeMemory
from repro.bench.harness import BASELINE_SYSTEMS, ModuleMemo
from repro.core import MiraController, run_on_baseline, run_plan
from repro.faults.chaos import CHAOS_WORKLOADS
from repro.memsim.cost_model import CostModel
from repro.obs import Tracer
from repro.obs.analyze import (
    BUCKET_OF,
    _exact_close,
    analyze_events,
    collapsed_stacks,
    critical_path,
)
from repro.workloads import make_workload

COST = CostModel()


def _decode(tracer: Tracer) -> list[dict]:
    return [json.loads(line) for line in tracer.lines()]


def _traced(name: str, system: str, ratio: float = 0.25):
    """One verified run of a chaos-sized workload with tracing on."""
    workload = make_workload(name, **CHAOS_WORKLOADS[name])
    memo = ModuleMemo(workload)
    tracer = Tracer()
    if system == "native":
        result = run_on_baseline(
            memo.module,
            NativeMemory(COST, 2 * memo.footprint_bytes + (1 << 20)),
            workload.data_init,
            entry=workload.entry,
            tracer=tracer,
        )
    elif system == "mira":
        local = max(4096, int(memo.footprint_bytes * ratio))
        controller = MiraController(
            memo.fresh,
            COST,
            local,
            data_init=workload.data_init,
            entry=workload.entry,
            max_iterations=1,
            tracer=tracer,
        )
        program = controller.optimize()
        result = run_plan(
            program.module,
            COST,
            local,
            data_init=workload.data_init,
            entry=workload.entry,
            tracer=tracer,
        )
    else:
        local = max(4096, int(memo.footprint_bytes * ratio))
        result = run_on_baseline(
            memo.module,
            BASELINE_SYSTEMS[system](COST, local),
            workload.data_init,
            entry=workload.entry,
            tracer=tracer,
        )
    workload.verify_results(result.results)
    return tracer, result


# -- the exactness contract (acceptance criterion) -----------------------------


@pytest.mark.parametrize("system", ["native", "fastswap", "mira"])
@pytest.mark.parametrize("workload", sorted(CHAOS_WORKLOADS))
def test_buckets_sum_exactly_to_total(workload, system):
    """Every nanosecond lands in exactly one bucket: fsum of the buckets
    (and of the raw categories) equals the total bit-for-bit, and the
    event-derived per-category totals agree with the clock breakdown the
    snapshots carry (no cross-check warnings)."""
    tracer, result = _traced(workload, system)
    att = analyze_events(_decode(tracer))
    assert att.total_ns > 0.0
    assert math.fsum(att.by_bucket.values()) == att.total_ns
    assert math.fsum(att.by_category.values()) == att.total_ns
    # the last segment is the verified final run
    assert att.segments[-1].total == result.elapsed_ns
    assert att.warnings == []


def test_attribution_buckets_are_known():
    """Derived categories all map to declared buckets (nothing silently
    falls through to compute via an unknown name)."""
    tracer, _ = _traced("array_sum", "mira")
    att = analyze_events(_decode(tracer))
    for cat in att.by_category:
        assert cat in BUCKET_OF, cat
    for sec_buckets in att.by_section.values():
        for bucket in sec_buckets:
            assert bucket in set(BUCKET_OF.values())


def test_mira_segments_are_labelled():
    """A controller trace splits into iterN segments plus the final run,
    and segment totals sum to the attribution total."""
    tracer, _ = _traced("array_sum", "mira")
    att = analyze_events(_decode(tracer))
    labels = [s.label for s in att.segments]
    assert labels[-1] == "final"
    assert any(l.startswith("iter") for l in labels[:-1])
    assert math.fsum(s.total for s in att.segments) == att.total_ns


def test_far_memory_pressure_shows_up_in_buckets():
    """A pressured fastswap run must attribute real time to the swap
    path, not bury it in compute."""
    tracer, _ = _traced("graph_traversal", "fastswap")
    att = analyze_events(_decode(tracer))
    assert att.by_bucket.get("swap_fault", 0.0) > 0.0
    assert att.by_bucket.get("miss_service", 0.0) > 0.0
    assert "swap" in att.by_section


# -- critical path -------------------------------------------------------------


def test_critical_path_structure():
    tracer, _ = _traced("graph_traversal", "mira")
    att = analyze_events(_decode(tracer))
    steps = critical_path(att)
    assert steps[0]["level"] == "run"
    assert steps[0]["share"] == 1.0
    assert steps[0]["inclusive_ns"] == att.total_ns
    # multi-segment trace: second step is the heaviest segment
    assert steps[1]["level"] == "segment"
    assert steps[1]["inclusive_ns"] == max(s.total for s in att.segments)
    assert steps[-1]["level"] == "bucket"
    for s in steps:
        assert 0.0 <= s["share"] <= 1.0 + 1e-12
    # inclusive time never grows while drilling down
    incl = [s["inclusive_ns"] for s in steps]
    assert all(a >= b for a, b in zip(incl, incl[1:]))


def test_critical_path_empty_trace():
    att = analyze_events([])
    steps = critical_path(att)
    assert len(steps) == 1 and steps[0]["level"] == "run"
    assert att.total_ns == 0.0


# -- collapsed stacks ----------------------------------------------------------


def test_collapsed_stacks_format_and_mass():
    """Output is valid collapsed format (``frame;frame ns``) and the
    stack weights account for the whole run up to integer rounding."""
    tracer, _ = _traced("graph_traversal", "mira")
    att = analyze_events(_decode(tracer))
    stacks = collapsed_stacks(att)
    assert stacks
    total = 0
    for line in stacks:
        path, _, value = line.rpartition(" ")
        assert path and ";" in path, line
        assert not value.startswith("-") and value.isdigit(), line
        assert all(frame for frame in path.split(";")), line
        assert path.split(";")[0] == "run"
        total += int(value)
    # each emitted stack rounds to the nearest ns
    assert abs(total - att.total_ns) <= 0.5 * len(stacks) + 1.0
    # multi-run trace: segment labels appear as second frames
    assert any(line.startswith("run;final;") for line in stacks)


def test_collapsed_stacks_single_segment_has_no_segment_frame():
    tracer, _ = _traced("array_sum", "fastswap")
    att = analyze_events(_decode(tracer))
    assert len(att.segments) == 1
    for line in collapsed_stacks(att):
        frames = line.rpartition(" ")[0].split(";")
        assert frames[0] == "run"
        assert frames[1] in set(BUCKET_OF.values()), line


# -- synthetic traces (targeted behaviors) -------------------------------------


def _snap(t: float, bd: dict | None = None) -> dict:
    return {"k": "prof.snapshot", "t": t, "elapsed": t, "runtime": t,
            "bd": bd or {}}


def test_wasted_prefetch_in_flight_and_unused():
    events = [
        {"k": "sec.open", "t": 0.0, "sec": "s", "hit_ov": 1.0, "ins_ov": 2.0,
         "ev_ov": 3.0},
        # prefetch A: evicted at t=50 while ready=100 -> in_flight waste
        {"k": "net.recv", "t": 10.0, "op": "read_async", "bytes": 256,
         "ready": 100.0, "issue": 4.0},
        {"k": "cache.prefetch", "t": 10.0, "sec": "s", "obj": 1, "line": 0,
         "ready": 100.0},
        {"k": "cache.evict", "t": 50.0, "sec": "s", "obj": 1, "line": 0},
        # prefetch B: arrives (ready=60) but nobody touches it -> unused
        {"k": "net.recv", "t": 55.0, "op": "read_async", "bytes": 128,
         "ready": 60.0, "issue": 4.0},
        {"k": "cache.prefetch", "t": 55.0, "sec": "s", "obj": 2, "line": 0,
         "ready": 60.0},
        # prefetch C: consumed by a hit -> not waste
        {"k": "net.recv", "t": 70.0, "op": "read_async", "bytes": 64,
         "ready": 75.0, "issue": 4.0},
        {"k": "cache.prefetch", "t": 70.0, "sec": "s", "obj": 3, "line": 0,
         "ready": 75.0},
        {"k": "cache.hit", "t": 80.0, "sec": "s", "obj": 3, "line": 0},
        _snap(200.0),
    ]
    att = analyze_events(events)
    w = att.wasted_prefetch["s"]
    assert w["in_flight"] == 1
    assert w["unused"] == 1
    assert w["bytes"] == 256 + 128
    assert math.fsum(att.by_bucket.values()) == att.total_ns


def test_degradation_window_attribution():
    events = [
        {"k": "sec.open", "t": 0.0, "sec": "s", "hit_ov": 5.0, "ins_ov": 0.0,
         "ev_ov": 0.0},
        {"k": "cache.hit", "t": 10.0, "sec": "s", "obj": 1, "line": 0},
        {"k": "degrade.section", "t": 20.0, "sec": "s",
         "action": "demote_comm"},
        {"k": "cache.hit", "t": 30.0, "sec": "s", "obj": 1, "line": 0},
        {"k": "cache.hit", "t": 40.0, "sec": "s", "obj": 1, "line": 0},
        _snap(100.0),
    ]
    att = analyze_events(events)
    assert len(att.degradations) == 1
    d = att.degradations[0]
    assert d["action"] == "demote_comm" and d["sec"] == "s"
    assert d["start"] == 20.0 and d["end"] == 100.0
    # only the two post-degrade hits (5 ns overhead each) fall inside
    assert d["attr_ns"] == 10.0
    assert d["segment"] == "final"


def test_phase_tree_self_time_and_residual():
    events = [
        {"k": "sec.open", "t": 0.0, "sec": "s", "hit_ov": 2.0, "ins_ov": 0.0,
         "ev_ov": 0.0},
        {"k": "prof.region", "t": 0.0, "label": "outer", "ev": "begin"},
        {"k": "prof.region", "t": 10.0, "label": "inner", "ev": "begin"},
        {"k": "cache.hit", "t": 15.0, "sec": "s", "obj": 1, "line": 0},
        {"k": "prof.region", "t": 40.0, "label": "inner", "ev": "end"},
        {"k": "prof.region", "t": 100.0, "label": "outer", "ev": "end"},
        _snap(120.0),
    ]
    att = analyze_events(events)
    root = att.segments[0].root
    (outer,) = root.children
    (inner,) = outer.children
    assert outer.dur == 100.0 and inner.dur == 30.0
    assert outer.self_ns == 70.0
    # the hit's overhead was attributed to the innermost open phase
    assert inner.attr_totals() == {"hit_overhead": 2.0}
    assert inner.residual == 28.0
    assert root.self_ns == 20.0
    assert att.warnings == []


def test_same_label_nested_phases_close_innermost_first():
    events = [
        {"k": "prof.region", "t": 0.0, "label": "loop", "ev": "begin"},
        {"k": "prof.region", "t": 10.0, "label": "loop", "ev": "begin"},
        {"k": "prof.region", "t": 30.0, "label": "loop", "ev": "end"},
        {"k": "prof.region", "t": 90.0, "label": "loop", "ev": "end"},
        _snap(100.0),
    ]
    att = analyze_events(events)
    (outer,) = att.segments[0].root.children
    (inner,) = outer.children
    assert outer.dur == 90.0
    assert inner.dur == 20.0
    assert att.warnings == []


def test_unclosed_phase_and_unmatched_end_warn():
    events = [
        {"k": "prof.region", "t": 0.0, "label": "a", "ev": "begin"},
        {"k": "prof.region", "t": 5.0, "label": "ghost", "ev": "end"},
        _snap(50.0),
    ]
    att = analyze_events(events)
    assert any("without begin" in w for w in att.warnings)
    assert any("never ended" in w for w in att.warnings)
    # the dangling span is closed at the segment boundary
    assert att.segments[0].root.children[0].dur == 50.0


def test_truncated_trace_final_partial_segment():
    """A trace that dies mid-run (no prof.snapshot) still attributes the
    work it saw, flags the segment, and keeps the exactness contract."""
    events = [
        {"k": "sec.open", "t": 0.0, "sec": "s", "hit_ov": 1.0, "ins_ov": 0.0,
         "ev_ov": 0.0},
        {"k": "cache.hit", "t": 10.0, "sec": "s", "obj": 1, "line": 0},
        {"k": "cache.hit", "t": 42.0, "sec": "s", "obj": 1, "line": 0},
    ]
    att = analyze_events(events)
    assert len(att.segments) == 1
    seg = att.segments[0]
    assert seg.truncated
    assert seg.total == 42.0  # last event time stands in for the span
    assert any("truncated" in w for w in att.warnings)
    assert math.fsum(att.by_bucket.values()) == att.total_ns


def test_legacy_trace_without_overhead_constants_warns_once():
    events = [
        {"k": "sec.open", "t": 0.0, "sec": "s"},  # no hit_ov/ins_ov/ev_ov
        {"k": "cache.hit", "t": 1.0, "sec": "s", "obj": 1, "line": 0},
        {"k": "cache.hit", "t": 2.0, "sec": "s", "obj": 2, "line": 0},
        _snap(10.0),
    ]
    att = analyze_events(events)
    legacy = [w for w in att.warnings if "legacy" in w]
    assert len(legacy) == 1
    assert att.by_bucket.get("cache_hit", 0.0) == 0.0  # undercounts, by design


def test_bd_cross_check_flags_material_mismatch():
    events = [
        {"k": "sec.open", "t": 0.0, "sec": "s", "hit_ov": 5.0, "ins_ov": 0.0,
         "ev_ov": 0.0},
        {"k": "cache.hit", "t": 1.0, "sec": "s", "obj": 1, "line": 0},
        _snap(100.0, bd={"hit_overhead": 50.0}),  # clock says 50, events say 5
    ]
    att = analyze_events(events)
    assert any("clock breakdown" in w for w in att.warnings)


def test_exact_close_converges_from_ulp_gaps():
    # engineered so naive target-minus-rest leaves a representation gap
    totals = {"a": 0.1, "b": 0.2, "c": 0.0}
    target = 1e9 + 1 / 3
    _exact_close(totals, target, "c")
    assert math.fsum(totals.values()) == target
    assert totals["a"] == 0.1 and totals["b"] == 0.2
