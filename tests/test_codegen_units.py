"""Unit tests for the codegen engine's IR -> Python source lowering.

Two angles per op family:

* **Source shape** -- the generated source (``CodegenEngine.
  generated_source``) must contain the pinned lowering idiom: inline
  expressions for arith/compare/select, native ``for``/``while`` for scf
  loops, the bulk-pattern gate + vectorized body for recognized memref
  loops, and the hoisted-charge fast loop for straight-line bodies on
  native memory.  Pinned as substrings (not full-file golden text) so
  gensym counters can move without churn.

* **Execution** -- each tiny fragment runs under the reference
  interpreter and the codegen engine and must produce identical results,
  elapsed virtual ns, and per-category breakdowns, on native memory and
  (where the fragment is legal there) on FastSwap at a tight ratio,
  exercising the per-element fallback paths.
"""

from __future__ import annotations

import os

import pytest

from repro.baselines import NativeMemory
from repro.bench.harness import BASELINE_SYSTEMS
from repro.core import run_on_baseline
from repro.ir.builder import IRBuilder
from repro.ir.dialects import rmem
from repro.ir.types import FloatType, IntType
from repro.ir.verifier import verify
from repro.memsim.cost_model import CostModel
from repro.runtime.interpreter import Interpreter

COST = CostModel()
F64 = FloatType(64)
I64 = IntType(64)


# -- helpers -------------------------------------------------------------------


def _source(module, fn_name: str = "main") -> str:
    """The codegen source for one function, compiled against native."""
    os.environ["REPRO_ENGINE"] = "codegen"
    try:
        interp = Interpreter(module, NativeMemory(COST, 1 << 24))
        return interp._engine.generated_source(fn_name)
    finally:
        os.environ.pop("REPRO_ENGINE", None)


def _run(module, engine: str, system: str = "native", local: int = 1 << 24):
    os.environ["REPRO_ENGINE"] = engine
    try:
        if system == "native":
            memsys = NativeMemory(COST, 1 << 30)
        else:
            memsys = BASELINE_SYSTEMS[system](COST, local)
        result = run_on_baseline(module, memsys)
        return {
            "results": list(result.results),
            "elapsed_ns": result.elapsed_ns,
            "breakdown": result.breakdown,
        }
    finally:
        os.environ.pop("REPRO_ENGINE", None)


def _assert_engines_agree(module, systems=("native", "fastswap")) -> None:
    for system in systems:
        local = 8192 if system != "native" else 0
        ref = _run(module, "reference", system, local)
        cg = _run(module, "codegen", system, local)
        assert ref == cg, f"codegen diverges from reference on {system}"


# -- arith / compare / select lowering ----------------------------------------


def _arith_module():
    b = IRBuilder()
    with b.func("main", result_types=[F64, I64, F64, F64]):
        x = b.add(b.mul(b.f64(3.0), 4.0), 1.5)
        q = b.div(b.i64(17), b.i64(5))  # C-style truncating division
        r = b.min(x, b.f64(9.0))
        cond = b.cmp("lt", x, 100.0)
        s = b.select(cond, r, b.f64(-1.0))
        b.ret([x, q, r, s])
    verify(b.module)
    return b.module


def test_arith_lowering_source_shape():
    src = _source(_arith_module())
    assert " * " in src and " + " in src  # inline binary expressions
    assert "_int_div(" in src  # integer division helper
    assert " if " in src  # min/select conditional expressions
    assert "(1 if " in src  # compare lowers to 0/1 int
    assert "_eng." not in src  # pure arith makes no engine calls at all


def test_arith_execution_matches_reference():
    module = _arith_module()
    fp = _run(module, "codegen")
    assert fp["results"] == [13.5, 3, 9.0, 9.0]
    _assert_engines_agree(module, systems=("native",))


# -- scf.for: general, straight-line fast tier, bulk tiers ---------------------


def _sum_loop_module(n: int = 64):
    b = IRBuilder()
    with b.func("main", result_types=[F64]):
        arr = b.alloc(F64, n, "a")
        with b.for_(0, n) as loop:
            b.store(b.cast(loop.iv, F64), arr, loop.iv)
        total = b.f64(0.0)
        with b.for_(0, n, iter_args=[total]) as loop:
            x = b.load(arr, loop.iv)
            b.yield_([b.add(loop.args[0], x)])
        b.ret([loop.results[0]])
    verify(b.module)
    return b.module


def test_for_lowering_has_native_loop_and_bulk_gate():
    src = _source(_sum_loop_module())
    assert " in range(" in src  # native for loop
    assert "scf.for with non-positive step" in src  # fallback guard
    assert "_st.tracer is None" in src  # bulk gate
    assert "sum(" in src  # vectorized reduce body
    assert "num_elems" in src  # bounds part of the gate


def test_straightline_fast_loop_hoists_charges():
    b = IRBuilder()
    n = 32
    with b.func("main", result_types=[F64]):
        arr = b.alloc(F64, n, "a")
        acc = b.f64(0.0)
        with b.for_(0, n, iter_args=[acc]) as loop:
            x = b.load(arr, loop.iv)
            y = b.mul(x, 2.0)
            b.store(y, arr, loop.iv)  # load+pure+store: not a bulk pattern
            b.yield_([b.add(loop.args[0], y)])
        b.ret([loop.results[0]])
    verify(b.module)
    src = _source(b.module)
    # the straight-line tier: charges hoisted out of the loop body
    assert "if not _far:" in src
    assert "len(range(" in src
    assert "_clk._pending +=" in src
    # hoisted _data / num_elems locals feed the body's fast paths
    assert "._data" in src and ".num_elems" in src
    _assert_engines_agree(b.module)


def test_bulk_fill_lowering_and_parity():
    b = IRBuilder()
    n = 48
    with b.func("main", result_types=[F64]):
        arr = b.alloc(F64, n, "a")
        with b.for_(0, n) as loop:
            fv = b.cast(loop.iv, F64)
            b.store(b.add(b.mul(fv, 3.0), 1.0), arr, loop.iv)
        b.ret([b.load(arr, n - 1)])
    verify(b.module)
    src = _source(b.module)
    assert "] = [" in src  # slice-assign of a comprehension
    _assert_engines_agree(b.module)


def test_bulk_copy_lowering_and_parity():
    b = IRBuilder()
    n = 40
    with b.func("main", result_types=[F64]):
        src_arr = b.alloc(F64, n, "src")
        dst = b.alloc(F64, n, "dst")
        with b.for_(0, n) as loop:
            b.store(b.cast(loop.iv, F64), src_arr, loop.iv)
        with b.for_(0, n) as loop:
            b.store(b.load(src_arr, loop.iv), dst, loop.iv)
        b.ret([b.load(dst, n - 1)])
    verify(b.module)
    src = _source(b.module)
    assert "_clk.advance(" in src  # aggregated dram charge of the copy
    _assert_engines_agree(b.module)


def test_strided_and_offset_loops_match_reference():
    """Partial ranges and strides: bulk gates must stay exact."""
    for lb, ub, step in ((0, 64, 1), (8, 64, 2), (3, 61, 7), (0, 64, 3)):
        b = IRBuilder()
        with b.func("main", result_types=[F64]):
            arr = b.alloc(F64, 64, "a")
            with b.for_(0, 64) as loop:
                b.store(b.cast(loop.iv, F64), arr, loop.iv)
            total = b.f64(0.0)
            with b.for_(lb, ub, step=step, iter_args=[total]) as loop:
                x = b.load(arr, loop.iv)
                b.yield_([b.add(loop.args[0], x)])
            b.ret([loop.results[0]])
        verify(b.module)
        _assert_engines_agree(b.module)


# -- scf.if / scf.while --------------------------------------------------------


def test_if_lowering_and_parity():
    b = IRBuilder()
    with b.func("main", result_types=[F64]):
        x = b.f64(5.0)
        cond = b.cmp("lt", x, 10.0)
        h = b.if_(cond, result_types=[F64])
        with h.then():
            b.yield_([b.add(x, 1.0)])
        with h.else_():
            b.yield_([b.mul(x, 2.0)])
        b.ret([h.results[0]])
    verify(b.module)
    src = _source(b.module)
    assert "if v" in src and "else:" in src
    _assert_engines_agree(b.module, systems=("native",))


def test_while_lowering_and_parity():
    b = IRBuilder()
    with b.func("main", result_types=[F64]):
        h = b.while_([b.f64(1.0)])
        with h.before() as args:
            b.condition(b.cmp("lt", args[0], 100.0), [args[0]])
        with h.body() as args:
            b.yield_([b.mul(args[0], 2.0)])
        b.ret([h.results[0]])
    verify(b.module)
    src = _source(b.module)
    assert "scf.while exceeded iteration limit" in src
    assert "break" in src
    fp = _run(b.module, "codegen")
    assert fp["results"] == [128.0]
    _assert_engines_agree(b.module, systems=("native",))


# -- scf.parallel --------------------------------------------------------------


def test_parallel_lowering_and_parity():
    b = IRBuilder()
    n = 32
    with b.func("main", result_types=[F64]):
        arr = b.alloc(F64, n, "a")
        with b.parallel(0, n, num_threads=4) as loop:
            b.store(b.cast(loop.iv, F64), arr, loop.iv)
            b.work(3.0)
        b.ret([b.load(arr, n - 1)])
    verify(b.module)
    src = _source(b.module)
    assert "fork()" in src  # per-thread clock forks
    assert "thread.fork" in src and "thread.join" in src
    _assert_engines_agree(b.module)


# -- calls and offload ---------------------------------------------------------


def _call_module(offloaded: bool):
    b = IRBuilder()
    with b.func("helper", arg_types=[F64], result_types=[F64]):
        fn_args = b.module.get("helper").args
        b.work(10.0)
        b.ret([b.mul(fn_args[0], 3.0)])
    with b.func("main", result_types=[F64]):
        if offloaded:
            op = b.insert(rmem.OffloadCallOp("helper", [b.f64(7.0)], [F64]))
            b.ret([op.results[0]])
        else:
            op = b.call("helper", [b.f64(7.0)], result_types=[F64])
            b.ret([op.results[0]])
    verify(b.module)
    return b.module


def test_call_lowering_and_parity():
    module = _call_module(offloaded=False)
    src = _source(module)
    assert "_eng.call_function(" in src
    fp = _run(module, "codegen")
    assert fp["results"] == [21.0]
    _assert_engines_agree(module, systems=("native",))


def test_offload_call_lowering_and_parity():
    module = _call_module(offloaded=True)
    src = _source(module)
    assert "_eng.offloaded_invoke(" in src
    _assert_engines_agree(module)


# -- rmem hints stay exact -----------------------------------------------------


def test_hints_and_touch_parity():
    b = IRBuilder()
    n = 64
    with b.func("main", result_types=[F64]):
        arr = b.ralloc(F64, n, "arr")
        with b.for_(0, n) as loop:
            b.store(b.cast(loop.iv, F64), arr, loop.iv)
        b.prefetch(arr, 0, 16)
        b.touch(arr, 0, n * 8, is_write=False)
        total = b.f64(0.0)
        with b.for_(0, n, iter_args=[total]) as loop:
            x = b.load(arr, loop.iv)
            b.yield_([b.add(loop.args[0], x)])
        b.evict_hint(arr, 0, 16)
        b.flush(arr, 0, 16)
        b.ret([loop.results[0]])
    verify(b.module)
    _assert_engines_agree(b.module)


# -- generated-source hygiene --------------------------------------------------


def test_generated_source_compiles_per_function_once():
    module = _sum_loop_module()
    os.environ["REPRO_ENGINE"] = "codegen"
    try:
        interp = Interpreter(module, NativeMemory(COST, 1 << 24))
        a = interp._engine.generated_source("main")
        b_src = interp._engine.generated_source("main")
        assert a is b_src  # cached, not re-lowered
        assert a.startswith("def _factory(")
        assert "def _g_main(" in a
    finally:
        os.environ.pop("REPRO_ENGINE", None)


def test_codegen_requires_exact_arg_count():
    module = _sum_loop_module()
    os.environ["REPRO_ENGINE"] = "codegen"
    try:
        interp = Interpreter(module, NativeMemory(COST, 1 << 24))
        from repro.errors import InterpreterError

        with pytest.raises(InterpreterError, match="expects"):
            interp.run("main", [1.0])
    finally:
        os.environ.pop("REPRO_ENGINE", None)
