"""Section-size ILP solver tests (paper section 4.3)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.size_solver import (
    SizeSample,
    candidate_sizes,
    solve_sizes,
    solve_sizes_bruteforce,
)
from repro.errors import SolverError


def _curve(points):
    return [SizeSample(s, o) for s, o in points]


def test_single_section_picks_min_overhead():
    curves = {"a": _curve([(100, 50.0), (200, 10.0), (400, 5.0)])}
    assert solve_sizes(curves, budget_bytes=500) == {"a": 400}


def test_budget_forces_tradeoff():
    curves = {
        "a": _curve([(100, 100.0), (300, 10.0)]),
        "b": _curve([(100, 50.0), (300, 40.0)]),
    }
    # both at 300 does not fit a 400-byte budget; 'a' gains more from
    # being large, so the solver gives it the 300
    assert solve_sizes(curves, budget_bytes=400) == {"a": 300, "b": 100}


def test_infeasible_raises():
    curves = {"a": _curve([(500, 1.0)])}
    with pytest.raises(SolverError):
        solve_sizes(curves, budget_bytes=100)


def test_empty_input():
    assert solve_sizes({}, budget_bytes=100) == {}


def test_section_with_no_samples_rejected():
    with pytest.raises(SolverError):
        solve_sizes({"a": []}, budget_bytes=100)


def test_live_groups_relax_constraint():
    """Sections that never live at the same time may each take the whole
    budget (the GPT-2 layer-lifetime effect)."""
    curves = {
        "a": _curve([(100, 100.0), (400, 1.0)]),
        "b": _curve([(100, 100.0), (400, 1.0)]),
    }
    # concurrent: 400+400 exceeds the 520 budget, so one section stays
    # small; disjoint lifetimes let both be large
    concurrent = solve_sizes(curves, 520, live_groups=[{"a", "b"}])
    assert sorted(concurrent.values()) == [100, 400]
    disjoint = solve_sizes(curves, 520, live_groups=[{"a"}, {"b"}])
    assert disjoint == {"a": 400, "b": 400}


def test_matches_paper_story_most_memory_to_random_section():
    """Fig. 12: the sequential section is happy when small; the
    indirectly-accessed section gets most of the memory."""
    curves = {
        "seq": _curve([(64, 5.0), (512, 5.0), (4096, 5.0)]),
        "rand": _curve([(1024, 900.0), (4096, 300.0), (8192, 50.0)]),
    }
    chosen = solve_sizes(curves, budget_bytes=8192 + 64)
    assert chosen["seq"] == 64
    assert chosen["rand"] == 8192


@settings(max_examples=40, deadline=None)
@given(
    data=st.dictionaries(
        st.sampled_from(["a", "b", "c"]),
        st.lists(
            st.tuples(
                st.integers(min_value=1, max_value=1000),
                st.floats(min_value=0.0, max_value=1e6),
            ),
            min_size=1,
            max_size=4,
        ),
        min_size=1,
        max_size=3,
    ),
    budget=st.integers(min_value=1, max_value=3000),
)
def test_property_milp_matches_bruteforce(data, budget):
    # a drawn curve may repeat a size with different overheads, which
    # makes the cost lookup below ambiguous (it matches by size); keep
    # only the cheapest sample per size -- the one any solver would pick
    deduped = {}
    for k, v in data.items():
        best: dict[int, float] = {}
        for size, overhead in v:
            best[size] = min(overhead, best.get(size, overhead))
        deduped[k] = sorted(best.items())
    curves = {k: _curve(v) for k, v in deduped.items()}
    try:
        brute = solve_sizes_bruteforce(curves, budget)
    except SolverError:
        with pytest.raises(SolverError):
            _ = solve_sizes_bruteforce(curves, budget)
        return
    milp = solve_sizes(curves, budget)
    cost_of = lambda pick: sum(
        next(s.overhead_ns for s in curves[n] if s.size_bytes == sz)
        for n, sz in pick.items()
    )
    assert cost_of(milp) == pytest.approx(cost_of(brute))
    assert sum(milp.values()) <= budget


def test_candidate_sizes_streaming_small():
    sizes = candidate_sizes(1 << 20, 2048, streaming=True, object_bytes=1 << 20)
    assert max(sizes) <= 2048 * 64
    assert all(s >= 2048 for s in sizes)


def test_candidate_sizes_capped_at_object():
    sizes = candidate_sizes(1 << 20, 64, streaming=False, object_bytes=10_000)
    assert max(sizes) <= 10_048  # object size rounded up to the line
