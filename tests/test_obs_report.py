"""Satellite tests for the report CLI: per-label span stacks in the
timeline, tolerant loading of malformed/truncated traces, exit codes,
the fault-summary rendering path, and the new analysis modes."""

import json

import pytest

from repro.obs.report import (
    fault_summary,
    main as report_main,
    miss_wait_histogram,
    phase_timeline,
    render_report,
)
from repro.obs.trace import SCHEMA, Tracer, load_trace


# -- phase timeline: nested same-label spans (regression) ----------------------


def test_phase_timeline_same_label_nesting_not_clobbered():
    """A recursive/re-entered region must close the *innermost* open span;
    the old single-slot bookkeeping clobbered the outer one."""
    events = [
        {"k": "prof.region", "t": 0.0, "label": "loop", "ev": "begin"},
        {"k": "cache.hit", "t": 1.0, "sec": "s", "obj": 1, "line": 0},
        {"k": "prof.region", "t": 10.0, "label": "loop", "ev": "begin"},
        {"k": "cache.hit", "t": 11.0, "sec": "s", "obj": 1, "line": 0},
        {"k": "prof.region", "t": 30.0, "label": "loop", "ev": "end"},
        {"k": "prof.region", "t": 90.0, "label": "loop", "ev": "end"},
    ]
    rows = phase_timeline(events)
    assert len(rows) == 2
    outer, inner = rows  # begin order
    assert outer["duration_ns"] == 90.0
    assert inner["duration_ns"] == 20.0
    # the inner hit counts in both open spans (inclusive semantics);
    # the first hit only in the outer one
    assert outer["hits"] == 2
    assert inner["hits"] == 1


def test_phase_timeline_reentered_label_sequential():
    events = [
        {"k": "prof.region", "t": 0.0, "label": "p", "ev": "begin"},
        {"k": "prof.region", "t": 5.0, "label": "p", "ev": "end"},
        {"k": "prof.region", "t": 10.0, "label": "p", "ev": "begin"},
        {"k": "prof.region", "t": 30.0, "label": "p", "ev": "end"},
    ]
    rows = phase_timeline(events)
    assert [r["duration_ns"] for r in rows] == [5.0, 20.0]


def test_phase_timeline_unmatched_end_ignored():
    events = [
        {"k": "prof.region", "t": 5.0, "label": "ghost", "ev": "end"},
        {"k": "prof.region", "t": 10.0, "label": "real", "ev": "begin"},
        {"k": "prof.region", "t": 20.0, "label": "real", "ev": "end"},
    ]
    rows = phase_timeline(events)
    assert [r["phase"] for r in rows] == ["real"]


# -- tolerant trace loading ----------------------------------------------------


def _write_trace(path, tail_garbage=""):
    tr = Tracer(meta={"workload": "t"})
    tr.emit("cache.hit", 1.0, sec="s", obj=1, line=0)
    tr.emit("cache.miss", 2.0, sec="s", obj=2, line=0, wait=10.0)
    tr.emit("prof.snapshot", 5.0, elapsed=5.0, runtime=5.0)
    path.write_text(tr.to_jsonl() + tail_garbage)


def test_load_trace_skips_truncated_tail(tmp_path):
    p = tmp_path / "t.jsonl"
    # a run that died mid-write: last line cut off
    _write_trace(p, tail_garbage='{"i":3,"k":"cache.h')
    header, events, warnings = load_trace(p)
    assert header.get("schema")
    assert len(events) == 3
    assert len(warnings) == 1 and "malformed" in warnings[0]


def test_load_trace_skips_non_object_lines(tmp_path):
    p = tmp_path / "t.jsonl"
    _write_trace(p, tail_garbage="[1,2,3]\n")
    _, events, warnings = load_trace(p)
    assert len(events) == 3
    assert any("not an event object" in w for w in warnings)


def test_load_trace_empty_file(tmp_path):
    p = tmp_path / "empty.jsonl"
    p.write_text("")
    header, events, warnings = load_trace(p)
    assert header == {} and events == [] and warnings == []


def test_cli_warns_but_reports_on_truncated_trace(tmp_path, capsys):
    p = tmp_path / "t.jsonl"
    _write_trace(p, tail_garbage='{"i":3,"k":"cach')
    assert report_main([str(p)]) == 0
    captured = capsys.readouterr()
    assert "malformed" in captured.err
    assert "section summary" in captured.out


def test_cli_empty_trace_ok(tmp_path, capsys):
    p = tmp_path / "empty.jsonl"
    p.write_text("")
    assert report_main([str(p)]) == 0
    assert "0 events" in capsys.readouterr().out


def test_cli_exit_2_on_unreadable_input(tmp_path, capsys):
    assert report_main([str(tmp_path / "missing.jsonl")]) == 2
    assert "cannot read" in capsys.readouterr().err


def test_cli_exit_2_without_trace_arg(capsys):
    assert report_main([]) == 2
    assert "required" in capsys.readouterr().err


# -- schema-version gate (malformed headers exit 2, not a traceback) -----------


def test_cli_exit_2_on_unknown_schema_version(tmp_path, capsys):
    p = tmp_path / "future.jsonl"
    p.write_text(
        json.dumps({"schema": "repro.obs/v99", "events": 1}) + "\n"
        + json.dumps({"i": 0, "k": "cache.hit", "t": 1.0, "sec": "s"}) + "\n"
    )
    assert report_main([str(p)]) == 2
    err = capsys.readouterr().err
    assert "unsupported trace schema" in err and "repro.obs/v99" in err


def test_cli_exit_2_on_events_without_header(tmp_path, capsys):
    p = tmp_path / "headerless.jsonl"
    p.write_text(
        json.dumps({"i": 0, "k": "cache.hit", "t": 1.0, "sec": "s"}) + "\n"
    )
    assert report_main([str(p)]) == 2
    assert "missing schema header" in capsys.readouterr().err


def test_cli_unknown_schema_beats_other_modes(tmp_path, capsys):
    """The gate fires before any analysis mode touches the events."""
    p = tmp_path / "future.jsonl"
    p.write_text(json.dumps({"schema": "repro.obs/v99", "events": 0}) + "\n")
    for mode in ("--attribution", "--timeseries", "--slo", "--openmetrics"):
        assert report_main([str(p), mode]) == 2, mode
        capsys.readouterr()


# -- fault summary -------------------------------------------------------------


def _faulty_events():
    return [
        {"k": "fault.inject", "t": 1.0, "op": "read", "fault": "loss"},
        {"k": "retry.attempt", "t": 2.0, "op": "read", "attempt": 1,
         "backoff": 100.0},
        {"k": "fault.inject", "t": 3.0, "op": "read", "fault": "timeout"},
        {"k": "fault.giveup", "t": 4.0, "op": "read"},
        {"k": "fault.breaker", "t": 5.0, "state": "open"},
        {"k": "degrade.section", "t": 6.0, "sec": "s", "action": "demote_comm"},
    ]


def test_fault_summary_aggregates():
    s = fault_summary(_faulty_events())
    assert s["injected"] == 2 and s["losses"] == 1 and s["timeouts"] == 1
    assert s["retries"] == 1 and s["backoff_ns"] == 100.0
    assert s["giveups"] == 1 and s["breaker_trips"] == 1
    assert s["degradations"] == [
        {"t": 6.0, "sec": "s", "action": "demote_comm"}
    ]


def test_render_report_shows_fault_block_only_when_faulty():
    healthy = render_report({}, [])
    assert "fault summary" not in healthy
    faulty = render_report({}, _faulty_events())
    assert "fault summary" in faulty
    assert "demote_comm" in faulty


def test_render_report_miss_wait_percentiles():
    events = [
        {"k": "cache.miss", "t": float(i), "sec": "s", "obj": i, "line": 0,
         "wait": float(i * 10)}
        for i in range(1, 11)
    ]
    h = miss_wait_histogram(events)
    assert h.count == 10 and h.percentile(50) == 50.0
    text = render_report({}, events)
    assert "miss wait: n=10" in text and "p95=" in text


# -- analysis modes ------------------------------------------------------------


def _run_trace(tmp_path):
    events = [
        {"k": "sec.open", "t": 0.0, "sec": "s", "hit_ov": 2.0, "ins_ov": 4.0,
         "ev_ov": 1.0},
        {"k": "prof.region", "t": 0.0, "label": "work", "ev": "begin"},
        {"k": "cache.hit", "t": 1.0, "sec": "s", "obj": 1, "line": 0},
        {"k": "net.recv", "t": 2.0, "bytes": 64, "one_sided": True, "ns": 30.0},
        {"k": "cache.miss", "t": 2.0, "sec": "s", "obj": 2, "line": 0,
         "wait": 30.0},
        {"k": "prof.region", "t": 50.0, "label": "work", "ev": "end"},
        {"k": "prof.snapshot", "t": 100.0, "elapsed": 100.0, "runtime": 100.0},
    ]
    p = tmp_path / "t.jsonl"
    with open(p, "w", encoding="utf-8") as f:
        f.write(json.dumps({"schema": SCHEMA, "events": len(events)}) + "\n")
        for i, ev in enumerate(events):
            f.write(json.dumps({"i": i, **ev}, sort_keys=True) + "\n")
    return p


def test_cli_attribution_mode(tmp_path, capsys):
    p = _run_trace(tmp_path)
    assert report_main([str(p), "--attribution"]) == 0
    out = capsys.readouterr().out
    assert "virtual-time attribution" in out
    assert "compute" in out and "miss_service" in out
    # attribution-only: the default tables are suppressed
    assert "phase timeline" not in out


def test_cli_critical_path_mode(tmp_path, capsys):
    p = _run_trace(tmp_path)
    assert report_main([str(p), "--critical-path"]) == 0
    out = capsys.readouterr().out
    assert "virtual-time critical path" in out
    assert "-> run [run]" in out


def test_cli_flame_to_stdout_and_file(tmp_path, capsys):
    p = _run_trace(tmp_path)
    assert report_main([str(p), "--flame"]) == 0
    out = capsys.readouterr().out
    lines = [l for l in out.splitlines() if l]
    assert lines
    for line in lines:
        path, _, value = line.rpartition(" ")
        assert path.startswith("run") and value.isdigit()

    folded = tmp_path / "t.folded"
    assert report_main([str(p), "--flame", "--out", str(folded)]) == 0
    assert folded.read_text().splitlines() == lines


# -- telemetry modes (--timeseries / --slo / --openmetrics) --------------------


def test_cli_timeseries_mode(tmp_path, capsys):
    p = _run_trace(tmp_path)
    assert report_main([str(p), "--timeseries", "--window-ns", "50"]) == 0
    captured = capsys.readouterr()
    lines = [json.loads(l) for l in captured.out.splitlines()]
    assert lines[0]["schema"] == "repro.obs.series/v1"
    assert lines[0]["windows"] == len(lines) - 1
    assert lines[-1]["partial"] is True
    assert "series digest: " in captured.err

    out = tmp_path / "series.jsonl"
    assert report_main(
        [str(p), "--timeseries", "--window-ns", "50", "--out", str(out)]
    ) == 0
    assert out.read_text().splitlines() == captured.out.splitlines()


def test_cli_slo_mode_with_spec_file(tmp_path, capsys):
    p = _run_trace(tmp_path)
    spec = tmp_path / "slo.json"
    spec.write_text(json.dumps({"name": "strict", "miss_rate": 0.0}))
    # the trace has one miss: the strict spec must fail (exit 1)
    assert report_main(
        [str(p), "--slo", "--slo-spec", str(spec), "--window-ns", "50"]
    ) == 1
    out = capsys.readouterr().out
    assert "SLO 'strict': FAIL" in out and "miss_rate" in out
    assert "verdict digest: " in out

    # default built-in spec is permissive: passes (exit 0)
    assert report_main([str(p), "--slo", "--window-ns", "50"]) == 0
    assert "PASS" in capsys.readouterr().out


def test_cli_slo_rejects_bad_spec_file(tmp_path, capsys):
    p = _run_trace(tmp_path)
    spec = tmp_path / "bad.json"
    spec.write_text(json.dumps({"nope": 1}))
    assert report_main([str(p), "--slo", "--slo-spec", str(spec)]) == 2
    assert "cannot load SLO spec" in capsys.readouterr().err


def test_cli_openmetrics_mode(tmp_path, capsys):
    p = _run_trace(tmp_path)
    assert report_main([str(p), "--openmetrics", "--window-ns", "50"]) == 0
    out = capsys.readouterr().out
    assert out.endswith("# EOF\n")
    assert "# TYPE repro_series_accesses counter" in out
    assert "repro_series_accesses_total 2" in out  # one hit + one miss
