"""IR parser tests: print -> parse -> print round-trips."""

import pytest

from repro.errors import IRError
from repro.ir import IRBuilder, print_module, verify
from repro.ir.parser import parse_module, parse_type
from repro.ir.types import (
    F64,
    I64,
    INDEX,
    FloatType,
    IndexType,
    IntType,
    MemRefType,
    StructType,
)


def test_parse_scalar_types():
    assert parse_type("index") == IndexType()
    assert parse_type("i64") == IntType(64)
    assert parse_type("i1") == IntType(1)
    assert parse_type("f32") == FloatType(32)


def test_parse_memref_types():
    assert parse_type("memref<f64>") == MemRefType(F64)
    assert parse_type("rmemref<i64>") == MemRefType(I64, remote=True)


def test_parse_struct_type():
    t = parse_type("!edge<src: i64, w: f64>")
    assert isinstance(t, StructType)
    assert t.name == "edge"
    assert t.field_type("w") == F64


def test_parse_bad_type():
    with pytest.raises(IRError):
        parse_type("banana")


def _roundtrip(module):
    text = print_module(module)
    reparsed = parse_module(text)
    verify(reparsed)
    assert print_module(reparsed) == text
    return reparsed


def test_roundtrip_simple_function():
    b = IRBuilder()
    with b.func("f", [INDEX], [INDEX], ["x"]) as fn:
        y = b.add(fn.args[0], 1)
        b.ret([y])
    _roundtrip(b.module)


def test_roundtrip_loop_with_iter_args():
    b = IRBuilder()
    with b.func("main", result_types=[F64]):
        arr = b.alloc(F64, 16, "arr")
        z = b.f64(0.0)
        with b.for_(0, 16, iter_args=[z]) as loop:
            v = b.load(arr, loop.iv)
            b.yield_([b.add(loop.args[0], v)])
        b.ret([loop.results[0]])
    _roundtrip(b.module)


def test_roundtrip_if():
    b = IRBuilder()
    with b.func("main", result_types=[INDEX]):
        c = b.cmp("lt", b.index(1), 2)
        h = b.if_(c, [INDEX])
        with h.then():
            b.yield_([b.index(1)])
        with h.else_():
            b.yield_([b.index(2)])
        b.ret([h.results[0]])
    _roundtrip(b.module)


def test_roundtrip_parallel():
    b = IRBuilder()
    with b.func("main"):
        arr = b.alloc(F64, 16, "arr")
        with b.parallel(0, 16, num_threads=4) as loop:
            b.store(1.0, arr, loop.iv)
    _roundtrip(b.module)


def test_roundtrip_remote_dialects():
    from repro.memsim.cost_model import CostModel
    from repro.transforms import convert_to_remote, insert_prefetches
    from repro.workloads import make_graph_workload

    module = make_graph_workload(num_edges=32, num_nodes=8).build_module()
    convert_to_remote(module, ["edges", "nodes"])
    insert_prefetches(module, CostModel())
    _roundtrip(module)


def test_reparsed_module_executes_identically():
    from repro.baselines import NativeMemory
    from repro.memsim.cost_model import CostModel
    from repro.runtime import Interpreter
    from repro.workloads import make_graph_workload

    wl = make_graph_workload(num_edges=200, num_nodes=50)
    module = wl.build_module()
    text = print_module(module)
    reparsed = parse_module(text)
    cost = CostModel()
    a = Interpreter(module, NativeMemory(cost, 1 << 24), wl.data_init).run()
    b = Interpreter(reparsed, NativeMemory(cost, 1 << 24), wl.data_init).run()
    assert a.results == b.results
    assert a.elapsed_ns == b.elapsed_ns


def test_parse_rejects_undefined_value():
    text = """module @m {
  func @f() {
    %0 = arith.binary(%ghost, %ghost) {kind = 'add'} : index
    func.return()
  }
}"""
    with pytest.raises(IRError):
        parse_module(text)


def test_parse_rejects_unknown_op():
    text = """module @m {
  func @f() {
    made.up()
    func.return()
  }
}"""
    with pytest.raises(IRError):
        parse_module(text)
