"""Golden-trace regression tests.

One small ``array_sum`` run per memory system with its trace digest
committed.  Any change to event ordering, event payloads, the canonical
JSONL encoding, or the simulated systems' behavior will shift the digest
and fail here -- by design.  If a change is *intentional*, re-run the
failing test, inspect the diff in behavior, and update the constant.

AIFM runs at a larger local budget because its per-element remotable
metadata (16 B per 8 B element) is 2x the data footprint; at 0.5x it
deterministically fails allocation (the Fig. 18 effect, covered by the
sweep tests), which would leave almost nothing in the trace.
"""

from __future__ import annotations

import pytest

from repro.bench.harness import BASELINE_SYSTEMS, ModuleMemo
from repro.core import MiraController, run_on_baseline, run_plan
from repro.memsim.cost_model import CostModel
from repro.obs import Tracer
from repro.workloads import make_workload

COST = CostModel()
NUM_ELEMS = 2048

#: system -> (sha256 digest of the canonical event lines, event count)
# re-pinned when attribution fields were added to existing events
# (sec.open overhead constants, swap.fault kern, evict wb/ov, async net
# issue, fault.inject timeout, prof.snapshot bd) and when ctrl.iter's
# iteration field was renamed k -> it (k collided with the reserved JSONL
# kind key and clobbered it on export); event counts unchanged
GOLDEN = {
    "fastswap": (
        "367039e3e074e472e017be25e28460ab61a37c54c25199edf31fa95bd91d598d",
        2056,
    ),
    "leap": (
        "8efdc3f811792e5e89bb4076b887dab16f328d72504cef152ddaa9480d4d260c",
        2057,
    ),
    "aifm": (
        "5ec45a712d48195550bda6501629eb9d169256b6fb99ef6677964dc8354044ec",
        5122,
    ),
    "mira": (
        "869e3c18e8589a638097be40ce3dd39066da35fec35dc256ba60c9e6198ac546",
        6204,
    ),
}


def _traced_run(system: str) -> Tracer:
    workload = make_workload("array_sum", num_elems=NUM_ELEMS)
    memo = ModuleMemo(workload)
    ratio = 2.5 if system == "aifm" else 0.5
    local = max(4096, int(memo.footprint_bytes * ratio))
    tracer = Tracer()
    if system == "mira":
        controller = MiraController(
            memo.fresh,
            COST,
            local,
            data_init=workload.data_init,
            entry=workload.entry,
            max_iterations=1,
            tracer=tracer,
        )
        program = controller.optimize()
        result = run_plan(
            program.module, COST, local, data_init=workload.data_init,
            entry=workload.entry, tracer=tracer,
        )
    else:
        result = run_on_baseline(
            memo.module,
            BASELINE_SYSTEMS[system](COST, local),
            workload.data_init,
            entry=workload.entry,
            tracer=tracer,
        )
    workload.verify_results(result.results)
    return tracer


@pytest.mark.parametrize("system", sorted(GOLDEN))
def test_golden_trace_digest(system, monkeypatch):
    # the CI prefetch matrix exports REPRO_PREFETCH; goldens pin the
    # *default* policy, so the knob must not leak in here
    monkeypatch.delenv("REPRO_PREFETCH", raising=False)
    tracer = _traced_run(system)
    digest, events = GOLDEN[system]
    assert (tracer.digest(), len(tracer)) == (digest, events), (
        f"{system}: trace diverged from the committed golden digest; if the "
        f"behavior change is intentional, update GOLDEN with "
        f"({tracer.digest()!r}, {len(tracer)})"
    )


def test_golden_traces_cover_event_variety(monkeypatch):
    """Meta-check: the golden runs exercise a broad slice of the schema, so
    digest stability is a meaningful guarantee."""
    monkeypatch.delenv("REPRO_PREFETCH", raising=False)
    kinds = set()
    for system in GOLDEN:
        kinds.update(kind for kind, _t, _fields in _traced_run(system).events)
    expected = {
        "cache.hit", "cache.miss", "cache.evict", "swap.fault", "net.recv",
        "sec.open", "sec.assign", "obj.alloc", "prof.snapshot", "ctrl.iter",
    }
    missing = expected - kinds
    assert not missing, f"golden runs no longer emit: {sorted(missing)}"
