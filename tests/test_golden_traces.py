"""Golden-trace regression tests.

One small ``array_sum`` run per memory system with its trace digest
committed.  Any change to event ordering, event payloads, the canonical
JSONL encoding, or the simulated systems' behavior will shift the digest
and fail here -- by design.  If a change is *intentional*, re-run the
failing test, inspect the diff in behavior, and update the constant.

AIFM runs at a larger local budget because its per-element remotable
metadata (16 B per 8 B element) is 2x the data footprint; at 0.5x it
deterministically fails allocation (the Fig. 18 effect, covered by the
sweep tests), which would leave almost nothing in the trace.
"""

from __future__ import annotations

import pytest

from repro.bench.harness import BASELINE_SYSTEMS, ModuleMemo
from repro.core import MiraController, run_on_baseline, run_plan
from repro.memsim.cost_model import CostModel
from repro.obs import Tracer
from repro.workloads import make_workload

COST = CostModel()
NUM_ELEMS = 2048

#: system -> (sha256 digest of the canonical event lines, event count)
GOLDEN = {
    "fastswap": (
        "8da5c1fd58bcf555994e68f130ccc3e678658de4eecad82025623b08b197fa2a",
        2056,
    ),
    "leap": (
        "fcb12794fd0cfaffa435e3932a73cc82d370bab4ad30ad9b99e4f1a685eff729",
        2057,
    ),
    "aifm": (
        "64789342cb5538b1199795bd1f6dbc4d5efadd9ef1fa95e06390675ea4460132",
        5122,
    ),
    "mira": (
        "dc6bb984926f7d5a1a488e0a9324236f656cdb25cc7d8afc3eeca8873eb1b345",
        6204,
    ),
}


def _traced_run(system: str) -> Tracer:
    workload = make_workload("array_sum", num_elems=NUM_ELEMS)
    memo = ModuleMemo(workload)
    ratio = 2.5 if system == "aifm" else 0.5
    local = max(4096, int(memo.footprint_bytes * ratio))
    tracer = Tracer()
    if system == "mira":
        controller = MiraController(
            memo.fresh,
            COST,
            local,
            data_init=workload.data_init,
            entry=workload.entry,
            max_iterations=1,
            tracer=tracer,
        )
        program = controller.optimize()
        result = run_plan(
            program.module, COST, local, data_init=workload.data_init,
            entry=workload.entry, tracer=tracer,
        )
    else:
        result = run_on_baseline(
            memo.module,
            BASELINE_SYSTEMS[system](COST, local),
            workload.data_init,
            entry=workload.entry,
            tracer=tracer,
        )
    workload.verify_results(result.results)
    return tracer


@pytest.mark.parametrize("system", sorted(GOLDEN))
def test_golden_trace_digest(system):
    tracer = _traced_run(system)
    digest, events = GOLDEN[system]
    assert (tracer.digest(), len(tracer)) == (digest, events), (
        f"{system}: trace diverged from the committed golden digest; if the "
        f"behavior change is intentional, update GOLDEN with "
        f"({tracer.digest()!r}, {len(tracer)})"
    )


def test_golden_traces_cover_event_variety():
    """Meta-check: the golden runs exercise a broad slice of the schema, so
    digest stability is a meaningful guarantee."""
    kinds = set()
    for system in GOLDEN:
        kinds.update(kind for kind, _t, _fields in _traced_run(system).events)
    expected = {
        "cache.hit", "cache.miss", "cache.evict", "swap.fault", "net.recv",
        "sec.open", "sec.assign", "obj.alloc", "prof.snapshot", "ctrl.iter",
    }
    missing = expected - kinds
    assert not missing, f"golden runs no longer emit: {sorted(missing)}"
