"""Virtual clock unit tests."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import MiraError
from repro.memsim.clock import VirtualClock


def test_starts_at_zero():
    assert VirtualClock().now == 0.0


def test_advance_accumulates():
    c = VirtualClock()
    c.advance(10.0, "compute")
    c.advance(5.0, "dram")
    assert c.now == 15.0
    assert c.breakdown() == {"compute": 10.0, "dram": 5.0}


def test_advance_negative_rejected():
    with pytest.raises(MiraError):
        VirtualClock().advance(-1.0)


def test_wait_until_future():
    c = VirtualClock()
    c.advance(10.0)
    c.wait_until(25.0, "miss_wait")
    assert c.now == 25.0
    assert c.category("miss_wait") == 15.0


def test_wait_until_past_is_noop():
    c = VirtualClock()
    c.advance(10.0)
    c.wait_until(5.0)
    assert c.now == 10.0


def test_category_missing_is_zero():
    assert VirtualClock().category("nope") == 0.0


def test_reset():
    c = VirtualClock()
    c.advance(10.0, "x")
    c.reset()
    assert c.now == 0.0
    assert c.breakdown() == {}


def test_fork_starts_at_parent_time_with_empty_breakdown():
    c = VirtualClock()
    c.advance(100.0, "compute")
    f = c.fork()
    assert f.now == 100.0
    assert f.breakdown() == {}


def test_join_takes_max_and_merges():
    c = VirtualClock()
    c.advance(100.0, "compute")
    f1, f2 = c.fork(), c.fork()
    f1.advance(50.0, "dram")
    f2.advance(80.0, "dram")
    c.join(f1)
    c.join(f2)
    assert c.now == 180.0
    assert c.category("dram") == 130.0


def test_join_earlier_clock_keeps_time():
    c = VirtualClock()
    c.advance(100.0)
    f = c.fork()
    c.advance(500.0)
    c.join(f)
    assert c.now == 600.0


@given(st.lists(st.floats(min_value=0.0, max_value=1e9), max_size=50))
def test_advance_monotone(durations):
    c = VirtualClock()
    prev = 0.0
    for d in durations:
        c.advance(d)
        assert c.now >= prev
        prev = c.now
    assert c.now == pytest.approx(sum(durations))
