"""Engine parity: the compiled engine must be bit-identical to the
reference interpreter.

The block-compiled engine (``repro/runtime/engine.py``) is a pure
performance optimization; its contract is that every observable output --
program results, total virtual time, and the per-category breakdown -- is
*exactly* equal to the reference tree-walker's, on every workload and
every memory system.  These tests run each paper workload under both
engines (native plus all four systems at two local-memory ratios) and
compare complete run fingerprints with ``==``: no tolerances anywhere.
"""

from __future__ import annotations

import pytest

from repro.baselines import NativeMemory
from repro.bench.harness import BASELINE_SYSTEMS, ModuleMemo, effective_ns
from repro.core import MiraController, run_on_baseline, run_plan
from repro.errors import AllocationError
from repro.memsim.cost_model import CostModel
from repro.workloads import make_workload

COST = CostModel()
RATIOS = (0.25, 0.6)
SYSTEMS = ("fastswap", "leap", "aifm", "mira")

#: small but structurally faithful instances of the five paper workloads
WORKLOADS: dict[str, dict] = {
    "graph_traversal": {"num_edges": 1500, "num_nodes": 500},
    "dataframe": {"num_rows": 2048},
    "gpt2": {
        "layers": 3,
        "d_model": 64,
        "seq_len": 32,
        "batch": 2,
        "passes": 1,
        "warmup_passes": 1,
    },
    "mcf": {"num_nodes": 2048, "num_arcs": 2048, "iterations": 1, "chases": 32},
    "array_sum": {"num_elems": 4096},
}


def _run_fingerprint(result, workload):
    workload.verify_results(result.results)
    return {
        "results": list(result.results),
        "elapsed_ns": result.elapsed_ns,
        "effective_ns": effective_ns(result),
        "breakdown": result.breakdown,
    }


def _system_fingerprint(workload, memo, system, ratio):
    local = max(4096, int(memo.footprint_bytes * ratio))
    if system == "mira":
        controller = MiraController(
            memo.fresh,
            COST,
            local,
            data_init=workload.data_init,
            entry=workload.entry,
            max_iterations=1,
        )
        program = controller.optimize()
        result = run_plan(
            program.module, COST, local, data_init=workload.data_init,
            entry=workload.entry,
        )
        return _run_fingerprint(result, workload)
    cls = BASELINE_SYSTEMS[system]
    try:
        result = run_on_baseline(
            memo.module, cls(COST, local), workload.data_init, entry=workload.entry
        )
    except AllocationError as e:
        # AIFM's metadata failures (Fig. 18) must reproduce identically too
        return {"failed": str(e)}
    return _run_fingerprint(result, workload)


def _fingerprint(name: str) -> dict:
    """Everything observable about one workload under the current engine."""
    workload = make_workload(name, **WORKLOADS[name])
    memo = ModuleMemo(workload)
    native = run_on_baseline(
        memo.module,
        NativeMemory(COST, 2 * memo.footprint_bytes + (1 << 20)),
        workload.data_init,
        entry=workload.entry,
    )
    fp = {"native": _run_fingerprint(native, workload)}
    for ratio in RATIOS:
        for system in SYSTEMS:
            fp[f"{system}@{ratio}"] = _system_fingerprint(
                workload, memo, system, ratio
            )
    return fp


@pytest.mark.parametrize("name", sorted(WORKLOADS))
def test_engines_bit_identical(name, monkeypatch):
    monkeypatch.setenv("REPRO_ENGINE", "reference")
    reference = _fingerprint(name)
    monkeypatch.setenv("REPRO_ENGINE", "compiled")
    compiled = _fingerprint(name)
    assert set(reference) == set(compiled)
    for point in reference:
        assert reference[point] == compiled[point], (
            f"{name}: engines diverge at {point}"
        )


def test_engine_selection(monkeypatch):
    """The env knob actually selects the engine (guards against a future
    regression silently running reference twice)."""
    from repro.runtime.interpreter import Interpreter

    workload = make_workload("array_sum", num_elems=64)
    module = workload.build_module()
    monkeypatch.setenv("REPRO_ENGINE", "reference")
    ref = Interpreter(module, NativeMemory(COST, 1 << 20), workload.data_init)
    assert ref.engine_name == "reference" and ref._engine is None
    monkeypatch.setenv("REPRO_ENGINE", "compiled")
    comp = Interpreter(module, NativeMemory(COST, 1 << 20), workload.data_init)
    assert comp.engine_name == "compiled" and comp._engine is not None
