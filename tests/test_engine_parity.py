"""Engine parity: every execution engine must be bit-identical to the
reference interpreter.

The block-compiled engine (``repro/runtime/engine.py``) and the
source-lowering codegen engine (``repro/runtime/codegen.py``) are pure
performance optimizations; their contract is that every observable
output -- program results, total virtual time, and the per-category
breakdown -- is *exactly* equal to the reference tree-walker's, on every
workload and every memory system.  These tests run each paper workload
under all three engines (native plus all four systems at two
local-memory ratios) and compare complete run fingerprints with ``==``:
no tolerances anywhere.
"""

from __future__ import annotations

import random

import pytest

from repro.baselines import NativeMemory
from repro.bench.harness import BASELINE_SYSTEMS, ModuleMemo, effective_ns
from repro.core import MiraController, run_on_baseline, run_plan
from repro.errors import AllocationError
from repro.ir.builder import IRBuilder
from repro.ir.types import FloatType
from repro.ir.verifier import verify
from repro.memsim.cost_model import CostModel
from repro.obs import Tracer
from repro.workloads import make_workload

COST = CostModel()
RATIOS = (0.25, 0.6)
SYSTEMS = ("fastswap", "leap", "aifm", "mira")

#: small but structurally faithful instances of the five paper workloads
WORKLOADS: dict[str, dict] = {
    "graph_traversal": {"num_edges": 1500, "num_nodes": 500},
    "dataframe": {"num_rows": 2048},
    "gpt2": {
        "layers": 3,
        "d_model": 64,
        "seq_len": 32,
        "batch": 2,
        "passes": 1,
        "warmup_passes": 1,
    },
    "mcf": {"num_nodes": 2048, "num_arcs": 2048, "iterations": 1, "chases": 32},
    "array_sum": {"num_elems": 4096},
}


def _run_fingerprint(result, workload):
    workload.verify_results(result.results)
    return {
        "results": list(result.results),
        "elapsed_ns": result.elapsed_ns,
        "effective_ns": effective_ns(result),
        "breakdown": result.breakdown,
    }


def _system_fingerprint(workload, memo, system, ratio):
    local = max(4096, int(memo.footprint_bytes * ratio))
    if system == "mira":
        controller = MiraController(
            memo.fresh,
            COST,
            local,
            data_init=workload.data_init,
            entry=workload.entry,
            max_iterations=1,
        )
        program = controller.optimize()
        result = run_plan(
            program.module, COST, local, data_init=workload.data_init,
            entry=workload.entry,
        )
        return _run_fingerprint(result, workload)
    cls = BASELINE_SYSTEMS[system]
    try:
        result = run_on_baseline(
            memo.module, cls(COST, local), workload.data_init, entry=workload.entry
        )
    except AllocationError as e:
        # AIFM's metadata failures (Fig. 18) must reproduce identically too
        return {"failed": str(e)}
    return _run_fingerprint(result, workload)


def _fingerprint(name: str) -> dict:
    """Everything observable about one workload under the current engine."""
    workload = make_workload(name, **WORKLOADS[name])
    memo = ModuleMemo(workload)
    native = run_on_baseline(
        memo.module,
        NativeMemory(COST, 2 * memo.footprint_bytes + (1 << 20)),
        workload.data_init,
        entry=workload.entry,
    )
    fp = {"native": _run_fingerprint(native, workload)}
    for ratio in RATIOS:
        for system in SYSTEMS:
            fp[f"{system}@{ratio}"] = _system_fingerprint(
                workload, memo, system, ratio
            )
    return fp


@pytest.mark.parametrize("name", sorted(WORKLOADS))
def test_engines_bit_identical(name, monkeypatch):
    monkeypatch.setenv("REPRO_ENGINE", "reference")
    reference = _fingerprint(name)
    for engine in ("compiled", "codegen"):
        monkeypatch.setenv("REPRO_ENGINE", engine)
        other = _fingerprint(name)
        assert set(reference) == set(other)
        for point in reference:
            assert reference[point] == other[point], (
                f"{name}: {engine} diverges from reference at {point}"
            )


# -- randomized differential fuzzing ----------------------------------------
#
# Small random IR programs, generated deterministically from a seed, run
# under both engines on native memory and on FastSwap at a tight local
# ratio.  The fingerprint adds the *trace digest* to the parity contract:
# both engines must emit byte-identical event streams, not just identical
# end-of-run aggregates.

F64 = FloatType(64)


def _build_fuzz_module(seed: int):
    """One random program: an init loop, then 4-8 random statements over
    1-2 f64 arrays, returning an f64 accumulator."""
    rng = random.Random(seed)
    b = IRBuilder()
    n = rng.choice((64, 96, 128, 192, 256))
    num_arrays = rng.choice((1, 2))
    with b.func("main", result_types=[F64]):
        # remotable allocations so rmem hint ops (prefetch/flush/evict)
        # are legal; native memory simply ignores the hints
        arrays = [
            b.ralloc(F64, n, f"arr{a}") for a in range(num_arrays)
        ]
        # deterministic init so loads see defined values
        with b.for_(0, n) as loop:
            fv = b.cast(loop.iv, F64)
            for a, arr in enumerate(arrays):
                b.store(b.add(b.mul(fv, float(a + 1)), 1.0), arr, loop.iv)
        total = b.f64(0.0)
        for _ in range(rng.randint(4, 8)):
            stmt = rng.choice(
                ("sum", "write", "if", "hints", "work", "touch", "parallel")
            )
            arr = rng.choice(arrays)
            if stmt == "sum":
                k = rng.randint(0, n - 1)
                stride = rng.choice((1, 2, 3, 7))
                with b.for_(0, n, step=stride, iter_args=[total]) as loop:
                    idx = b.rem(b.add(loop.iv, k), n)
                    x = b.load(arr, idx)
                    b.yield_([b.add(loop.args[0], x)])
                total = loop.results[0]
            elif stmt == "write":
                stride = rng.choice((1, 3, 5))
                with b.for_(0, n, step=stride) as loop:
                    fv = b.cast(loop.iv, F64)
                    b.store(b.mul(fv, float(rng.randint(1, 9))), arr, loop.iv)
            elif stmt == "if":
                cond = b.cmp("lt", total, float(rng.randint(0, 10_000)))
                h = b.if_(cond, result_types=[F64])
                with h.then():
                    b.yield_([b.add(total, float(rng.randint(1, 5)))])
                with h.else_():
                    b.yield_([b.mul(total, 0.5)])
                total = h.results[0]
            elif stmt == "hints":
                idx = rng.randint(0, n - 1)
                count = rng.randint(1, 16)
                kind = rng.choice(("prefetch", "flush", "evict"))
                if kind == "prefetch":
                    b.prefetch(arr, idx, count)
                elif kind == "flush":
                    b.flush(arr, idx, count)
                else:
                    b.evict_hint(arr, idx, count)
            elif stmt == "work":
                b.work(float(rng.randint(1, 200)))
            elif stmt == "touch":
                length = rng.randint(1, n) * 8
                start = rng.randint(0, n * 8 - length)
                b.touch(arr, start, length, is_write=rng.random() < 0.3)
            else:  # parallel
                with b.parallel(0, rng.choice((8, 16)), num_threads=2) as loop:
                    fv = b.cast(loop.iv, F64)
                    b.store(fv, arr, loop.iv)
                    b.work(float(rng.randint(1, 20)))
        b.ret([total])
    verify(b.module)
    footprint = num_arrays * n * 8
    return b.module, footprint


def _fuzz_fingerprint(seed: int, engine: str) -> dict:
    import os

    os.environ["REPRO_ENGINE"] = engine
    try:
        fp = {}
        for system in ("native", "fastswap"):
            module, footprint = _build_fuzz_module(seed)
            if system == "native":
                memsys = NativeMemory(COST, 2 * footprint + (1 << 20))
            else:
                memsys = BASELINE_SYSTEMS["fastswap"](
                    COST, max(4096, int(footprint * 0.3))
                )
            tracer = Tracer()
            result = run_on_baseline(module, memsys, tracer=tracer)
            fp[system] = {
                "results": list(result.results),
                "elapsed_ns": result.elapsed_ns,
                "breakdown": result.breakdown,
                "trace_digest": tracer.digest(),
                "trace_events": len(tracer),
            }
        return fp
    finally:
        os.environ.pop("REPRO_ENGINE", None)


def _assert_fuzz_parity(seed: int) -> None:
    reference = _fuzz_fingerprint(seed, "reference")
    for engine in ("compiled", "codegen"):
        other = _fuzz_fingerprint(seed, engine)
        for system in reference:
            assert reference[system] == other[system], (
                f"seed {seed}: {engine} diverges from reference on {system}"
            )


@pytest.mark.parametrize("seed", range(8))
def test_fuzz_engines_bit_identical(seed, monkeypatch):
    monkeypatch.delenv("REPRO_ENGINE", raising=False)
    _assert_fuzz_parity(seed)


@pytest.mark.slow
@pytest.mark.parametrize("seed", range(8, 40))
def test_fuzz_engines_bit_identical_deep(seed, monkeypatch):
    monkeypatch.delenv("REPRO_ENGINE", raising=False)
    _assert_fuzz_parity(seed)


# -- parity under fault injection --------------------------------------------
#
# The fault injector consumes its RNG only inside shared Network/FarNode
# code, which both engines call in identical order at identical virtual
# times -- so a seeded fault plan must leave the engines byte-identical:
# same results, same elapsed time, same breakdown (including the
# net_timeout/net_backoff categories), same JSONL trace digest.


def _faulty_fingerprint(name: str, system: str, plan, engine: str) -> dict:
    import os

    from repro.faults.chaos import CHAOS_WORKLOADS

    os.environ["REPRO_ENGINE"] = engine
    try:
        workload = make_workload(name, **CHAOS_WORKLOADS[name])
        memo = ModuleMemo(workload)
        local = max(4096, int(memo.footprint_bytes * 0.25))
        tracer = Tracer()
        if system == "mira":
            controller = MiraController(
                memo.fresh,
                COST,
                local,
                data_init=workload.data_init,
                entry=workload.entry,
                max_iterations=1,
            )
            program = controller.optimize()
            result = run_plan(
                program.module, COST, local, data_init=workload.data_init,
                entry=workload.entry, tracer=tracer, faults=plan,
            )
        else:
            result = run_on_baseline(
                memo.module,
                BASELINE_SYSTEMS[system](COST, local),
                workload.data_init,
                entry=workload.entry,
                tracer=tracer,
                faults=plan,
            )
        workload.verify_results(result.results)
        stats = result.memsys.network.faults.stats
        return {
            "results": list(result.results),
            "elapsed_ns": result.elapsed_ns,
            "breakdown": result.breakdown,
            "trace_digest": tracer.digest(),
            "trace_events": len(tracer),
            "fault_stats": vars(stats).copy(),
        }
    finally:
        os.environ.pop("REPRO_ENGINE", None)


@pytest.mark.parametrize("system", ("fastswap", "mira"))
@pytest.mark.parametrize("name", ("graph_traversal", "mcf"))
def test_engines_bit_identical_under_faults(name, system, monkeypatch):
    from repro.faults import FaultPlan

    monkeypatch.delenv("REPRO_ENGINE", raising=False)
    plan = FaultPlan.generate(1, intensity="medium", horizon_ns=2e7)
    reference = _faulty_fingerprint(name, system, plan, "reference")
    for engine in ("compiled", "codegen"):
        other = _faulty_fingerprint(name, system, plan, engine)
        assert reference == other, (
            f"{name}/{system}: {engine} diverges under faults"
        )
    # the plan actually did something, on every engine identically
    assert reference["fault_stats"]["retries"] > 0
    assert reference["breakdown"].get("net_timeout", 0.0) > 0.0


@pytest.mark.slow
@pytest.mark.parametrize("seed", (2, 3, 4))
def test_fault_parity_across_seeds(seed, monkeypatch):
    from repro.faults import FaultPlan

    monkeypatch.delenv("REPRO_ENGINE", raising=False)
    plan = FaultPlan.generate(seed, intensity="heavy", horizon_ns=2e7)
    reference = _faulty_fingerprint("graph_traversal", "mira", plan, "reference")
    for engine in ("compiled", "codegen"):
        assert reference == _faulty_fingerprint(
            "graph_traversal", "mira", plan, engine
        )


# -- prefetch-policy parity ---------------------------------------------------
#
# Policies (repro.prefetch) run inside shared MemorySystem code, so every
# engine drives them through the identical record/plan/feedback sequence
# at identical virtual times.  The fingerprint therefore adds the trace
# digest (prefetch.plan / prefetch.feedback events included) and the
# policy's own counters to the parity contract.

PREFETCH_POLICIES = ("markov", "programmed", "learned")
PREFETCH_WORKLOADS = {
    "array_sum": {"num_elems": 4096},
    "dataframe": {"num_rows": 2048, "num_locations": 2048},
}


def _policy_fingerprint(name: str, policy: str, engine: str) -> dict:
    import os

    from repro.baselines.leap import Leap

    os.environ["REPRO_ENGINE"] = engine
    try:
        workload = make_workload(name, **PREFETCH_WORKLOADS[name])
        memo = ModuleMemo(workload)
        local = max(4096, int(memo.footprint_bytes * 0.5))
        tracer = Tracer()
        system = Leap(COST, local, policy=policy)
        result = run_on_baseline(
            memo.module, system, workload.data_init,
            entry=workload.entry, tracer=tracer,
        )
        workload.verify_results(result.results)
        return {
            "results": list(result.results),
            "elapsed_ns": result.elapsed_ns,
            "breakdown": result.breakdown,
            "trace_digest": tracer.digest(),
            "trace_events": len(tracer),
            "policy": system.policy.snapshot(),
            "swap": vars(system.swap.stats).copy(),
        }
    finally:
        os.environ.pop("REPRO_ENGINE", None)


@pytest.mark.parametrize("policy", PREFETCH_POLICIES)
@pytest.mark.parametrize("name", sorted(PREFETCH_WORKLOADS))
def test_policy_engines_bit_identical(name, policy, monkeypatch):
    monkeypatch.delenv("REPRO_ENGINE", raising=False)
    monkeypatch.delenv("REPRO_PREFETCH", raising=False)
    reference = _policy_fingerprint(name, policy, "reference")
    for engine in ("compiled", "codegen"):
        other = _policy_fingerprint(name, policy, engine)
        assert reference == other, (
            f"{name}/{policy}: {engine} diverges from reference"
        )


def test_policy_env_knob_parity(monkeypatch):
    """``REPRO_PREFETCH`` selects Leap's policy; the env path must be
    byte-identical to passing the same policy explicitly."""
    monkeypatch.delenv("REPRO_ENGINE", raising=False)
    monkeypatch.setenv("REPRO_PREFETCH", "markov")
    via_env = _policy_fingerprint("array_sum", None, "compiled")
    monkeypatch.delenv("REPRO_PREFETCH")
    explicit = _policy_fingerprint("array_sum", "markov", "compiled")
    assert via_env == explicit


def test_fastswap_policy_engines_bit_identical(monkeypatch):
    """A policy on the plain FastSwap chassis (no Leap fault surcharge)
    is engine-identical too."""
    import os

    monkeypatch.delenv("REPRO_ENGINE", raising=False)

    def fingerprint(engine):
        os.environ["REPRO_ENGINE"] = engine
        try:
            workload = make_workload("array_sum", num_elems=4096)
            memo = ModuleMemo(workload)
            local = max(4096, int(memo.footprint_bytes * 0.5))
            tracer = Tracer()
            system = BASELINE_SYSTEMS["fastswap"](COST, local, policy="learned")
            result = run_on_baseline(
                memo.module, system, workload.data_init,
                entry=workload.entry, tracer=tracer,
            )
            return {
                "results": list(result.results),
                "elapsed_ns": result.elapsed_ns,
                "trace_digest": tracer.digest(),
                "policy": system.policy.snapshot(),
            }
        finally:
            os.environ.pop("REPRO_ENGINE", None)

    reference = fingerprint("reference")
    for engine in ("compiled", "codegen"):
        assert reference == fingerprint(engine)


def test_run_plan_prefetch_policy_engines_bit_identical(monkeypatch):
    """``run_plan(prefetch_policy=...)`` attaches a policy to the Mira
    CacheManager's swap path and injects the lowered prefetch program at
    plan time; all engines must agree byte-for-byte."""
    import os

    monkeypatch.delenv("REPRO_ENGINE", raising=False)

    def fingerprint(engine):
        os.environ["REPRO_ENGINE"] = engine
        try:
            workload = make_workload("array_sum", num_elems=4096)
            memo = ModuleMemo(workload)
            local = max(4096, int(memo.footprint_bytes * 0.5))
            tracer = Tracer()
            result = run_plan(
                memo.fresh(), COST, local, data_init=workload.data_init,
                entry=workload.entry, tracer=tracer,
                prefetch_policy="programmed",
            )
            workload.verify_results(result.results)
            return {
                "results": list(result.results),
                "elapsed_ns": result.elapsed_ns,
                "trace_digest": tracer.digest(),
                "policy": result.memsys.policy.snapshot(),
            }
        finally:
            os.environ.pop("REPRO_ENGINE", None)

    reference = fingerprint("reference")
    for engine in ("compiled", "codegen"):
        assert reference == fingerprint(engine)


def test_engine_selection(monkeypatch):
    """The env knob actually selects the engine (guards against a future
    regression silently running reference twice)."""
    from repro.runtime.interpreter import Interpreter

    workload = make_workload("array_sum", num_elems=64)
    module = workload.build_module()
    monkeypatch.setenv("REPRO_ENGINE", "reference")
    ref = Interpreter(module, NativeMemory(COST, 1 << 20), workload.data_init)
    assert ref.engine_name == "reference" and ref._engine is None
    monkeypatch.setenv("REPRO_ENGINE", "compiled")
    comp = Interpreter(module, NativeMemory(COST, 1 << 20), workload.data_init)
    assert comp.engine_name == "compiled" and comp._engine is not None
    monkeypatch.setenv("REPRO_ENGINE", "codegen")
    cg = Interpreter(module, NativeMemory(COST, 1 << 20), workload.data_init)
    assert cg.engine_name == "codegen" and cg._engine is not None
    from repro.runtime.codegen import CodegenEngine

    assert isinstance(cg._engine, CodegenEngine)
