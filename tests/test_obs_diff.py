"""Differential trace comparison: first-divergence pinpointing, count
and attribution deltas, and the CLI contract (0 identical / 1 divergent /
2 unreadable)."""

from __future__ import annotations

import json

import pytest

from repro.bench.harness import BASELINE_SYSTEMS, ModuleMemo
from repro.core import run_on_baseline
from repro.memsim.cost_model import CostModel
from repro.obs import Tracer
from repro.obs.diff import diff_traces, first_divergence, main, render_diff
from repro.workloads import make_workload

COST = CostModel()


@pytest.fixture(scope="module")
def trace_events() -> list[dict]:
    workload = make_workload("array_sum", num_elems=1024)
    memo = ModuleMemo(workload)
    tracer = Tracer()
    run_on_baseline(
        memo.module,
        BASELINE_SYSTEMS["fastswap"](COST, max(4096, memo.footprint_bytes // 4)),
        workload.data_init,
        entry=workload.entry,
        tracer=tracer,
    )
    return [json.loads(line) for line in tracer.lines()]


def _write_trace(path, events) -> None:
    with open(path, "w", encoding="utf-8") as f:
        f.write(json.dumps({"schema": "repro.obs/v1", "events": len(events)}))
        f.write("\n")
        for rec in events:
            f.write(json.dumps(rec, sort_keys=True, separators=(",", ":")))
            f.write("\n")


# -- library -------------------------------------------------------------------


def test_self_diff_is_identical(trace_events):
    diff = diff_traces(trace_events, trace_events)
    assert diff["identical"] is True
    assert diff["first_divergence"] is None
    assert diff["kind_deltas"] == {} and diff["bucket_deltas"] == {}
    assert diff["digest_a"] == diff["digest_b"]
    assert diff["events_a"] == diff["events_b"] == len(trace_events)


def test_first_divergence_pinpoints_mutated_field(trace_events):
    # mutate one numeric field of one mid-stream event
    mutated = [dict(rec) for rec in trace_events]
    idx = len(mutated) // 2
    mutated[idx]["t"] = mutated[idx]["t"] + 123.0
    diff = diff_traces(trace_events, mutated)
    assert diff["identical"] is False
    fd = diff["first_divergence"]
    assert fd["seq"] == idx
    assert fd["kind_a"] == fd["kind_b"] == trace_events[idx]["k"]
    assert fd["fields"] == ["t"]
    assert fd["event_b"]["t"] == trace_events[idx]["t"] + 123.0
    # a pure value change leaves the per-kind counts alone
    assert diff["kind_deltas"] == {}


def test_first_divergence_reports_kind_change(trace_events):
    mutated = [dict(rec) for rec in trace_events]
    idx = next(i for i, r in enumerate(mutated) if r["k"] == "swap.fault")
    mutated[idx]["k"] = "cache.hit"
    diff = diff_traces(trace_events, mutated)
    fd = diff["first_divergence"]
    assert fd["seq"] == idx
    assert (fd["kind_a"], fd["kind_b"]) == ("swap.fault", "cache.hit")
    assert "k" in fd["fields"]
    assert diff["kind_deltas"]["cache.hit"] == 1
    assert diff["kind_deltas"]["swap.fault"] == -1


def test_first_divergence_ignores_sequence_index_field(trace_events):
    renumbered = [dict(rec, i=rec.get("i", 0) + 1000) for rec in trace_events]
    assert first_divergence(trace_events, renumbered) is None


def test_truncated_trace_reports_missing_tail(trace_events):
    truncated = trace_events[:-3]
    diff = diff_traces(trace_events, truncated)
    fd = diff["first_divergence"]
    assert fd["fields"] == ["<missing event>"]
    assert fd["seq"] == len(truncated)
    assert fd["tail_side"] == "a" and fd["tail_events"] == 3
    assert fd["event_b"] is None
    assert fd["kind_a"] == trace_events[len(truncated)]["k"]


def test_bucket_deltas_reflect_wait_change(trace_events):
    mutated = [dict(rec) for rec in trace_events]
    idx = next(i for i, r in enumerate(mutated) if r["k"] == "swap.fault")
    mutated[idx]["wait"] = mutated[idx].get("wait", 0.0) + 500.0
    diff = diff_traces(trace_events, mutated)
    assert not diff["identical"]
    assert any(d != 0 for d in diff["bucket_deltas"].values())


def test_render_diff_text(trace_events):
    same = render_diff(diff_traces(trace_events, trace_events), "x", "y")
    assert "identical" in same and "x vs y" in same
    mutated = [dict(rec) for rec in trace_events]
    mutated[5]["t"] = -1.0
    text = render_diff(diff_traces(trace_events, mutated))
    assert "DIVERGENT" in text
    assert "first divergence at seq 5" in text
    assert "differing fields: t" in text


# -- CLI -----------------------------------------------------------------------


def test_cli_exit_0_on_identical(tmp_path, capsys, trace_events):
    a = tmp_path / "a.jsonl"
    _write_trace(a, trace_events)
    assert main([str(a), str(a)]) == 0
    assert "identical" in capsys.readouterr().out


def test_cli_exit_1_on_divergent_with_pinpoint(tmp_path, capsys, trace_events):
    a, b = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
    _write_trace(a, trace_events)
    mutated = [dict(rec) for rec in trace_events]
    idx = len(mutated) // 3
    mutated[idx]["t"] = mutated[idx]["t"] + 7.0
    _write_trace(b, mutated)
    assert main([str(a), str(b)]) == 1
    out = capsys.readouterr().out
    assert f"first divergence at seq {idx}" in out
    assert "differing fields: t" in out


def test_cli_json_output(tmp_path, capsys, trace_events):
    a, b = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
    _write_trace(a, trace_events)
    _write_trace(b, trace_events[:-1])
    assert main([str(a), str(b), "--json"]) == 1
    diff = json.loads(capsys.readouterr().out)
    assert diff["identical"] is False
    assert diff["first_divergence"]["fields"] == ["<missing event>"]
    assert diff["events_a"] - diff["events_b"] == 1


def test_cli_exit_2_on_unreadable_file(tmp_path, capsys, trace_events):
    a = tmp_path / "a.jsonl"
    _write_trace(a, trace_events)
    assert main([str(a), str(tmp_path / "nope.jsonl")]) == 2
    assert "cannot read trace" in capsys.readouterr().err
