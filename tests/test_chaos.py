"""Tier-1 chaos smoke: the paper workloads survive injected faults.

The full matrix lives in ``benchmarks/chaos_smoke.py``; here a small
slice keeps the robustness property under continuous test: every run
under a seeded fault plan completes with verified results, the slowdown
stays bounded, the reliability layer is visibly doing work, and the
whole ordeal is deterministic.
"""

import pytest

from repro.faults import FaultPlan
from repro.faults.chaos import (
    CHAOS_WORKLOADS,
    run_chaos_matrix,
    run_chaos_point,
)

#: the high-traffic workload used for single-point assertions (thousands
#: of network messages, so probabilistic faults reliably land)
BUSY = "graph_traversal"


def _plan(**overrides):
    return FaultPlan.generate(1, intensity="medium", horizon_ns=2e7, **overrides)


def test_small_matrix_completes_within_bound():
    points, violations = run_chaos_matrix(
        workloads=[BUSY, "mcf"],
        systems=("fastswap", "mira"),
        plans=[_plan()],
    )
    assert violations == []
    assert len(points) == 4
    for p in points:
        assert p.completed
        assert 1.0 - 1e-9 <= p.slowdown


def test_faults_visibly_injected():
    point = run_chaos_point(BUSY, "fastswap", _plan())
    assert point.faults["retries"] > 0
    assert point.slowdown > 1.0


def test_chaos_point_is_deterministic():
    a = run_chaos_point(BUSY, "mira", _plan(), trace=True)
    b = run_chaos_point(BUSY, "mira", _plan(), trace=True)
    assert a.faulty_ns == b.faulty_ns
    assert a.faults == b.faults
    assert a.trace_digest == b.trace_digest


def test_different_seeds_differ():
    a = run_chaos_point(BUSY, "fastswap", FaultPlan.generate(1, horizon_ns=2e7))
    b = run_chaos_point(BUSY, "fastswap", FaultPlan.generate(2, horizon_ns=2e7))
    assert a.faults != b.faults or a.faulty_ns != b.faulty_ns


@pytest.mark.slow
def test_all_five_workloads_survive_medium_chaos():
    points, violations = run_chaos_matrix(
        workloads=sorted(CHAOS_WORKLOADS),
        systems=("fastswap", "mira"),
        plans=[_plan(), FaultPlan.generate(2, intensity="light", horizon_ns=2e7)],
    )
    assert violations == []
    assert len(points) == len(CHAOS_WORKLOADS) * 2 * 2
