"""Program-analysis tests: alias, scalar evolution, access patterns,
lifetime, locality, dependence, read/write."""

import pytest

from repro.analysis.access import AccessPattern, analyze_scope, top_level_loops
from repro.analysis.alias import AliasAnalysis
from repro.analysis.dependence import adjacent_fusable_pairs, can_fuse
from repro.analysis.lifetime import LifetimeAnalysis
from repro.analysis.locality import choose_line_size, choose_structure
from repro.analysis.readwrite import readwrite_info
from repro.analysis.scev import Affine, Indirect, Invariant, Unknown, scev_of
from repro.cache.config import Structure
from repro.ir import IRBuilder, verify
from repro.ir.dialects import scf
from repro.ir.types import F64, I64, INDEX, MemRefType, StructType
from repro.memsim.cost_model import CostModel


def _graph_module(num_edges=100, num_nodes=10):
    b = IRBuilder()
    edge_t = StructType("edge", (("src", I64), ("w", F64)))
    with b.func("main", result_types=[F64]):
        edges = b.alloc(edge_t, num_edges, "edges")
        nodes = b.alloc(F64, num_nodes, "nodes")
        z = b.f64(0.0)
        with b.for_(0, num_edges, iter_args=[z]) as loop:
            s = b.cast(b.load(edges, loop.iv, field="src"), INDEX)
            v = b.load(nodes, s)
            b.store(b.add(v, 1.0), nodes, s)
            b.yield_([b.add(loop.args[0], v)])
        b.ret([loop.results[0]])
    verify(b.module)
    return b.module


# -- alias ----------------------------------------------------------------


def test_alias_alloc_points_to_itself():
    m = _graph_module()
    alias = AliasAnalysis(m)
    edges = alias.site_named("edges")
    vals = alias.values_of_site(edges)
    assert vals, "alloc result must alias its site"


def test_alias_propagates_through_calls():
    b = IRBuilder()
    ref_t = MemRefType(F64)
    with b.func("reader", [ref_t], [F64], ["a"]) as fn:
        b.ret([b.load(fn.args[0], 0)])
    with b.func("main", result_types=[F64]):
        arr = b.alloc(F64, 8, "arr")
        r = b.call("reader", [arr], [F64]).results[0]
        b.ret([r])
    verify(b.module)
    alias = AliasAnalysis(b.module)
    site = alias.site_named("arr")
    reader_arg = b.module.get("reader").args[0]
    assert site in alias.points_to(reader_arg)


def test_alias_through_select_unions():
    b = IRBuilder()
    with b.func("main"):
        a = b.alloc(F64, 8, "a")
        c = b.alloc(F64, 8, "c")
        cond = b.true()
        picked = b.select(cond, a, c)
        b.load(picked, 0)
    alias = AliasAnalysis(b.module)
    sites = alias.points_to(b.module.get("main").body.ops[3].result)
    assert {s.name for s in sites} == {"a", "c"}


def test_alias_through_loop_carried_memref():
    b = IRBuilder()
    with b.func("main"):
        a = b.alloc(F64, 8, "a")
        c = b.alloc(F64, 8, "c")
        with b.for_(0, 4, iter_args=[a]) as loop:
            cur = loop.args[0]
            b.load(cur, 0)
            b.yield_([c])
    alias = AliasAnalysis(b.module)
    loop_op = top_level_loops(b.module.get("main"))[0]
    sites = alias.points_to(loop_op.body_iter_args[0])
    assert {s.name for s in sites} == {"a", "c"}


# -- scalar evolution ---------------------------------------------------------


def _loop_and_builder():
    b = IRBuilder()
    fn_cm = b.func("f")
    fn_cm.__enter__()
    arr = b.alloc(I64, 64, "arr")
    loop_cm = b.for_(0, 64)
    handle = loop_cm.__enter__()
    return b, arr, handle.op, (fn_cm, loop_cm)


def test_scev_induction_var():
    b, arr, loop, _ = _loop_and_builder()
    assert scev_of(loop.induction_var, loop) == Affine(1, 0)


def test_scev_affine_arithmetic():
    b, arr, loop, _ = _loop_and_builder()
    iv = loop.induction_var
    e = b.add(b.mul(iv, 3), 7)
    s = scev_of(e, loop)
    assert s == Affine(3, 7)


def test_scev_invariant():
    b, arr, loop, _ = _loop_and_builder()
    outside = arr  # defined before the loop
    assert isinstance(scev_of(outside, loop), Invariant)


def test_scev_indirect():
    b, arr, loop, _ = _loop_and_builder()
    v = b.load(arr, loop.induction_var)
    idx = b.cast(v, INDEX)
    s = scev_of(idx, loop)
    assert isinstance(s, Indirect)
    assert s.source_load is v.producer


def test_scev_rem_is_unknown():
    b, arr, loop, _ = _loop_and_builder()
    e = b.rem(b.mul(loop.induction_var, 48271), 97)
    assert isinstance(scev_of(e, loop), Unknown)


# -- access patterns ---------------------------------------------------------


def test_access_patterns_graph():
    m = _graph_module()
    alias = AliasAnalysis(m)
    loop = top_level_loops(m.get("main"))[0]
    summaries = {s.site.name: s for s in analyze_scope(loop, alias).values()}
    assert summaries["edges"].pattern is AccessPattern.SEQUENTIAL
    assert summaries["nodes"].pattern is AccessPattern.INDIRECT
    assert summaries["edges"].read_only
    assert not summaries["nodes"].read_only
    assert summaries["nodes"].index_sources[0].name == "edges"


def test_access_fields_and_selective_bytes():
    m = _graph_module()
    alias = AliasAnalysis(m)
    loop = top_level_loops(m.get("main"))[0]
    edges = next(
        s for s in analyze_scope(loop, alias).values() if s.site.name == "edges"
    )
    assert edges.fields_accessed() == {"src"}
    assert edges.accessed_bytes_per_elem() == 8  # only 'src' of the 16-B edge


# -- lifetime -----------------------------------------------------------------


def test_lifetime_intervals_and_overlap():
    b = IRBuilder()
    with b.func("main"):
        a = b.alloc(F64, 8, "a")
        c = b.alloc(F64, 8, "c")
        with b.for_(0, 4) as l1:
            b.load(a, l1.iv)
        with b.for_(0, 4) as l2:
            b.load(c, l2.iv)
    alias = AliasAnalysis(b.module)
    lt = LifetimeAnalysis(b.module, alias)
    ia = lt.interval("main", alias.site_named("a"))
    ic = lt.interval("main", alias.site_named("c"))
    assert ia.last_index < ic.first_index
    assert not ia.overlaps(ic)


def test_lifetime_concurrent_groups():
    b = IRBuilder()
    with b.func("main"):
        a = b.alloc(F64, 8, "a")
        c = b.alloc(F64, 8, "c")
        with b.for_(0, 4) as loop:
            b.load(a, loop.iv)
            b.load(c, loop.iv)
    alias = AliasAnalysis(b.module)
    lt = LifetimeAnalysis(b.module, alias)
    groups = lt.concurrent_groups("main")
    assert {s.name for s in groups[0]} == {"a", "c"}


# -- locality / structure choice -----------------------------------------------


def test_structure_choice_sequential_is_direct():
    m = _graph_module()
    alias = AliasAnalysis(m)
    loop = top_level_loops(m.get("main"))[0]
    edges = next(
        s for s in analyze_scope(loop, alias).values() if s.site.name == "edges"
    )
    choice = choose_structure(edges, 4096, 64)
    assert choice.structure is Structure.DIRECT


def test_structure_choice_indirect_is_set_associative():
    m = _graph_module()
    alias = AliasAnalysis(m)
    loop = top_level_loops(m.get("main"))[0]
    nodes = next(
        s for s in analyze_scope(loop, alias).values() if s.site.name == "nodes"
    )
    choice = choose_structure(nodes, 4096, 64)
    assert choice.structure is Structure.SET_ASSOCIATIVE


def test_line_size_sequential_grows():
    m = _graph_module(num_edges=10000)
    alias = AliasAnalysis(m)
    loop = top_level_loops(m.get("main"))[0]
    cost = CostModel()
    edges = next(
        s for s in analyze_scope(loop, alias).values() if s.site.name == "edges"
    )
    nodes = next(
        s for s in analyze_scope(loop, alias).values() if s.site.name == "nodes"
    )
    assert choose_line_size(edges, cost) >= 1024
    assert choose_line_size(nodes, cost) <= 128


# -- dependence / fusion ----------------------------------------------------------


def _two_loop_module(write_second=False):
    b = IRBuilder()
    with b.func("main", result_types=[F64, F64]):
        arr = b.alloc(F64, 32, "arr")
        z1 = b.f64(0.0)
        with b.for_(0, 32, iter_args=[z1]) as l1:
            v = b.load(arr, l1.iv)
            b.yield_([b.add(l1.args[0], v)])
        z2 = b.f64(0.0)
        with b.for_(0, 32, iter_args=[z2]) as l2:
            v = b.load(arr, l2.iv)
            if write_second:
                b.store(b.add(v, 1.0), arr, l2.iv)
            b.yield_([b.add(l2.args[0], v)])
        b.ret([l1.results[0], l2.results[0]])
    verify(b.module)
    return b.module


def test_adjacent_readonly_loops_fuse():
    m = _two_loop_module()
    alias = AliasAnalysis(m)
    assert len(adjacent_fusable_pairs(m.get("main"), alias)) == 1


def test_write_dependence_blocks_fusion():
    m = _two_loop_module(write_second=True)
    alias = AliasAnalysis(m)
    assert adjacent_fusable_pairs(m.get("main"), alias) == []


def test_different_bounds_block_fusion():
    b = IRBuilder()
    with b.func("main"):
        arr = b.alloc(F64, 32, "arr")
        with b.for_(0, 32) as l1:
            b.load(arr, l1.iv)
        with b.for_(0, 16) as l2:
            b.load(arr, l2.iv)
    alias = AliasAnalysis(b.module)
    loops = top_level_loops(b.module.get("main"))
    assert not can_fuse(loops[0], loops[1], alias)


# -- read/write classification ------------------------------------------------------


def test_readwrite_info():
    b = IRBuilder()
    with b.func("main"):
        src = b.alloc(F64, 32, "src")
        dst = b.alloc(F64, 32, "dst")
        with b.for_(0, 32) as loop:
            v = b.load(src, loop.iv)
            b.store(v, dst, loop.iv)
    alias = AliasAnalysis(b.module)
    loop = top_level_loops(b.module.get("main"))[0]
    info = {i.site.name: i for i in readwrite_info(loop, alias).values()}
    assert info["src"].read_only
    assert info["dst"].write_only
    assert info["dst"].full_line_writes
