"""Swap-section tests (the page-granularity universal section)."""

import pytest

from repro.cache.swap import SwapSection
from repro.errors import ConfigError
from repro.memsim.address import PAGE_SIZE
from repro.memsim.clock import VirtualClock
from repro.memsim.cost_model import CostModel
from repro.memsim.network import Network
from repro.memsim.resources import SerialResource


def _swap(pages=4, extra_fault=0.0, lock=None):
    cost = CostModel()
    clock = VirtualClock()
    net = Network(cost, clock)
    return SwapSection(pages * PAGE_SIZE, cost, clock, net, extra_fault, lock), clock


def test_needs_at_least_one_page():
    cost = CostModel()
    clock = VirtualClock()
    with pytest.raises(ConfigError):
        SwapSection(100, cost, clock, Network(cost, clock))


def test_fault_then_hit():
    swap, clock = _swap()
    assert swap.access(0x1000, 8, False) is False
    t = clock.now
    assert t >= CostModel().page_fault_ns
    assert swap.access(0x1000, 8, False) is True
    assert clock.now == t  # page hits are free (MMU-resolved)


def test_page_spanning_access():
    swap, _ = _swap()
    swap.access(PAGE_SIZE - 4, 8, False)
    assert swap.stats.accesses == 2
    assert swap.stats.misses == 2


def test_lru_eviction_at_capacity():
    swap, _ = _swap(pages=2)
    swap.access(0 * PAGE_SIZE, 8, False)
    swap.access(1 * PAGE_SIZE, 8, False)
    swap.access(2 * PAGE_SIZE, 8, False)  # evicts page 0
    assert not swap.contains(0)
    assert swap.contains(1)
    assert swap.contains(2)


def test_dirty_eviction_writes_back():
    swap, _ = _swap(pages=1)
    swap.access(0, 8, True)
    before = swap.network.stats.bytes_written
    swap.access(PAGE_SIZE, 8, False)
    assert swap.network.stats.bytes_written == before + PAGE_SIZE
    assert swap.stats.writebacks == 1


def test_prefetch_async_then_hit():
    swap, clock = _swap()
    swap.prefetch(5)
    clock.advance(1e7, "compute")
    t0 = clock.now
    assert swap.access(5 * PAGE_SIZE, 8, False) is True
    assert clock.now == t0


def test_prefetch_early_access_waits():
    swap, clock = _swap()
    swap.prefetch(5)
    swap.access(5 * PAGE_SIZE, 8, False)
    assert swap.stats.prefetch_hits == 1


def test_evict_hint_preferred():
    swap, _ = _swap(pages=2)
    swap.access(0, 8, False)
    swap.access(PAGE_SIZE, 8, False)
    swap.evict_hint(PAGE_SIZE, 8)  # hint page 1, even though page 0 is LRU
    swap.access(2 * PAGE_SIZE, 8, False)
    assert swap.contains(0)
    assert not swap.contains(1)
    assert swap.stats.hinted_evictions == 1


def test_flush_cleans_dirty_pages():
    swap, _ = _swap()
    swap.access(0, 8, True)
    swap.flush(0, 8)
    assert swap.stats.writebacks == 1
    # evicting a clean page writes nothing further
    before = swap.network.stats.bytes_written
    swap.resize(PAGE_SIZE)
    swap.access(PAGE_SIZE, 8, False)
    assert swap.network.stats.bytes_written == before + 0


def test_drop_object_unmaps_pages():
    swap, _ = _swap()
    swap.access(0, 8, True, obj_id=7)
    swap.drop_object(7)
    assert not swap.contains(0)
    assert swap.stats.writebacks == 1  # dirty page written back


def test_resize_shrink_evicts():
    swap, _ = _swap(pages=4)
    for i in range(4):
        swap.access(i * PAGE_SIZE, 8, False)
    swap.resize(2 * PAGE_SIZE)
    assert swap.resident_pages() == 2


def test_fault_lock_serializes_threads():
    lock = SerialResource()
    swap, clock = _swap(lock=lock)
    swap.access(0, 8, False)
    assert lock.acquisitions == 1


def test_extra_fault_cost():
    slow, clock_slow = _swap(extra_fault=10_000.0)
    fast, clock_fast = _swap()
    slow.access(0, 8, False)
    fast.access(0, 8, False)
    assert clock_slow.now == pytest.approx(clock_fast.now + 10_000.0)


def test_eviction_prefers_settled_victim():
    # regression (S3): the LRU head's prefetch is still in flight; eviction
    # must pick a settled page instead of throwing the fetch away unread
    swap, _ = _swap(pages=2)
    swap.access(1 * PAGE_SIZE, 8, False)  # settled resident page
    swap.prefetch(0)                      # fetch in flight
    swap.access(1 * PAGE_SIZE, 8, False)  # hit: page 0 becomes the LRU head
    swap.access(2 * PAGE_SIZE, 8, False)  # forces an eviction
    assert swap.contains(0)               # the in-flight prefetch survived
    assert not swap.contains(1)
    assert swap.stats.prefetch_wasted == 0


def test_evicting_inflight_page_counts_wasted():
    swap, _ = _swap(pages=2)
    swap.prefetch(0)
    swap.prefetch(1)
    swap.access(2 * PAGE_SIZE, 8, False)  # every page in flight: one must go
    assert not swap.contains(0)
    assert swap.stats.prefetch_wasted == 1


def test_hinted_eviction_of_inflight_page_counts_wasted():
    swap, _ = _swap(pages=2)
    swap.prefetch(0)
    swap.prefetch(1)
    swap.evict_hint(0, 8)     # hint the page whose fetch is still in flight
    swap.resize(PAGE_SIZE)    # shrink while both fetches are airborne
    assert swap.stats.hinted_evictions == 1
    assert swap.stats.prefetch_wasted == 1


def test_settled_prefetch_not_counted_wasted():
    swap, clock = _swap(pages=2)
    swap.prefetch(0)
    clock.advance(1e7, "compute")         # the prefetch lands
    swap.access(0, 8, False)              # touch clears the in-flight marker
    swap.access(1 * PAGE_SIZE, 8, False)
    swap.access(2 * PAGE_SIZE, 8, False)  # evicts page 0 (plain LRU)
    assert not swap.contains(0)
    assert swap.stats.prefetch_wasted == 0


def test_resize_below_page_size_raises():
    # regression (S4): resize must validate like __init__, not quietly
    # zero the capacity
    swap, _ = _swap()
    with pytest.raises(ConfigError):
        swap.resize(100)
    with pytest.raises(ConfigError):
        swap.resize(0)
    assert swap.capacity_pages == 4  # the failed resize changed nothing


def test_metadata_scales_with_resident_pages():
    swap, _ = _swap()
    assert swap.metadata_bytes() == 0
    swap.access(0, 8, False)
    assert swap.metadata_bytes() == 8
